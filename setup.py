"""Legacy setup shim.

The evaluation environment has no network access and no ``wheel``
package, so PEP-660 editable installs (which need ``bdist_wheel``)
fail.  ``python setup.py develop`` (or ``pip install -e .`` on
toolchains with wheel available) installs the package from src/.
"""
from setuptools import setup

setup()
