"""Figure 6 — allocation-writes per day, by allocation configuration.

The paper's headline sieving result: SieveStore's allocation-writes are
more than two orders of magnitude below AOD/WMNA's, and the random
sieves sit in between (~8.5x worse than true sieving).
"""


from repro.analysis.report import render_series, render_table
from repro.sim import allocation_write_series, total_allocation_writes
from repro.sim.experiment import FIGURE5_POLICIES


def test_fig6_allocation_writes(benchmark, bench_suite):
    series = benchmark(lambda: allocation_write_series(bench_suite))
    names = [n for n in FIGURE5_POLICIES if n != "ideal"]
    print()
    print(
        render_series(
            {name: [float(v) for v in series[name]] for name in names},
            x_label="day",
            title="Figure 6: allocation-writes per day (512-byte blocks)",
            float_format="{:.0f}",
        )
    )
    totals = {name: total_allocation_writes(bench_suite[name]) for name in names}
    print(
        render_table(
            ["config", "total allocation-writes", "vs sievestore-c"],
            [
                [name, totals[name],
                 f"{totals[name] / max(1, totals['sievestore-c']):.1f}x"]
                for name in names
            ],
            title="\nWhole-trace totals",
        )
    )

    # > 2 orders of magnitude between sieved and unsieved.
    for sieve in ("sievestore-c", "sievestore-d"):
        for unsieved in ("aod-16", "wmna-16", "aod-32", "wmna-32"):
            assert totals[unsieved] > 100 * totals[sieve], (sieve, unsieved)
    # Random sieves: far below unsieved, well above true sieving
    # (paper: 8.5x on average).
    assert totals["randsieve-c"] > 3 * totals["sievestore-c"]
    assert totals["randsieve-c"] < 0.1 * totals["wmna-32"]
    # WMNA allocates less than AOD (write misses bypass).
    assert totals["wmna-32"] < totals["aod-32"]
    # SieveStore's allocation volume is a tiny fraction of accesses
    # (the ideal sieve's epsilon from Table 2).
    accesses = bench_suite["sievestore-c"].stats.total.accesses
    assert totals["sievestore-c"] < 0.02 * accesses
