"""Extensions bench — the paper's Section 7 directions, made concrete.

Not a paper table/figure: Section 7 ("forward-looking issues on scaling
and tuning") is only sketched in the paper, so these benches quantify
the three natural follow-ups this library implements:

* multi-appliance scale-out (capture retention vs node count);
* self-tuning thresholds (auto-D fill target, adaptive-C t2 control)
  against the hand-tuned paper settings;
* write-back mode (ensemble write-traffic savings from coalescing
  writes to hot blocks in the non-volatile cache).
"""

import pytest

from repro.analysis.report import render_table
from repro.cache.write_policy import WriteMode
from repro.core.autotune import (
    AdaptiveSieveStoreC,
    AdmissionBudget,
    AutoThresholdSieveStoreD,
)
from repro.core.sievestore_c import SieveStoreC, SieveStoreCConfig
from repro.ensemble.scaling import scaling_profile
from repro.sim import mean_capture, run_policy, total_allocation_writes
from repro.sim.engine import simulate
from benchmarks.conftest import DAYS


def test_ext_multi_appliance_scaling(benchmark, bench_context):
    profile = benchmark(
        lambda: scaling_profile(
            bench_context.daily_counts, list(range(13)),
            node_counts=(1, 2, 4, 13),
        )
    )
    print()
    print(
        render_table(
            ["appliances", "ideal capture", "retention vs shared",
             "busiest node's traffic share"],
            [
                [p.nodes, round(p.mean_capture, 3),
                 f"{p.capture_retention * 100:.1f}%",
                 f"{p.peak_node_traffic_share * 100:.0f}%"]
                for p in profile
            ],
            title="Section 7 extension: scale-out across appliances",
        )
    )
    by_nodes = {p.nodes: p for p in profile}
    # Full sharing is the baseline; per-server (13 nodes) is the floor.
    assert by_nodes[1].capture_retention == pytest.approx(1.0)
    assert by_nodes[13].capture_retention <= by_nodes[2].capture_retention
    # Moderate scale-out retains most of the sharing benefit while the
    # busiest node's load drops substantially.
    assert by_nodes[2].capture_retention > 0.95
    assert by_nodes[2].peak_node_traffic_share < 0.85


def test_ext_cluster_simulation(benchmark, bench_context):
    """The scale-out question answered with real sieves, not oracles."""
    from repro.ensemble.cluster import simulate_cluster

    def factory(node):
        return SieveStoreC(
            SieveStoreCConfig(imct_slots=max(1024, bench_context.imct_slots // 4))
        )

    def run(nodes):
        return simulate_cluster(
            bench_context.trace,
            factory,
            total_capacity_blocks=bench_context.sieved_capacity,
            days=DAYS,
            nodes=nodes,
        )

    four = benchmark.pedantic(lambda: run(4), iterations=1, rounds=1)
    one = run(1)
    print()
    print(
        render_table(
            ["nodes", "mean capture", "busiest node's access share"],
            [
                [1, round(one.mean_capture, 3),
                 f"{max(one.node_access_shares()) * 100:.0f}%"],
                [4, round(four.mean_capture, 3),
                 f"{max(four.node_access_shares()) * 100:.0f}%"],
            ],
            title="Section 7 extension: simulated 4-node SieveStore-C cluster",
        )
    )
    # Real sieves confirm the oracle analysis: moderate partitioning
    # keeps most of the capture while splitting the load.
    assert four.total.accesses == one.total.accesses
    assert four.mean_capture > 0.8 * one.mean_capture
    assert max(four.node_access_shares()) < 0.7


def test_ext_autotuned_d(benchmark, bench_context):
    def run():
        policy = AutoThresholdSieveStoreD(
            capacity_blocks=bench_context.sieved_capacity, fill_target=0.9
        )
        result = simulate(
            bench_context.trace, policy, bench_context.sieved_capacity,
            DAYS, track_minutes=False,
        )
        result.policy_name = "sievestore-d-auto"
        return result

    auto = benchmark.pedantic(run, iterations=1, rounds=1)
    fixed = run_policy("sievestore-d", bench_context, track_minutes=False)
    thresholds = auto.policy.chosen_thresholds
    print()
    print(
        render_table(
            ["config", "mean capture (days 2+)", "allocation-writes",
             "epoch thresholds"],
            [
                ["fixed t=10", round(mean_capture(fixed, (0,)), 3),
                 total_allocation_writes(fixed), "10 x 8"],
                ["auto fill=0.9", round(mean_capture(auto, (0,)), 3),
                 total_allocation_writes(auto),
                 " ".join(str(t) for t in thresholds)],
            ],
            title="Section 7 extension: auto-thresholded SieveStore-D",
        )
    )
    # The tuner must at least match the hand-tuned capture (it can spend
    # the cache's headroom on more blocks) without unsieved-scale
    # allocation volume.
    assert mean_capture(auto, (0,)) >= 0.95 * mean_capture(fixed, (0,))
    accesses = auto.stats.total.accesses
    assert total_allocation_writes(auto) < 0.02 * accesses


def test_ext_adaptive_c(benchmark, bench_context):
    def run():
        policy = AdaptiveSieveStoreC(
            SieveStoreCConfig(imct_slots=bench_context.imct_slots),
            budget=AdmissionBudget.cache_turnovers(
                bench_context.sieved_capacity, turnovers_per_day=1.0
            ),
            capacity_blocks=bench_context.sieved_capacity,
        )
        result = simulate(
            bench_context.trace, policy, bench_context.sieved_capacity,
            DAYS, track_minutes=False,
        )
        result.policy_name = "sievestore-c-adaptive"
        return result

    adaptive = benchmark.pedantic(run, iterations=1, rounds=1)
    fixed = run_policy("sievestore-c", bench_context, track_minutes=False)
    print()
    print(
        render_table(
            ["config", "mean capture", "allocation-writes", "final t2"],
            [
                ["fixed t2=4", round(mean_capture(fixed), 3),
                 total_allocation_writes(fixed), 4],
                ["adaptive", round(mean_capture(adaptive), 3),
                 total_allocation_writes(adaptive),
                 adaptive.policy.current_t2],
            ],
            title="Section 7 extension: admission-budget-controlled "
            "SieveStore-C",
        )
    )
    # Stays within a whisker of the hand-tuned capture while holding the
    # allocation budget.
    assert mean_capture(adaptive) >= 0.9 * mean_capture(fixed)
    budget = bench_context.sieved_capacity * DAYS
    assert total_allocation_writes(adaptive) < 2 * budget


def test_ext_write_back(benchmark, bench_context):
    def run(mode):
        policy = SieveStoreC(
            SieveStoreCConfig(imct_slots=bench_context.imct_slots)
        )
        return simulate(
            bench_context.trace, policy, bench_context.sieved_capacity,
            DAYS, track_minutes=False, write_mode=mode,
        )

    back = benchmark.pedantic(
        lambda: run(WriteMode.WRITE_BACK), iterations=1, rounds=1
    )
    through = run(WriteMode.WRITE_THROUGH)
    t_total, b_total = through.stats.total, back.stats.total
    saved = 1 - b_total.backing_writes / max(1, t_total.backing_writes)
    print()
    print(
        render_table(
            ["mode", "SSD hits", "ensemble block-writes", "writebacks"],
            [
                ["write-through", t_total.hits, t_total.backing_writes,
                 t_total.writebacks],
                ["write-back", b_total.hits, b_total.backing_writes,
                 b_total.writebacks],
            ],
            title="Extension: write-back coalescing "
            f"(ensemble write traffic saved: {saved * 100:.1f}%)",
        )
    )
    # SSD-side behaviour identical; ensemble writes meaningfully lower
    # (the write-hot blocks' repeated writes coalesce).
    assert b_total.hits == t_total.hits
    assert b_total.backing_writes < 0.9 * t_total.backing_writes
