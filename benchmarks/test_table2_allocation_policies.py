"""Table 2 — impact of allocation policies under oracle retention,
plus the Section 3.1 Belady analysis.

Regenerates the analytical table exactly, and exercises the executable
Belady machinery: MIN's compulsory allocation-write bound and the
selective-allocation counterexample.
"""

import pytest

from repro.analysis.report import render_table
from repro.analysis.tables import ssd_write_amplification, table2_rows
from repro.core.belady import (
    belady_min,
    belady_selective,
    counterexample_stream,
    fixed_allocation,
    min_compulsory_allocation_bound,
)


def test_table2(benchmark):
    rows = benchmark(table2_rows)
    print()
    print(
        render_table(
            ["Policy", "Hits", "Misses", "Alloc-writes", "Read hits",
             "WrHits+Alloc (SSD writes)", "All SSD ops"],
            [
                [r.policy, r.hits, r.misses, r.allocation_writes,
                 r.read_hits, r.ssd_writes, r.ssd_operations]
                for r in rows
            ],
            title="Table 2: Impact of Allocation Policies "
            "(oracle retention, 35% hits, 3:1 R:W)",
        )
    )
    by_name = {r.policy: r for r in rows}
    # The paper's printed cells.
    assert by_name["aod"].ssd_writes == pytest.approx(0.7375)
    assert by_name["wmna"].ssd_writes == pytest.approx(0.575)
    assert by_name["isa"].ssd_writes < 0.0975
    # "~2.4X" SSD-operation inflation for WMNA.
    assert ssd_write_amplification(by_name["wmna"]) == pytest.approx(2.39, abs=0.01)


def test_belady_compulsory_bound(benchmark):
    bound = benchmark(min_compulsory_allocation_bound)
    print(f"\nMIN+AOD compulsory allocation-write bound: {bound:.4f} of unique blocks"
          " (paper: 61.75%; ideal sieving: ~1%)")
    assert bound == pytest.approx(0.6175)
    assert bound > 0.6


def test_belady_counterexample(benchmark):
    """Section 3.1: selective-MIN maximizes hits but not allocation-writes."""
    stream = counterexample_stream(cycles=2000)

    def run():
        return (
            belady_selective(stream, capacity=1),
            belady_min(stream, capacity=1),
            fixed_allocation(stream, blocks=[0]),
        )

    selective, demand, fixed = benchmark(run)
    print()
    print(
        render_table(
            ["policy", "hit ratio", "alloc-writes / access"],
            [
                ["belady-min (AOD)", demand.hit_ratio, demand.allocation_write_ratio],
                ["belady-selective", selective.hit_ratio, selective.allocation_write_ratio],
                ["fixed {a}", fixed.hit_ratio, fixed.allocation_write_ratio],
            ],
            title="Section 3.1 counterexample (a,a,b,b,a,a,c,c,...; 1-frame cache)",
        )
    )
    # Selective allocation converges to ~50% hits with ~50% of accesses
    # causing allocation-writes; pinning 'a' gets the same hits with
    # exactly one allocation-write.
    assert selective.hit_ratio == pytest.approx(0.5, abs=0.01)
    assert selective.allocation_write_ratio == pytest.approx(0.5, abs=0.01)
    assert fixed.allocation_writes == 1
    assert fixed.hit_ratio == pytest.approx(0.5, abs=0.01)
    assert selective.hits >= demand.hits
