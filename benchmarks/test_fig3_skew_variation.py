"""Figure 3 — popularity-skew variation (observation O2).

3(a): server-to-server (Prxy extreme vs Src1 near-linear);
3(b): volume-to-volume within the Web server;
3(c): day-to-day for the web staging server;
3(d): per-day server composition of the ensemble top-1% block set.
"""

import pytest

from repro.analysis.report import render_table
from repro.analysis.variation import (
    composition_variation,
    cumulative_access_curve,
    server_day_gini,
    top_set_server_composition,
    volume_gini,
)
from repro.traces import PAPER_SERVERS, per_server_daily_counts
from benchmarks.conftest import DAYS


def server_id(key):
    return next(s.server_id for s in PAPER_SERVERS if s.key == key)


@pytest.fixture(scope="module")
def ginis(bench_trace):
    return server_day_gini(bench_trace, days=DAYS)


def test_fig3a_server_to_server(benchmark, bench_trace, ginis):
    per_server = benchmark.pedantic(
        per_server_daily_counts, args=(bench_trace, DAYS), iterations=1, rounds=1
    )
    prxy, src1 = server_id("prxy"), server_id("src1")
    rows = []
    for key in ("prxy", "src1"):
        counts = per_server[server_id(key)][3]
        curve = cumulative_access_curve(counts, points=10)
        rows.append(
            [key] + [round(point["access_fraction"], 2) for point in curve]
        )
    print()
    print(
        render_table(
            ["server"] + [f"top {10 * (i + 1)}% blocks" for i in range(10)],
            rows,
            title="Figure 3(a): cumulative access share, day 3 "
            "(proxy bows hard; source control near-diagonal)",
        )
    )
    prxy_gini = sum(ginis[prxy][1:]) / (DAYS - 1)
    src1_gini = sum(ginis[src1][1:]) / (DAYS - 1)
    print(f"mean Gini: prxy={prxy_gini:.2f}  src1={src1_gini:.2f}")
    assert prxy_gini > src1_gini + 0.15


def test_fig3b_volume_to_volume(benchmark, bench_trace):
    web = server_id("web")
    by_volume = benchmark(lambda: volume_gini(bench_trace, web, days=DAYS))
    print()
    print(
        render_table(
            ["Web volume", "Gini (skew)"],
            [[vol, round(g, 3)] for vol, g in sorted(by_volume.items())],
            title="Figure 3(b): skew by volume within the Web/SQL server",
        )
    )
    # Volume 0 is configured (and must measure) more skewed than volume 1.
    assert by_volume[0] > by_volume[1] + 0.03


def test_fig3c_day_to_day(benchmark, ginis):
    stg = server_id("stg")
    values = benchmark(lambda: ginis[stg])
    print()
    print(
        render_table(
            ["day"] + list(range(DAYS)),
            [["stg Gini"] + [round(v, 2) for v in values]],
            title="Figure 3(c): web staging skew across days",
        )
    )
    # The paper contrasts a skewed day with a non-skewed one.
    spread = max(values[1:]) - min(values[1:])
    assert spread > 0.04


def test_fig3d_top1pct_composition(benchmark, bench_context):
    composition = benchmark(
        lambda: top_set_server_composition(bench_context.daily_counts)
    )
    keys = {s.server_id: s.key for s in PAPER_SERVERS}
    servers = sorted({sid for day in composition for sid in day})
    print()
    print(
        render_table(
            ["day"] + [keys[s] for s in servers],
            [
                [day] + [round(comp.get(s, 0.0), 2) for s in servers]
                for day, comp in enumerate(composition)
            ],
            title="Figure 3(d): server composition of the ensemble top-1% set",
        )
    )
    variation = composition_variation(composition)
    print(f"mean day-over-day total-variation distance: {variation:.3f}")
    # "The variation in contribution from each server demonstrates
    # time-varying behavior that no statically partitioned per-server
    # cache can capture."
    assert variation > 0.02
    # Multiple servers contribute — it is an ensemble property.
    assert all(len(day) >= 3 for day in composition[1:])
