"""Shared state for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  They
share a single synthetic ensemble trace and one run of the Figure-5
policy suite (both session-scoped), because the suite is the expensive
part and Figures 5-9 are different views of the same runs — exactly as
in the paper.

Scale: the benches run the ``small`` preset (~1/10,000 linear scale,
a few million block accesses over 8 days).  Set the environment
variable ``SIEVESTORE_BENCH_SCALE`` to override (e.g. 1e-5 for a quick
smoke run, 1e-3 for a heavier one).

Performance knobs (all read once at session start):

* ``SIEVESTORE_BENCH_FAST``  — ``0`` runs the suite through the
  reference object-trace path instead of the columnar fast path
  (default: fast path on; the two are bit-identical);
* ``SIEVESTORE_BENCH_JOBS``  — worker processes for the policy suite
  (default 1 = serial in-process, 0 = all cores);
* ``SIEVESTORE_TRACE_CACHE`` — trace-cache directory override (the
  harness defaults to ``.sievestore-trace-cache`` at the repo root, so
  repeated bench sessions skip trace synthesis entirely).

The session also writes ``BENCH_perf.json`` at the repo root: one entry
per simulated policy configuration with its wall-clock seconds and
block-simulation throughput, so perf regressions show up in review
diffs rather than anecdotes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.sim import context_for_trace, run_policy_suite
from repro.ssd.device import INTEL_X25E
from repro.traces import SyntheticTraceConfig, load_or_generate_columnar

DAYS = 8

#: Occupancy aggregation window (minutes) for the scaled trace; see
#: repro.ssd.occupancy.occupancy_from_stats.
OCCUPANCY_WINDOW_MINUTES = 30

REPO_ROOT = Path(__file__).resolve().parent.parent
PERF_REPORT_PATH = REPO_ROOT / "BENCH_perf.json"

#: policy name -> {"wall_seconds", "blocks_per_sec", "scale"}; filled by
#: record_perf() as results become available, dumped at session end.
_PERF_RECORDS: dict = {}


def bench_scale() -> float:
    return float(os.environ.get("SIEVESTORE_BENCH_SCALE", "1e-4"))


def bench_fast_path() -> bool:
    return os.environ.get("SIEVESTORE_BENCH_FAST", "1") != "0"


def bench_jobs():
    jobs = int(os.environ.get("SIEVESTORE_BENCH_JOBS", "1"))
    return None if jobs == 0 else jobs


def record_perf(name: str, result, scale: float) -> None:
    """Log one simulation's wall time / throughput for BENCH_perf.json."""
    total_blocks = result.stats.total.accesses
    wall = result.wall_seconds
    _PERF_RECORDS[name] = {
        "wall_seconds": round(wall, 6),
        "blocks_per_sec": round(total_blocks / wall, 1) if wall > 0 else 0.0,
        "scale": scale,
        "engine": result.engine,
    }


def pytest_sessionfinish(session, exitstatus):
    if not _PERF_RECORDS:
        return
    try:
        PERF_REPORT_PATH.write_text(
            json.dumps(_PERF_RECORDS, indent=2, sort_keys=True) + "\n"
        )
    except OSError:
        pass


@pytest.fixture(scope="session")
def bench_config():
    return SyntheticTraceConfig(scale=bench_scale(), days=DAYS)


@pytest.fixture(scope="session")
def bench_columnar(bench_config):
    """The shared ensemble trace in columnar form, via the trace cache."""
    if os.environ.get("SIEVESTORE_TRACE_CACHE") is not None:
        cache_dir = None  # honour the user's override (or opt-out)
    else:
        cache_dir = REPO_ROOT / ".sievestore-trace-cache"
    return load_or_generate_columnar(bench_config, cache_dir)


@pytest.fixture(scope="session")
def bench_trace(bench_columnar):
    return bench_columnar.to_trace()


@pytest.fixture(scope="session")
def bench_context(bench_trace, bench_columnar, bench_config):
    return context_for_trace(
        bench_trace,
        days=bench_config.days,
        scale=bench_config.scale,
        columnar=bench_columnar,
    )


@pytest.fixture(scope="session")
def bench_suite(bench_context, bench_config):
    """The Figure-5 policy suite, run once for the whole bench session."""
    results = run_policy_suite(
        bench_context, fast_path=bench_fast_path(), jobs=bench_jobs()
    )
    if results.failures:
        # Figures 5-9 all read this suite; a partial run would make
        # every downstream bench silently wrong, so fail loudly here.
        pytest.fail(
            "policy suite had failures: "
            + "; ".join(str(f) for f in results.failures.values())
        )
    for name, result in results.items():
        record_perf(name, result, bench_config.scale)
    return results


@pytest.fixture(scope="session")
def bench_device(bench_config):
    """The X25-E scaled to the workload's scale (see SSDModel.scaled)."""
    return INTEL_X25E.scaled(bench_config.scale)
