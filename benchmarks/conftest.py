"""Shared state for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  They
share a single synthetic ensemble trace and one run of the Figure-5
policy suite (both session-scoped), because the suite is the expensive
part and Figures 5-9 are different views of the same runs — exactly as
in the paper.

Scale: the benches run the ``small`` preset (~1/10,000 linear scale,
a few million block accesses over 8 days).  Set the environment
variable ``SIEVESTORE_BENCH_SCALE`` to override (e.g. 1e-5 for a quick
smoke run, 1e-3 for a heavier one).
"""

from __future__ import annotations

import os

import pytest

from repro.sim import context_for_trace, run_policy_suite
from repro.ssd.device import INTEL_X25E
from repro.traces import EnsembleTraceGenerator, SyntheticTraceConfig

DAYS = 8

#: Occupancy aggregation window (minutes) for the scaled trace; see
#: repro.ssd.occupancy.occupancy_from_stats.
OCCUPANCY_WINDOW_MINUTES = 30


def bench_scale() -> float:
    return float(os.environ.get("SIEVESTORE_BENCH_SCALE", "1e-4"))


@pytest.fixture(scope="session")
def bench_config():
    return SyntheticTraceConfig(scale=bench_scale(), days=DAYS)


@pytest.fixture(scope="session")
def bench_generator(bench_config):
    return EnsembleTraceGenerator(bench_config)


@pytest.fixture(scope="session")
def bench_trace(bench_generator):
    return bench_generator.generate()


@pytest.fixture(scope="session")
def bench_context(bench_trace, bench_config):
    return context_for_trace(
        bench_trace, days=bench_config.days, scale=bench_config.scale
    )


@pytest.fixture(scope="session")
def bench_suite(bench_context):
    """The Figure-5 policy suite, run once for the whole bench session."""
    return run_policy_suite(bench_context)


@pytest.fixture(scope="session")
def bench_device(bench_config):
    """The X25-E scaled to the workload's scale (see SSDModel.scaled)."""
    return INTEL_X25E.scaled(bench_config.scale)
