"""Figure 5 — accesses captured per day, by allocation configuration.

Regenerates the paper's central result: per-day capture (hits as a
fraction of the day's block accesses) for the ideal day-by-day sieve,
SieveStore-D/-C, both random sieves, and unsieved AOD/WMNA at 16 GB and
32 GB (scaled).  Shape claims asserted:

* SieveStore-C tracks the ideal closely (paper: within ~4%);
* SieveStore-D tracks it after its day-1 bootstrap (paper: ~14%);
* both sieves beat the best unsieved configuration, despite the
  unsieved caches being twice the size;
* the random sieves fail to find the hot blocks;
* SieveStore-D is exactly zero on day 1 and weak on day 2.

Paper-vs-measured magnitudes are recorded in EXPERIMENTS.md.
"""


from repro.analysis.report import render_series, render_table
from repro.sim import capture_breakdown, capture_series, mean_capture
from repro.sim.experiment import FIGURE5_POLICIES
from benchmarks.conftest import DAYS


def capture(suite, name):
    skip = (0,) if name in ("sievestore-d", "randsieve-blkd") else ()
    return mean_capture(suite[name], skip_days=skip)


def test_fig5_captured_accesses(benchmark, bench_suite):
    series = benchmark(lambda: capture_series(bench_suite))
    print()
    print(
        render_series(
            {name: series[name] for name in FIGURE5_POLICIES},
            x_label="day",
            title="Figure 5: fraction of accesses captured per day",
        )
    )
    means = {name: capture(bench_suite, name) for name in FIGURE5_POLICIES}
    best_unsieved = max(
        means[n] for n in ("aod-16", "wmna-16", "aod-32", "wmna-32")
    )
    print(
        render_table(
            ["config", "mean capture", "vs ideal", "vs best unsieved"],
            [
                [
                    name,
                    round(means[name], 3),
                    f"{means[name] / means['ideal'] * 100:.0f}%",
                    f"{(means[name] / best_unsieved - 1) * 100:+.0f}%",
                ]
                for name in FIGURE5_POLICIES
            ],
            title="\nMean daily capture (D and RandSieve-BlkD exclude day 1)",
        )
    )

    # --- shape assertions ---------------------------------------------
    # Magnitudes vs the paper are recorded in EXPERIMENTS.md: the
    # synthetic trace reproduces the orderings and the C~ideal, D~ideal
    # tracking, but the unsieved deficit is smaller than the paper's
    # (+50%/+35%) because the real traces' fine-grained temporal
    # structure is not recoverable from the published statistics.
    ideal = means["ideal"]
    assert means["sievestore-c"] > 0.88 * ideal
    assert means["sievestore-d"] > 0.72 * ideal
    assert means["sievestore-c"] > best_unsieved
    assert means["sievestore-d"] > 0.85 * best_unsieved
    # Sieves crush the *same-size* (16 GB) unsieved caches.
    same_size = max(means["aod-16"], means["wmna-16"])
    assert means["sievestore-c"] > 1.05 * same_size
    # Random sieving is not real sieving.
    assert means["randsieve-blkd"] < 0.2 * ideal
    assert means["randsieve-c"] < means["sievestore-c"]
    # Day-1 bootstrap and weak day 2 for SieveStore-D.
    d_series = series["sievestore-d"]
    assert d_series[0] == 0.0
    assert d_series[1] < 0.8 * series["ideal"][1]
    # Ideal's mean capture sits in the paper's band.
    assert 0.15 < ideal < 0.55


def test_fig5_read_write_breakdown(benchmark, bench_suite):
    breakdown = benchmark(lambda: capture_breakdown(bench_suite))
    rows = []
    for name in ("sievestore-c", "sievestore-d", "wmna-32", "aod-32"):
        days = breakdown[name]
        mean_reads = sum(d["read_hits"] for d in days) / DAYS
        mean_writes = sum(d["write_hits"] for d in days) / DAYS
        rows.append([name, round(mean_reads, 3), round(mean_writes, 3)])
    print()
    print(
        render_table(
            ["config", "read-hit share", "write-hit share"],
            rows,
            title="Figure 5 bars' read/write split (mean over days)",
        )
    )
    # SieveStore captures write-hot blocks (it does not differentiate
    # reads and writes); WMNA structurally cannot admit write-only-hot
    # blocks, so its write capture trails SieveStore-C's.
    c_writes = sum(d["write_hits"] for d in breakdown["sievestore-c"]) / DAYS
    wmna_writes = sum(d["write_hits"] for d in breakdown["wmna-32"]) / DAYS
    assert c_writes > wmna_writes
