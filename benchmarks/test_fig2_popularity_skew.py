"""Figure 2 — popularity-skew characterization (observation O1).

2(a): per-bin mean access count vs percentile rank (the cliff past 1%);
2(b): cumulative access share CDF;
2(c): the CDF zoomed into the top 5% (knee below 1%, share 14-53%).
"""


from repro.analysis.report import render_table
from repro.analysis.skew import access_count_quantiles, daily_skew_profiles
from repro.util.units import BLOCK_BYTES, GIB


def test_fig2a_access_count_distribution(benchmark, bench_context):
    profiles = benchmark.pedantic(
        daily_skew_profiles,
        args=(bench_context.daily_counts,),
        kwargs={"bins": 1000},
        iterations=1,
        rounds=1,
    )
    percentile_marks = (0.1, 0.5, 1.0, 3.0, 5.0, 10.0, 50.0)
    print()
    print(
        render_table(
            ["day"] + [f"count@{p}%" for p in percentile_marks],
            [
                [day] + [round(prof.count_at_percentile(p), 1) for p in percentile_marks]
                for day, prof in enumerate(profiles)
            ],
            title="Figure 2(a): mean per-block daily access count at percentile ranks",
        )
    )
    for day, prof in enumerate(profiles):
        if day == 0 or not prof.percentiles:
            continue
        # "the bin at the top 1st percentile averages fewer than 10
        # accesses per day" (11 on one day); on the synthetic trace's
        # lightest days the stabilized hot set reaches slightly past the
        # 1st percentile, so the bound is a little looser here.
        # "Excluding the top 3%, blocks have fewer than 4 accesses on
        # average"; no reuse below the 50th percentile.
        assert prof.count_at_percentile(1.0) <= 16
        assert prof.count_at_percentile(3.5) <= 4.5
        assert prof.count_at_percentile(60.0) <= 1.01
        # The very top bin towers (paper: >1000 at the 0.01% bin; our
        # 1000-bin profile averages the top 0.1%).
        assert prof.mean_counts[0] > 25


def test_fig2b_2c_cumulative_share(benchmark, bench_context, bench_config):
    quantiles = benchmark(
        lambda: [access_count_quantiles(c) for c in bench_context.daily_counts]
    )
    profiles = daily_skew_profiles(bench_context.daily_counts, bins=1000)
    print()
    print(
        render_table(
            ["day", "top 0.5%", "top 1%", "top 2%", "top 5%",
             "<=4 acc", "<=10 acc", "single", "top1% size (GB @ full scale)"],
            [
                [
                    day,
                    round(prof.share_of_top(0.005), 3),
                    round(prof.share_of_top(0.01), 3),
                    round(prof.share_of_top(0.02), 3),
                    round(prof.share_of_top(0.05), 3),
                    round(q["fraction_le_4"], 3),
                    round(q["fraction_le_10"], 3),
                    round(q["fraction_single"], 3),
                    round(q["blocks"] * 0.01 * BLOCK_BYTES / GIB / bench_config.scale, 1),
                ]
                for day, (prof, q) in enumerate(zip(profiles, quantiles))
            ],
            title="Figure 2(b)/(c): cumulative access share of top percentiles",
        )
    )
    for day, q in enumerate(quantiles):
        if day == 0:
            continue
        # O1's quoted bands.
        assert 0.10 < q["top1_share"] < 0.60
        assert q["fraction_le_10"] > 0.97
        assert q["fraction_le_4"] > 0.93
        assert 0.35 < q["fraction_single"] < 0.60
        # "the most popular 1% of blocks ... would fit comfortably
        # within a modest 16-32GB SSD": top-1% footprint below 16 GB at
        # full scale.
        top1_gb = q["blocks"] * 0.01 * BLOCK_BYTES / GIB / bench_config.scale
        assert top1_gb < 16
