"""Figure 7 — total SSD accesses split into read hits, write hits, and
allocation-writes.

Shape claims: for unsieved policies the allocation-writes bar dominates
all SSD traffic (and those are the slow operations); for SieveStore the
allocation-writes bar is nearly invisible.  Also reproduces the
endurance argument of Section 5.1 (caching write-hot blocks does not
wear the drive out).
"""


from repro.analysis.report import render_table
from repro.sim import ssd_operation_series
from repro.ssd.device import INTEL_X25E
from repro.ssd.endurance import endurance_report, paper_endurance_example


def test_fig7_ssd_operations(benchmark, bench_suite):
    series = benchmark(lambda: ssd_operation_series(bench_suite))
    names = ("sievestore-d", "sievestore-c", "randsieve-c", "wmna-32", "aod-32")
    rows = []
    for name in names:
        totals = {
            "read_hits": sum(d["read_hits"] for d in series[name]),
            "write_hits": sum(d["write_hits"] for d in series[name]),
            "allocation_writes": sum(d["allocation_writes"] for d in series[name]),
        }
        total_ops = sum(totals.values())
        rows.append(
            [
                name,
                totals["read_hits"],
                totals["write_hits"],
                totals["allocation_writes"],
                total_ops,
                f"{totals['allocation_writes'] / max(1, total_ops) * 100:.1f}%",
            ]
        )
    print()
    print(
        render_table(
            ["config", "read hits", "write hits", "alloc-writes",
             "total SSD ops", "alloc share"],
            rows,
            title="Figure 7: total SSD operations (512-byte blocks)",
        )
    )

    for name in ("aod-32", "wmna-32", "aod-16", "wmna-16"):
        total = bench_suite[name].stats.total
        # Allocation-writes dominate unsieved SSD traffic.
        assert total.allocation_writes > total.hits, name
    for name in ("sievestore-c", "sievestore-d"):
        total = bench_suite[name].stats.total
        # The sieve's allocation bar is nearly invisible at scale.
        assert total.allocation_writes < 0.05 * total.hits, name


def test_endurance(benchmark, bench_suite, bench_config):
    """Section 5.1: X25-E lifetime under SieveStore's write load."""
    result = bench_suite["sievestore-c"]

    def compute():
        return endurance_report(INTEL_X25E.scaled(bench_config.scale), result.stats)

    report = benchmark(compute)
    paper_years = paper_endurance_example(INTEL_X25E)
    print()
    print(
        render_table(
            ["quantity", "value"],
            [
                ["peak daily SSD writes (blocks, scaled)", report.peak_daily_write_blocks],
                ["peak daily writes at full scale (blocks)",
                 int(report.peak_daily_write_blocks / bench_config.scale)],
                ["lifetime at peak (years)", round(report.lifetime_years_at_peak, 1)],
                ["lifetime at mean (years)", round(report.lifetime_years_at_mean, 1)],
                ["paper's 500M-writes/day example (years)", round(paper_years, 1)],
            ],
            title="Section 5.1 endurance analysis",
        )
    )
    # "the disk's endurance is over 10 years".
    assert report.lifetime_years_at_peak > 10
    assert paper_years > 10
    # Full-scale daily write volume stays under the paper's 500M bound.
    assert report.peak_daily_write_blocks / bench_config.scale < 5e8
