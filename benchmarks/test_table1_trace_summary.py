"""Table 1 — trace summary of the storage ensemble.

Prints the reproduced Table 1 (server inventory) alongside the measured
summary of the generated synthetic trace (requests, block accesses,
daily footprint), and benchmarks trace generation itself.
"""


from repro.analysis.report import render_table
from repro.traces import (
    EnsembleTraceGenerator,
    daily_access_totals,
    daily_block_counts,
    table1_rows,
    tiny_config,
)
from repro.util.units import BLOCK_BYTES, GIB
from benchmarks.conftest import DAYS


def test_table1_inventory(benchmark, bench_trace, bench_config):
    rows = benchmark(table1_rows)
    print()
    print(
        render_table(
            ["Key", "Name", "Volumes", "Spindles", "Size (GB)"],
            [[r["key"], r["name"], r["volumes"], r["spindles"], r["size_gb"]] for r in rows],
            title="Table 1: Trace Summary (paper inventory)",
        )
    )
    totals = daily_access_totals(bench_trace, DAYS)
    counts = daily_block_counts(bench_trace, DAYS)
    print(
        render_table(
            ["day", "requests(k)", "block accesses(k)", "unique blocks(k)",
             "footprint (paper-scale GB)"],
            [
                [
                    day,
                    round(sum(1 for r in bench_trace
                              if day * 86400 <= r.issue_time < (day + 1) * 86400) / 1e3, 1),
                    round(totals[day] / 1e3, 1),
                    round(len(counts[day]) / 1e3, 1),
                    round(len(counts[day]) * BLOCK_BYTES / GIB / bench_config.scale),
                ]
                for day in range(DAYS)
            ],
            title="\nMeasured synthetic-ensemble summary "
            f"(scale={bench_config.scale:g})",
        )
    )

    # Shape checks: 13 servers / 36 volumes / 6449 GB as published, and
    # a paper-plausible daily footprint (335-1190 GB at full scale).
    assert rows[-1] == {
        "key": "Total", "name": "", "volumes": 36, "spindles": 179, "size_gb": 6449,
    }
    full_scale_gb = [
        len(counts[d]) * BLOCK_BYTES / GIB / bench_config.scale for d in range(1, DAYS)
    ]
    assert all(150 < gb < 1600 for gb in full_scale_gb)


def test_trace_generation_throughput(benchmark):
    """Benchmark the generator itself on a tiny preset."""
    config = tiny_config(seed=7)

    def generate():
        return EnsembleTraceGenerator(config).generate().total_blocks()

    blocks = benchmark(generate)
    assert blocks > 10_000
