"""Section 5.3 — ensemble-level vs ideal per-server caching.

Two comparisons, both maximally generous to per-server caching:

* iso-capacity (elastic SSD): each server holds the day-by-day top 1%
  of its own blocks; the ensemble cache holds the global top 1%.  Same
  total capacity — the ensemble captures more (O2's dynamic sharing).
* whole-drive: per-server deployment needs >= 13 physical drives versus
  the ensemble appliance's 1-2, for no more capture — strictly worse
  cost-performance.
"""


from repro.analysis.report import render_series, render_table
from repro.ensemble.per_server import (
    compare_ensemble_vs_per_server,
    per_server_capacity_blocks,
    whole_drive_cost_comparison,
)
from repro.sim import mean_capture


def test_sec53_iso_capacity(benchmark, bench_context):
    comparison = benchmark(
        lambda: compare_ensemble_vs_per_server(bench_context.daily_counts)
    )
    print()
    print(
        render_series(
            {
                "ensemble top-1%": comparison.ensemble_shares,
                "per-server top-1%": comparison.per_server_shares,
            },
            x_label="day",
            title="Section 5.3: ideal capture, shared vs statically split capacity",
        )
    )
    print(
        f"mean: ensemble={comparison.mean_ensemble:.3f} "
        f"per-server={comparison.mean_per_server:.3f} "
        f"advantage={comparison.ensemble_advantage * 100:+.1f}%"
    )
    # Ensemble-level caching captures at least as much every day, and
    # strictly more on average.
    for day, (ens, per) in enumerate(
        zip(comparison.ensemble_shares, comparison.per_server_shares)
    ):
        assert ens >= per - 0.02, f"day {day}"
    assert comparison.ensemble_advantage > 0


def test_sec53_whole_drive_cost(benchmark, bench_context, bench_suite):
    rows = benchmark(
        lambda: whole_drive_cost_comparison(
            bench_context.daily_counts, server_count=13, ensemble_drives=2
        )
    )
    print()
    print(
        render_table(
            ["configuration", "drives", "mean capture", "capture per drive"],
            [
                [r.configuration, r.drives, round(r.mean_capture, 3),
                 round(r.capture_per_drive, 4)]
                for r in rows
            ],
            title="Section 5.3: whole-drive cost comparison",
        )
    )
    ensemble, per_server = rows
    # Same-or-better performance at 1/6th the drives or less.
    assert ensemble.drives * 6 <= per_server.drives + 1
    assert ensemble.mean_capture >= per_server.mean_capture
    assert ensemble.capture_per_drive > 3 * per_server.capture_per_drive

    # SieveStore-C (a practical, not ideal, ensemble cache) still beats
    # the *ideal* per-server configuration's capture.
    practical = mean_capture(bench_suite["sievestore-c"])
    assert practical > 0.9 * per_server.mean_capture


def test_sec53_per_server_capacity_waste(benchmark, bench_context):
    """Static partitioning must provision every server for its own peak."""
    capacities = benchmark(
        lambda: per_server_capacity_blocks(bench_context.daily_counts)
    )
    total = sum(capacities.values())
    print()
    print(
        render_table(
            ["server", "peak daily top-1% blocks"],
            sorted(capacities.items()),
            title="Per-server peak capacity needs (elastic assumption)",
        )
    )
    peak_ensemble = max(
        max(1, len(c) // 100) for c in bench_context.daily_counts
    )
    print(f"sum of per-server peaks: {total}; ensemble peak: {peak_ensemble}")
    # Provisioning per-server peaks costs more capacity than the shared
    # ensemble peak (peaks do not align across servers).
    assert total >= peak_ensemble
