"""Section 3.3 — appliance network feasibility.

The paper's worst-case arithmetic (SSD flat-out ~= 50% of a 4xGbE
node) evaluated against the measured SSD traffic of the simulated
SieveStore configurations, plus the allocation-traffic negligibility
claim.
"""

import pytest

from repro.analysis.report import render_table
from repro.ensemble.network import (
    NetworkBudget,
    network_report,
    worst_case_ssd_utilization,
)
from repro.ssd.device import INTEL_X25E
from benchmarks.conftest import DAYS


def test_network_feasibility(benchmark, bench_suite, bench_config):
    budget = NetworkBudget()

    def compute():
        return {
            name: network_report(
                bench_suite[name].stats,
                INTEL_X25E,
                budget,
                device_scale=bench_config.scale,
            )
            for name in ("sievestore-c", "sievestore-d", "wmna-32")
        }

    reports = benchmark(compute)
    worst = worst_case_ssd_utilization(INTEL_X25E, budget)
    print()
    print(
        render_table(
            ["config", "peak NIC utilization", "write share of SSD traffic"],
            [
                [name, f"{r.measured_peak_utilization * 100:.1f}%",
                 f"{r.write_share_of_traffic * 100:.1f}%"]
                for name, r in reports.items()
            ],
            title="Section 3.3: appliance network load "
            f"(worst-case SSD stream = {worst * 100:.0f}% of 4xGbE)",
        )
    )
    # The paper's 50% worst case.
    assert worst == pytest.approx(0.5, abs=0.01)
    # Measured SieveStore peaks sit below the worst case and far below
    # saturation.
    for name in ("sievestore-c", "sievestore-d"):
        assert reports[name].measured_peak_utilization < 1.0
    # Allocation/write traffic is a modest share for SieveStore but the
    # majority of WMNA's SSD traffic (allocation-writes dominate).
    assert (
        reports["wmna-32"].write_share_of_traffic
        > reports["sievestore-c"].write_share_of_traffic
    )


def test_metastate_budget(benchmark, bench_suite, bench_config):
    """Section 3.3's '~8 GB of memory' for the IMCT+MCT, reproduced
    analytically and checked against the simulated sieve's footprint."""
    from repro.core.metastate import DEFAULT_BUDGET, paper_scale_example

    example = benchmark(paper_scale_example)
    state = bench_suite["sievestore-c"].policy.metastate_entries()
    measured = DEFAULT_BUDGET.sieve_c_bytes(
        state["imct_slots"], state["mct_peak_entries"]
    )
    print()
    print(
        render_table(
            ["quantity", "value"],
            [
                ["paper-scale IMCT (GiB)", round(example["imct_gib"], 2)],
                ["paper-scale MCT (GiB)", round(example["mct_gib"], 2)],
                ["paper-scale total (GiB)", round(example["total_gib"], 2)],
                ["simulated sieve state at bench scale (KiB)",
                 round(measured / 1024, 1)],
                ["simulated MCT peak entries", state["mct_peak_entries"]],
            ],
            title="Section 3.3: sieve metastate budget "
            "(paper: 'about 8GB of memory')",
        )
    )
    assert 6.0 < example["total_gib"] < 10.0
    # The exact tier stays small relative to the imprecise tier — the
    # point of the two-tier design.
    assert state["mct_peak_entries"] < 0.2 * state["imct_slots"]


def test_request_processing_throughput(benchmark, bench_context):
    """Appliance request-path cost: simulate one policy over one day.

    Not a paper figure — an engineering benchmark that keeps the
    simulator's per-request cost visible (the paper notes request
    processing is entirely in memory and not a concern).
    """
    from repro.cache import BlockCache
    from repro.cache.stats import CacheStats
    from repro.core import SieveStoreAppliance, SieveStoreC, SieveStoreCConfig
    from repro.traces import iter_day_requests

    requests = list(iter_day_requests(bench_context.trace, 3))[:20000]

    def run_day():
        stats = CacheStats(days=DAYS, track_minutes=False)
        cache = BlockCache(bench_context.sieved_capacity)
        appliance = SieveStoreAppliance(
            cache,
            SieveStoreC(SieveStoreCConfig(imct_slots=bench_context.imct_slots)),
            stats,
        )
        for request in requests:
            appliance.process_request(request)
        return stats.total.accesses

    accesses = benchmark(run_day)
    assert accesses == sum(r.block_count for r in requests)
