"""Figure 9 — number of drives needed per window, sorted, with coverage.

The paper's cost punchline: SieveStore-D satisfies the ensemble's IOPS
with one drive 100% of the time; SieveStore-C with one drive >99.9% of
the time (two drives cover the last few minutes); WMNA needs ~7 drives
for 99.9% coverage and still ~4 after diluting coverage to 90%.
"""

import pytest

from repro.analysis.report import render_table
from repro.ssd.occupancy import (
    coverage_table,
    occupancy_from_stats,
    sorted_drive_requirements,
)
from benchmarks.conftest import DAYS, OCCUPANCY_WINDOW_MINUTES

CONFIGS = ("sievestore-d", "sievestore-c", "randsieve-c", "wmna-32", "aod-32")


@pytest.fixture(scope="module")
def occupancy(bench_suite, bench_device):
    minutes = DAYS * 1440
    return {
        name: occupancy_from_stats(
            bench_suite[name].stats,
            bench_device,
            minutes,
            window_minutes=OCCUPANCY_WINDOW_MINUTES,
        )
        for name in CONFIGS
    }


def test_fig9_drives_needed(benchmark, occupancy):
    sorted_needs = benchmark(
        lambda: {name: sorted_drive_requirements(s) for name, s in occupancy.items()}
    )
    quantile_marks = (0.5, 0.9, 0.99, 0.999, 1.0)
    rows = []
    for name in CONFIGS:
        needs = sorted_needs[name]
        rows.append(
            [name]
            + [needs[min(len(needs) - 1, int(q * len(needs)) - (1 if q == 1.0 else 0))]
               for q in quantile_marks]
        )
    print()
    print(
        render_table(
            ["config"] + [f"q={q}" for q in quantile_marks],
            rows,
            title="Figure 9: drives needed (sorted windows, quantiles)",
        )
    )
    coverage_rows = []
    for name in CONFIGS:
        table = coverage_table(occupancy[name], coverages=(1.0, 0.999, 0.9))
        coverage_rows.append([name, table[1.0], table[0.999], table[0.9]])
    print(
        render_table(
            ["config", "drives @100%", "drives @99.9%", "drives @90%"],
            coverage_rows,
            title="\nDrives for coverage levels",
        )
    )

    by_name = {row[0]: row for row in coverage_rows}
    # SieveStore-D: one drive always (batch moves staggered off-peak).
    assert by_name["sievestore-d"][1] <= 1
    # SieveStore-C: one drive at 99.9% coverage; never more than two.
    assert by_name["sievestore-c"][2] <= 1
    assert by_name["sievestore-c"][1] <= 2
    # Unsieved policies need multiple drives even at diluted coverage.
    # (Paper: WMNA ~7 drives at 99.9%, 4 at 90%; the synthetic trace
    # reproduces the one-drive-vs-multi-drive contrast at a gentler
    # factor — see EXPERIMENTS.md.)
    assert by_name["wmna-32"][2] >= 2
    assert by_name["wmna-32"][3] >= 2
    assert by_name["aod-32"][2] >= 3
    assert by_name["wmna-32"][2] >= 2 * by_name["sievestore-c"][2]
