"""Perf regression harness — columnar fast path vs the object reference.

Runs two configurations over the shared bench trace through both
simulation paths, records each in ``BENCH_perf.json``, and asserts the
paths produce bit-identical statistics (the fast path is an
optimization, not an approximation):

* AOD at 16 GB — engine-bound: every block goes through the
  hit/miss/allocate machinery with no sieve-policy overhead.  At the
  default ``small`` preset the fast path must clear a minimum
  throughput multiple over the object path
  (``SIEVESTORE_FASTPATH_MIN_SPEEDUP``, default 2x).
* SieveStore-C — sieve-bound: exercises the array-backed sieve kernel
  (:mod:`repro.core.sieve_kernel`, the fast engine's ``_W_SIEVE``
  branch).  Its guard (``SIEVESTORE_SIEVE_MIN_SPEEDUP``, default 4x
  over the object path) holds the kernel at AOD-class throughput.

Each engine is timed as the best of two back-to-back runs — the
standard damping for scheduler/frequency noise on a shared machine —
and the repetitions double as a determinism check (identical per-day
statistics run to run).  Both guards are skipped at smoke scales
(trace too small for stable timing).
"""

from __future__ import annotations

import os
from dataclasses import replace

from repro.sim import run_policy
from repro.sim.engine import SimulationResult

from benchmarks.conftest import bench_scale, record_perf

#: Engine-bound configuration used for the throughput measurement.
PERF_POLICY = "aod-16"

#: Sieve-bound configuration exercising the array-backed sieve kernel.
SIEVE_POLICY = "sievestore-c"

#: Below this scale the trace is a smoke run — timings are noise.
MIN_SCALE_FOR_GUARD = 1e-4


def min_speedup() -> float:
    return float(os.environ.get("SIEVESTORE_FASTPATH_MIN_SPEEDUP", "2.0"))


def sieve_min_speedup() -> float:
    return float(os.environ.get("SIEVESTORE_SIEVE_MIN_SPEEDUP", "4.0"))


def best_of(name, ctx, fast_path, runs=2) -> SimulationResult:
    """Run a configuration ``runs`` times; keep the best wall clock.

    The repetitions must be deterministic — identical per-day stats —
    so the minimum is a noise-damped measurement of the same work, not
    a different run.
    """
    results = [run_policy(name, ctx, fast_path=fast_path) for _ in range(runs)]
    first = results[0]
    for other in results[1:]:
        assert other.engine == first.engine
        assert other.stats.per_day == first.stats.per_day
    return replace(
        first, wall_seconds=min(r.wall_seconds for r in results)
    )


def test_perf_fastpath_speedup(benchmark, bench_context, bench_config):
    slow = best_of(PERF_POLICY, bench_context, fast_path=False)
    fast = benchmark.pedantic(
        lambda: best_of(PERF_POLICY, bench_context, fast_path=True),
        iterations=1,
        rounds=1,
    )

    record_perf(f"{PERF_POLICY}-object", slow, bench_config.scale)
    record_perf(f"{PERF_POLICY}-fast", fast, bench_config.scale)

    # Both runs must have used the engine they were asked for — a
    # silent fallback would turn the speedup guard into fast-vs-fast.
    assert slow.engine == "object"
    assert fast.engine == "fast"

    # Equivalence first: identical per-day and per-minute statistics.
    assert fast.stats.per_day == slow.stats.per_day
    assert fast.stats.per_minute == slow.stats.per_minute

    speedup = slow.wall_seconds / fast.wall_seconds
    blocks = fast.stats.total.accesses
    print(
        f"\n{PERF_POLICY}: object {slow.wall_seconds:.2f}s, "
        f"fast {fast.wall_seconds:.2f}s ({speedup:.2f}x) over "
        f"{blocks:,} block accesses"
    )
    if bench_scale() >= MIN_SCALE_FOR_GUARD:
        assert speedup >= min_speedup(), (
            f"fast path regressed: {speedup:.2f}x < {min_speedup():.1f}x "
            f"minimum over the object path"
        )


def test_perf_sieve_kernel_speedup(benchmark, bench_context, bench_config):
    slow = best_of(SIEVE_POLICY, bench_context, fast_path=False)
    fast = benchmark.pedantic(
        lambda: best_of(SIEVE_POLICY, bench_context, fast_path=True),
        iterations=1,
        rounds=1,
    )

    record_perf(f"{SIEVE_POLICY}-object", slow, bench_config.scale)
    record_perf(f"{SIEVE_POLICY}-fast", fast, bench_config.scale)

    assert slow.engine == "object"
    assert fast.engine == "fast"

    # The kernel is an optimization, not an approximation: identical
    # statistics and identical sieve telemetry.
    assert fast.stats.per_day == slow.stats.per_day
    assert fast.stats.per_minute == slow.stats.per_minute
    assert fast.policy.admissions == slow.policy.admissions
    assert fast.policy.imct_rejections == slow.policy.imct_rejections
    assert fast.policy.metastate_entries() == slow.policy.metastate_entries()

    speedup = slow.wall_seconds / fast.wall_seconds
    blocks = fast.stats.total.accesses
    print(
        f"\n{SIEVE_POLICY}: object {slow.wall_seconds:.2f}s, "
        f"fast {fast.wall_seconds:.2f}s ({speedup:.2f}x) over "
        f"{blocks:,} block accesses"
    )
    if bench_scale() >= MIN_SCALE_FOR_GUARD:
        assert speedup >= sieve_min_speedup(), (
            f"sieve kernel regressed: {speedup:.2f}x < "
            f"{sieve_min_speedup():.1f}x minimum over the object path"
        )
