"""Perf regression harness — columnar fast path vs the object reference.

Runs one engine-bound configuration (AOD at 16 GB: every block goes
through the hit/miss/allocate machinery, no sieve-policy overhead) over
the shared bench trace through both simulation paths, records both in
``BENCH_perf.json``, and asserts:

* the two paths produce bit-identical statistics (the fast path is an
  optimization, not an approximation);
* at the default ``small`` preset the fast path clears a minimum
  throughput multiple over the object path.  The guard is skipped at
  smoke scales (trace too small for stable timing) and can be tuned
  with ``SIEVESTORE_FASTPATH_MIN_SPEEDUP``.
"""

from __future__ import annotations

import os

from repro.sim import run_policy

from benchmarks.conftest import bench_scale, record_perf

#: Engine-bound configuration used for the throughput measurement.
PERF_POLICY = "aod-16"

#: Below this scale the trace is a smoke run — timings are noise.
MIN_SCALE_FOR_GUARD = 1e-4


def min_speedup() -> float:
    return float(os.environ.get("SIEVESTORE_FASTPATH_MIN_SPEEDUP", "2.0"))


def test_perf_fastpath_speedup(benchmark, bench_context, bench_config):
    slow = run_policy(PERF_POLICY, bench_context, fast_path=False)
    fast = benchmark.pedantic(
        lambda: run_policy(PERF_POLICY, bench_context, fast_path=True),
        iterations=1,
        rounds=1,
    )

    record_perf(f"{PERF_POLICY}-object", slow, bench_config.scale)
    record_perf(f"{PERF_POLICY}-fast", fast, bench_config.scale)

    # Both runs must have used the engine they were asked for — a
    # silent fallback would turn the speedup guard into fast-vs-fast.
    assert slow.engine == "object"
    assert fast.engine == "fast"

    # Equivalence first: identical per-day and per-minute statistics.
    assert fast.stats.per_day == slow.stats.per_day
    assert fast.stats.per_minute == slow.stats.per_minute

    speedup = slow.wall_seconds / fast.wall_seconds
    blocks = fast.stats.total.accesses
    print(
        f"\n{PERF_POLICY}: object {slow.wall_seconds:.2f}s, "
        f"fast {fast.wall_seconds:.2f}s ({speedup:.2f}x) over "
        f"{blocks:,} block accesses"
    )
    if bench_scale() >= MIN_SCALE_FOR_GUARD:
        assert speedup >= min_speedup(), (
            f"fast path regressed: {speedup:.2f}x < {min_speedup():.1f}x "
            f"minimum over the object path"
        )
