"""Benchmark harness package.

Being a package lets the per-figure benches import the shared
constants from :mod:`benchmarks.conftest` regardless of how pytest was
invoked (``pytest benchmarks/`` vs ``python -m pytest``).
"""
