"""Figure 8 — drive IOPS occupancy over the trace.

8(a): SieveStore-D vs WMNA;  8(b): SieveStore-C vs WMNA.

Occupancy is busy-seconds per wall-second against the X25-E ratings
(1/35000 s per 4-KB read, 1/3300 s per 4-KB write), computed over
aggregation windows sized for the scaled trace (see
occupancy_from_stats).  Shape: WMNA's allocation-writes push occupancy
to multi-drive peaks, while both SieveStore variants sit far below one
drive almost everywhere.
"""

import pytest

from repro.analysis.report import render_histogram_line, render_table
from repro.ssd.occupancy import occupancy_from_stats
from benchmarks.conftest import DAYS, OCCUPANCY_WINDOW_MINUTES


@pytest.fixture(scope="module")
def occupancy(bench_suite, bench_device):
    minutes = DAYS * 1440
    return {
        name: occupancy_from_stats(
            bench_suite[name].stats,
            bench_device,
            minutes,
            window_minutes=OCCUPANCY_WINDOW_MINUTES,
        )
        for name in ("sievestore-d", "sievestore-c", "wmna-32", "aod-32")
    }


def test_fig8_occupancy_series(benchmark, bench_suite, bench_device, occupancy):
    minutes = DAYS * 1440
    benchmark(
        lambda: occupancy_from_stats(
            bench_suite["wmna-32"].stats,
            bench_device,
            minutes,
            window_minutes=OCCUPANCY_WINDOW_MINUTES,
        )
    )
    print()
    for name in ("wmna-32", "sievestore-d", "sievestore-c"):
        series = occupancy[name]
        print(f"{name:14s} {render_histogram_line(series.values)}")
    rows = []
    for name, series in occupancy.items():
        rows.append(
            [
                name,
                round(series.max_occupancy(), 2),
                round(sum(series.values) / len(series), 3),
                f"{series.fraction_within(1) * 100:.2f}%",
            ]
        )
    print(
        render_table(
            ["config", "peak occupancy", "mean occupancy", "windows within 1 drive"],
            rows,
            title=f"\nFigure 8: drive IOPS occupancy "
            f"({OCCUPANCY_WINDOW_MINUTES}-minute windows)",
        )
    )

    # SieveStore-D: occupancy under one drive essentially always (its
    # batch moves are staggered into idle periods, per the paper).
    assert occupancy["sievestore-d"].fraction_within(1) > 0.999
    # SieveStore-C: under one drive >99.9% of the time.
    assert occupancy["sievestore-c"].fraction_within(1) > 0.995
    # WMNA (and AOD, not shown) peak above one drive — multi-drive
    # territory — and far above SieveStore's peaks.  (The paper's WMNA
    # peaks reach ~7 drives; our synthetic trace reproduces the
    # multi-drive-vs-fraction-of-a-drive contrast at a gentler factor —
    # see EXPERIMENTS.md.)
    assert occupancy["wmna-32"].max_occupancy() > 1.5
    assert occupancy["aod-32"].max_occupancy() > 2.0
    assert occupancy["wmna-32"].max_occupancy() > 3 * occupancy[
        "sievestore-c"
    ].max_occupancy()


def test_fig8_sievestore_occupancy_mostly_idle(benchmark, occupancy):
    # "there is significant downtime in SSD activity" — the headroom
    # SieveStore-D's staggered batch moves rely on.
    series = occupancy["sievestore-d"]
    idle_windows = benchmark(
        lambda: sum(1 for v in series.values if v < 0.5)
    )
    assert idle_windows / len(series) > 0.8
