"""Extension bench — end-to-end latency, the cost-*performance* bottom line.

Converts the Figure-5/6 hit and allocation-write counts into mean
service latency per block access (X25-E-class SSD vs enterprise HDD
array), showing the paper's performance argument in milliseconds:
sieved caches turn their hits into real speedup, while unsieved caches
burn the gains on allocation-writes.
"""


from repro.analysis.report import render_table
from repro.ssd.latency import latency_report

CONFIGS = ("ideal", "sievestore-c", "sievestore-d", "randsieve-c",
           "aod-32", "wmna-32")


def test_ext_latency(benchmark, bench_suite):
    reports = benchmark(
        lambda: {name: latency_report(bench_suite[name].stats) for name in CONFIGS}
    )
    no_cache = reports["sievestore-c"].mean_no_cache_ms
    print()
    print(
        render_table(
            ["config", "mean access (ms)", "alloc overhead (ms)", "speedup"],
            [
                [
                    name,
                    round(r.mean_access_ms, 3),
                    round(r.allocation_overhead_ms, 4),
                    f"{r.speedup:.2f}x",
                ]
                for name, r in reports.items()
            ],
            title=f"Extension: end-to-end latency "
            f"(no-cache baseline {no_cache:.2f} ms/access)",
        )
    )
    # Every cache beats no-cache; the sieves beat the best unsieved.
    for name in CONFIGS:
        assert reports[name].speedup > 1.0, name
    best_unsieved = max(reports["aod-32"].speedup, reports["wmna-32"].speedup)
    assert reports["sievestore-c"].speedup > best_unsieved
    assert reports["sievestore-d"].speedup > 0.85 * best_unsieved
    # The allocation-write tax is visible for unsieved, invisible for
    # sieved configurations.
    assert reports["aod-32"].allocation_overhead_ms > 20 * reports[
        "sievestore-c"
    ].allocation_overhead_ms
