"""Section 5.1 sensitivity analysis + Section 3.3 ablation.

* SieveStore-D threshold sweep: "If the threshold is too low (e.g.
  below 8 ...) we have inadequate sieving and poor performance.  But if
  the threshold is varied in the high range (8-20) the hit-rate does
  not vary significantly."
* SieveStore-C window sweep: "lengths shorter than 8 hours caused some
  performance degradation"; longer windows are flat.
* Single-tier (IMCT-only) ablation: aliasing admits low-reuse blocks,
  inflating allocation-writes — the reason the MCT tier exists.
"""


from repro.analysis.report import render_table
from repro.sim import (
    mean_capture,
    sievestore_c_with_window,
    sievestore_d_with_epoch,
    sievestore_d_with_threshold,
    total_allocation_writes,
)

D_THRESHOLDS = (2, 5, 8, 10, 14, 20)
D_EPOCH_HOURS = (6.0, 12.0, 24.0, 48.0)
C_WINDOWS_HOURS = (1.0, 2.0, 4.0, 8.0, 16.0)


def test_sensitivity_d_threshold(benchmark, bench_context):
    results = benchmark.pedantic(
        lambda: {
            t: sievestore_d_with_threshold(bench_context, t) for t in D_THRESHOLDS
        },
        iterations=1,
        rounds=1,
    )
    rows = []
    for t, result in results.items():
        rows.append(
            [
                t,
                round(mean_capture(result, skip_days=(0,)), 3),
                total_allocation_writes(result),
            ]
        )
    print()
    print(
        render_table(
            ["threshold", "mean capture (days 2+)", "allocation-writes"],
            rows,
            title="SieveStore-D threshold sensitivity",
        )
    )
    captures = {t: mean_capture(results[t], skip_days=(0,)) for t in D_THRESHOLDS}
    allocations = {t: total_allocation_writes(results[t]) for t in D_THRESHOLDS}
    # Low thresholds mean inadequate sieving: far more allocation-writes.
    assert allocations[2] > 4 * allocations[10]
    # The high range (8-20) is near-flat in hit-rate.  (The paper sees
    # <~5% variation; our synthetic head carries a little more mass in
    # the 11-20 band, so t=20 gives up slightly more.)
    high = [captures[t] for t in (8, 10, 14, 20)]
    assert max(high) - min(high) < 0.25 * max(high)
    # ...and capture does not collapse at t=20.
    assert captures[20] > 0.7 * captures[10]


def test_sensitivity_d_epoch(benchmark, bench_context):
    """Section 5.1: 'SieveStore was relatively insensitive to significant
    variations in epoch/window lengths' — the epoch half of the claim.
    Thresholds are pro-rated to the epoch length."""
    results = benchmark.pedantic(
        lambda: {
            h: sievestore_d_with_epoch(bench_context, h) for h in D_EPOCH_HOURS
        },
        iterations=1,
        rounds=1,
    )
    rows = [
        [h, round(mean_capture(results[h], skip_days=(0,)), 3),
         total_allocation_writes(results[h])]
        for h in D_EPOCH_HOURS
    ]
    print()
    print(
        render_table(
            ["epoch (h)", "mean capture (days 2+)", "allocation-writes"],
            rows,
            title="SieveStore-D epoch-length sensitivity",
        )
    )
    captures = {h: mean_capture(results[h], skip_days=(0,)) for h in D_EPOCH_HOURS}
    # 12h-48h are comparable; shorter epochs react faster but admit on
    # noisier counts — the spread stays moderate.
    mid = [captures[h] for h in (12.0, 24.0, 48.0)]
    assert max(mid) - min(mid) < 0.3 * max(mid)
    assert captures[6.0] > 0.5 * captures[24.0]


def test_sensitivity_c_window(benchmark, bench_context):
    results = benchmark.pedantic(
        lambda: {
            w: sievestore_c_with_window(bench_context, window_hours=w)
            for w in C_WINDOWS_HOURS
        },
        iterations=1,
        rounds=1,
    )
    rows = [
        [w, round(mean_capture(results[w]), 3), total_allocation_writes(results[w])]
        for w in C_WINDOWS_HOURS
    ]
    print()
    print(
        render_table(
            ["window (h)", "mean capture", "allocation-writes"],
            rows,
            title="SieveStore-C window-length sensitivity",
        )
    )
    captures = {w: mean_capture(results[w]) for w in C_WINDOWS_HOURS}
    # Short windows degrade (misses expire before reaching the
    # threshold); 8h and 16h are comparable.
    assert captures[1.0] < captures[8.0]
    assert abs(captures[16.0] - captures[8.0]) < 0.1 * captures[8.0]


def test_ablation_single_tier_imct(benchmark, bench_context):
    """Why the MCT exists: one-tier sieving admits aliased junk.

    The paper sized the full-scale IMCT well below the block-address
    space, so aliasing pressure was severe; the scaled default here is
    comparatively generous, so the ablation shrinks the table (1/32) to
    reproduce the regime where low-reuse blocks piggy-back on hot
    slots.  The two-tier configuration keeps its MCT protection even at
    the small table size.
    """
    small_imct = max(256, bench_context.imct_slots // 32)
    single = benchmark.pedantic(
        lambda: sievestore_c_with_window(
            bench_context, window_hours=8.0, single_tier=True, t1=9,
            imct_slots=small_imct,
        ),
        iterations=1,
        rounds=1,
    )
    two_tier = sievestore_c_with_window(
        bench_context, window_hours=8.0, imct_slots=small_imct
    )
    print()
    print(
        render_table(
            ["config", "mean capture", "allocation-writes", "admissions"],
            [
                ["IMCT-only (single tier)", round(mean_capture(single), 3),
                 total_allocation_writes(single), single.policy.admissions],
                ["IMCT+MCT (two tier)", round(mean_capture(two_tier), 3),
                 total_allocation_writes(two_tier), two_tier.policy.admissions],
            ],
            title="Section 3.3 ablation: single-tier vs two-tier sieving",
        )
    )
    # "too many blocks with low-reuse were ... receiving undeserved
    # cache allocations": the single tier allocates far more.
    assert total_allocation_writes(single) > 1.5 * total_allocation_writes(two_tier)
