#!/usr/bin/env python
"""Scale-out: when one SieveStore appliance is not enough.

The paper's Section 7 raises scaling as future work; this example runs
the answer this library builds:

1. the *oracle* view — how much ideal capture survives when the
   ensemble is partitioned across K appliances;
2. the *simulated* view — real SieveStore-C sieves on a 4-node
   cluster, each node with its own IMCT/MCT and 1/4 of the cache;
3. the *self-tuning* view — the adaptive sieve holding an
   allocation-write budget without hand-picked thresholds.

Run:
    python examples/scale_out.py
"""

from repro.analysis.report import render_table
from repro.core.autotune import AdaptiveSieveStoreC, AdmissionBudget
from repro.core.sievestore_c import SieveStoreC, SieveStoreCConfig
from repro.ensemble.cluster import simulate_cluster
from repro.ensemble.scaling import scaling_profile
from repro.sim import context_for_trace, mean_capture, total_allocation_writes
from repro.sim.engine import simulate
from repro.traces import EnsembleTraceGenerator, SyntheticTraceConfig

SCALE = 2e-5
DAYS = 8


def main() -> None:
    config = SyntheticTraceConfig(scale=SCALE, days=DAYS)
    print(f"generating ensemble trace (scale {SCALE:g}) ...")
    trace = EnsembleTraceGenerator(config).generate()
    ctx = context_for_trace(trace, days=DAYS, scale=SCALE)

    # 1. Oracle scale-out profile.
    profile = scaling_profile(ctx.daily_counts, list(range(13)),
                              node_counts=(1, 2, 4, 13))
    print()
    print(render_table(
        ["appliances", "ideal capture", "retention", "busiest node share"],
        [[p.nodes, round(p.mean_capture, 3),
          f"{p.capture_retention:.1%}", f"{p.peak_node_traffic_share:.0%}"]
         for p in profile],
        title="Oracle view: partitioned ideal capture",
    ))

    # 2. Real 4-node cluster.
    print("\nsimulating a 4-node SieveStore-C cluster ...")
    cluster = simulate_cluster(
        trace,
        lambda node: SieveStoreC(SieveStoreCConfig(imct_slots=1 << 13)),
        total_capacity_blocks=ctx.sieved_capacity,
        days=DAYS,
        nodes=4,
    )
    print(f"cluster capture: {cluster.mean_capture:.3f}; "
          f"node traffic shares: "
          + ", ".join(f"{s:.0%}" for s in cluster.node_access_shares()))

    # 3. Self-tuning single appliance.
    print("\nsimulating the budget-controlled adaptive sieve ...")
    adaptive = AdaptiveSieveStoreC(
        SieveStoreCConfig(imct_slots=ctx.imct_slots),
        budget=AdmissionBudget.cache_turnovers(ctx.sieved_capacity),
        capacity_blocks=ctx.sieved_capacity,
    )
    result = simulate(trace, adaptive, ctx.sieved_capacity, DAYS,
                      track_minutes=False)
    print(f"adaptive capture: {mean_capture(result):.3f}; "
          f"allocation-writes: {total_allocation_writes(result):,}; "
          f"t2 trajectory: {adaptive.t2_history}")


if __name__ == "__main__":
    main()
