#!/usr/bin/env python
"""Quickstart: put a SieveStore-C appliance in front of a storage ensemble.

Generates a scaled synthetic 13-server ensemble trace (calibrated to the
SieveStore paper's published workload characteristics), wires up the
continuous sieve + block cache + statistics, streams the trace through
the appliance, and prints what happened — hit ratios, allocation-writes,
and the sieve's metastate footprint.

Run:
    python examples/quickstart.py
"""

from repro.cache import BlockCache
from repro.cache.stats import CacheStats
from repro.core import SieveStoreAppliance, SieveStoreC, SieveStoreCConfig
from repro.traces import SyntheticTraceConfig, load_or_generate_trace
from repro.util.intervals import SECONDS_PER_DAY
from repro.util.units import format_bytes


def main() -> None:
    # 1. A week of block traffic from a 13-server ensemble, at 1/50,000
    #    linear scale so this demo runs in seconds.  The generated trace
    #    is memoized on disk, so re-runs start immediately.
    config = SyntheticTraceConfig(scale=2e-5, days=8)
    trace = load_or_generate_trace(config)
    print(
        f"trace: {len(trace):,} requests, {trace.total_blocks():,} "
        f"512-byte block accesses over {config.days} days"
    )

    # 2. The appliance: a 16 GB (scaled) SSD cache behind the two-tier
    #    sieve with the paper's tuned parameters (t1=9, t2=4, W=8h).
    capacity_blocks = int(16 * 2**30 / 512 * config.scale)
    cache = BlockCache(capacity_blocks)
    sieve = SieveStoreC(SieveStoreCConfig(imct_slots=1 << 14))
    stats = CacheStats(days=config.days)
    appliance = SieveStoreAppliance(cache, sieve, stats)

    # 3. Stream the trace through it (epoch boundaries are no-ops for
    #    the continuous sieve but shown for completeness).
    current_day = -1
    for request in trace:
        day = int(request.issue_time // SECONDS_PER_DAY)
        while current_day < day:
            current_day += 1
            appliance.begin_day(current_day)
        appliance.process_request(request)

    # 4. What happened.
    print(f"\ncache: {capacity_blocks:,} frames "
          f"({format_bytes(capacity_blocks * 512)} at this scale)")
    print(f"{'day':>4} {'accesses':>10} {'hit ratio':>10} {'alloc-writes':>13}")
    for day, d in enumerate(stats.per_day):
        print(f"{day:>4} {d.accesses:>10,} {d.hit_ratio:>10.1%} "
              f"{d.allocation_writes:>13,}")
    total = stats.total
    print(f"\noverall: {total.hit_ratio:.1%} of accesses served from the SSD")
    print(f"allocation-writes: {total.allocation_writes:,} "
          f"({total.allocation_writes / total.accesses:.2%} of accesses — "
          "the sieve at work)")
    print(f"sieve rejections: imct={sieve.imct_rejections:,} "
          f"mct={sieve.mct_rejections:,}; admissions={sieve.admissions:,}")
    state = sieve.metastate_entries()
    print(f"metastate: {state['imct_slots']:,} IMCT slots, "
          f"{state['mct_peak_entries']:,} peak MCT entries")


if __name__ == "__main__":
    main()
