#!/usr/bin/env python
"""Capacity planning: how many SSDs does your ensemble's cache need?

The operator-facing workflow behind the paper's Sections 5.2/5.3:

1. simulate the candidate cache configuration over a (synthetic or
   recorded) ensemble trace, collecting per-minute SSD traffic;
2. convert to drive-IOPS occupancy against the X25-E's ratings;
3. read off the drives needed at your coverage target;
4. sanity-check endurance (years of life at the measured write rate)
   and the appliance's network headroom;
5. compare against the per-server alternative's drive bill.

Run:
    python examples/capacity_planning.py
"""

from repro.analysis.report import render_table
from repro.ensemble.network import NetworkBudget, network_report
from repro.ensemble.per_server import whole_drive_cost_comparison
from repro.sim import context_for_trace, run_policy
from repro.ssd.device import INTEL_X25E
from repro.ssd.endurance import endurance_report
from repro.ssd.occupancy import coverage_table, occupancy_from_stats
from repro.traces import EnsembleTraceGenerator, SyntheticTraceConfig

SCALE = 5e-5
DAYS = 8
#: Occupancy aggregation window for the scaled trace (minutes).
WINDOW = 30


def main() -> None:
    config = SyntheticTraceConfig(scale=SCALE, days=DAYS)
    print(f"simulating SieveStore-C and WMNA at scale {SCALE:g} ...")
    trace = EnsembleTraceGenerator(config).generate()
    ctx = context_for_trace(trace, days=DAYS, scale=SCALE)
    device = INTEL_X25E.scaled(SCALE)

    rows = []
    reports = {}
    for name in ("sievestore-c", "wmna-32"):
        result = run_policy(name, ctx)
        series = occupancy_from_stats(
            result.stats, device, DAYS * 1440, window_minutes=WINDOW
        )
        coverage = coverage_table(series, coverages=(1.0, 0.999, 0.9))
        endurance = endurance_report(device, result.stats)
        reports[name] = (result, series, coverage, endurance)
        rows.append([
            name,
            round(series.max_occupancy(), 2),
            coverage[1.0],
            coverage[0.999],
            coverage[0.9],
            round(endurance.lifetime_years_at_peak, 1),
        ])

    print()
    print(render_table(
        ["config", "peak occupancy", "drives @100%", "@99.9%", "@90%",
         "endurance (yrs @ peak)"],
        rows,
        title="Drive requirements (Intel X25-E ratings, scaled workload)",
    ))

    # Network feasibility of the single appliance node (Section 3.3).
    result, _, _, _ = reports["sievestore-c"]
    net = network_report(
        result.stats, INTEL_X25E, NetworkBudget(links=4), device_scale=SCALE
    )
    print(f"\nappliance network: peak {net.measured_peak_utilization:.1%} "
          f"of a 4x GbE node (worst-case SSD stream would be "
          f"{net.ssd_peak_utilization:.0%})")

    # Ensemble vs per-server drive bill (Section 5.3).
    comparison = whole_drive_cost_comparison(
        ctx.daily_counts, server_count=13,
        ensemble_drives=reports["sievestore-c"][2][0.999] or 1,
    )
    print()
    print(render_table(
        ["configuration", "drives", "ideal capture", "capture/drive"],
        [[r.configuration, r.drives, round(r.mean_capture, 3),
          round(r.capture_per_drive, 4)] for r in comparison],
        title="Ensemble vs per-server deployment",
    ))


if __name__ == "__main__":
    main()
