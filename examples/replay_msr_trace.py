#!/usr/bin/env python
"""Bring your own trace: replay an MSR-Cambridge-format CSV.

The paper's evaluation runs on the MSR Cambridge block traces, which
are distributed as ``Timestamp,Hostname,DiskNumber,Type,Offset,Size,
ResponseTime`` CSV.  This example shows the full path for running
SieveStore against such a file:

1. (demo setup) export one day of the synthetic ensemble to CSV, so
   the example is self-contained — point ``TRACE_CSV`` at a real MSR
   file to use actual data;
2. load it with :func:`repro.traces.read_msr_csv`;
3. run the SieveStore-D *offline* pipeline on it — hash-partitioned
   access logs, map-reduce per-key counting, threshold selection — and
   report what the next epoch's cache would hold.

Run:
    python examples/replay_msr_trace.py
"""

import tempfile
from pathlib import Path

from repro.offline import AccessLog, compact, epoch_allocation, log_trace_day
from repro.traces import (
    EnsembleTraceGenerator,
    SyntheticTraceConfig,
    iter_day_requests,
    read_msr_csv,
    write_msr_csv,
)
from repro.util.units import format_bytes

#: Point this at a real MSR-Cambridge CSV to replay actual data.
TRACE_CSV = None


def demo_csv(directory: Path) -> Path:
    """Export one synthetic day in MSR format (demo stand-in)."""
    config = SyntheticTraceConfig(scale=1e-5, days=3)
    trace = EnsembleTraceGenerator(config).generate()
    day2 = list(iter_day_requests(trace, 2))
    path = directory / "ensemble-day2.csv"
    from repro.traces.model import Trace

    write_msr_csv(Trace(day2), path)
    return path


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        csv_path = Path(TRACE_CSV) if TRACE_CSV else demo_csv(tmp_path)
        print(f"loading {csv_path.name} "
              f"({format_bytes(csv_path.stat().st_size)}) ...")
        trace = read_msr_csv(csv_path)
        print(f"{len(trace):,} requests / {trace.total_blocks():,} block "
              f"accesses from {len({r.server_id for r in trace})} hosts")

        # SieveStore-D's offline metastate pipeline (paper Section 3.2):
        # log every access as an <address, 1> tuple into R hash-selected
        # files, compact incrementally, reduce at the epoch boundary.
        log_dir = tmp_path / "access-logs"
        with AccessLog(log_dir, partitions=16) as log:
            written = log_trace_day(log, trace)
        print(f"\nlogged {written:,} tuples into 16 partitions "
              f"({format_bytes(sum(log.partition_sizes()))})")

        saved = compact(log)
        print(f"incremental compaction reclaimed {format_bytes(saved)}")

        selected = epoch_allocation(log, threshold=10)
        print(f"\nblocks with more than 10 accesses this epoch: "
              f"{len(selected):,}")
        print(f"next epoch's batch allocation: "
              f"{format_bytes(len(selected) * 512)} of cache, "
              f"{len(selected):,} allocation-writes")
        share = len(selected) / max(1, len({a for r in trace
                                            for a in r.addresses()}))
        print(f"that is {share:.2%} of all blocks accessed — the sieve "
              "admits only the top sliver")


if __name__ == "__main__":
    main()
