#!/usr/bin/env python
"""Policy shoot-out: sieved vs unsieved vs random vs ideal.

Reruns the paper's Figure-5 comparison on a freshly generated ensemble
trace and prints per-day capture, allocation-writes, and the headline
comparisons ("how much more does SieveStore capture than the best
unsieved cache, at what allocation-write cost?").

Run:
    python examples/compare_policies.py [scale] [jobs]

``scale`` defaults to 2e-5 (seconds of runtime); the benchmarks use
1e-4 (minutes).  ``jobs`` fans the nine configurations across worker
processes (0 = all cores).  The generated trace is memoized in
``.sievestore-trace-cache/`` so re-runs skip synthesis, and the runs
use the columnar fast path (statistics are bit-identical to the
reference engine).
"""

import sys

from repro.analysis.report import render_series, render_table
from repro.sim import (
    capture_series,
    context_for_trace,
    mean_capture,
    run_policy_suite,
    total_allocation_writes,
)
from repro.sim.experiment import FIGURE5_POLICIES
from repro.traces import SyntheticTraceConfig, load_or_generate_columnar


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 2e-5
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    config = SyntheticTraceConfig(scale=scale, days=8)
    print(f"loading trace at scale {scale:g} ...")
    columns = load_or_generate_columnar(config)
    ctx = context_for_trace(columns, days=config.days, scale=scale)

    print(f"simulating {len(FIGURE5_POLICIES)} configurations over "
          f"{columns.total_blocks():,} block accesses ...")
    suite = run_policy_suite(
        ctx, track_minutes=False, fast_path=True,
        jobs=None if jobs == 0 else jobs,
    )

    print()
    print(render_series(capture_series(suite), x_label="day",
                        title="Accesses captured per day (Figure 5)"))

    def capture(name):
        skip = (0,) if name in ("sievestore-d", "randsieve-blkd") else ()
        return mean_capture(suite[name], skip_days=skip)

    best_unsieved = max(
        capture(n) for n in ("aod-16", "wmna-16", "aod-32", "wmna-32")
    )
    rows = []
    for name in FIGURE5_POLICIES:
        rows.append([
            name,
            round(capture(name), 3),
            f"{(capture(name) / best_unsieved - 1) * 100:+.0f}%",
            total_allocation_writes(suite[name]),
        ])
    print()
    print(render_table(
        ["config", "mean capture", "vs best unsieved", "allocation-writes"],
        rows,
        title="Summary (D and RandSieve-BlkD averages exclude day 1)",
    ))

    c_alloc = total_allocation_writes(suite["sievestore-c"])
    u_alloc = total_allocation_writes(suite["wmna-32"])
    print(f"\nSieveStore-C allocation-writes vs WMNA: "
          f"{u_alloc / max(1, c_alloc):,.0f}x fewer with sieving")


if __name__ == "__main__":
    main()
