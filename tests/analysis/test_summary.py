"""Trace summarization."""

import pytest

from repro.analysis.summary import summarize_trace, summary_rows
from repro.traces.model import IOKind, IORequest, Trace


def req(server=0, blocks=4, kind=IOKind.READ, issue=0.0, aligned=True):
    return IORequest(
        issue_time=issue,
        completion_time=issue + 0.01,
        server_id=server,
        volume_id=0,
        block_offset=0,
        block_count=blocks,
        kind=kind,
        aligned_4k=aligned,
    )


class TestSummarizeTrace:
    def test_empty_trace(self):
        summary = summarize_trace(Trace([]))
        assert summary.requests == 0
        assert summary.days == 0
        assert summary.read_fraction == 0.0

    def test_counts(self):
        trace = Trace([req(blocks=4), req(blocks=8, kind=IOKind.WRITE)])
        summary = summarize_trace(trace)
        assert summary.requests == 2
        assert summary.block_accesses == 12
        assert summary.bytes_accessed == 12 * 512
        assert summary.read_fraction == pytest.approx(4 / 12)

    def test_per_server_split(self):
        trace = Trace([req(server=1), req(server=2), req(server=1)])
        summary = summarize_trace(trace)
        assert [s.server_id for s in summary.servers] == [1, 2]
        assert summary.servers[0].requests == 2

    def test_alignment_fraction(self):
        trace = Trace([req(aligned=True), req(aligned=False)])
        assert summarize_trace(trace).aligned_fraction == 0.5

    def test_days_from_last_issue(self):
        trace = Trace([req(issue=0.0), req(issue=2 * 86400 + 5)])
        assert summarize_trace(trace).days == 3

    def test_size_histogram(self):
        trace = Trace([req(blocks=1), req(blocks=3), req(blocks=16),
                       req(blocks=100)])
        histogram = summarize_trace(trace).request_size_histogram
        assert histogram == {"<=1": 1, "2-4": 1, "9-16": 1, ">64": 1}

    def test_synthetic_trace_summary(self, tiny_trace):
        summary = summarize_trace(tiny_trace)
        assert len(summary.servers) == 13
        assert 0.5 < summary.read_fraction < 0.85
        assert 0.88 < summary.aligned_fraction < 0.98
        assert summary.accesses_per_request > 4

    def test_rows_shape(self, tiny_trace):
        summary = summarize_trace(tiny_trace)
        rows = summary_rows(summary)
        assert len(rows) == 13
        assert sum(row[3] for row in rows) == pytest.approx(1.0, abs=0.02)
