"""Figure 3 machinery: skew variation across servers, volumes, days."""

from collections import Counter

import pytest

from repro.analysis.variation import (
    composition_variation,
    cumulative_access_curve,
    gini_coefficient,
    server_day_gini,
    top_set_server_composition,
    volume_gini,
)
from repro.traces.servers import PAPER_SERVERS


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(Counter({i: 5 for i in range(100)})) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_concentrated_is_near_one(self):
        counter = Counter({0: 100000})
        counter.update({i: 1 for i in range(1, 1000)})
        assert gini_coefficient(counter) > 0.95

    def test_empty_is_zero(self):
        assert gini_coefficient(Counter()) == 0.0

    def test_scale_invariant(self):
        base = Counter({1: 2, 2: 4, 3: 8})
        scaled = Counter({1: 20, 2: 40, 3: 80})
        assert gini_coefficient(base) == pytest.approx(gini_coefficient(scaled))


class TestCumulativeCurve:
    def test_ends_at_one_one(self):
        curve = cumulative_access_curve(Counter({1: 5, 2: 5, 3: 10}))
        assert curve[-1]["block_fraction"] == pytest.approx(1.0)
        assert curve[-1]["access_fraction"] == pytest.approx(1.0)

    def test_monotone(self):
        curve = cumulative_access_curve(Counter({i: i + 1 for i in range(50)}))
        fractions = [point["access_fraction"] for point in curve]
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))

    def test_skewed_curve_above_diagonal(self):
        counter = Counter({0: 1000})
        counter.update({i: 1 for i in range(1, 100)})
        curve = cumulative_access_curve(counter)
        early = curve[len(curve) // 10]
        assert early["access_fraction"] > 2 * early["block_fraction"]

    def test_empty(self):
        assert cumulative_access_curve(Counter()) == []

    def test_rejects_bad_points(self):
        with pytest.raises(ValueError):
            cumulative_access_curve(Counter({1: 1}), points=0)


class TestFigure3OnSyntheticTrace:
    """O2 on the generated ensemble: the Figure 3 contrasts must hold."""

    def test_proxy_more_skewed_than_source_control(self, tiny_trace):
        # Figure 3(a): Prxy extremely skewed, Src1 near-linear.
        ginis = server_day_gini(tiny_trace, days=8)
        prxy = next(s.server_id for s in PAPER_SERVERS if s.key == "prxy")
        src1 = next(s.server_id for s in PAPER_SERVERS if s.key == "src1")
        prxy_mean = sum(ginis[prxy][1:]) / 7
        src1_mean = sum(ginis[src1][1:]) / 7
        assert prxy_mean > src1_mean + 0.1

    def test_web_volumes_differ(self, tiny_trace):
        # Figure 3(b): Web volume 0 more skewed than volume 1.
        web = next(s.server_id for s in PAPER_SERVERS if s.key == "web")
        by_volume = volume_gini(tiny_trace, web, days=8)
        assert by_volume[0] > by_volume[1]

    def test_staging_varies_across_days(self, tiny_trace):
        # Figure 3(c): Stg's day-to-day skew swings.
        stg = next(s.server_id for s in PAPER_SERVERS if s.key == "stg")
        values = server_day_gini(tiny_trace, days=8)[stg][1:]
        assert max(values) - min(values) > 0.03


class TestComposition:
    def test_composition_sums_to_one(self, tiny_context):
        composition = top_set_server_composition(tiny_context.daily_counts)
        for day in composition:
            if day:
                assert sum(day.values()) == pytest.approx(1.0)

    def test_composition_varies_over_days(self, tiny_context):
        # Figure 3(d): "time-varying behavior that no statically
        # partitioned per-server cache can capture".
        composition = top_set_server_composition(tiny_context.daily_counts)
        assert composition_variation(composition) > 0.02

    def test_synthetic_composition(self):
        a = {1: 0.5, 2: 0.5}
        b = {2: 1.0}
        assert composition_variation([a, b]) == pytest.approx(0.5)

    def test_empty_days_skipped(self):
        assert composition_variation([{}, {1: 1.0}]) == 0.0
