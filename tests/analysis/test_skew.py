"""Figure 2 machinery: binned skew profiles and O1 quantiles."""

from collections import Counter

import pytest

from repro.analysis.skew import (
    access_count_quantiles,
    daily_skew_profiles,
    skew_profile,
)


def zipf_counter(n=1000, alpha=1.0):
    return Counter({i: max(1, int(1000 / (i + 1) ** alpha)) for i in range(n)})


class TestSkewProfile:
    def test_empty_counter(self):
        profile = skew_profile(Counter())
        assert profile.unique_blocks == 0
        assert profile.share_of_top(0.01) == 0.0

    def test_mean_counts_descend(self):
        profile = skew_profile(zipf_counter(), bins=50)
        counts = profile.mean_counts
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_cumulative_reaches_one(self):
        profile = skew_profile(zipf_counter(), bins=50)
        assert profile.cumulative_share[-1] == pytest.approx(1.0)

    def test_totals(self):
        counter = Counter({1: 5, 2: 3})
        profile = skew_profile(counter, bins=10)
        assert profile.unique_blocks == 2
        assert profile.total_accesses == 8

    def test_fewer_blocks_than_bins(self):
        profile = skew_profile(Counter({1: 4, 2: 2, 3: 1}), bins=10000)
        assert len(profile.percentiles) == 3

    def test_share_of_top_interpolates(self):
        # Uniform counts: top x% holds ~x% of accesses.
        uniform = Counter({i: 10 for i in range(1000)})
        profile = skew_profile(uniform, bins=100)
        assert profile.share_of_top(0.10) == pytest.approx(0.10, abs=0.02)

    def test_skewed_top_share_dominates_uniform(self):
        skewed = skew_profile(zipf_counter(alpha=1.5), bins=100)
        uniform = skew_profile(Counter({i: 10 for i in range(1000)}), bins=100)
        assert skewed.share_of_top(0.01) > 3 * uniform.share_of_top(0.01)

    def test_count_at_percentile_monotone(self):
        profile = skew_profile(zipf_counter(), bins=100)
        assert profile.count_at_percentile(1.0) >= profile.count_at_percentile(50.0)

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            skew_profile(Counter({1: 1}), bins=0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            skew_profile(Counter({1: 1})).share_of_top(0.0)


class TestQuantiles:
    def test_known_distribution(self):
        counter = Counter({0: 100})
        counter.update({i: 1 for i in range(1, 100)})
        q = access_count_quantiles(counter)
        assert q["blocks"] == 100
        assert q["fraction_le_4"] == pytest.approx(0.99)
        assert q["fraction_single"] == pytest.approx(0.99)
        assert q["top1_share"] == pytest.approx(100 / 199)

    def test_empty(self):
        q = access_count_quantiles(Counter())
        assert q["blocks"] == 0 and q["top1_share"] == 0.0


class TestDailyProfiles:
    def test_profiles_per_day(self, tiny_context):
        profiles = daily_skew_profiles(tiny_context.daily_counts, bins=200)
        assert len(profiles) == tiny_context.days

    def test_generated_trace_o1_shape(self, tiny_context):
        """Figure 2(a)'s qualitative shape on the synthetic ensemble."""
        for day, profile in enumerate(
            daily_skew_profiles(tiny_context.daily_counts, bins=200)
        ):
            if day == 0:
                continue
            # The knee: the hottest bin towers over the low-reuse bulk
            # (at tiny scale the per-volume hot-set minimum widens the
            # hot band past 1% on light days, so the contrast is taken
            # against the 4th percentile), and beyond the top ~4% counts
            # are <= ~5.
            assert profile.mean_counts[0] > 5 * profile.count_at_percentile(4.0)
            assert profile.count_at_percentile(5.0) <= 5.0
