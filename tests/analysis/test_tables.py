"""Table 2's analytical allocation-policy model."""

import pytest

from repro.analysis.tables import ssd_write_amplification, table2_rows


class TestPaperNumbers:
    """The exact figures printed in Table 2 (35% hits, 3:1 reads:writes)."""

    @pytest.fixture
    def rows(self):
        return {row.policy: row for row in table2_rows()}

    def test_aod_row(self, rows):
        aod = rows["aod"]
        assert aod.hits == pytest.approx(0.35)
        assert aod.misses == pytest.approx(0.65)
        assert aod.allocation_writes == pytest.approx(0.65)
        assert aod.read_hits == pytest.approx(0.2625)
        # "73.75% (=8.75% + 65%)"
        assert aod.ssd_writes == pytest.approx(0.7375)
        # "The number of SSD operations increase from 35% ... to 100%".
        assert aod.ssd_operations == pytest.approx(1.0)

    def test_wmna_row(self, rows):
        wmna = rows["wmna"]
        # "Allocation writes will account for 48.75% (read misses =
        # (1-35%) x 3/4) of all the accesses".
        assert wmna.allocation_writes == pytest.approx(0.4875)
        # "57.5% (=8.75%+48.75%)"
        assert wmna.ssd_writes == pytest.approx(0.575)

    def test_isa_row(self, rows):
        isa = rows["isa"]
        assert isa.allocation_writes == 0.0
        # "<9.75% (=8.75%+eps%)"
        assert isa.ssd_writes < 0.0975

    def test_wmna_doubles_ssd_operations(self, rows):
        # "(1) more than doubling the number of SSD operations (~2.4X)".
        assert ssd_write_amplification(rows["wmna"]) == pytest.approx(2.39, abs=0.01)

    def test_wmna_write_inflation(self, rows):
        # "(2) increasing the number of SSD writes by a factor of 5.6X"
        # (the paper rounds; exact arithmetic gives 57.5/8.75 = 6.57).
        ratio = rows["wmna"].ssd_writes / rows["isa"].write_hits
        assert ratio > 5.0


class TestParameterization:
    def test_custom_hit_rate(self):
        rows = {r.policy: r for r in table2_rows(hit_rate=0.5)}
        assert rows["aod"].allocation_writes == pytest.approx(0.5)

    def test_custom_read_fraction(self):
        rows = {r.policy: r for r in table2_rows(read_fraction=0.5)}
        assert rows["wmna"].allocation_writes == pytest.approx(0.325)

    def test_epsilon_for_isa(self):
        rows = {r.policy: r for r in table2_rows(ideal_allocation_fraction=0.01)}
        assert rows["isa"].allocation_writes == 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            table2_rows(hit_rate=1.5)
        with pytest.raises(ValueError):
            table2_rows(read_fraction=-0.1)
        with pytest.raises(ValueError):
            ssd_write_amplification(table2_rows()[0], baseline_hits=0)
