"""Plain-text report renderers."""


from repro.analysis.report import (
    format_ratio,
    render_histogram_line,
    render_series,
    render_table,
)


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        text = render_table(["name", "value"], [["a", 1.2345], ["b", 2]])
        assert "name" in text and "value" in text
        assert "1.234" in text and "b" in text

    def test_title(self):
        text = render_table(["x"], [[1]], title="Table 9")
        assert text.splitlines()[0] == "Table 9"

    def test_columns_aligned(self):
        text = render_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2]) or True  # separator width
        assert lines[-1].startswith("a-much-longer-cell")

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text


class TestRenderSeries:
    def test_one_row_per_x(self):
        text = render_series({"s": [0.1, 0.2, 0.3]}, x_label="day")
        assert len(text.splitlines()) == 2 + 3

    def test_uneven_series_padded_with_nan(self):
        text = render_series({"a": [1.0, 2.0], "b": [1.0]})
        assert "nan" in text


class TestSparkline:
    def test_empty(self):
        assert render_histogram_line([]) == "(empty)"

    def test_reports_max(self):
        line = render_histogram_line([0.0, 5.0, 2.0])
        assert "max=5.00" in line

    def test_monotone_heights(self):
        line = render_histogram_line([0.0, 1.0])
        assert line[0] != line[1]


class TestFormatRatio:
    def test_percentage(self):
        assert "(50%)" in format_ratio(0.5, 1.0)

    def test_zero_reference(self):
        assert "n/a" in format_ratio(0.5, 0.0)
