"""Shared fixtures: one session-scoped tiny ensemble trace.

Generating the synthetic trace is the expensive part of most
integration-ish tests, so a single seeded tiny trace (and its derived
context) is shared across the whole session.  Tests must treat these as
read-only.
"""

from __future__ import annotations

import pytest

from repro.sim import context_for_trace
from repro.traces import EnsembleTraceGenerator, tiny_config

#: Number of days in the shared trace (the paper's 8 calendar days).
DAYS = 8


@pytest.fixture(scope="session")
def tiny_trace_config():
    return tiny_config()


@pytest.fixture(scope="session")
def tiny_generator(tiny_trace_config):
    return EnsembleTraceGenerator(tiny_trace_config)


@pytest.fixture(scope="session")
def tiny_trace(tiny_generator):
    """The shared 8-day synthetic ensemble trace (read-only)."""
    return tiny_generator.generate()


@pytest.fixture(scope="session")
def tiny_context(tiny_trace, tiny_trace_config):
    """Experiment context (daily counts precomputed) for the shared trace."""
    return context_for_trace(
        tiny_trace, days=tiny_trace_config.days, scale=tiny_trace_config.scale
    )
