"""Command-line interface."""

import pytest

from repro.cli import main


TINY = ["--scale", "4e-6", "--days", "3"]


class TestTable2Command:
    def test_prints_paper_numbers(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "aod" in out and "wmna" in out and "isa" in out
        assert "0.738" in out  # 73.75% SSD writes for AOD (3 d.p.)
        assert "0.575" in out

    def test_custom_parameters(self, capsys):
        assert main(["table2", "--hit-rate", "0.5", "--read-fraction", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "hit rate 50%" in out


class TestSimulateCommand:
    def test_runs_sievestore_c(self, capsys):
        assert main(["simulate", "--policy", "sievestore-c", *TINY]) == 0
        out = capsys.readouterr().out
        assert "sievestore-c" in out
        assert "allocation-writes" in out
        assert "all" in out

    def test_runs_unsieved(self, capsys):
        assert main(["simulate", "--policy", "aod-16", *TINY]) == 0
        assert "aod-16" in capsys.readouterr().out

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--policy", "belady"])

    def test_deterministic_across_runs(self, capsys):
        main(["simulate", *TINY, "--seed", "5"])
        first = capsys.readouterr().out
        main(["simulate", *TINY, "--seed", "5"])
        second = capsys.readouterr().out
        assert first == second

    def test_seed_changes_output(self, capsys):
        main(["simulate", *TINY, "--seed", "5"])
        first = capsys.readouterr().out
        main(["simulate", *TINY, "--seed", "6"])
        second = capsys.readouterr().out
        assert first != second


class TestSkewCommand:
    def test_prints_o1_statistics(self, capsys):
        assert main(["skew", *TINY]) == 0
        out = capsys.readouterr().out
        assert "top-1% share" in out
        assert "single-access" in out


class TestDrivesCommand:
    def test_prints_coverage(self, capsys):
        assert main(["drives", *TINY, "--window-minutes", "60"]) == 0
        out = capsys.readouterr().out
        assert "drives @99.9% coverage" in out
        assert "Intel X25-E" in out


class TestSummarizeCommand:
    def test_prints_inventory(self, capsys):
        assert main(["summarize", *TINY]) == 0
        out = capsys.readouterr().out
        assert "read fraction" in out
        assert "request sizes" in out


class TestValidateCommand:
    def test_synthetic_trace_validates(self, capsys):
        assert main(["validate", *TINY]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out

    def test_reports_band_columns(self, capsys):
        main(["validate", *TINY])
        out = capsys.readouterr().out
        assert "accepted band" in out
        assert "O1" in out and "O2" in out


class TestJsonOutput:
    def test_simulate_writes_json(self, tmp_path, capsys):
        from repro.sim.serialize import load_result

        target = tmp_path / "run.json"
        assert main([
            "simulate", *TINY, "--policy", "wmna-16", "--json", str(target)
        ]) == 0
        restored = load_result(target)
        assert restored.policy_name == "wmna-16"
        assert restored.stats.total.accesses > 0


class TestMsrReplay:
    def test_simulate_from_csv(self, tmp_path, capsys):
        from repro.traces import (
            EnsembleTraceGenerator,
            write_msr_csv,
        )
        from repro.traces.synthetic import SyntheticTraceConfig

        trace = EnsembleTraceGenerator(
            SyntheticTraceConfig(scale=4e-6, days=2)
        ).generate()
        csv = tmp_path / "t.csv"
        write_msr_csv(trace, csv)
        assert main([
            "simulate", "--msr-csv", str(csv), "--days", "2",
            "--policy", "aod-16",
        ]) == 0
        assert "aod-16" in capsys.readouterr().out
