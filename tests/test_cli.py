"""Command-line interface."""

import pytest

from repro.cli import main


TINY = ["--scale", "4e-6", "--days", "3"]


@pytest.fixture(autouse=True)
def isolated_trace_cache(tmp_path_factory, monkeypatch):
    """Keep the CLI's trace cache out of the working tree during tests."""
    cache = tmp_path_factory.getbasetemp() / "cli-trace-cache"
    monkeypatch.setenv("SIEVESTORE_TRACE_CACHE", str(cache))


def stable_lines(out: str) -> str:
    """Drop wall-clock timing lines, which legitimately vary run to run."""
    return "\n".join(
        line for line in out.splitlines() if not line.startswith("simulated in")
    )


class TestTable2Command:
    def test_prints_paper_numbers(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "aod" in out and "wmna" in out and "isa" in out
        assert "0.738" in out  # 73.75% SSD writes for AOD (3 d.p.)
        assert "0.575" in out

    def test_custom_parameters(self, capsys):
        assert main(["table2", "--hit-rate", "0.5", "--read-fraction", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "hit rate 50%" in out


class TestSimulateCommand:
    def test_runs_sievestore_c(self, capsys):
        assert main(["simulate", "--policy", "sievestore-c", *TINY]) == 0
        out = capsys.readouterr().out
        assert "sievestore-c" in out
        assert "allocation-writes" in out
        assert "all" in out

    def test_runs_unsieved(self, capsys):
        assert main(["simulate", "--policy", "aod-16", *TINY]) == 0
        assert "aod-16" in capsys.readouterr().out

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--policy", "belady"])

    def test_deterministic_across_runs(self, capsys):
        main(["simulate", *TINY, "--seed", "5"])
        first = capsys.readouterr().out
        main(["simulate", *TINY, "--seed", "5"])
        second = capsys.readouterr().out
        assert stable_lines(first) == stable_lines(second)

    def test_seed_changes_output(self, capsys):
        main(["simulate", *TINY, "--seed", "5"])
        first = capsys.readouterr().out
        main(["simulate", *TINY, "--seed", "6"])
        second = capsys.readouterr().out
        assert stable_lines(first) != stable_lines(second)

    def test_multiple_policies_one_trace(self, capsys):
        assert main([
            "simulate", *TINY, "--policy", "aod-16",
            "--policy", "sievestore-d",
        ]) == 0
        out = capsys.readouterr().out
        assert "aod-16 over" in out
        assert "sievestore-d over" in out

    def test_fast_path_matches_reference(self, capsys):
        main(["simulate", *TINY, "--policy", "aod-16"])
        slow = capsys.readouterr().out
        main(["simulate", *TINY, "--policy", "aod-16", "--fast"])
        fast = capsys.readouterr().out
        assert stable_lines(fast) == stable_lines(slow)

    def test_jobs_match_serial(self, capsys):
        args = ["simulate", *TINY, "--policy", "aod-16", "--policy", "ideal"]
        main(args)
        serial = capsys.readouterr().out
        main([*args, "--jobs", "2", "--fast"])
        parallel = capsys.readouterr().out
        # Parallel runs append a per-policy outcome table after the
        # reports; the reports themselves must match the serial run.
        reports, _, table = parallel.partition("Suite outcomes")
        assert stable_lines(reports).rstrip() == stable_lines(serial).rstrip()
        assert "executor" in table
        assert table.count(" ok ") == 2

    def test_no_trace_cache_flag(self, capsys):
        assert main([
            "simulate", *TINY, "--policy", "aod-16", "--no-trace-cache"
        ]) == 0
        assert "aod-16" in capsys.readouterr().out


class TestInputValidation:
    """Bad arguments exit 2 with a one-line error, never a traceback."""

    @pytest.mark.parametrize("value", ["0", "-3", "nan-ish"])
    def test_rejects_bad_task_timeout(self, value, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["simulate", "--task-timeout", value])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--task-timeout" in err

    @pytest.mark.parametrize("value", ["0", "-1"])
    def test_rejects_nonpositive_epoch_seconds(self, value, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["simulate", "--epoch-seconds", value])
        assert exc.value.code == 2
        assert "--epoch-seconds" in capsys.readouterr().err

    def test_rejects_nonpositive_checkpoint_cadence(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["simulate", "--checkpoint-every", "0"])
        assert exc.value.code == 2
        assert "--checkpoint-every" in capsys.readouterr().err

    def test_rejects_missing_resume_path(self, tmp_path, capsys):
        missing = tmp_path / "absent.ckpt"
        assert main(["simulate", "--resume", str(missing)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1 and str(missing) in err

    def test_rejects_missing_fault_plan(self, tmp_path, capsys):
        assert main([
            "simulate", *TINY, "--fault-plan", str(tmp_path / "absent.json")
        ]) == 2
        assert "fault plan" in capsys.readouterr().err

    def test_checkpoint_requires_single_policy(self, tmp_path, capsys):
        assert main([
            "simulate", *TINY, "--checkpoint", str(tmp_path / "c.ckpt"),
            "--policy", "aod-16", "--policy", "ideal",
        ]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_checkpoint_every_requires_checkpoint(self, capsys):
        assert main([
            "simulate", *TINY, "--checkpoint-every", "500",
        ]) == 2
        err = capsys.readouterr().err
        assert "--checkpoint-every requires --checkpoint" in err

    @pytest.mark.parametrize("flag", ["--metrics-out", "--events-out"])
    def test_artifact_path_into_missing_directory(self, flag, tmp_path,
                                                  capsys):
        bad = tmp_path / "no-such-dir" / "out.prom"
        assert main(["simulate", *TINY, flag, str(bad)]) == 2
        err = capsys.readouterr().err
        assert flag in err and "does not exist" in err

    def test_artifact_path_that_is_a_directory(self, tmp_path, capsys):
        assert main([
            "simulate", *TINY, "--metrics-out", str(tmp_path),
        ]) == 2
        err = capsys.readouterr().err
        assert "--metrics-out" in err and "directory, not a file" in err

    def test_artifact_path_into_unwritable_directory(self, tmp_path, capsys):
        import os

        if os.geteuid() == 0:
            pytest.skip("root ignores directory write permissions")
        locked = tmp_path / "locked"
        locked.mkdir(mode=0o555)
        assert main([
            "simulate", *TINY, "--metrics-out", str(locked / "m.prom"),
        ]) == 2
        assert "not writable" in capsys.readouterr().err


class TestFaultAndCheckpointFlows:
    def test_fault_plan_reports_device_health(self, tmp_path, capsys):
        from repro.faults import FaultPlan, OutageWindow

        plan_path = tmp_path / "plan.json"
        FaultPlan(outages=(OutageWindow(86400.0, 2 * 86400.0),)).save_json(
            plan_path
        )
        assert main([
            "simulate", *TINY, "--policy", "aod-16",
            "--fault-plan", str(plan_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "device health:" in out
        assert "bypass 86,400s" in out

    def test_checkpoint_then_resume_matches_uninterrupted(self, tmp_path,
                                                          capsys):
        base_args = ["simulate", *TINY, "--policy", "sievestore-d"]
        assert main(base_args) == 0
        baseline = capsys.readouterr().out
        ckpt = tmp_path / "run.ckpt"
        assert main([
            *base_args, "--checkpoint", str(ckpt), "--checkpoint-every", "500",
        ]) == 0
        capsys.readouterr()
        assert ckpt.exists()
        # Resume from the (mid-trace) last periodic checkpoint: the
        # full-run report must match the uninterrupted one exactly.
        assert main(["simulate", "--resume", str(ckpt)]) == 0
        resumed = capsys.readouterr().out
        assert stable_lines(resumed) == stable_lines(baseline)


class TestObservabilityOutputs:
    def test_metrics_out_writes_parseable_prometheus(self, tmp_path, capsys):
        from repro.obs import runtime
        from repro.obs.export import parse_prometheus

        out = tmp_path / "metrics.prom"
        assert main([
            "simulate", *TINY, "--policy", "sievestore-c",
            "--metrics-out", str(out),
        ]) == 0
        assert "metrics written to" in capsys.readouterr().out
        parsed = parse_prometheus(out.read_text())
        assert parsed["sim_blocks_total"]["type"] == "counter"
        assert any(
            name == "sieve_admissions_total"
            for name in parsed
        )
        # The CLI turns the switch off again after the run.
        assert not runtime.enabled()

    def test_metrics_out_json_flavour(self, tmp_path, capsys):
        import json

        out = tmp_path / "metrics.json"
        assert main([
            "simulate", *TINY, "--metrics-out", str(out),
        ]) == 0
        capsys.readouterr()
        data = json.loads(out.read_text())
        assert data["sim_requests_total"]["kind"] == "counter"

    def test_events_out_brackets_each_run(self, tmp_path, capsys):
        from repro.obs.events import read_events

        out = tmp_path / "events.jsonl"
        assert main([
            "simulate", *TINY, "--policy", "aod-16", "--policy", "ideal",
            "--events-out", str(out),
        ]) == 0
        capsys.readouterr()
        names = [e["event"] for e in read_events(out)]
        assert names.count("run_start") == 2
        assert names.count("run_end") == 2

    def test_progress_heartbeat_goes_to_stderr(self, capsys):
        assert main([
            "simulate", *TINY, "--policy", "aod-16", "--progress", "0.0001",
        ]) == 0
        captured = capsys.readouterr()
        assert "[progress]" in captured.err
        assert "blocks/sec" in captured.err
        assert "aod-16: ok" in captured.err
        # The report itself stays on stdout, unpolluted.
        assert "[progress]" not in captured.out

    def test_progress_without_metrics_leaves_observability_off(self, capsys):
        from repro.obs import runtime

        assert main([
            "simulate", *TINY, "--policy", "aod-16", "--progress", "60",
        ]) == 0
        capsys.readouterr()
        assert not runtime.enabled()

    def test_output_identical_with_and_without_metrics(self, tmp_path,
                                                       capsys):
        base = ["simulate", *TINY, "--policy", "sievestore-c", "--seed", "5"]
        assert main(base) == 0
        baseline = capsys.readouterr().out
        out = tmp_path / "metrics.prom"
        assert main([*base, "--metrics-out", str(out)]) == 0
        observed = capsys.readouterr().out
        observed = observed.replace(f"metrics written to {out}\n", "")
        assert stable_lines(observed) == stable_lines(baseline)

    def test_trace_cache_env_pointing_at_file_warns_not_fails(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.traces.store import _reset_non_directory_warnings

        stray = tmp_path / "stray-file"
        stray.write_text("oops")
        monkeypatch.setenv("SIEVESTORE_TRACE_CACHE", str(stray))
        _reset_non_directory_warnings()
        with pytest.warns(RuntimeWarning, match="non-directory"):
            assert main(["simulate", *TINY, "--policy", "aod-16"]) == 0
        assert "aod-16" in capsys.readouterr().out


class TestSkewCommand:
    def test_prints_o1_statistics(self, capsys):
        assert main(["skew", *TINY]) == 0
        out = capsys.readouterr().out
        assert "top-1% share" in out
        assert "single-access" in out


class TestDrivesCommand:
    def test_prints_coverage(self, capsys):
        assert main(["drives", *TINY, "--window-minutes", "60"]) == 0
        out = capsys.readouterr().out
        assert "drives @99.9% coverage" in out
        assert "Intel X25-E" in out


SERVE_TINY = [
    "serve-bench", "--scale", "4e-6", "--days", "2",
    "--clients", "2", "--serial", "--miss-latency", "0",
    "--t1", "2", "--t2", "1",
]


class TestServeBenchCommand:
    def test_reports_percentiles_and_savings(self, capsys):
        assert main(SERVE_TINY) == 0
        out = capsys.readouterr().out
        assert "p99" in out and "median" in out and "max" in out
        assert "allocation writes: sieved=" in out
        assert "baseline=" in out

    def test_json_report_has_percentiles(self, tmp_path, capsys):
        import json

        path = tmp_path / "serve.json"
        assert main([*SERVE_TINY, "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["allocation_writes_saved"] > 0
        read = payload["sieved"]["latency"]["read"]
        assert set(read) >= {"median", "p90", "p99", "max", "count"}
        assert (
            payload["sieved"]["allocation_writes"]
            < payload["baseline"]["allocation_writes"]
        )

    def test_manifest_lists_clients(self, tmp_path, capsys):
        import json

        path = tmp_path / "manifest.json"
        assert main([*SERVE_TINY, "--manifest", str(path)]) == 0
        manifest = json.loads(path.read_text())
        assert manifest["kind"] == "serve-bench-comparison"
        assert [c["client"] for c in manifest["sieved"]["clients"]] == [0, 1]

    def test_no_baseline_skips_the_comparison(self, capsys):
        assert main([*SERVE_TINY, "--no-baseline"]) == 0
        out = capsys.readouterr().out
        assert "baseline=" not in out
        assert "allocation writes:" in out

    def test_unsieved_gate_requires_no_baseline(self, capsys):
        assert main([*SERVE_TINY, "--gate", "unsieved"]) == 2
        assert "--no-baseline" in capsys.readouterr().err
        assert main([*SERVE_TINY, "--gate", "unsieved", "--no-baseline"]) == 0

    def test_bad_artifact_directory_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "absent" / "out.json"
        assert main([*SERVE_TINY, "--json", str(missing)]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_negative_miss_latency_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve-bench", "--miss-latency", "-1"])

    def test_fault_plan_transition_survives(self, tmp_path, capsys):
        import json

        from repro.faults.plan import ErrorWindow, FaultPlan, OutageWindow

        # The tiny synthetic trace's activity spans roughly
        # [61000, 173000); the windows must overlap it to fire.
        plan_path = tmp_path / "plan.json"
        FaultPlan(
            errors=(ErrorWindow(65_000.0, 80_000.0, "read", probability=1.0),),
            outages=(OutageWindow(80_000.0, 120_000.0),),
        ).save_json(plan_path)
        out_path = tmp_path / "serve.json"
        assert main(
            [*SERVE_TINY, "--fault-plan", str(plan_path),
             "--json", str(out_path)]
        ) == 0
        payload = json.loads(out_path.read_text())
        transitions = payload["sieved"]["stats"]["health_transitions"]
        assert transitions.get("degraded->bypass") == 2  # one per client
        assert payload["sieved"]["stats"]["bypassed"] > 0
        assert payload["sieved"]["latency"]["read"]["p99"] is not None

    def test_unreadable_fault_plan_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "absent-plan.json"
        assert main([*SERVE_TINY, "--fault-plan", str(missing)]) == 2
        assert "cannot load fault plan" in capsys.readouterr().err

    def test_metrics_out_exports_serve_counters(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        assert main([*SERVE_TINY, "--metrics-out", str(path)]) == 0
        metrics = json.loads(path.read_text())
        assert "serve_ops_total" in metrics
        assert "serve_allocation_writes_total" in metrics

    def test_store_dir_is_kept(self, tmp_path, capsys):
        store_dir = tmp_path / "serve-run"
        assert main([*SERVE_TINY, "--store-dir", str(store_dir)]) == 0
        assert (store_dir / "store-sieved" / "store.json").exists()
        assert (store_dir / "store-unsieved" / "store.json").exists()


class TestSummarizeCommand:
    def test_prints_inventory(self, capsys):
        assert main(["summarize", *TINY]) == 0
        out = capsys.readouterr().out
        assert "read fraction" in out
        assert "request sizes" in out


class TestValidateCommand:
    def test_synthetic_trace_validates(self, capsys):
        assert main(["validate", *TINY]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out

    def test_reports_band_columns(self, capsys):
        main(["validate", *TINY])
        out = capsys.readouterr().out
        assert "accepted band" in out
        assert "O1" in out and "O2" in out


class TestJsonOutput:
    def test_simulate_writes_json(self, tmp_path, capsys):
        from repro.sim.serialize import load_result

        target = tmp_path / "run.json"
        assert main([
            "simulate", *TINY, "--policy", "wmna-16", "--json", str(target)
        ]) == 0
        restored = load_result(target)
        assert restored.policy_name == "wmna-16"
        assert restored.stats.total.accesses > 0

    def test_multi_policy_json_gets_suffixes(self, tmp_path, capsys):
        from repro.sim.serialize import load_result

        target = tmp_path / "run.json"
        assert main([
            "simulate", *TINY, "--policy", "aod-16",
            "--policy", "wmna-16", "--json", str(target),
        ]) == 0
        for name in ("aod-16", "wmna-16"):
            restored = load_result(tmp_path / f"run-{name}.json")
            assert restored.policy_name == name


class TestMsrReplay:
    def test_simulate_from_csv(self, tmp_path, capsys):
        from repro.traces import (
            EnsembleTraceGenerator,
            write_msr_csv,
        )
        from repro.traces.synthetic import SyntheticTraceConfig

        trace = EnsembleTraceGenerator(
            SyntheticTraceConfig(scale=4e-6, days=2)
        ).generate()
        csv = tmp_path / "t.csv"
        write_msr_csv(trace, csv)
        assert main([
            "simulate", "--msr-csv", str(csv), "--days", "2",
            "--policy", "aod-16",
        ]) == 0
        assert "aod-16" in capsys.readouterr().out
