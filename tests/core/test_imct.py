"""IMCT: the imprecise (aliased) first sieve tier."""

import pytest

from repro.core.imct import ImpreciseMissCountTable
from repro.core.windows import WindowSpec


def make_imct(slots=64, window_seconds=80.0, subwindows=4):
    return ImpreciseMissCountTable(
        slots=slots, window=WindowSpec(window_seconds, subwindows)
    )


class TestBasics:
    def test_counts_misses(self):
        imct = make_imct()
        assert imct.record_miss(1, 0.0) == 1
        assert imct.record_miss(1, 1.0) == 2

    def test_count_is_read_only(self):
        imct = make_imct()
        imct.record_miss(5, 0.0)
        assert imct.count(5, 0.0) == 1
        assert imct.count(5, 0.0) == 1

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            make_imct(slots=0)

    def test_records_tracked(self):
        imct = make_imct()
        for i in range(10):
            imct.record_miss(i, 0.0)
        assert imct.recorded_misses == 10


class TestAliasing:
    """Many-to-one mapping is the IMCT's defining (mis)feature."""

    def find_aliases(self, imct, count=2):
        by_slot = {}
        address = 0
        while True:
            slot = imct.slot_of(address)
            by_slot.setdefault(slot, []).append(address)
            if len(by_slot[slot]) >= count:
                return by_slot[slot][:count]
            address += 1

    def test_aliased_addresses_share_counts(self):
        imct = make_imct(slots=4)
        a, b = self.find_aliases(imct)
        imct.record_miss(a, 0.0)
        # b inherits a's count: the piggy-backing the paper observed.
        assert imct.count(b, 0.0) == 1

    def test_distinct_slots_independent(self):
        imct = make_imct(slots=1024)
        address_a = 0
        address_b = next(
            x for x in range(1, 10000)
            if imct.slot_of(x) != imct.slot_of(address_a)
        )
        imct.record_miss(address_a, 0.0)
        assert imct.count(address_b, 0.0) == 0

    def test_slot_mapping_stable(self):
        imct = make_imct()
        assert imct.slot_of(12345) == imct.slot_of(12345)

    def test_aliased_counts_saturate_at_counter_ceiling(self):
        # Two aliases hammering one slot clamp at the 8-bit ceiling the
        # metastate budget assumes (counter_bytes=1) — they never wrap.
        from repro.core.windows import COUNTER_SATURATION

        imct = make_imct(slots=4)
        a, b = self.find_aliases(imct)
        for _ in range(COUNTER_SATURATION + 100):
            imct.record_miss(a, 0.0)
            imct.record_miss(b, 0.0)
        assert imct.count(a, 0.0) == COUNTER_SATURATION
        assert imct.count(b, 0.0) == COUNTER_SATURATION

    def test_saturation_cannot_change_a_sieving_decision(self):
        # Admission thresholds are single digits, so a clamped count is
        # still far above any threshold the paper tunes.
        from repro.core.windows import COUNTER_SATURATION

        imct = make_imct(slots=4)
        a, _ = self.find_aliases(imct)
        count = 0
        for _ in range(10**4):
            count = imct.record_miss(a, 0.0)
        assert count == COUNTER_SATURATION > 9


class TestWindowing:
    def test_counts_expire(self):
        imct = make_imct(window_seconds=40.0, subwindows=4)
        imct.record_miss(1, 0.0)
        # 40s window, 10s subwindows: by t=50 the count is gone.
        assert imct.count(1, 50.0) == 0

    def test_reset_slot(self):
        imct = make_imct()
        imct.record_miss(1, 0.0)
        imct.reset_slot(1)
        assert imct.count(1, 0.0) == 0


class TestMemoryEstimate:
    def test_scales_with_slots(self):
        small = make_imct(slots=100)
        large = make_imct(slots=1000)
        assert large.memory_bytes_estimate() == 10 * small.memory_bytes_estimate()
