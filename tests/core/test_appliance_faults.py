"""Device-fault handling in the appliance's health state machine."""

from repro.cache import AllocateOnDemand, BlockCache
from repro.cache.stats import CacheStats
from repro.cache.write_policy import WriteMode
from repro.core.appliance import SieveStoreAppliance
from repro.faults import (
    DeviceHealth,
    ErrorWindow,
    FaultInjector,
    FaultPlan,
    OutageWindow,
)
from repro.traces.model import IOKind, IORequest
from repro.util.units import BLOCK_BYTES


def make_appliance(plan, policy=None, capacity=64, days=1,
                   write_mode=WriteMode.WRITE_THROUGH):
    stats = CacheStats(days=days)
    cache = BlockCache(capacity)
    appliance = SieveStoreAppliance(
        cache, policy or AllocateOnDemand(), stats,
        write_mode=write_mode,
        faults=FaultInjector(plan),
    )
    return appliance, stats, cache


def request(offset=0, blocks=4, kind=IOKind.READ, issue=0.0, span=0.4):
    return IORequest(
        issue_time=issue,
        completion_time=issue + span,
        server_id=0,
        volume_id=0,
        block_offset=offset,
        block_count=blocks,
        kind=kind,
    )


def warm(appliance, issue=0.0, blocks=4):
    """Install the request's blocks via a normal healthy-time access."""
    appliance.process_request(request(issue=issue, blocks=blocks))


class TestDegradedReads:
    def test_read_error_falls_back_to_ensemble(self):
        plan = FaultPlan(errors=(ErrorWindow(10.0, 20.0, "read"),))
        appliance, stats, cache = make_appliance(plan)
        warm(appliance)
        outcome = appliance.process_request(request(issue=15.0))
        # Every block errored: counted as misses, no SSD service.
        assert outcome.hit_blocks == 0 and outcome.miss_blocks == 4
        day = stats.per_day[0]
        assert day.read_errors == 4
        assert day.hits + day.misses == day.accesses
        # The frames stay resident and serve again after the window.
        assert len(cache) == 4
        after = appliance.process_request(request(issue=25.0))
        assert after.hit_blocks == 4
        stats.check_consistency()

    def test_healthy_requests_inside_run_unaffected(self):
        plan = FaultPlan(errors=(ErrorWindow(10.0, 20.0, "read"),))
        appliance, stats, _ = make_appliance(plan)
        warm(appliance)
        outcome = appliance.process_request(request(issue=5.0))
        assert outcome.hit_blocks == 4
        assert stats.per_day[0].read_errors == 0


class TestDegradedWrites:
    def test_write_error_invalidates_and_routes_to_ensemble(self):
        plan = FaultPlan(errors=(ErrorWindow(10.0, 20.0, "write"),))
        appliance, stats, cache = make_appliance(plan)
        warm(appliance)
        outcome = appliance.process_request(
            request(issue=15.0, kind=IOKind.WRITE)
        )
        assert outcome.hit_blocks == 0
        day = stats.per_day[0]
        assert day.write_errors == 4
        assert day.backing_writes >= 4
        assert len(cache) == 0  # frames invalidated
        stats.check_consistency()

    def test_failed_allocation_write_suppresses_insert(self):
        plan = FaultPlan(errors=(ErrorWindow(0.0, 20.0, "write"),))
        appliance, stats, cache = make_appliance(plan)
        outcome = appliance.process_request(request(issue=5.0))
        # The read misses want allocation, but every allocation write
        # errors, so nothing lands in the cache.
        assert outcome.allocated_blocks == 0
        assert len(cache) == 0
        assert stats.per_day[0].allocation_writes == 0
        assert stats.per_day[0].write_errors == 4
        # After the window the same blocks earn frames again.
        after = appliance.process_request(request(issue=25.0))
        assert after.allocated_blocks == 4
        stats.check_consistency()

    def test_write_error_cleans_dirty_frame_under_write_back(self):
        plan = FaultPlan(errors=(ErrorWindow(10.0, 20.0, "write"),))
        appliance, stats, cache = make_appliance(
            plan, write_mode=WriteMode.WRITE_BACK
        )
        appliance.process_request(request(kind=IOKind.WRITE))
        assert len(appliance.dirty) == 4
        appliance.process_request(request(issue=15.0, kind=IOKind.WRITE))
        # The invalidated frames must not linger as dirty ghosts.
        assert len(appliance.dirty) == 0
        assert len(cache) == 0
        stats.check_consistency()


class TestBypass:
    def test_outage_passes_everything_through(self):
        plan = FaultPlan(outages=(OutageWindow(10.0, 20.0),))
        appliance, stats, cache = make_appliance(plan)
        warm(appliance)
        outcome = appliance.process_request(request(issue=15.0))
        assert outcome.hit_blocks == 0 and outcome.miss_blocks == 4
        day = stats.per_day[0]
        assert day.bypass_accesses == 4
        assert len(cache) == 0  # contents dropped on bypass entry
        assert appliance.health is DeviceHealth.BYPASS
        stats.check_consistency()

    def test_bypass_write_goes_to_ensemble(self):
        plan = FaultPlan(outages=(OutageWindow(0.0, 20.0),))
        appliance, stats, _ = make_appliance(plan)
        appliance.process_request(request(kind=IOKind.WRITE, issue=5.0))
        day = stats.per_day[0]
        assert day.backing_writes == 4
        assert day.allocation_writes == 0

    def test_sieve_observes_through_bypass_for_reallocation(self):
        plan = FaultPlan(outages=(OutageWindow(10.0, 20.0),))
        appliance, stats, cache = make_appliance(plan)
        warm(appliance)
        appliance.process_request(request(issue=15.0))
        # Recovery: the device is back, AOD re-allocates on the miss.
        after = appliance.process_request(request(issue=25.0))
        assert appliance.health is DeviceHealth.HEALTHY
        assert after.allocated_blocks == 4
        assert len(cache) == 4
        stats.check_consistency()

    def test_bypass_entry_forces_dirty_flush_under_write_back(self):
        plan = FaultPlan(outages=(OutageWindow(10.0,),))
        appliance, stats, _ = make_appliance(
            plan, write_mode=WriteMode.WRITE_BACK
        )
        appliance.process_request(request(kind=IOKind.WRITE))
        assert len(appliance.dirty) == 4
        appliance.process_request(request(issue=15.0))
        assert len(appliance.dirty) == 0
        assert stats.per_day[0].writebacks == 4
        stats.check_consistency()

    def test_epoch_batch_moves_suppressed_in_bypass(self):
        from repro.cache import StaticSet

        plan = FaultPlan(outages=(OutageWindow(0.0,),))
        policy = StaticSet(range(16))
        appliance, stats, cache = make_appliance(plan, policy=policy)
        moved = appliance.begin_day(0)
        assert moved == 0 and len(cache) == 0
        assert stats.per_day[0].allocation_writes == 0


class TestWearOut:
    def test_allocation_writes_wear_the_device_out(self):
        plan = FaultPlan(wearout_bytes=4 * BLOCK_BYTES)
        appliance, stats, cache = make_appliance(plan)
        appliance.process_request(request())  # 4 allocation writes
        assert appliance.faults.worn_out
        appliance.process_request(request(offset=100, issue=5.0))
        assert appliance.health is DeviceHealth.BYPASS
        assert len(cache) == 0
        stats.check_consistency()


class TestNoFaultEquivalence:
    def test_faulty_path_matches_reference_when_windows_never_fire(self):
        plan = FaultPlan(errors=(ErrorWindow(1e8, 2e8, "read"),))
        faulty, faulty_stats, _ = make_appliance(plan)
        reference = SieveStoreAppliance(
            BlockCache(64), AllocateOnDemand(), CacheStats(days=1)
        )
        for req in [
            request(),
            request(issue=1.0, kind=IOKind.WRITE),
            request(offset=8, issue=2.0),
            request(issue=3.0),
        ]:
            faulty.process_request(req)
            reference.process_request(req)
        assert faulty_stats.per_day[0] == reference.stats.per_day[0]
