"""The shared admission-gate factory (repro.core.admission)."""

import pytest

from repro.cache.allocation import (
    AllocateOnDemand,
    NeverAllocate,
    WriteMissNoAllocate,
)
from repro.core.admission import (
    GATE_KINDS,
    build_admission_gate,
    gate_allocation_writes,
)
from repro.core.sievestore_c import SieveStoreC
from repro.core.windows import WindowSpec


class TestBuildAdmissionGate:
    def test_default_is_the_paper_sieve(self):
        gate = build_admission_gate()
        assert isinstance(gate, SieveStoreC)
        assert gate.config.t1 == 9
        assert gate.config.t2 == 4

    def test_sieve_parameters_forwarded(self):
        window = WindowSpec(window_seconds=3600, subwindows=2)
        gate = build_admission_gate(
            "sieve", imct_slots=128, t1=3, t2=1, window=window
        )
        assert isinstance(gate, SieveStoreC)
        assert gate.config.imct_slots == 128
        assert gate.config.t1 == 3
        assert gate.config.t2 == 1
        assert gate.config.window == window

    def test_single_tier_ablation(self):
        gate = build_admission_gate("sieve", single_tier_admission=True)
        assert gate.config.single_tier_admission

    def test_unsieved_is_aod(self):
        assert isinstance(build_admission_gate("unsieved"), AllocateOnDemand)

    def test_read_only_is_wmna(self):
        assert isinstance(build_admission_gate("read-only"), WriteMissNoAllocate)

    def test_never(self):
        assert isinstance(build_admission_gate("never"), NeverAllocate)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown admission-gate kind"):
            build_admission_gate("lru")

    def test_all_kinds_constructible(self):
        for kind in GATE_KINDS:
            gate = build_admission_gate(kind, imct_slots=64)
            assert hasattr(gate, "wants")


class TestGateBehaviour:
    def test_sieve_rejects_cold_misses(self):
        gate = build_admission_gate("sieve", imct_slots=64, t1=2, t2=1)
        # First miss: below t1.  Second: promotion.  Third: t2 reached.
        assert gate.wants(7, False, 0.0) is False
        assert gate.wants(7, False, 1.0) is False
        assert gate.wants(7, False, 2.0) is True
        assert gate.admissions == 1

    def test_unsieved_admits_everything(self):
        gate = build_admission_gate("unsieved")
        assert gate.wants(1, False, 0.0) and gate.wants(2, True, 0.0)


class TestGateAllocationWrites:
    def test_sieve_reports_admissions(self):
        gate = build_admission_gate("sieve", imct_slots=64, t1=1, t2=0)
        gate.wants(3, False, 0.0)
        assert gate_allocation_writes(gate) == gate.admissions

    def test_stateless_baseline_reports_none(self):
        assert gate_allocation_writes(build_admission_gate("unsieved")) is None


class TestSimIntegration:
    def test_build_policy_uses_factory(self, tiny_context):
        from repro.sim.experiment import build_policy

        policy, capacity = build_policy("sievestore-c", tiny_context)
        assert isinstance(policy, SieveStoreC)
        assert capacity == tiny_context.sieved_capacity
        aod, _ = build_policy("aod-16", tiny_context)
        assert isinstance(aod, AllocateOnDemand)
