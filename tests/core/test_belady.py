"""Belady MIN, selective allocation, and the Section 3.1 counterexample."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.core.belady import (
    belady_min,
    belady_selective,
    counterexample_stream,
    fixed_allocation,
    min_compulsory_allocation_bound,
)


class TestBeladyMin:
    def test_simple_stream(self):
        # capacity 1: a b a -> miss, miss, miss (b evicts a).
        result = belady_min([1, 2, 1], capacity=1)
        assert result.hits == 0
        assert result.allocation_writes == 3

    def test_optimal_on_classic_example(self):
        stream = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]
        result = belady_min(stream, capacity=3)
        # Known MIN result for this classic sequence: 7 misses.
        assert result.misses == 7

    def test_every_miss_allocates(self):
        stream = [1, 2, 3, 1, 2, 3]
        result = belady_min(stream, capacity=2)
        assert result.allocation_writes == result.misses

    def test_all_hits_when_capacity_sufficient(self):
        result = belady_min([1, 2, 1, 2], capacity=2)
        assert result.hits == 2

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            belady_min([1], capacity=0)

    @settings(max_examples=40, deadline=None)
    @given(
        stream=st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=120),
        capacity=st.integers(min_value=1, max_value=4),
    )
    def test_min_beats_lru(self, stream, capacity):
        """MIN's hit count upper-bounds any demand-fill policy (LRU here)."""
        from collections import OrderedDict

        lru = OrderedDict()
        lru_hits = 0
        for address in stream:
            if address in lru:
                lru_hits += 1
                lru.move_to_end(address)
            else:
                lru[address] = None
                if len(lru) > capacity:
                    lru.popitem(last=False)
        assert belady_min(stream, capacity).hits >= lru_hits


class TestBeladySelective:
    def test_same_hits_as_min_on_counterexample(self):
        stream = counterexample_stream(50)
        selective = belady_selective(stream, capacity=1)
        demand = belady_min(stream, capacity=1)
        assert selective.hits >= demand.hits

    def test_skips_never_reused_blocks(self):
        # b never recurs: selective allocation must not insert it.
        result = belady_selective([1, 2, 1], capacity=1)
        assert result.allocation_writes == 1
        assert result.hits == 1

    @settings(max_examples=40, deadline=None)
    @given(
        stream=st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=120),
        capacity=st.integers(min_value=1, max_value=4),
    )
    def test_selective_dominates_demand_min(self, stream, capacity):
        """Bypassing is strictly more powerful than demand fill: the
        selective extension never hits less than MIN and never
        allocates more (e.g. on [a, b, a] with one frame, MIN must
        insert b and lose a, while selective bypasses b)."""
        selective = belady_selective(stream, capacity)
        demand = belady_min(stream, capacity)
        assert selective.hits >= demand.hits
        assert selective.allocation_writes <= demand.allocation_writes


class TestCounterexample:
    """The paper's a,a,b,b,a,a,c,c,... stream (Section 3.1)."""

    def test_stream_shape(self):
        assert counterexample_stream(2) == [0, 0, 1, 1, 0, 0, 2, 2]

    def test_selective_allocation_writes_half_of_accesses(self):
        stream = counterexample_stream(200)
        result = belady_selective(stream, capacity=1)
        # "each miss causes an allocation ... 50% of accesses causing
        # allocation-writes"; hit ratio converges to 50%.
        assert result.allocation_write_ratio == pytest.approx(0.5, abs=0.02)
        assert result.hit_ratio == pytest.approx(0.5, abs=0.02)

    def test_fixed_allocation_needs_exactly_one_write(self):
        stream = counterexample_stream(200)
        result = fixed_allocation(stream, blocks=[0])
        assert result.allocation_writes == 1
        # "nearly the same number of hits in the long-term (nearly 50%)".
        assert result.hit_ratio == pytest.approx(0.5, abs=0.02)

    def test_rejects_bad_cycles(self):
        with pytest.raises(ValueError):
            counterexample_stream(0)


class TestCompulsoryBound:
    def test_paper_arithmetic(self):
        # 50% + 47%/4 = 61.75% of blocks incur compulsory allocation-writes.
        assert min_compulsory_allocation_bound() == pytest.approx(0.6175)

    def test_custom_values(self):
        assert min_compulsory_allocation_bound(0.4, 0.4, 2) == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            min_compulsory_allocation_bound(fraction_single_use=1.5)
        with pytest.raises(ValueError):
            min_compulsory_allocation_bound(low_reuse_max_accesses=0)
