"""MCT: the precise second sieve tier with staleness pruning."""

import pytest

from repro.core.mct import MissCountTable
from repro.core.windows import WindowSpec


def make_mct(window_seconds=80.0, subwindows=4, prune_interval=1e9):
    return MissCountTable(
        window=WindowSpec(window_seconds, subwindows),
        prune_interval=prune_interval,
    )


class TestExactCounting:
    def test_counts_per_block(self):
        mct = make_mct()
        assert mct.record_miss(1, 0.0) == 1
        assert mct.record_miss(1, 1.0) == 2
        assert mct.record_miss(2, 1.0) == 1

    def test_no_aliasing_ever(self):
        mct = make_mct()
        for address in range(1000):
            assert mct.record_miss(address, 0.0) == 1

    def test_untracked_count_is_zero(self):
        assert make_mct().count(42, 0.0) == 0

    def test_contains(self):
        mct = make_mct()
        mct.record_miss(7, 0.0)
        assert 7 in mct
        assert 8 not in mct

    def test_forget(self):
        mct = make_mct()
        mct.record_miss(7, 0.0)
        mct.forget(7)
        assert 7 not in mct
        mct.forget(7)  # idempotent


class TestWindowing:
    def test_counts_expire_with_window(self):
        mct = make_mct(window_seconds=40.0, subwindows=4)
        mct.record_miss(1, 0.0)
        assert mct.count(1, 50.0) == 0

    def test_partial_expiry(self):
        mct = make_mct(window_seconds=40.0, subwindows=4)
        mct.record_miss(1, 0.0)   # subwindow 0
        mct.record_miss(1, 35.0)  # subwindow 3
        # At t=45 (subwindow 4), the first miss has expired.
        assert mct.count(1, 45.0) == 1


class TestSubwindowRollOver:
    """Behavior exactly at subwindow boundaries (10s subwindows here)."""

    def test_boundary_instant_lands_in_new_subwindow(self):
        mct = make_mct(window_seconds=40.0, subwindows=4)
        mct.record_miss(1, 9.999)
        mct.record_miss(1, 10.0)  # first instant of subwindow 1
        # The window ending at subwindow 4 keeps only the second miss.
        assert mct.count(1, 45.0) == 1
        # One subwindow earlier both are still live.
        assert mct.count(1, 39.0) == 2

    def test_roll_over_reuses_the_expired_slot(self):
        # k counters cover k subwindows: entering subwindow k zeroes the
        # slot that held subwindow 0, and new misses accumulate there.
        mct = make_mct(window_seconds=40.0, subwindows=4)
        mct.record_miss(1, 5.0)            # subwindow 0
        for t in (41.0, 42.0):             # subwindow 4 -> same slot
            mct.record_miss(1, t)
        assert mct.count(1, 45.0) == 2

    def test_counts_drain_one_subwindow_per_roll(self):
        mct = make_mct(window_seconds=40.0, subwindows=4)
        for subwindow in range(4):
            mct.record_miss(1, subwindow * 10.0 + 1.0)
        for age, expected in [(0, 4), (1, 3), (2, 2), (3, 1), (4, 0)]:
            assert mct.count(1, 31.0 + age * 10.0) == expected

    def test_full_staleness_after_k_idle_subwindows(self):
        mct = make_mct(window_seconds=40.0, subwindows=4)
        mct.record_miss(1, 0.0)
        mct.record_miss(1, 1.0)
        mct.record_miss(1, 2.0)
        # k (=4) whole subwindows later, everything is inferred stale.
        assert mct.count(1, 42.0) == 0
        assert mct.record_miss(1, 42.0) == 1


class TestPruning:
    def test_prune_removes_stale_entries(self):
        mct = make_mct(window_seconds=40.0)
        mct.record_miss(1, 0.0)
        mct.record_miss(2, 55.0)
        removed = mct.prune(60.0)
        assert removed == 1
        assert 1 not in mct and 2 in mct

    def test_opportunistic_prune_on_interval(self):
        mct = make_mct(window_seconds=40.0, prune_interval=100.0)
        mct.record_miss(1, 0.0)
        mct.record_miss(2, 150.0)  # crosses the prune interval
        assert 1 not in mct

    def test_peak_entries_tracked(self):
        mct = make_mct()
        for address in range(5):
            mct.record_miss(address, 0.0)
        mct.forget(0)
        assert mct.peak_entries == 5
        assert len(mct) == 4

    def test_rejects_bad_prune_interval(self):
        with pytest.raises(ValueError):
            make_mct(prune_interval=0)
