"""SieveStore-C: two-tier hysteresis-based lazy allocation."""

import pytest

from repro.core.sievestore_c import SieveStoreC, SieveStoreCConfig
from repro.core.windows import WindowSpec


def make_sieve(t1=3, t2=2, slots=1 << 14, window_seconds=800.0, single_tier=False):
    """Small thresholds so tests can walk the admission path explicitly."""
    return SieveStoreC(
        SieveStoreCConfig(
            imct_slots=slots,
            t1=t1,
            t2=t2,
            window=WindowSpec(window_seconds, 4),
            single_tier_admission=single_tier,
        )
    )


def misses_until_admission(sieve, address, start=0.0, step=1.0, limit=100):
    for i in range(limit):
        if sieve.wants(address, is_write=False, time=start + i * step):
            return i + 1
    return None


class TestAdmissionPath:
    def test_admits_on_t1_plus_t2_misses(self):
        # Tier 1 absorbs t1 misses; the block then needs t2 more exact
        # misses in the MCT.
        sieve = make_sieve(t1=3, t2=2)
        assert misses_until_admission(sieve, 42) == 5

    def test_paper_thresholds_give_thirteen(self):
        sieve = make_sieve(t1=9, t2=4, window_seconds=8 * 3600)
        assert misses_until_admission(sieve, 42) == 13

    def test_single_miss_not_admitted(self):
        sieve = make_sieve()
        assert not sieve.wants(1, is_write=False, time=0.0)

    def test_rejection_counters(self):
        sieve = make_sieve(t1=3, t2=2)
        misses_until_admission(sieve, 42)
        assert sieve.imct_rejections == 2   # misses 1-2 fail tier 1
        assert sieve.promotions == 1        # miss 3 promotes
        assert sieve.mct_rejections == 1    # miss 4 fails tier 2
        assert sieve.admissions == 1        # miss 5 admits

    def test_block_forgotten_after_admission(self):
        sieve = make_sieve(t1=3, t2=2)
        misses_until_admission(sieve, 42)
        assert 42 not in sieve.mct

    def test_low_reuse_blocks_never_admitted(self):
        sieve = make_sieve(t1=3, t2=2)
        for address in range(1000, 1100):
            assert not sieve.wants(address, is_write=False, time=0.0)
            assert not sieve.wants(address, is_write=False, time=1.0)
        assert sieve.admissions == 0

    def test_writes_and_reads_count_equally(self):
        # Section 1/5.1: SieveStore does not differentiate reads/writes.
        sieve = make_sieve(t1=2, t2=1)
        sieve.wants(7, is_write=True, time=0.0)
        sieve.wants(7, is_write=False, time=1.0)
        assert sieve.wants(7, is_write=True, time=2.0)


class TestWindowExpiry:
    def test_slow_misses_never_qualify(self):
        # A block missing slower than the window can sustain never passes:
        # this is the hysteresis that shuts out low-rate blocks.
        sieve = make_sieve(t1=3, t2=2, window_seconds=100.0)
        admitted = False
        for i in range(50):
            admitted = admitted or sieve.wants(
                5, is_write=False, time=i * 200.0
            )
        assert not admitted

    def test_burst_qualifies(self):
        sieve = make_sieve(t1=3, t2=2, window_seconds=100.0)
        assert misses_until_admission(sieve, 5, step=1.0) == 5


class TestSingleTierAblation:
    def test_admits_on_imct_alone(self):
        sieve = make_sieve(t1=3, t2=2, single_tier=True)
        assert misses_until_admission(sieve, 42) == 3

    def test_aliased_block_gets_undeserved_admission(self):
        # The pathology of Section 3.3: with one tier, a cold block
        # sharing a hot block's slot gets allocated on its first miss.
        sieve = make_sieve(t1=3, t2=2, slots=4, single_tier=True)
        imct = sieve.imct
        hot = 0
        cold = next(
            x for x in range(1, 10000) if imct.slot_of(x) == imct.slot_of(hot)
        )
        sieve.wants(hot, is_write=False, time=0.0)
        sieve.wants(hot, is_write=False, time=1.0)
        assert sieve.wants(cold, is_write=False, time=2.0)

    def test_two_tier_blocks_the_alias(self):
        sieve = make_sieve(t1=3, t2=2, slots=4, single_tier=False)
        imct = sieve.imct
        hot = 0
        cold = next(
            x for x in range(1, 10000) if imct.slot_of(x) == imct.slot_of(hot)
        )
        sieve.wants(hot, is_write=False, time=0.0)
        sieve.wants(hot, is_write=False, time=1.0)
        # The alias passes tier 1 on the hot block's credit but must
        # still earn t2 exact misses of its own.
        assert not sieve.wants(cold, is_write=False, time=2.0)


class TestConfig:
    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            SieveStoreCConfig(t1=0)
        with pytest.raises(ValueError):
            SieveStoreCConfig(t2=-1)
        with pytest.raises(ValueError):
            SieveStoreCConfig(imct_slots=0)

    def test_paper_defaults(self):
        config = SieveStoreCConfig()
        assert config.t1 == 9
        assert config.t2 == 4
        assert config.window.window_seconds == 8 * 3600
        assert config.window.subwindows == 4

    def test_metastate_report(self):
        sieve = make_sieve()
        misses_until_admission(sieve, 42)
        state = sieve.metastate_entries()
        assert state["imct_slots"] == 1 << 14
        assert state["mct_peak_entries"] >= 1
