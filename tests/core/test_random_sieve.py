"""Random sieving baselines (RandSieve-BlkD / RandSieve-C)."""

import pytest

from repro.core.random_sieve import RandSieveBlkD, RandSieveC


class TestRandSieveBlkD:
    def test_selects_one_percent_of_seen_blocks(self):
        policy = RandSieveBlkD(fraction=0.01, seed=1)
        for address in range(1000):
            policy.observe(address, is_write=False, time=0.0, hit=False)
        batch = set(policy.epoch_boundary(1))
        assert len(batch) == 10
        assert batch <= set(range(1000))

    def test_empty_epoch_empty_batch(self):
        policy = RandSieveBlkD(seed=1)
        assert set(policy.epoch_boundary(0)) == set()

    def test_seen_set_resets_each_epoch(self):
        policy = RandSieveBlkD(fraction=1.0, seed=1)
        policy.observe(1, is_write=False, time=0.0, hit=False)
        policy.epoch_boundary(1)
        policy.observe(2, is_write=False, time=0.0, hit=False)
        assert set(policy.epoch_boundary(2)) == {2}

    def test_capacity_cap(self):
        policy = RandSieveBlkD(fraction=1.0, capacity_blocks=3, seed=1)
        for address in range(10):
            policy.observe(address, is_write=False, time=0.0, hit=False)
        assert len(set(policy.epoch_boundary(1))) == 3

    def test_deterministic_with_seed(self):
        def batch(seed):
            policy = RandSieveBlkD(fraction=0.1, seed=seed)
            for address in range(100):
                policy.observe(address, is_write=False, time=0.0, hit=False)
            return set(policy.epoch_boundary(1))

        assert batch(5) == batch(5)
        assert batch(5) != batch(6)

    def test_never_allocates_continuously(self):
        assert not RandSieveBlkD().wants(1, is_write=False, time=0.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            RandSieveBlkD(fraction=0.0)


class TestRandSieveC:
    def test_allocation_rate_near_probability(self):
        policy = RandSieveC(probability=0.01, seed=3)
        allocated = sum(
            policy.wants(i, is_write=False, time=0.0) for i in range(20000)
        )
        assert 120 <= allocated <= 280  # ~200 expected

    def test_deterministic_with_seed(self):
        a = [RandSieveC(probability=0.5, seed=9).wants(i, False, 0.0) for i in range(50)]
        b = [RandSieveC(probability=0.5, seed=9).wants(i, False, 0.0) for i in range(50)]
        assert a == b

    def test_probability_one_always_allocates(self):
        policy = RandSieveC(probability=1.0, seed=0)
        assert all(policy.wants(i, False, 0.0) for i in range(10))

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            RandSieveC(probability=0.0)
        with pytest.raises(ValueError):
            RandSieveC(probability=1.5)
