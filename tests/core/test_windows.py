"""Subwindow counters: the paper's k-counter sliding-window scheme."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.windows import (
    COUNTER_SATURATION,
    SubwindowCounter,
    WindowSpec,
)


class TestWindowSpec:
    def test_paper_defaults(self):
        # W = 8 hours, k = 4 subwindows of 2 hours (Section 3.3).
        spec = WindowSpec()
        assert spec.window_seconds == 8 * 3600
        assert spec.subwindows == 4
        assert spec.subwindow_seconds == 2 * 3600

    def test_subwindow_index(self):
        spec = WindowSpec(window_seconds=40, subwindows=4)
        assert spec.subwindow_index(0.0) == 0
        assert spec.subwindow_index(9.99) == 0
        assert spec.subwindow_index(10.0) == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            WindowSpec(window_seconds=0)
        with pytest.raises(ValueError):
            WindowSpec(subwindows=0)
        with pytest.raises(ValueError):
            WindowSpec().subwindow_index(-1.0)


class TestSubwindowCounter:
    def test_accumulates_within_subwindow(self):
        counter = SubwindowCounter(4)
        assert counter.record(0) == 1
        assert counter.record(0) == 2

    def test_window_spans_k_subwindows(self):
        counter = SubwindowCounter(4)
        counter.record(0)
        counter.record(1)
        counter.record(2)
        counter.record(3)
        assert counter.total(3) == 4

    def test_oldest_subwindow_expires(self):
        counter = SubwindowCounter(4)
        counter.record(0, amount=5)
        counter.record(4)  # subwindow 0 is now out of the window
        assert counter.total(4) == 1

    def test_full_staleness_zeroes_everything(self):
        # "If ... the current time window is larger than the last-updated
        # counter by k or more, then all counters are inferred to be
        # stale and zeroed out."
        counter = SubwindowCounter(4)
        counter.record(0, amount=9)
        counter.record(1, amount=9)
        assert counter.record(10) == 1

    def test_total_is_read_only(self):
        counter = SubwindowCounter(4)
        counter.record(0, amount=3)
        assert counter.total(2) == 3
        assert counter.total(5) == 0  # would be stale...
        assert counter.total(2) == 3  # ...but state is unchanged

    def test_time_cannot_move_backwards(self):
        counter = SubwindowCounter(4)
        counter.record(5)
        with pytest.raises(ValueError):
            counter.record(4)
        with pytest.raises(ValueError):
            counter.total(4)

    def test_reset(self):
        counter = SubwindowCounter(4)
        counter.record(0, amount=7)
        counter.reset()
        assert counter.total(0) == 0
        assert counter.last_subwindow == -1

    def test_is_stale(self):
        counter = SubwindowCounter(4)
        assert counter.is_stale(0)
        counter.record(0)
        assert not counter.is_stale(3)
        assert counter.is_stale(4)


class TestSaturation:
    """Counts clamp at the 8-bit ceiling the metastate budget assumes."""

    def test_matches_metastate_budget_counter_width(self):
        from repro.core.metastate import MetastateBudget

        assert COUNTER_SATURATION == 2 ** (8 * MetastateBudget().counter_bytes) - 1

    def test_single_subwindow_clamps(self):
        counter = SubwindowCounter(4)
        for _ in range(COUNTER_SATURATION + 50):
            counter.record(0)
        assert counter.total(0) == COUNTER_SATURATION

    def test_bulk_record_clamps(self):
        counter = SubwindowCounter(4)
        assert counter.record(0, amount=10**6) == COUNTER_SATURATION

    def test_saturated_subwindows_sum_across_window(self):
        # Saturation is per subwindow; the window total may exceed it.
        counter = SubwindowCounter(4)
        counter.record(0, amount=10**6)
        counter.record(1, amount=10**6)
        assert counter.total(1) == 2 * COUNTER_SATURATION

    def test_saturated_count_expires_normally(self):
        counter = SubwindowCounter(4)
        counter.record(0, amount=10**6)
        assert counter.total(4) == 0


class ReferenceWindow:
    """Brute-force reference: keep every (subwindow, amount) event."""

    def __init__(self, k):
        self.k = k
        self.events = []

    def record(self, subwindow, amount=1):
        self.events.append((subwindow, amount))
        return self.total(subwindow)

    def total(self, subwindow):
        return sum(
            amount
            for sw, amount in self.events
            if subwindow - self.k < sw <= subwindow
        )


@settings(max_examples=80, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=6),
    deltas=st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=60),
)
def test_matches_bruteforce_reference(k, deltas):
    """The lazy k-counter scheme equals an exact event-log window."""
    counter = SubwindowCounter(k)
    reference = ReferenceWindow(k)
    subwindow = 0
    for delta in deltas:
        subwindow += delta
        assert counter.record(subwindow) == reference.record(subwindow)
        assert counter.total(subwindow) == reference.total(subwindow)
