"""Self-tuning sieves (Section 7 extensions)."""

from collections import Counter

import pytest

from repro.core.autotune import (
    AdaptiveSieveStoreC,
    AdmissionBudget,
    AutoThresholdSieveStoreD,
)
from repro.core.sievestore_c import SieveStoreCConfig
from repro.core.windows import WindowSpec


class TestAutoThresholdD:
    def test_fills_to_target(self):
        policy = AutoThresholdSieveStoreD(capacity_blocks=10, fill_target=0.5)
        counts = Counter({i: 100 - i for i in range(50)})
        selected = policy.select_allocation(counts)
        assert len(selected) == 5
        assert selected == {0, 1, 2, 3, 4}  # the hottest blocks

    def test_respects_floor(self):
        # A near-idle epoch must not drag junk in just to fill the cache.
        policy = AutoThresholdSieveStoreD(
            capacity_blocks=100, fill_target=1.0, floor_threshold=4
        )
        counts = Counter({1: 10, 2: 4, 3: 1})
        assert policy.select_allocation(counts) == {1}

    def test_records_chosen_threshold(self):
        policy = AutoThresholdSieveStoreD(capacity_blocks=2, fill_target=1.0)
        policy.select_allocation(Counter({1: 50, 2: 30, 3: 20}))
        assert policy.chosen_thresholds == [30]

    def test_threshold_adapts_to_intensity(self):
        """Busier epochs produce higher effective thresholds."""
        policy = AutoThresholdSieveStoreD(capacity_blocks=3, fill_target=1.0)
        light = Counter({i: 5 + i for i in range(5)})
        heavy = Counter({i: 50 + i for i in range(50)})
        policy.select_allocation(light)
        policy.select_allocation(heavy)
        assert policy.chosen_thresholds[1] > policy.chosen_thresholds[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            AutoThresholdSieveStoreD(capacity_blocks=8, fill_target=0.0)

    def test_epoch_boundary_integration(self):
        policy = AutoThresholdSieveStoreD(capacity_blocks=4, fill_target=1.0)
        for _ in range(20):
            policy.observe(1, is_write=False, time=0.0, hit=False)
        for _ in range(6):
            policy.observe(2, is_write=False, time=0.0, hit=False)
        assert policy.epoch_boundary(1) == {1, 2}


def adaptive(budget_per_day, t2=2, interval=100.0, bounds=(1, 8)):
    return AdaptiveSieveStoreC(
        SieveStoreCConfig(
            imct_slots=1 << 12, t1=1, t2=t2, window=WindowSpec(1e9, 4)
        ),
        budget=AdmissionBudget(per_day=budget_per_day),
        adjust_interval=interval,
        t2_bounds=bounds,
    )


class TestAdaptiveC:
    def test_budget_from_turnovers(self):
        budget = AdmissionBudget.cache_turnovers(1000, turnovers_per_day=2.0)
        assert budget.per_day == 2000

    def test_turnovers_validation(self):
        with pytest.raises(ValueError):
            AdmissionBudget.cache_turnovers(10, turnovers_per_day=0)

    def test_t2_rises_under_admission_storm(self):
        sieve = adaptive(budget_per_day=1.0)
        # Hammer distinct blocks so each passes tier 1 (t1=1) and then
        # t2; every admission counts against a tiny budget.
        time = 0.0
        for address in range(3000):
            for _ in range(10):
                time += 1.0
                sieve.wants(address, is_write=False, time=time)
        assert sieve.current_t2 > 2

    def test_t2_falls_when_idle(self):
        sieve = adaptive(budget_per_day=1e9, t2=6)
        time = 0.0
        # Sparse misses: far below budget -> controller relaxes t2.
        for address in range(200):
            time += 200.0
            sieve.wants(address, is_write=False, time=time)
        assert sieve.current_t2 < 6

    def test_t2_respects_bounds(self):
        sieve = adaptive(budget_per_day=1.0, bounds=(1, 3))
        time = 0.0
        for address in range(5000):
            for _ in range(6):
                time += 1.0
                sieve.wants(address, is_write=False, time=time)
        assert sieve.current_t2 <= 3

    def test_history_records_changes(self):
        sieve = adaptive(budget_per_day=1e9, t2=6)
        time = 0.0
        for address in range(200):
            time += 200.0
            sieve.wants(address, is_write=False, time=time)
        assert len(sieve.t2_history) >= 2
        times = [t for t, _ in sieve.t2_history]
        assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSieveStoreC(adjust_interval=0)
        with pytest.raises(ValueError):
            AdaptiveSieveStoreC(t2_bounds=(0, 4))

    def test_still_sieves(self):
        """Whatever the controller does, singles are never admitted."""
        sieve = adaptive(budget_per_day=100.0)
        admitted = [
            sieve.wants(address, is_write=False, time=float(address))
            for address in range(5000, 6000)
        ]
        assert not any(admitted)
