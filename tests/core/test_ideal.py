"""Ideal day-by-day top-1% sieve (Figure 5's oracle)."""

from collections import Counter

import pytest

from repro.core.ideal import (
    IdealDailySieve,
    ideal_capture_shares,
    top_fraction_blocks,
)


class TestTopFractionBlocks:
    def test_picks_most_accessed(self):
        counts = Counter({i: i for i in range(1, 201)})
        top = top_fraction_blocks(counts, 0.01)
        assert top == {199, 200}

    def test_at_least_one_block(self):
        counts = Counter({1: 5, 2: 3})
        assert len(top_fraction_blocks(counts, 0.01)) == 1

    def test_empty_counter(self):
        assert top_fraction_blocks(Counter(), 0.01) == set()

    def test_ties_broken_deterministically(self):
        counts = Counter({10: 5, 20: 5, 30: 5})
        a = top_fraction_blocks(counts, 0.34)
        b = top_fraction_blocks(counts, 0.34)
        assert a == b
        assert len(a) == 2

    def test_fraction_one_takes_everything(self):
        counts = Counter({1: 1, 2: 2})
        assert top_fraction_blocks(counts, 1.0) == {1, 2}

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            top_fraction_blocks(Counter({1: 1}), 0.0)


class TestIdealDailySieve:
    def test_installs_days_top_set(self):
        daily = [Counter({1: 100, 2: 1}), Counter({3: 100, 1: 1})]
        sieve = IdealDailySieve(daily, fraction=0.5)
        assert set(sieve.epoch_boundary(0)) == {1}
        assert set(sieve.epoch_boundary(1)) == {3}

    def test_past_last_day_installs_nothing(self):
        sieve = IdealDailySieve([Counter({1: 1})])
        assert set(sieve.epoch_boundary(5)) == set()

    def test_capacity_truncation(self):
        daily = [Counter({1: 10, 2: 9, 3: 8, 4: 7})]
        sieve = IdealDailySieve(daily, fraction=1.0, capacity_blocks=2)
        assert set(sieve.epoch_boundary(0)) == {1, 2}

    def test_never_allocates_continuously(self):
        sieve = IdealDailySieve([Counter()])
        assert not sieve.wants(1, is_write=False, time=0.0)


class TestIdealCaptureShares:
    def test_closed_form(self):
        # 100 blocks; block 0 has 99 accesses, the rest one each:
        # top 1% = {0} captures 99 / 198.
        counts = Counter({0: 99})
        counts.update({i: 1 for i in range(1, 100)})
        (share,) = ideal_capture_shares([counts], fraction=0.01)
        assert share == pytest.approx(99 / 198)

    def test_empty_day(self):
        assert ideal_capture_shares([Counter()]) == [0.0]

    def test_matches_simulated_ideal(self, tiny_context):
        """The closed form equals running the oracle through the engine."""
        from repro.sim import run_policy

        shares = ideal_capture_shares(tiny_context.daily_counts)
        result = run_policy("ideal", tiny_context, track_minutes=False)
        for day, (analytic, simulated) in enumerate(
            zip(shares, result.daily_capture())
        ):
            assert simulated == pytest.approx(analytic, abs=0.02), f"day {day}"
