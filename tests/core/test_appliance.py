"""The SieveStore appliance: request processing and SSD accounting."""


from repro.cache import AllocateOnDemand, BlockCache, NeverAllocate, StaticSet
from repro.cache.stats import CacheStats
from repro.core.appliance import SieveStoreAppliance
from repro.traces.model import IOKind, IORequest


def make_appliance(policy=None, capacity=64, days=1, staggered=True,
                   epoch_seconds=86400.0):
    stats = CacheStats(days=days)
    cache = BlockCache(capacity)
    appliance = SieveStoreAppliance(
        cache, policy or AllocateOnDemand(), stats,
        batch_moves_staggered=staggered,
        epoch_seconds=epoch_seconds,
    )
    return appliance, stats, cache


def request(offset=0, blocks=4, kind=IOKind.READ, issue=0.0, span=0.4):
    return IORequest(
        issue_time=issue,
        completion_time=issue + span,
        server_id=0,
        volume_id=0,
        block_offset=offset,
        block_count=blocks,
        kind=kind,
    )


class TestRequestProcessing:
    def test_cold_miss_then_hit(self):
        appliance, stats, _ = make_appliance()
        first = appliance.process_request(request())
        assert first.miss_blocks == 4 and first.hit_blocks == 0
        second = appliance.process_request(request(issue=1.0))
        assert second.hit_blocks == 4 and second.served_from_ssd

    def test_partial_hit(self):
        appliance, _, cache = make_appliance(policy=NeverAllocate())
        base = next(request().addresses())
        cache.insert(base)
        outcome = appliance.process_request(request())
        assert outcome.hit_blocks == 1 and outcome.miss_blocks == 3

    def test_statistics_accumulate(self):
        appliance, stats, _ = make_appliance()
        appliance.process_request(request(kind=IOKind.WRITE))
        appliance.process_request(request(issue=1.0, kind=IOKind.READ))
        day = stats.per_day[0]
        assert day.write_misses == 4
        assert day.read_hits == 4
        assert day.allocation_writes == 4
        stats.check_consistency()

    def test_sieved_miss_bypasses_cache(self):
        appliance, stats, cache = make_appliance(policy=NeverAllocate())
        outcome = appliance.process_request(request())
        assert outcome.allocated_blocks == 0
        assert len(cache) == 0
        assert stats.per_day[0].allocation_writes == 0


class TestSSDAccounting:
    def test_hit_io_units_coalesce(self):
        # An 8-block hit costs one 4-KB unit, charged at issue time.
        appliance, stats, cache = make_appliance(policy=NeverAllocate())
        for address in request(blocks=8).addresses():
            cache.insert(address)
        appliance.process_request(request(blocks=8, issue=60.0))
        assert stats.per_minute[1].reads == 1

    def test_allocation_units_charged_at_completion(self):
        appliance, stats, _ = make_appliance()
        appliance.process_request(request(blocks=8, issue=59.9, span=10.0))
        # Allocation-write lands in the minute of the completion (t=69.9).
        assert stats.per_minute[1].writes == 1
        assert 0 not in stats.per_minute

    def test_write_hits_are_write_units(self):
        appliance, stats, cache = make_appliance(policy=NeverAllocate())
        for address in request(blocks=8).addresses():
            cache.insert(address)
        appliance.process_request(request(blocks=8, kind=IOKind.WRITE))
        assert stats.per_minute[0].writes == 1
        assert stats.per_minute[0].reads == 0


class TestEpochBatches:
    def test_begin_day_installs_batch(self):
        policy = StaticSet(set(range(10)))
        appliance, stats, cache = make_appliance(policy=policy)
        moved = appliance.begin_day(0)
        assert moved == 10
        assert len(cache) == 10
        assert stats.per_day[0].allocation_writes == 10

    def test_staggered_moves_skip_minute_accounting(self):
        # The paper assumes SieveStore-D's batch moves ride idle periods.
        policy = StaticSet(set(range(10)))
        appliance, stats, _ = make_appliance(policy=policy, staggered=True)
        appliance.begin_day(0)
        assert stats.per_minute == {}

    def test_unstaggered_moves_are_charged(self):
        policy = StaticSet(set(range(10)))
        appliance, stats, _ = make_appliance(policy=policy, staggered=False)
        appliance.begin_day(0)
        assert stats.per_minute[0].writes == 2  # ceil(10 blocks / 8)

    def test_continuous_policy_day_is_noop(self):
        appliance, stats, cache = make_appliance()
        assert appliance.begin_day(0) == 0
        assert len(cache) == 0

    def test_sub_day_epoch_charged_to_containing_calendar_day(self):
        # A 12 h epoch's boundary 1 fires at noon of day 0: its batch
        # belongs to day 0, not to day index 1.
        policy = StaticSet(set(range(4)))
        appliance, stats, _ = make_appliance(
            policy=policy, days=2, epoch_seconds=12 * 3600.0
        )
        appliance.begin_day(1)
        assert stats.per_day[0].allocation_writes == 4
        assert stats.per_day[1].allocation_writes == 0

    def test_sub_day_epoch_minute_charge_at_boundary_time(self):
        policy = StaticSet(set(range(8)))
        appliance, stats, _ = make_appliance(
            policy=policy, days=2, staggered=False,
            epoch_seconds=12 * 3600.0,
        )
        appliance.begin_day(1)
        assert stats.per_minute[12 * 60].writes == 1
