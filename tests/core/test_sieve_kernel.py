"""Unit tests for the array-backed sieve kernel (repro.core.sieve_kernel).

Every vectorized primitive is checked bit-for-bit against its scalar
oracle: ``mix64_array`` against ``mix64``, ``bucket_array`` against
``stable_bucket``, ``subwindow_indices`` against
``WindowSpec.subwindow_index`` (including float boundary adversaries),
and ``ArrayIMCT.record_batch`` against sequential
``SubwindowCounter.record`` calls.  Engine-level equivalence lives in
``tests/sim/test_sieve_equivalence.py``.
"""

import numpy as np
import pytest

from repro.core import (
    AdaptiveSieveStoreC,
    ImpreciseMissCountTable,
    SieveStoreC,
    SieveStoreCConfig,
    SubwindowCounter,
    WindowSpec,
)
from repro.core.sieve_kernel import (
    ArrayIMCT,
    SieveStoreCKernel,
    bucket_array,
    mix64_array,
    subwindow_indices,
    supports,
)
from repro.core.windows import COUNTER_SATURATION
from repro.util.hashing import mix64, stable_bucket


class TestVectorizedHashing:
    def test_mix64_array_matches_scalar(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 2**64, size=4096, dtype=np.uint64)
        values[:4] = (0, 1, 2**63, 2**64 - 1)
        mixed = mix64_array(values)
        for value, got in zip(values.tolist(), mixed.tolist()):
            assert got == mix64(value)

    def test_mix64_array_does_not_mutate_input(self):
        values = np.arange(16, dtype=np.uint64)
        mix64_array(values)
        assert values.tolist() == list(range(16))

    def test_bucket_array_matches_stable_bucket(self):
        rng = np.random.default_rng(11)
        addresses = rng.integers(0, 2**40, size=2048, dtype=np.int64)
        salt = 0x13C7
        for buckets in (1, 2, 257, 1 << 16):
            slots = bucket_array(addresses, buckets, mix64(salt))
            assert slots.dtype == np.int64
            for address, slot in zip(addresses.tolist(), slots.tolist()):
                assert slot == stable_bucket(address, buckets, salt=salt)

    def test_bucket_array_rejects_nonpositive_buckets(self):
        with pytest.raises(ValueError, match="buckets must be positive"):
            bucket_array(np.arange(4, dtype=np.int64), 0, 1)


class TestSubwindowIndices:
    def test_matches_windowspec_on_boundary_adversaries(self):
        spec = WindowSpec(window_seconds=8 * 3600.0, subwindows=4)
        sw = spec.subwindow_seconds
        # Exact boundaries plus the representable floats straddling them
        # — the one-ulp regime where numpy.floor_divide can disagree
        # with Python's ``//``.
        boundaries = [j * sw for j in range(0, 64, 7)]
        adversaries = []
        for b in boundaries:
            adversaries.append(b)
            adversaries.append(np.nextafter(b, np.inf))
            if b > 0:
                adversaries.append(np.nextafter(b, 0.0))
        rng = np.random.default_rng(3)
        adversaries.extend((rng.random(256) * 40 * sw).tolist())
        times = np.array(adversaries, dtype=np.float64)
        got = subwindow_indices(times, sw)
        for t, index in zip(times.tolist(), got.tolist()):
            assert index == spec.subwindow_index(t)


def sequential_oracle(slots, subwindows):
    return [SubwindowCounter(subwindows) for _ in range(slots)]


def oracle_state(counters):
    return (
        [list(c._counts) for c in counters],
        [c._last_subwindow for c in counters],
    )


def array_state(array):
    return array.counts.tolist(), array.last_subwindow.tolist()


class TestArrayIMCT:
    def test_rejects_nonpositive_shape(self):
        with pytest.raises(ValueError, match="slots must be positive"):
            ArrayIMCT(0, 4)
        with pytest.raises(ValueError, match="subwindows must be positive"):
            ArrayIMCT(4, 0)

    def test_from_table_write_back_round_trip(self):
        window = WindowSpec(window_seconds=8 * 3600.0, subwindows=4)
        table = ImpreciseMissCountTable(slots=31, window=window)
        rng = np.random.default_rng(5)
        time = 0.0
        for address in rng.integers(0, 10_000, size=500).tolist():
            table.record_miss(address, time)
            time += 97.0
        array = ArrayIMCT.from_table(table)
        fresh = ImpreciseMissCountTable(slots=31, window=window)
        array.write_back(fresh)
        for original, restored in zip(table._counters, fresh._counters):
            assert restored._counts == original._counts
            assert restored._last_subwindow == original._last_subwindow
        assert fresh.recorded_misses == table.recorded_misses

    def test_write_back_rejects_shape_mismatch(self):
        window = WindowSpec(window_seconds=8 * 3600.0, subwindows=4)
        array = ArrayIMCT(8, 4)
        other = ImpreciseMissCountTable(slots=9, window=window)
        with pytest.raises(ValueError, match="shape mismatch"):
            array.write_back(other)

    def test_slots_of_matches_table_hash(self):
        window = WindowSpec()
        table = ImpreciseMissCountTable(slots=257, window=window)
        array = ArrayIMCT.from_table(table)
        addresses = np.arange(0, 5000, 13, dtype=np.int64)
        slots = array.slots_of(addresses)
        for address, slot in zip(addresses.tolist(), slots.tolist()):
            assert slot == table.slot_of(address)

    @pytest.mark.parametrize(
        "gaps",
        [
            # Every advancement regime: same subwindow, partial expiry
            # (gap < k), exact-k and beyond-k full expiry.
            [0, 0, 1, 0, 2, 3, 0, 4, 5, 0, 1, 9],
        ],
    )
    def test_record_batch_matches_sequential_record(self, gaps):
        slots, k = 17, 4
        array = ArrayIMCT(slots, k)
        oracle = sequential_oracle(slots, k)
        rng = np.random.default_rng(13)
        subwindow = 0
        for gap in gaps:
            subwindow += gap
            batch = rng.integers(0, slots, size=int(rng.integers(1, 60)))
            batch = batch.astype(np.int64)
            totals = array.record_batch(batch, subwindow)
            expected = [oracle[s].record(subwindow) for s in batch.tolist()]
            assert totals.tolist() == expected
            assert array_state(array) == oracle_state(oracle)
        # recorded_misses counts every entry of every batch.
        fresh = ArrayIMCT(slots, k)
        fresh.record_batch(np.zeros(5, dtype=np.int64), 0)
        assert fresh.recorded_misses == 5

    def test_record_batch_repeated_slot_ordinals(self):
        # One slot hit many times in a single batch: the i-th recording
        # must see total base+i+1, exactly like i sequential records.
        array = ArrayIMCT(3, 4)
        oracle = sequential_oracle(3, 4)
        batch = np.array([1] * 7 + [0, 1, 2, 1], dtype=np.int64)
        totals = array.record_batch(batch, 5)
        expected = [oracle[s].record(5) for s in batch.tolist()]
        assert totals.tolist() == expected
        assert array_state(array) == oracle_state(oracle)

    def test_record_batch_saturates_at_counter_ceiling(self):
        array = ArrayIMCT(2, 4)
        oracle = sequential_oracle(2, 4)
        batch = np.zeros(COUNTER_SATURATION + 45, dtype=np.int64)
        totals = array.record_batch(batch, 3)
        expected = [oracle[0].record(3) for _ in batch.tolist()]
        assert totals.tolist() == expected
        assert int(array.counts[0].max()) == COUNTER_SATURATION
        assert array_state(array) == oracle_state(oracle)

    def test_record_batch_empty(self):
        array = ArrayIMCT(4, 4)
        totals = array.record_batch(np.zeros(0, dtype=np.int64), 9)
        assert totals.size == 0
        assert array.recorded_misses == 0
        assert array.last_subwindow.tolist() == [-1] * 4

    def test_row_totals_equal_stored_sums(self):
        array = ArrayIMCT(5, 4)
        rng = np.random.default_rng(17)
        for subwindow in (0, 1, 4, 5):
            array.record_batch(
                rng.integers(0, 5, size=20).astype(np.int64), subwindow
            )
        assert array.row_totals().tolist() == [
            sum(row) for row in array.counts.tolist()
        ]


class TestKernelDispatch:
    def test_supports_exact_type_only(self):
        assert supports(SieveStoreC())
        assert not supports(AdaptiveSieveStoreC())

    def test_kernel_rejects_subclass(self):
        with pytest.raises(TypeError, match="plain SieveStoreC"):
            SieveStoreCKernel(AdaptiveSieveStoreC())


class TestSieveStoreCKernel:
    def test_precompute_chunk_expands_blocks(self):
        policy = SieveStoreC(SieveStoreCConfig(imct_slots=64))
        kernel = SieveStoreCKernel(policy)
        addresses = np.array([10, 900, 7], dtype=np.int64)
        block_counts = np.array([1, 3, 2], dtype=np.int64)
        issue_times = np.array([0.0, 3600.0, 6.5 * 3600.0])
        subs, cis = kernel.precompute_chunk(
            addresses, block_counts, issue_times
        )
        assert subs == [
            policy.imct.window.subwindow_index(t) for t in issue_times.tolist()
        ]
        k = policy.imct.window.subwindows
        # Each block's flat count-cell index in the column-major layout:
        # the owning request's subwindow column base plus the block's
        # IMCT slot.
        expanded = [10, 900, 901, 902, 7, 8]
        request_of_block = [0, 1, 1, 1, 2, 2]
        assert cis == [
            subs[r] % k * kernel.n_slots + policy.imct.slot_of(b)
            for b, r in zip(expanded, request_of_block)
        ]

    def test_sync_writes_flat_state_back(self):
        policy = SieveStoreC(SieveStoreCConfig(imct_slots=8))
        for address in range(40):
            policy.imct.record_miss(address, float(address) * 600.0)
        kernel = SieveStoreCKernel(policy)
        before = oracle_state(policy.imct._counters)
        kernel.sync()  # no mutation yet: table must be unchanged
        assert oracle_state(policy.imct._counters) == before
        # Mutate the flat lists the way the engine's inline loop does
        # (column-major: cell (slot, col) lives at col * n_slots + slot).
        kernel.counts[1 * kernel.n_slots + 3] = 42
        kernel.last[3] = 77
        kernel.array.recorded_misses += 5
        kernel.sync()
        assert policy.imct._counters[3]._counts[1] == 42
        assert policy.imct._counters[3]._last_subwindow == 77
        assert policy.imct.recorded_misses == 45
