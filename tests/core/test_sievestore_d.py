"""SieveStore-D: access-count-based discrete batch allocation."""

import pytest

from repro.core.sievestore_d import SieveStoreD, SieveStoreDConfig


def observe_n(policy, address, n, time=0.0):
    for _ in range(n):
        policy.observe(address, is_write=False, time=time, hit=False)


class TestSelectionRule:
    def test_over_threshold_selected(self):
        policy = SieveStoreD(SieveStoreDConfig(threshold=10))
        observe_n(policy, 1, 11)
        observe_n(policy, 2, 10)  # exactly at threshold: NOT selected
        assert policy.epoch_boundary(1) == {1}

    def test_counts_hits_and_misses_alike(self):
        # SieveStore-D counts *accesses*, not misses.
        policy = SieveStoreD(SieveStoreDConfig(threshold=2))
        policy.observe(1, is_write=False, time=0.0, hit=True)
        policy.observe(1, is_write=True, time=0.0, hit=False)
        policy.observe(1, is_write=False, time=0.0, hit=True)
        assert policy.epoch_boundary(1) == {1}

    def test_counts_reset_each_epoch(self):
        policy = SieveStoreD(SieveStoreDConfig(threshold=3))
        observe_n(policy, 1, 2)
        policy.epoch_boundary(1)
        observe_n(policy, 1, 2)
        # 2 + 2 across epochs is NOT 4 within one epoch.
        assert policy.epoch_boundary(2) == set()

    def test_empty_first_epoch(self):
        # Day-1 bootstrap: no logs yet, so nothing is allocated.
        policy = SieveStoreD()
        assert policy.epoch_boundary(0) == set()

    def test_never_allocates_continuously(self):
        policy = SieveStoreD()
        assert not policy.wants(1, is_write=False, time=0.0)


class TestCapacityCap:
    def test_most_accessed_win_when_over_capacity(self):
        policy = SieveStoreD(SieveStoreDConfig(threshold=1, capacity_blocks=2))
        observe_n(policy, 1, 10)
        observe_n(policy, 2, 5)
        observe_n(policy, 3, 7)
        assert policy.epoch_boundary(1) == {1, 3}

    def test_under_capacity_all_selected(self):
        policy = SieveStoreD(SieveStoreDConfig(threshold=1, capacity_blocks=100))
        observe_n(policy, 1, 2)
        observe_n(policy, 2, 3)
        assert policy.epoch_boundary(1) == {1, 2}


class TestBookkeeping:
    def test_epochs_counted(self):
        policy = SieveStoreD()
        policy.epoch_boundary(0)
        policy.epoch_boundary(1)
        assert policy.epochs_completed == 2

    def test_tracked_blocks(self):
        policy = SieveStoreD()
        observe_n(policy, 1, 3)
        observe_n(policy, 2, 1)
        assert policy.tracked_blocks == 2


class TestConfig:
    def test_paper_default_threshold(self):
        assert SieveStoreD().config.threshold == 10

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            SieveStoreDConfig(threshold=-1)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            SieveStoreDConfig(capacity_blocks=0)
