"""Metastate memory budgeting."""

import pytest

from repro.core.metastate import (
    DEFAULT_BUDGET,
    MetastateBudget,
    paper_scale_example,
)
from repro.util.units import GIB


class TestBudgetArithmetic:
    def test_imct_linear_in_slots(self):
        assert DEFAULT_BUDGET.imct_bytes(2000) == 2 * DEFAULT_BUDGET.imct_bytes(1000)

    def test_imct_per_slot_bytes(self):
        # 4 one-byte counters + 2-byte stamp.
        assert DEFAULT_BUDGET.imct_bytes(1) == 6

    def test_mct_per_entry_bytes(self):
        # key 6 + counters 4 + stamp 2 + overhead 10.
        assert DEFAULT_BUDGET.mct_bytes(1) == 22

    def test_log_raw_vs_compacted(self):
        raw = DEFAULT_BUDGET.log_bytes(1_000_000, 100_000, compacted=False)
        compacted = DEFAULT_BUDGET.log_bytes(1_000_000, 100_000, compacted=True)
        assert raw == 10 * compacted

    def test_validation(self):
        with pytest.raises(ValueError):
            DEFAULT_BUDGET.imct_bytes(-1)
        with pytest.raises(ValueError):
            DEFAULT_BUDGET.mct_bytes(-1)
        with pytest.raises(ValueError):
            DEFAULT_BUDGET.log_bytes(-1, -1, compacted=False)


class TestPaperScale:
    def test_reproduces_eight_gb_figure(self):
        # "our implementation of IMCT and MCT occupied about 8GB of
        # memory" (Section 3.3).
        example = paper_scale_example()
        assert 6.0 < example["total_gib"] < 10.0

    def test_imct_dominates(self):
        example = paper_scale_example()
        assert example["imct_gib"] > example["mct_gib"]

    def test_custom_budget(self):
        fat = MetastateBudget(counter_bytes=4)
        assert paper_scale_example(fat)["total_gib"] > paper_scale_example()[
            "total_gib"
        ]


class TestAgainstSimulatedSieve:
    def test_simulated_mct_far_below_imct_budget(self, tiny_context):
        """The two-tier design's point: exact state stays tiny."""
        from repro.sim import run_policy

        result = run_policy("sievestore-c", tiny_context, track_minutes=False)
        state = result.policy.metastate_entries()
        assert state["mct_peak_entries"] < 0.2 * state["imct_slots"]
        estimated = DEFAULT_BUDGET.sieve_c_bytes(
            state["imct_slots"], state["mct_peak_entries"]
        )
        # Scaled-down state is a few hundred KB, not gigabytes.
        assert estimated < 0.01 * GIB
