"""Columnar trace representation: losslessness, operations, serialization."""

import numpy as np
import pytest

from repro.traces.columnar import (
    ColumnarTrace,
    NPZ_FORMAT_VERSION,
    as_columnar,
    as_object_trace,
)
from repro.traces.model import IOKind, IORequest, Trace, pack_address
from repro.traces.streams import daily_block_counts
from repro.util.intervals import SECONDS_PER_DAY


def req(issue, server=0, volume=0, offset=0, blocks=2, kind=IOKind.READ,
        aligned=True):
    return IORequest(
        issue_time=issue,
        completion_time=issue + 0.01,
        server_id=server,
        volume_id=volume,
        block_offset=offset,
        block_count=blocks,
        kind=kind,
        aligned_4k=aligned,
    )


@pytest.fixture
def mixed_trace():
    return Trace(
        [
            req(0.5, server=0, volume=0, offset=0, blocks=3),
            req(1.25, server=1, volume=2, offset=100, blocks=1,
                kind=IOKind.WRITE, aligned=False),
            req(SECONDS_PER_DAY + 2.0, server=0, volume=1, offset=7,
                blocks=8),
            req(2 * SECONDS_PER_DAY + 0.125, server=2, volume=0,
                offset=4096, blocks=2, kind=IOKind.WRITE),
        ],
        description="mixed",
    )


class TestRoundTrip:
    def test_lossless_round_trip(self, mixed_trace):
        columns = ColumnarTrace.from_trace(mixed_trace)
        back = columns.to_trace()
        assert back.requests == mixed_trace.requests
        assert back.description == mixed_trace.description

    def test_round_trip_from_columns(self, mixed_trace):
        columns = ColumnarTrace.from_trace(mixed_trace)
        again = ColumnarTrace.from_trace(columns.to_trace())
        assert columns.equals(again)

    def test_coercion_helpers(self, mixed_trace):
        columns = as_columnar(mixed_trace)
        assert isinstance(columns, ColumnarTrace)
        assert as_columnar(columns) is columns
        assert as_object_trace(mixed_trace) is mixed_trace
        assert as_object_trace(columns).requests == mixed_trace.requests

    def test_shared_summary_protocol(self, mixed_trace):
        columns = ColumnarTrace.from_trace(mixed_trace)
        assert len(columns) == len(mixed_trace)
        assert columns.total_blocks() == mixed_trace.total_blocks()
        assert columns.duration == mixed_trace.duration

    def test_synthetic_trace_round_trips(self, tiny_trace):
        columns = ColumnarTrace.from_trace(tiny_trace)
        back = columns.to_trace()
        assert back.requests == tiny_trace.requests


class TestDerivedColumns:
    def test_server_and_volume_ids(self, mixed_trace):
        columns = ColumnarTrace.from_trace(mixed_trace)
        assert columns.server_ids.tolist() == [0, 1, 0, 2]
        assert columns.volume_ids.tolist() == [0, 2, 1, 0]

    def test_issue_days_match_scalar_reference(self, mixed_trace):
        columns = ColumnarTrace.from_trace(mixed_trace)
        expected = [int(r.issue_time // SECONDS_PER_DAY)
                    for r in mixed_trace.requests]
        assert columns.issue_days().tolist() == expected

    def test_issue_days_agree_with_python_at_day_boundaries(self):
        # Regression: timestamps at (or within an ulp of) a day multiple
        # must bucket exactly as Python's ``int(t // 86400)`` does —
        # numpy's floor_divide can land one ulp on the wrong side, and
        # the engines' bit-identical guarantee rides on both pipelines
        # agreeing.  These times exercise the boundary-recomputation
        # branch in ``bucket_indices``.
        day = float(SECONDS_PER_DAY)
        times = [
            0.0,
            np.nextafter(day, 0.0),        # just below the boundary
            day,                            # exactly on it
            np.nextafter(day, np.inf),      # just above it
            2 * day - 1e-10,                # inside the margin, below
            2 * day,
            2 * day + 1e-10,                # inside the margin, above
            3 * day,
        ]
        trace = Trace([req(t) for t in times])
        columns = ColumnarTrace.from_trace(trace)
        expected = [int(float(t) // SECONDS_PER_DAY) for t in times]
        assert columns.issue_days().tolist() == expected

    def test_daily_block_counts_straddling_boundaries_match_reference(
        self,
    ):
        day = float(SECONDS_PER_DAY)
        times = [0.0, np.nextafter(day, 0.0), day, np.nextafter(day, np.inf),
                 2 * day, 2 * day + 1e-10]
        trace = Trace([req(t, blocks=i + 1) for i, t in enumerate(times)])
        columns = ColumnarTrace.from_trace(trace)
        assert columns.daily_block_counts(4) == daily_block_counts(trace, 4)

    def test_expand_block_addresses(self):
        trace = Trace([req(0.0, offset=10, blocks=3), req(1.0, offset=50, blocks=2)])
        columns = ColumnarTrace.from_trace(trace)
        base1 = pack_address(0, 0, 10)
        base2 = pack_address(0, 0, 50)
        assert columns.expand_block_addresses().tolist() == [
            base1, base1 + 1, base1 + 2, base2, base2 + 1,
        ]

    def test_daily_block_counts_match_reference(self, tiny_trace):
        columns = ColumnarTrace.from_trace(tiny_trace)
        reference = daily_block_counts(tiny_trace, 8)
        vectorized = columns.daily_block_counts(8)
        assert vectorized == reference

    def test_daily_block_counts_rejects_bad_days(self, mixed_trace):
        with pytest.raises(ValueError):
            ColumnarTrace.from_trace(mixed_trace).daily_block_counts(0)


class TestStructuralOps:
    def test_filter_matches_object_filter(self, mixed_trace):
        columns = ColumnarTrace.from_trace(mixed_trace)
        filtered = columns.filter(server_id=0)
        assert filtered.to_trace().requests == mixed_trace.filter(
            server_id=0
        ).requests
        both = columns.filter(server_id=0, volume_id=1)
        assert len(both) == 1

    def test_sorted_by_issue_is_stable(self):
        # Two simultaneous requests must keep their input order.
        shuffled = Trace([req(5.0, offset=1), req(0.0), req(5.0, offset=2)])
        columns = ColumnarTrace.from_trace(shuffled).sorted_by_issue()
        columns.validate()
        offsets = [r.block_offset for r in columns.to_trace().requests]
        assert offsets == [0, 1, 2]

    def test_validate_flags_disorder(self):
        columns = ColumnarTrace.from_trace(Trace([req(5.0), req(1.0)]))
        with pytest.raises(ValueError):
            columns.validate()

    def test_concatenate_and_empty(self, mixed_trace):
        columns = ColumnarTrace.from_trace(mixed_trace)
        joined = ColumnarTrace.concatenate([columns, columns])
        assert len(joined) == 2 * len(columns)
        assert len(ColumnarTrace.concatenate([])) == 0
        assert ColumnarTrace.empty().total_blocks() == 0

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(ValueError):
            ColumnarTrace(
                issue_time=np.zeros(2),
                completion_time=np.zeros(2),
                address=np.zeros(2, dtype=np.int64),
                block_count=np.ones(3, dtype=np.int32),
                is_write=np.zeros(2, dtype=bool),
                aligned_4k=np.ones(2, dtype=bool),
            )


class TestSerialization:
    def test_npz_round_trip(self, mixed_trace, tmp_path):
        columns = ColumnarTrace.from_trace(mixed_trace)
        path = tmp_path / "trace.npz"
        columns.save_npz(path)
        loaded = ColumnarTrace.load_npz(path)
        assert loaded.equals(columns)
        assert loaded.description == columns.description

    def test_version_mismatch_rejected(self, mixed_trace, tmp_path):
        path = tmp_path / "trace.npz"
        ColumnarTrace.from_trace(mixed_trace).save_npz(path)
        with np.load(path) as payload:
            arrays = dict(payload)
        arrays["format_version"] = np.int64(NPZ_FORMAT_VERSION + 1)
        np.savez(path, **arrays)
        with pytest.raises(ValueError):
            ColumnarTrace.load_npz(path)
