"""Synthetic ensemble generator: determinism plus O1/O2 fidelity.

These are the load-bearing tests of the reproduction: they verify that
the generated workload actually exhibits the published trace properties
the paper's results rest on, rather than assuming the generator is
calibrated.
"""

import numpy as np
import pytest

from repro.traces import (
    EnsembleTraceGenerator,
    SyntheticTraceConfig,
    daily_access_totals,
    daily_block_counts,
    tiny_config,
)
from repro.traces.synthetic import DAY0_INTENSITY, SLOT_BLOCKS
from repro.util.intervals import SECONDS_PER_DAY

DAYS = 8


@pytest.fixture(scope="module")
def daily_counts(tiny_trace):
    return daily_block_counts(tiny_trace, DAYS)


@pytest.fixture(scope="module")
def daily_totals(tiny_trace):
    return daily_access_totals(tiny_trace, DAYS)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        config = tiny_config(scale=2e-6)
        a = EnsembleTraceGenerator(config).generate()
        b = EnsembleTraceGenerator(config).generate()
        assert len(a) == len(b)
        assert all(
            (
                x.issue_time == y.issue_time
                and x.block_offset == y.block_offset
                and x.kind == y.kind
            )
            for x, y in zip(a.requests[:500], b.requests[:500])
        )

    def test_different_seed_different_trace(self):
        a = EnsembleTraceGenerator(tiny_config(scale=2e-6, seed=1)).generate()
        b = EnsembleTraceGenerator(tiny_config(scale=2e-6, seed=2)).generate()
        assert [r.block_offset for r in a.requests[:50]] != [
            r.block_offset for r in b.requests[:50]
        ]


class TestStructure:
    def test_chronological(self, tiny_trace):
        tiny_trace.validate()

    def test_all_thirteen_servers_present(self, tiny_trace):
        assert {r.server_id for r in tiny_trace} == set(range(13))

    def test_spans_eight_days(self, tiny_trace):
        assert tiny_trace.duration <= DAYS * SECONDS_PER_DAY + 60
        first = min(r.issue_time for r in tiny_trace)
        # Day 0 is partial: tracing starts at 5 pm.
        assert first >= (1 - DAY0_INTENSITY) * SECONDS_PER_DAY - 3600

    def test_extents_do_not_cross_slots(self, tiny_trace):
        for request in tiny_trace.requests[:2000]:
            start_slot = request.block_offset // SLOT_BLOCKS
            end_slot = (request.block_offset + request.block_count - 1) // SLOT_BLOCKS
            assert start_slot == end_slot

    def test_read_write_mix_roughly_3_to_1_for_tail(self, tiny_trace):
        # The global mix is pulled below 3:1 by write-hot blocks, but
        # must stay read-majority overall.
        reads = sum(r.block_count for r in tiny_trace if r.is_read)
        total = tiny_trace.total_blocks()
        assert 0.5 < reads / total < 0.85

    def test_unaligned_fraction_near_six_percent(self, tiny_trace):
        unaligned = sum(1 for r in tiny_trace if not r.aligned_4k)
        fraction = unaligned / len(tiny_trace)
        assert 0.02 < fraction < 0.12


class TestObservationO1:
    """Section 2's popularity-skew facts, checked per generated day."""

    def test_top1pct_share_in_paper_band(self, daily_counts, daily_totals):
        # Paper: the top 1% accounts for 14%-53% of accesses.
        for day in range(1, DAYS):
            values = sorted(daily_counts[day].values(), reverse=True)
            top = sum(values[: max(1, len(values) // 100)])
            share = top / daily_totals[day]
            assert 0.10 < share < 0.60, f"day {day} share {share}"

    def test_99pct_of_blocks_have_at_most_10_accesses(self, daily_counts):
        for day in range(1, DAYS):
            values = np.fromiter(daily_counts[day].values(), dtype=np.int64)
            assert (values <= 10).mean() > 0.97, f"day {day}"

    def test_97pct_of_blocks_have_at_most_4_accesses(self, daily_counts):
        for day in range(1, DAYS):
            values = np.fromiter(daily_counts[day].values(), dtype=np.int64)
            assert (values <= 4).mean() > 0.93, f"day {day}"

    def test_about_half_of_blocks_accessed_once(self, daily_counts):
        for day in range(1, DAYS):
            values = np.fromiter(daily_counts[day].values(), dtype=np.int64)
            assert 0.35 < (values == 1).mean() < 0.60, f"day {day}"

    def test_hot_blocks_are_about_one_percent(self, daily_counts):
        for day in range(1, DAYS):
            values = np.fromiter(daily_counts[day].values(), dtype=np.int64)
            assert 0.002 < (values > 10).mean() < 0.03, f"day {day}"


class TestObservationO2:
    """Hot-set drift and day-1 bootstrap behaviour."""

    def test_successive_days_overlap_substantially(self, daily_counts, daily_totals):
        # Yesterday's over-threshold blocks must predict a large share of
        # today's accesses (SieveStore-D's premise), days 3+.
        for day in range(2, DAYS):
            prev_hot = {a for a, c in daily_counts[day - 1].items() if c > 10}
            captured = sum(
                c for a, c in daily_counts[day].items() if a in prev_hot
            )
            values = sorted(daily_counts[day].values(), reverse=True)
            ideal = sum(values[: max(1, len(values) // 100)])
            assert captured > 0.5 * ideal, f"day {day}"

    def test_hot_set_drifts(self, daily_counts):
        # The hot set is NOT static: some of yesterday's hot blocks cool.
        day2 = {a for a, c in daily_counts[2].items() if c > 10}
        day6 = {a for a, c in daily_counts[6].items() if c > 10}
        assert day2 != day6

    def test_day0_is_partial_and_light(self, daily_totals):
        assert daily_totals[0] < 0.6 * max(daily_totals[1:])

    def test_day0_has_few_over_threshold_blocks(self, daily_counts):
        # Paper Section 5.1: day 1's logs qualify far fewer blocks, which
        # is why SieveStore-D starts weakly on day 2.
        day0_hot = sum(1 for c in daily_counts[0].values() if c > 10)
        later_hot = sum(1 for c in daily_counts[3].values() if c > 10)
        assert day0_hot < 0.5 * later_hot


class TestConfigValidation:
    def test_rejects_zero_days(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(days=0)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(scale=0.0)
        with pytest.raises(ValueError):
            SyntheticTraceConfig(scale=2.0)

    def test_rejects_bad_hot_fraction(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(hot_fraction=0.6)

    def test_rejects_bad_drift(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(hot_drift=1.5)


class TestPerServerTraces:
    def test_split_covers_whole_trace(self, tiny_generator, tiny_trace):
        per_server = tiny_generator.per_server_traces()
        assert sum(len(t) for t in per_server.values()) == len(tiny_trace)

    def test_each_server_trace_is_homogeneous(self, tiny_generator):
        for server_id, trace in tiny_generator.per_server_traces().items():
            assert all(r.server_id == server_id for r in trace.requests[:100])
