"""Trace data model: packed addresses, requests, block expansion."""

import pytest
from hypothesis import given, strategies as st

from repro.traces.model import (
    IOKind,
    IORequest,
    Trace,
    merge_traces,
    pack_address,
    server_of_address,
    unpack_address,
    volume_of_address,
    MAX_BLOCK_OFFSET,
    MAX_VOLUME_ID,
)


def make_request(**overrides):
    defaults = dict(
        issue_time=10.0,
        completion_time=10.5,
        server_id=3,
        volume_id=1,
        block_offset=100,
        block_count=4,
        kind=IOKind.READ,
    )
    defaults.update(overrides)
    return IORequest(**defaults)


class TestPackedAddresses:
    def test_roundtrip(self):
        address = pack_address(5, 2, 12345)
        assert unpack_address(address) == (5, 2, 12345)

    def test_accessors(self):
        address = pack_address(12, 3, 999)
        assert server_of_address(address) == 12
        assert volume_of_address(address) == 3

    def test_consecutive_blocks_are_consecutive_addresses(self):
        base = pack_address(1, 1, 50)
        assert pack_address(1, 1, 51) == base + 1

    def test_different_servers_never_collide(self):
        a = pack_address(1, 0, 0)
        b = pack_address(2, 0, 0)
        assert a != b

    def test_limits_enforced(self):
        with pytest.raises(ValueError):
            pack_address(0, MAX_VOLUME_ID + 1, 0)
        with pytest.raises(ValueError):
            pack_address(0, 0, MAX_BLOCK_OFFSET + 1)
        with pytest.raises(ValueError):
            pack_address(-1, 0, 0)

    @given(
        st.integers(min_value=0, max_value=2**15),
        st.integers(min_value=0, max_value=MAX_VOLUME_ID),
        st.integers(min_value=0, max_value=MAX_BLOCK_OFFSET),
    )
    def test_roundtrip_property(self, server, volume, offset):
        assert unpack_address(pack_address(server, volume, offset)) == (
            server,
            volume,
            offset,
        )


class TestIORequest:
    def test_byte_count(self):
        assert make_request(block_count=8).byte_count == 4096

    def test_kind_flags(self):
        assert make_request(kind=IOKind.READ).is_read
        assert make_request(kind=IOKind.WRITE).is_write

    def test_rejects_nonpositive_block_count(self):
        with pytest.raises(ValueError):
            make_request(block_count=0)

    def test_rejects_completion_before_issue(self):
        with pytest.raises(ValueError):
            make_request(completion_time=9.0)

    def test_addresses_are_contiguous(self):
        request = make_request(block_count=3)
        addresses = list(request.addresses())
        assert addresses == [addresses[0], addresses[0] + 1, addresses[0] + 2]

    def test_addresses_match_server_volume(self):
        request = make_request(server_id=7, volume_id=2)
        for address in request.addresses():
            assert server_of_address(address) == 7
            assert volume_of_address(address) == 2


class TestBlockExpansion:
    def test_one_access_per_block(self):
        request = make_request(block_count=5)
        assert len(list(request.block_accesses())) == 5

    def test_completion_times_linearly_interpolated(self):
        # Section 4's interpolation rule for multi-block requests.
        request = make_request(
            issue_time=0.0, completion_time=4.0, block_count=4
        )
        completions = [a.completion_time for a in request.block_accesses()]
        assert completions == [1.0, 2.0, 3.0, 4.0]

    def test_last_block_completes_at_request_completion(self):
        request = make_request(block_count=7)
        last = list(request.block_accesses())[-1]
        assert last.completion_time == pytest.approx(request.completion_time)

    def test_single_block_request(self):
        request = make_request(block_count=1)
        (access,) = request.block_accesses()
        assert access.completion_time == pytest.approx(request.completion_time)
        assert access.time == request.issue_time

    def test_access_inherits_kind_and_origin(self):
        request = make_request(kind=IOKind.WRITE, server_id=4, volume_id=0)
        for access in request.block_accesses():
            assert access.is_write
            assert access.server_id == 4
            assert access.volume_id == 0


class TestTrace:
    def test_validate_accepts_sorted(self):
        trace = Trace([make_request(issue_time=1.0, completion_time=1.1),
                       make_request(issue_time=2.0, completion_time=2.1)])
        trace.validate()

    def test_validate_rejects_unsorted(self):
        trace = Trace([make_request(issue_time=2.0, completion_time=2.1),
                       make_request(issue_time=1.0, completion_time=1.1)])
        with pytest.raises(ValueError):
            trace.validate()

    def test_total_blocks(self):
        trace = Trace([make_request(block_count=3), make_request(block_count=5)])
        assert trace.total_blocks() == 8

    def test_duration_empty(self):
        assert Trace([]).duration == 0.0

    def test_filter_by_server(self):
        trace = Trace(
            [make_request(server_id=1), make_request(server_id=2)]
        )
        filtered = trace.filter(server_id=1)
        assert len(filtered) == 1
        assert filtered.requests[0].server_id == 1

    def test_filter_by_server_and_volume(self):
        trace = Trace(
            [
                make_request(server_id=1, volume_id=0),
                make_request(server_id=1, volume_id=1),
            ]
        )
        assert len(trace.filter(server_id=1, volume_id=1)) == 1


class TestMergeTraces:
    def test_merges_chronologically(self):
        a = Trace([make_request(issue_time=1.0, completion_time=1.1),
                   make_request(issue_time=3.0, completion_time=3.1)])
        b = Trace([make_request(issue_time=2.0, completion_time=2.1)])
        merged = merge_traces([a, b])
        merged.validate()
        assert [r.issue_time for r in merged] == [1.0, 2.0, 3.0]

    def test_preserves_request_count(self):
        a = Trace([make_request() for _ in range(5)])
        b = Trace([make_request() for _ in range(7)])
        assert len(merge_traces([a, b])) == 12
