"""Segment stores: round-trips, manifest validation, shard views."""

import json

import numpy as np
import pytest

from repro.traces import tiny_config
from repro.traces.columnar import ColumnarTrace
from repro.traces.segments import (
    MANIFEST_NAME,
    SEGMENT_MANIFEST_VERSION,
    SegmentError,
    SegmentStore,
    ShardView,
    segment_columnar,
    shard_of_servers,
)
from repro.traces.store import config_fingerprint, load_or_generate_segments
from repro.traces.synthetic import EnsembleTraceGenerator

ROWS_PER_SEGMENT = 5000
CHUNK_ROWS = 3000


@pytest.fixture(scope="module")
def seg_config():
    return tiny_config(days=3)


@pytest.fixture(scope="module")
def seg_columns(seg_config):
    return EnsembleTraceGenerator(seg_config).generate_columnar()


@pytest.fixture(scope="module")
def seg_store(tmp_path_factory, seg_columns):
    directory = tmp_path_factory.mktemp("segments") / "store"
    return segment_columnar(
        seg_columns, directory, rows_per_segment=ROWS_PER_SEGMENT
    )


def _concatenate_chunks(chunks):
    return ColumnarTrace.concatenate([c for _base, c in chunks])


class TestRoundTrip:
    def test_load_all_equals_source(self, seg_store, seg_columns):
        assert seg_store.load_all().equals(seg_columns)

    def test_bounded_segments(self, seg_store, seg_columns):
        assert seg_store.num_segments > 1
        assert all(s.rows <= ROWS_PER_SEGMENT for s in seg_store.segments)
        assert len(seg_store) == len(seg_columns)

    def test_fingerprint_matches_columnar_fingerprint(
        self, seg_store, seg_columns
    ):
        from repro.sim.engine import _fingerprint_columnar

        assert seg_store.fingerprint() == _fingerprint_columnar(seg_columns)

    def test_generator_streams_identical_store(
        self, tmp_path, seg_config, seg_columns
    ):
        streamed = EnsembleTraceGenerator(seg_config).generate_segments(
            tmp_path / "streamed", rows_per_segment=ROWS_PER_SEGMENT
        )
        assert streamed.load_all().equals(seg_columns)


class TestChunkIteration:
    def test_chunks_cover_the_trace_in_order(self, seg_store, seg_columns):
        chunks = list(seg_store.iter_chunks(CHUNK_ROWS))
        position = 0
        for base, columns in chunks:
            assert base == position
            assert 0 < len(columns) <= CHUNK_ROWS
            position += len(columns)
        assert position == len(seg_columns)
        assert _concatenate_chunks(chunks).equals(seg_columns)

    def test_start_row_skips_earlier_rows(self, seg_store, seg_columns):
        start = len(seg_columns) // 2
        chunks = list(seg_store.iter_chunks(CHUNK_ROWS, start_row=start))
        first_base = chunks[0][0]
        assert first_base <= start < first_base + len(chunks[0][1])
        tail = _concatenate_chunks(chunks)
        offset = start - first_base
        np.testing.assert_array_equal(
            tail.issue_time[offset:], seg_columns.issue_time[start:]
        )

    def test_rejects_nonpositive_chunk_rows(self, seg_store):
        with pytest.raises(ValueError, match="chunk_rows"):
            list(seg_store.iter_chunks(0))


class TestManifestValidation:
    @pytest.fixture()
    def copied_store(self, tmp_path, seg_columns):
        directory = tmp_path / "copy"
        segment_columnar(
            seg_columns, directory, rows_per_segment=ROWS_PER_SEGMENT
        )
        return directory

    def _manifest(self, directory):
        return json.loads((directory / MANIFEST_NAME).read_text())

    def _rewrite(self, directory, payload):
        (directory / MANIFEST_NAME).write_text(json.dumps(payload))

    def test_unknown_manifest_version_is_refused(self, copied_store):
        payload = self._manifest(copied_store)
        payload["manifest_version"] = SEGMENT_MANIFEST_VERSION + 1
        self._rewrite(copied_store, payload)
        with pytest.raises(SegmentError, match="manifest version"):
            SegmentStore.open(copied_store)

    def test_unknown_npz_format_version_is_refused(self, copied_store):
        payload = self._manifest(copied_store)
        payload["npz_format_version"] = 999
        self._rewrite(copied_store, payload)
        with pytest.raises(SegmentError, match="npz format"):
            SegmentStore.open(copied_store)

    def test_total_rows_mismatch_is_refused(self, copied_store):
        payload = self._manifest(copied_store)
        payload["total_rows"] += 1
        self._rewrite(copied_store, payload)
        with pytest.raises(SegmentError, match="total_rows"):
            SegmentStore.open(copied_store)

    def test_truncated_segment_is_refused(self, copied_store):
        payload = self._manifest(copied_store)
        victim = copied_store / payload["segments"][0]["file"]
        victim.write_bytes(victim.read_bytes()[:-16])
        with pytest.raises(SegmentError, match="truncated"):
            SegmentStore.open(copied_store)

    def test_missing_segment_is_refused(self, copied_store):
        payload = self._manifest(copied_store)
        (copied_store / payload["segments"][-1]["file"]).unlink()
        with pytest.raises(SegmentError, match="missing segment"):
            SegmentStore.open(copied_store)

    def test_corrupt_segment_payload_fails_on_read(self, copied_store):
        store = SegmentStore.open(copied_store)
        victim = copied_store / store.segments[0].file
        size = victim.stat().st_size
        victim.write_bytes(b"\x00" * size)  # same size: open() passes
        with pytest.raises(SegmentError, match="unreadable segment"):
            store.load_segment(0)


class TestLoadOrGenerateSegments:
    def test_miss_generates_and_hit_reuses(self, tmp_path, seg_config):
        store = load_or_generate_segments(seg_config, cache_dir=tmp_path)
        assert store.config_fingerprint == config_fingerprint(seg_config)
        sentinel = store.directory / "sentinel"
        sentinel.write_text("kept on cache hit")
        again = load_or_generate_segments(seg_config, cache_dir=tmp_path)
        assert again.directory == store.directory
        assert sentinel.exists()  # no regeneration happened

    def test_corrupt_store_warns_evicts_and_regenerates(
        self, tmp_path, seg_config
    ):
        store = load_or_generate_segments(seg_config, cache_dir=tmp_path)
        (store.directory / MANIFEST_NAME).write_text("{ not json")
        with pytest.warns(RuntimeWarning, match="unusable segment store"):
            again = load_or_generate_segments(seg_config, cache_dir=tmp_path)
        assert again.load_all().equals(
            EnsembleTraceGenerator(seg_config).generate_columnar()
        )

    def test_wrong_config_fingerprint_regenerates(self, tmp_path, seg_config):
        store = load_or_generate_segments(seg_config, cache_dir=tmp_path)
        payload = json.loads((store.directory / MANIFEST_NAME).read_text())
        payload["config_fingerprint"] = "0" * 64
        (store.directory / MANIFEST_NAME).write_text(json.dumps(payload))
        with pytest.warns(RuntimeWarning, match="different .* config"):
            again = load_or_generate_segments(seg_config, cache_dir=tmp_path)
        assert again.config_fingerprint == config_fingerprint(seg_config)

    def test_disabled_cache_without_directory_raises(
        self, seg_config, monkeypatch
    ):
        monkeypatch.setenv("SIEVESTORE_TRACE_CACHE", "off")
        with pytest.raises(ValueError, match="segment stores live on disk"):
            load_or_generate_segments(seg_config)


class TestShardOfServers:
    def test_deterministic_and_in_range(self):
        ids = np.arange(64, dtype=np.int64)
        first = shard_of_servers(ids, 4)
        second = shard_of_servers(ids, 4)
        np.testing.assert_array_equal(first, second)
        assert first.min() >= 0 and first.max() < 4

    def test_single_shard_takes_everything(self):
        ids = np.arange(64, dtype=np.int64)
        assert shard_of_servers(ids, 1).tolist() == [0] * 64

    def test_consecutive_ids_spread_across_shards(self):
        counts = np.bincount(
            shard_of_servers(np.arange(64, dtype=np.int64), 4), minlength=4
        )
        assert (counts > 0).all()

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError, match="shards"):
            shard_of_servers(np.arange(4, dtype=np.int64), 0)


class TestShardView:
    SHARDS = 4

    def test_shards_partition_the_trace(self, seg_store, seg_columns):
        views = [
            seg_store.shard(s, self.SHARDS) for s in range(self.SHARDS)
        ]
        assert sum(len(v) for v in views) == len(seg_columns)
        for view in views:
            for _base, columns in view.iter_chunks(CHUNK_ROWS):
                assigned = shard_of_servers(columns.server_ids, self.SHARDS)
                assert (assigned == view.shard).all()

    def test_shard_rows_keep_issue_order_and_local_bases(self, seg_store):
        view = seg_store.shard(1, self.SHARDS)
        position = 0
        previous_last = None
        for base, columns in view.iter_chunks(CHUNK_ROWS):
            assert base == position
            position += len(columns)
            if previous_last is not None:
                assert columns.issue_time[0] >= previous_last
            assert (np.diff(columns.issue_time) >= 0).all()
            previous_last = columns.issue_time[-1]
        assert position == len(view)

    def test_single_shard_is_the_identity(self, seg_store, seg_columns):
        view = seg_store.shard(0, 1)
        assert view.fingerprint() == seg_store.fingerprint()
        assert len(view) == len(seg_store)
        assert _concatenate_chunks(view.iter_chunks(CHUNK_ROWS)).equals(
            seg_columns
        )

    def test_matches_mask_filtered_whole_trace(self, seg_store, seg_columns):
        view = seg_store.shard(2, self.SHARDS)
        mask = shard_of_servers(seg_columns.server_ids, self.SHARDS) == 2
        expected = seg_columns.take(np.flatnonzero(mask))
        assert _concatenate_chunks(view.iter_chunks(CHUNK_ROWS)).equals(
            expected
        )

    def test_streamed_daily_counts_match_whole_shard(
        self, seg_store, seg_columns, seg_config
    ):
        view = seg_store.shard(3, self.SHARDS)
        mask = shard_of_servers(seg_columns.server_ids, self.SHARDS) == 3
        whole = seg_columns.take(np.flatnonzero(mask)).daily_block_counts(
            seg_config.days
        )
        streamed = view.daily_block_counts(
            seg_config.days, chunk_rows=CHUNK_ROWS
        )
        assert streamed == whole

    def test_start_row_is_shard_local(self, seg_store):
        view = seg_store.shard(1, self.SHARDS)
        start = len(view) // 2
        chunks = list(view.iter_chunks(CHUNK_ROWS, start_row=start))
        first_base = chunks[0][0]
        assert first_base <= start < first_base + len(chunks[0][1])

    def test_rejects_out_of_range_shard(self, seg_store):
        with pytest.raises(ValueError, match="shard"):
            ShardView(seg_store, 4, 4)
        with pytest.raises(ValueError, match="shards"):
            ShardView(seg_store, 0, 0)


class TestStreamedDailyCounts:
    def test_store_matches_whole_trace(
        self, seg_store, seg_columns, seg_config
    ):
        assert seg_store.daily_block_counts(
            seg_config.days, chunk_rows=CHUNK_ROWS
        ) == seg_columns.daily_block_counts(seg_config.days)
