"""Trace fidelity validation."""


from repro.traces import validate_trace
from repro.traces.model import IOKind, IORequest, Trace
from repro.traces.validation import Check, ValidationReport


class TestCheck:
    def test_pass_within_band(self):
        assert Check("x", 0.5, 0.4, 0.6).passed

    def test_fail_outside_band(self):
        assert not Check("x", 0.7, 0.4, 0.6).passed

    def test_boundaries_inclusive(self):
        assert Check("x", 0.4, 0.4, 0.6).passed
        assert Check("x", 0.6, 0.4, 0.6).passed


class TestReport:
    def test_rows_shape(self):
        report = ValidationReport(
            [Check("a", 0.5, 0.0, 1.0), Check("b", 2.0, 0.0, 1.0)]
        )
        rows = report.rows()
        assert rows[0][-1] == "ok"
        assert rows[1][-1] == "FAIL"
        assert not report.passed
        assert len(report.failures()) == 1


class TestSyntheticTracePasses:
    def test_generator_output_passes_all_checks(self, tiny_trace):
        """The calibrated generator must satisfy its own target bands."""
        report = validate_trace(tiny_trace, days=8)
        assert report.passed, [c.name for c in report.failures()]

    def test_days_inferred(self, tiny_trace):
        report = validate_trace(tiny_trace)
        assert report.passed, [c.name for c in report.failures()]


class TestUnfaithfulTraceFails:
    def test_uniform_workload_flunks_skew(self):
        """A skew-free trace must fail the O1 checks."""
        requests = [
            IORequest(
                issue_time=float(i * 17 % 86400) + (i % 3) * 86400,
                completion_time=float(i * 17 % 86400) + (i % 3) * 86400 + 0.01,
                server_id=0,
                volume_id=0,
                block_offset=(i % 500) * 16,
                block_count=8,
                kind=IOKind.READ,
            )
            for i in range(3000)
        ]
        requests.sort(key=lambda r: r.issue_time)
        report = validate_trace(Trace(requests), days=3)
        assert not report.passed
        failing = {c.name for c in report.failures()}
        assert any(name.startswith("O1") for name in failing)

    def test_write_only_trace_flunks_mix(self):
        requests = [
            IORequest(
                issue_time=float(i),
                completion_time=float(i) + 0.01,
                server_id=0,
                volume_id=0,
                block_offset=i * 16,
                block_count=8,
                kind=IOKind.WRITE,
            )
            for i in range(200)
        ]
        report = validate_trace(Trace(requests), days=1)
        assert any(
            c.name == "mix: read fraction of blocks" and not c.passed
            for c in report.checks
        )
