"""MSR-Cambridge CSV trace I/O round-tripping."""

import pytest

from repro.traces import IOKind, IORequest, Trace, read_msr_csv, write_msr_csv
from repro.traces.msr import TICKS_PER_SECOND


@pytest.fixture
def sample_csv(tmp_path):
    path = tmp_path / "trace.csv"
    rows = [
        # ts(ticks), host, disk, type, offset(bytes), size(bytes), response(ticks)
        f"{10 * TICKS_PER_SECOND},web0,0,Read,8192,4096,{TICKS_PER_SECOND // 100}",
        f"{11 * TICKS_PER_SECOND},web0,1,Write,512,1024,{TICKS_PER_SECOND // 50}",
        f"{12 * TICKS_PER_SECOND},db1,0,Read,0,513,{TICKS_PER_SECOND // 100}",
    ]
    path.write_text("\n".join(rows) + "\n")
    return path


class TestReadMsrCsv:
    def test_reads_all_rows(self, sample_csv):
        trace = read_msr_csv(sample_csv)
        assert len(trace) == 3

    def test_time_rebased_to_first_record(self, sample_csv):
        trace = read_msr_csv(sample_csv)
        assert trace.requests[0].issue_time == 0.0
        assert trace.requests[1].issue_time == pytest.approx(1.0)

    def test_hostnames_numbered_in_order(self, sample_csv):
        trace = read_msr_csv(sample_csv)
        assert trace.requests[0].server_id == 0  # web0
        assert trace.requests[2].server_id == 1  # db1

    def test_explicit_server_ids(self, sample_csv):
        trace = read_msr_csv(sample_csv, server_ids={"db1": 7})
        assert trace.requests[2].server_id == 7

    def test_offset_and_size_in_blocks(self, sample_csv):
        first = read_msr_csv(sample_csv).requests[0]
        assert first.block_offset == 16  # 8192 / 512
        assert first.block_count == 8  # 4096 / 512

    def test_sub_block_size_rounds_up(self, sample_csv):
        third = read_msr_csv(sample_csv).requests[2]
        assert third.block_count == 2  # 513 bytes -> 2 blocks

    def test_alignment_detected(self, sample_csv):
        trace = read_msr_csv(sample_csv)
        assert trace.requests[0].aligned_4k
        assert not trace.requests[1].aligned_4k

    def test_kinds(self, sample_csv):
        trace = read_msr_csv(sample_csv)
        assert trace.requests[0].is_read
        assert trace.requests[1].is_write

    def test_response_time(self, sample_csv):
        first = read_msr_csv(sample_csv).requests[0]
        assert first.completion_time - first.issue_time == pytest.approx(0.01)


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        original = Trace(
            [
                IORequest(
                    issue_time=0.0,
                    completion_time=0.02,
                    server_id=0,
                    volume_id=2,
                    block_offset=64,
                    block_count=8,
                    kind=IOKind.WRITE,
                ),
                IORequest(
                    issue_time=5.5,
                    completion_time=5.51,
                    server_id=1,
                    volume_id=0,
                    block_offset=1,
                    block_count=3,
                    kind=IOKind.READ,
                    aligned_4k=False,
                ),
            ]
        )
        path = tmp_path / "out.csv"
        write_msr_csv(original, path)
        loaded = read_msr_csv(path)
        assert len(loaded) == len(original)
        for a, b in zip(original, loaded):
            assert a.block_offset == b.block_offset
            assert a.block_count == b.block_count
            assert a.kind == b.kind
            assert a.issue_time == pytest.approx(b.issue_time, abs=1e-6)
            assert a.completion_time == pytest.approx(b.completion_time, abs=1e-6)
