"""White-box tests of the synthetic generator's building blocks.

The black-box O1/O2 tests in test_synthetic.py validate outcomes; these
pin down the individual mechanisms so calibration regressions localize.
"""

import numpy as np
import pytest

from repro.traces.servers import PAPER_SERVERS
from repro.traces.synthetic import (
    DAY0_INTENSITY,
    EnsembleTraceGenerator,
    SLOT_BLOCKS,
    SyntheticTraceConfig,
    _TAIL_COUNTS,
    _TAIL_PROBS,
)


@pytest.fixture(scope="module")
def generator():
    return EnsembleTraceGenerator(SyntheticTraceConfig(scale=1e-5))


class TestTailDistribution:
    def test_counts_bounded_by_ten(self):
        # O1: the non-hot 99% never exceed 10 accesses/day.
        assert _TAIL_COUNTS.max() == 10

    def test_o1_quantiles(self):
        le4 = _TAIL_PROBS[_TAIL_COUNTS <= 4].sum()
        assert le4 > 0.96  # x 99% non-hot ~= the paper's 97%
        assert _TAIL_PROBS[0] == pytest.approx(0.48, abs=0.05)

    def test_probabilities_normalized(self):
        assert _TAIL_PROBS.sum() == pytest.approx(1.0)


class TestHeadCounts:
    def test_floor_eleven(self, generator):
        rng = np.random.default_rng(0)
        counts, _ = generator._zipf_head_counts(rng, 500, 500 * 90, 1.0)
        assert counts.min() >= 11

    def test_sorted_descending(self, generator):
        rng = np.random.default_rng(0)
        counts, _ = generator._zipf_head_counts(rng, 100, 100 * 90, 1.0)
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_mean_tracks_target(self, generator):
        rng = np.random.default_rng(1)
        total = 0
        n = 0
        for _ in range(80):
            counts, _ = generator._zipf_head_counts(rng, 50, 50 * 90, 1.0)
            total += counts.sum()
            n += len(counts)
        assert total / n == pytest.approx(90, rel=0.25)

    def test_top_band_present_for_large_sets(self, generator):
        rng = np.random.default_rng(2)
        counts, n_top = generator._zipf_head_counts(rng, 400, 400 * 90, 1.0)
        assert n_top > 0
        assert counts.max() >= 250

    def test_empty(self, generator):
        counts, n_top = generator._zipf_head_counts(
            np.random.default_rng(0), 0, 0, 1.0
        )
        assert len(counts) == 0 and n_top == 0

    def test_solver_monotone(self, generator):
        solve = generator._solve_pareto1_max
        assert solve(30.0, 11.0) < solve(60.0, 11.0) < solve(120.0, 11.0)

    def test_solver_hits_target_mean(self, generator):
        import math

        floor = 11.0
        for target in (20.0, 50.0, 95.0):
            m = generator._solve_pareto1_max(target, floor)
            mean = floor * math.log(m / floor) / (1.0 - floor / m)
            assert mean == pytest.approx(target, rel=0.01)


class TestMinuteWeights:
    def test_normalized(self, generator):
        for day in (0, 3):
            weights = generator._minute_weights(PAPER_SERVERS[0], day)
            assert weights.sum() == pytest.approx(1.0)
            assert len(weights) == 1440

    def test_day0_masks_untraced_hours(self, generator):
        weights = generator._minute_weights(PAPER_SERVERS[0], 0)
        cutoff = 1440 - int(1440 * DAY0_INTENSITY)
        assert weights[:cutoff].sum() == 0.0
        assert weights[cutoff:].sum() == pytest.approx(1.0)

    def test_full_days_cover_all_minutes(self, generator):
        weights = generator._minute_weights(PAPER_SERVERS[0], 2)
        assert (weights > 0).all()


class TestHotShareMapping:
    def test_clipped_to_sane_band(self, generator):
        for skew in (0.0, 0.15, 1.0, 1.6, 5.0):
            for factor in (0.5, 1.0, 1.5):
                share = generator._hot_access_share(skew, factor)
                assert 0.01 <= share <= 0.93

    def test_monotone_in_skew(self, generator):
        shares = [
            generator._hot_access_share(skew, 1.0)
            for skew in (0.15, 0.5, 1.0, 1.6)
        ]
        assert shares == sorted(shares)


class TestEffectiveSkew:
    def test_deterministic(self, generator):
        server, volume = PAPER_SERVERS[5], PAPER_SERVERS[5].volumes[0]
        a = generator._effective_skew(server, volume, 3)
        b = generator._effective_skew(server, volume, 3)
        assert a == b

    def test_varies_by_day(self, generator):
        server, volume = PAPER_SERVERS[8], PAPER_SERVERS[8].volumes[0]
        values = {generator._effective_skew(server, volume, d) for d in range(8)}
        assert len(values) > 4


class TestGeometry:
    def test_extent_fits_slot(self, generator):
        rng = np.random.default_rng(0)
        offsets, lengths, aligned = generator._extent_geometry(rng, 2000)
        assert ((offsets + lengths) <= SLOT_BLOCKS).all()

    def test_aligned_extents_start_at_slot(self, generator):
        rng = np.random.default_rng(0)
        offsets, lengths, aligned = generator._extent_geometry(rng, 2000)
        assert (offsets[aligned] == 0).all()
        assert np.isin(lengths[aligned], (8, 16)).all()

    def test_unaligned_fraction(self, generator):
        rng = np.random.default_rng(0)
        _, _, aligned = generator._extent_geometry(rng, 5000)
        assert 0.03 < (~aligned).mean() < 0.10
