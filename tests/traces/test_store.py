"""On-disk trace cache: fingerprints, directory resolution, round-trips."""

import dataclasses

import pytest

from repro.traces import tiny_config
from repro.traces.columnar import ColumnarTrace
from repro.traces.store import (
    CACHE_ENV_VAR,
    _reset_non_directory_warnings,
    cache_path_for,
    config_fingerprint,
    load_or_generate_columnar,
    load_or_generate_trace,
    trace_cache_dir,
)
from repro.traces.synthetic import EnsembleTraceGenerator


class TestFingerprint:
    def test_deterministic(self):
        assert config_fingerprint(tiny_config()) == config_fingerprint(
            tiny_config()
        )

    def test_sensitive_to_every_field(self):
        base = tiny_config()
        for change in (
            {"seed": base.seed + 1},
            {"days": base.days + 1},
            {"scale": base.scale * 2},
        ):
            assert config_fingerprint(
                dataclasses.replace(base, **change)
            ) != config_fingerprint(base)

    def test_sensitive_to_ensemble_inventory(self):
        base = tiny_config()
        trimmed = dataclasses.replace(base, servers=base.servers[:-1])
        assert config_fingerprint(trimmed) != config_fingerprint(base)


class TestDirectoryResolution:
    def test_explicit_argument_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "env"))
        assert trace_cache_dir(tmp_path / "arg") == tmp_path / "arg"

    def test_env_variable_used(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        assert trace_cache_dir() == tmp_path

    @pytest.mark.parametrize("value", ["", "0", "off", "none", " OFF "])
    def test_env_opt_out_disables(self, value, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, value)
        assert trace_cache_dir() is None
        assert cache_path_for(tiny_config()) is None

    def test_default_is_cwd_relative(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        monkeypatch.chdir(tmp_path)
        assert trace_cache_dir() == tmp_path / ".sievestore-trace-cache"

    def test_env_pointing_at_a_file_disables_with_warning(
        self, tmp_path, monkeypatch
    ):
        stray = tmp_path / "stray-file"
        stray.write_text("not a directory")
        monkeypatch.setenv(CACHE_ENV_VAR, str(stray))
        _reset_non_directory_warnings()
        with pytest.warns(RuntimeWarning, match="non-directory") as caught:
            assert trace_cache_dir() is None
        assert CACHE_ENV_VAR in str(caught[0].message)
        assert str(stray) in str(caught[0].message)
        assert cache_path_for(tiny_config()) is None

    def test_non_directory_warning_fires_once_per_path(
        self, tmp_path, monkeypatch
    ):
        import warnings

        stray = tmp_path / "stray-file"
        stray.write_text("not a directory")
        monkeypatch.setenv(CACHE_ENV_VAR, str(stray))
        _reset_non_directory_warnings()
        with pytest.warns(RuntimeWarning, match="non-directory"):
            trace_cache_dir()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert trace_cache_dir() is None

    def test_non_directory_env_still_generates_the_trace(
        self, tmp_path, monkeypatch
    ):
        stray = tmp_path / "stray-file"
        stray.write_text("not a directory")
        monkeypatch.setenv(CACHE_ENV_VAR, str(stray))
        _reset_non_directory_warnings()
        with pytest.warns(RuntimeWarning, match="non-directory"):
            columns = load_or_generate_columnar(tiny_config())
        fresh = EnsembleTraceGenerator(tiny_config()).generate_columnar()
        assert columns.equals(fresh)
        assert stray.read_text() == "not a directory"  # untouched


class TestLoadOrGenerate:
    def test_miss_generates_and_populates(self, tmp_path):
        config = tiny_config()
        columns = load_or_generate_columnar(config, tmp_path)
        assert cache_path_for(config, tmp_path).exists()
        fresh = EnsembleTraceGenerator(config).generate_columnar()
        assert columns.equals(fresh)

    def test_hit_returns_identical_columns(self, tmp_path):
        config = tiny_config()
        first = load_or_generate_columnar(config, tmp_path)
        second = load_or_generate_columnar(config, tmp_path)
        assert second.equals(first)

    def test_corrupt_entry_warns_evicts_and_regenerates(self, tmp_path):
        config = tiny_config()
        first = load_or_generate_columnar(config, tmp_path)
        path = cache_path_for(config, tmp_path)
        path.write_bytes(b"not an npz file")
        with pytest.warns(RuntimeWarning, match="corrupt trace-cache") as rec:
            recovered = load_or_generate_columnar(config, tmp_path)
        # The warning names the offending path so users can find it.
        assert str(path) in str(rec.list[0].message)
        assert recovered.equals(first)
        # The bad entry was overwritten with a loadable one.
        assert ColumnarTrace.load_npz(path).equals(first)

    def test_truncated_entry_warns_and_regenerates(self, tmp_path):
        # A partially-written npz (valid magic, cut short) must not
        # propagate a zip/unpickling error out of the loader.
        config = tiny_config()
        first = load_or_generate_columnar(config, tmp_path)
        path = cache_path_for(config, tmp_path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.warns(RuntimeWarning, match="evicting and regenerating"):
            recovered = load_or_generate_columnar(config, tmp_path)
        assert recovered.equals(first)
        assert ColumnarTrace.load_npz(path).equals(first)

    def test_disabled_cache_still_generates(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, "off")
        monkeypatch.chdir(tmp_path)
        columns = load_or_generate_columnar(tiny_config())
        assert len(columns) > 0
        assert not (tmp_path / ".sievestore-trace-cache").exists()

    def test_object_trace_convenience(self, tmp_path):
        config = tiny_config()
        trace = load_or_generate_trace(config, tmp_path)
        assert trace.requests == load_or_generate_columnar(
            config, tmp_path
        ).to_trace().requests

    def test_unwritable_cache_warns_but_returns_trace(self, tmp_path):
        # The cache dir path is occupied by a *file*.  An explicit
        # cache_dir gets the same warn-once-and-disable guard as the
        # environment variable: the trace must still come back, with
        # one warning explaining the non-directory path instead of a
        # confusing mkdir failure on every cache write.
        blocker = tmp_path / "not-a-directory"
        blocker.write_text("in the way")
        config = tiny_config()
        _reset_non_directory_warnings()
        with pytest.warns(RuntimeWarning, match="non-directory"):
            columns = load_or_generate_columnar(config, blocker)
        assert len(columns) > 0
        fresh = EnsembleTraceGenerator(config).generate_columnar()
        assert columns.equals(fresh)
