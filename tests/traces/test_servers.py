"""Table 1 server inventory fidelity."""

import pytest

from repro.traces.servers import (
    PAPER_SERVERS,
    ServerProfile,
    VolumeProfile,
    paper_ensemble,
    table1_rows,
)


class TestTable1Fidelity:
    """The published Table 1 numbers, row by row."""

    def test_thirteen_servers(self):
        assert len(PAPER_SERVERS) == 13

    def test_total_volumes(self):
        assert sum(s.volume_count for s in PAPER_SERVERS) == 36

    def test_total_spindles(self):
        assert sum(s.spindles for s in PAPER_SERVERS) == 179

    def test_total_size(self):
        assert round(sum(s.size_gb for s in PAPER_SERVERS)) == 6449

    @pytest.mark.parametrize(
        "key,volumes,spindles,size_gb",
        [
            ("usr", 3, 16, 1367),
            ("proj", 5, 44, 2094),
            ("prn", 2, 6, 452),
            ("hm", 2, 6, 39),
            ("rsrch", 3, 24, 277),
            ("prxy", 2, 4, 89),
            ("src1", 3, 12, 555),
            ("src2", 3, 14, 355),
            ("stg", 2, 6, 113),
            ("ts", 1, 2, 22),
            ("web", 4, 17, 441),
            ("mds", 2, 16, 509),
            ("wdev", 4, 12, 136),
        ],
    )
    def test_row(self, key, volumes, spindles, size_gb):
        server = next(s for s in PAPER_SERVERS if s.key == key)
        assert server.volume_count == volumes
        assert server.spindles == spindles
        assert round(server.size_gb) == size_gb


class TestSkewPersonalities:
    def test_proxy_most_skewed(self):
        # Figure 3(a): Prxy exhibits extreme skew.
        prxy = next(s for s in PAPER_SERVERS if s.key == "prxy")
        assert prxy.skew == max(s.skew for s in PAPER_SERVERS)

    def test_source_control_least_skewed(self):
        # Figure 3(a): Src1 is near-linear.
        src1 = next(s for s in PAPER_SERVERS if s.key == "src1")
        assert src1.skew == min(s.skew for s in PAPER_SERVERS)

    def test_staging_wobbles_most(self):
        # Figure 3(c): Stg's skew swings between days.
        stg = next(s for s in PAPER_SERVERS if s.key == "stg")
        assert stg.daily_wobble == max(s.daily_wobble for s in PAPER_SERVERS)

    def test_web_volumes_differ_in_skew(self):
        # Figure 3(b): Web volumes 0 and 1 have different skew.
        web = next(s for s in PAPER_SERVERS if s.key == "web")
        assert web.volumes[0].skew_scale != web.volumes[1].skew_scale

    def test_activity_shares_roughly_normalized(self):
        total = sum(s.activity_share for s in PAPER_SERVERS)
        assert total == pytest.approx(1.0, abs=0.05)


class TestProfileValidation:
    def test_rejects_empty_volumes(self):
        with pytest.raises(ValueError):
            ServerProfile(
                0, "x", "X", 1, tuple(), skew=1.0, activity_share=0.1
            )

    def test_rejects_bad_read_fraction(self):
        with pytest.raises(ValueError):
            ServerProfile(
                0,
                "x",
                "X",
                1,
                (VolumeProfile(0, 10.0),),
                skew=1.0,
                activity_share=0.1,
                read_fraction=1.5,
            )

    def test_volume_access_shares_sum_to_one(self):
        for server in PAPER_SERVERS:
            assert sum(v.access_share for v in server.volumes) == pytest.approx(1.0)


class TestTable1Rows:
    def test_has_total_row(self):
        rows = table1_rows()
        assert rows[-1]["key"] == "Total"
        assert rows[-1]["volumes"] == 36
        assert rows[-1]["spindles"] == 179
        assert rows[-1]["size_gb"] == 6449

    def test_paper_ensemble_returns_fresh_list(self):
        a, b = paper_ensemble(), paper_ensemble()
        assert a == b
        assert a is not b
