"""Day partitioning and per-day counting."""

import pytest

from repro.traces import (
    IOKind,
    IORequest,
    Trace,
    daily_access_totals,
    daily_block_counts,
    daily_read_write_split,
    iter_day_requests,
    per_server_daily_counts,
    split_by_day,
)
from repro.util.intervals import SECONDS_PER_DAY


def request_at(day, offset_s=0.0, server=0, blocks=2, kind=IOKind.READ, block_offset=0):
    issue = day * SECONDS_PER_DAY + offset_s
    return IORequest(
        issue_time=issue,
        completion_time=issue + 0.01,
        server_id=server,
        volume_id=0,
        block_offset=block_offset,
        block_count=blocks,
        kind=kind,
    )


@pytest.fixture
def three_day_trace():
    return Trace(
        [
            request_at(0, 10.0, blocks=2),
            request_at(0, 20.0, blocks=2),
            request_at(1, 5.0, blocks=4, kind=IOKind.WRITE),
            request_at(2, 1.0, blocks=1),
        ]
    )


class TestSplitByDay:
    def test_partitions_by_issue_day(self, three_day_trace):
        days = split_by_day(three_day_trace, 3)
        assert [len(d) for d in days] == [2, 1, 1]

    def test_drops_overflow_days(self, three_day_trace):
        days = split_by_day(three_day_trace, 2)
        assert [len(d) for d in days] == [2, 1]

    def test_rejects_nonpositive_days(self, three_day_trace):
        with pytest.raises(ValueError):
            split_by_day(three_day_trace, 0)


class TestDailyBlockCounts:
    def test_counts_every_block_of_request(self):
        trace = Trace([request_at(0, blocks=4)])
        counts = daily_block_counts(trace, 1)
        assert sum(counts[0].values()) == 4
        assert all(v == 1 for v in counts[0].values())

    def test_repeat_accesses_accumulate(self):
        trace = Trace([request_at(0, 1.0), request_at(0, 2.0)])
        counts = daily_block_counts(trace, 1)
        assert all(v == 2 for v in counts[0].values())

    def test_days_are_independent(self, three_day_trace):
        counts = daily_block_counts(three_day_trace, 3)
        assert sum(counts[0].values()) == 4
        assert sum(counts[1].values()) == 4
        assert sum(counts[2].values()) == 1


class TestTotalsAndSplits:
    def test_daily_access_totals(self, three_day_trace):
        assert daily_access_totals(three_day_trace, 3) == [4, 4, 1]

    def test_read_write_split(self, three_day_trace):
        splits = daily_read_write_split(three_day_trace, 3)
        assert splits[0] == (4, 0)
        assert splits[1] == (0, 4)
        assert splits[2] == (1, 0)


class TestIterDayRequests:
    def test_yields_only_that_day(self, three_day_trace):
        day1 = list(iter_day_requests(three_day_trace, 1))
        assert len(day1) == 1
        assert day1[0].is_write


class TestPerServerDailyCounts:
    def test_separates_servers(self):
        trace = Trace(
            sorted(
                [request_at(0, server=1), request_at(0, 5.0, server=2)],
                key=lambda r: r.issue_time,
            )
        )
        result = per_server_daily_counts(trace, 1)
        assert set(result) == {1, 2}
        for server_id, counters in result.items():
            for address in counters[0]:
                assert address >> 48 == server_id
