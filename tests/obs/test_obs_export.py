"""Exporters: Prometheus text exposition, JSON, and the minimal parser."""

import json

import pytest

from repro.obs.export import (
    PrometheusParseError,
    parse_prometheus,
    to_json,
    to_prometheus,
)
from repro.obs.metrics import MetricsRegistry


def build_snapshot():
    registry = MetricsRegistry()
    registry.counter(
        "requests_total", "Requests by outcome", ("outcome",)
    ).inc(3, outcome="ok")
    registry.gauge("throughput", "Blocks per second").set(1234.5)
    hist = registry.histogram(
        "wait_seconds", "Wait time", ("executor",), buckets=(0.1, 1.0)
    )
    hist.observe(0.05, executor="pool")
    hist.observe(0.5, executor="pool")
    hist.observe(5.0, executor="pool")
    return registry.snapshot()


class TestToPrometheus:
    def test_headers_and_samples(self):
        text = to_prometheus(build_snapshot())
        assert "# HELP requests_total Requests by outcome\n" in text
        assert "# TYPE requests_total counter\n" in text
        assert 'requests_total{outcome="ok"} 3\n' in text
        assert "# TYPE throughput gauge\n" in text
        assert "throughput 1234.5\n" in text

    def test_histogram_expansion_is_cumulative(self):
        text = to_prometheus(build_snapshot())
        assert 'wait_seconds_bucket{executor="pool",le="0.1"} 1' in text
        assert 'wait_seconds_bucket{executor="pool",le="1"} 2' in text
        assert 'wait_seconds_bucket{executor="pool",le="+Inf"} 3' in text
        assert 'wait_seconds_sum{executor="pool"} 5.55' in text
        assert 'wait_seconds_count{executor="pool"} 3' in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", ("k",)).inc(k='a"b\\c\nd')
        text = to_prometheus(registry.snapshot())
        assert 'c_total{k="a\\"b\\\\c\\nd"} 1' in text

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus(MetricsRegistry().snapshot()) == ""


class TestParsePrometheus:
    def test_round_trip(self):
        parsed = parse_prometheus(to_prometheus(build_snapshot()))
        assert parsed["requests_total"]["type"] == "counter"
        assert parsed["requests_total"]["help"] == "Requests by outcome"
        assert parsed["requests_total"]["samples"][
            ("requests_total", (("outcome", "ok"),))
        ] == 3.0
        assert parsed["throughput"]["samples"][("throughput", ())] == 1234.5
        # Histogram series attribute to the base metric.
        hist = parsed["wait_seconds"]["samples"]
        assert hist[
            ("wait_seconds_bucket", (("executor", "pool"), ("le", "+Inf")))
        ] == 3.0
        assert hist[("wait_seconds_count", (("executor", "pool"),))] == 3.0

    def test_escaped_label_values_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", ("k",)).inc(k='a"b\\c\nd')
        parsed = parse_prometheus(to_prometheus(registry.snapshot()))
        ((name, labels),) = parsed["c_total"]["samples"]
        assert labels == (("k", 'a"b\\c\nd'),)

    def test_sample_before_type_line_rejected(self):
        with pytest.raises(PrometheusParseError, match="TYPE"):
            parse_prometheus("orphan_total 3\n")

    def test_bad_value_rejected(self):
        with pytest.raises(PrometheusParseError, match="bad sample value"):
            parse_prometheus(
                "# TYPE a_total counter\na_total not_a_number\n"
            )

    def test_missing_value_rejected(self):
        with pytest.raises(PrometheusParseError, match="without a value"):
            parse_prometheus("# TYPE a_total counter\na_total{x=\"y\"}\n")

    def test_duplicate_sample_rejected(self):
        with pytest.raises(PrometheusParseError, match="duplicate"):
            parse_prometheus(
                "# TYPE a_total counter\na_total 1\na_total 2\n"
            )

    def test_unknown_type_rejected(self):
        with pytest.raises(PrometheusParseError, match="unknown type"):
            parse_prometheus("# TYPE a_total summary\n")


class TestToJson:
    def test_deterministic_and_parseable(self):
        snapshot = build_snapshot()
        first = to_json(snapshot)
        assert first == to_json(snapshot)
        data = json.loads(first)
        assert data["requests_total"]["kind"] == "counter"
        assert data["wait_seconds"]["buckets"] == [0.1, 1.0]
