"""Event log: append-mode JSON lines, span/timer helpers, runtime switch."""

import pytest

from repro.obs import runtime
from repro.obs.events import EventLog, read_events, span, timer
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def observability_off():
    """Every test starts and ends with the process-wide switch off."""
    runtime.disable()
    yield
    runtime.disable()


class TestEventLog:
    def test_emit_and_read_back(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("run_start", policy="aod-16", requests=100)
            log.emit("run_end", policy="aod-16")
        events = read_events(path)
        assert [e["event"] for e in events] == ["run_start", "run_end"]
        assert events[0]["policy"] == "aod-16"
        assert events[0]["requests"] == 100
        assert isinstance(events[0]["ts"], float)

    def test_append_mode_preserves_existing_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("run_start")
        with EventLog(path) as log:
            log.emit("run_resume")
        assert [e["event"] for e in read_events(path)] == [
            "run_start", "run_resume",
        ]

    def test_emit_after_close_is_a_noop(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.close()
        log.emit("late")  # must not raise
        assert read_events(tmp_path / "events.jsonl") == []

    def test_lines_are_flushed_as_written(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("crashy")
        # Read *before* close: a crashed run keeps what it emitted.
        assert [e["event"] for e in read_events(path)] == ["crashy"]
        log.close()


class TestSpan:
    def test_span_emits_start_and_end(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            with span(log, "epoch", policy="ideal"):
                pass
        start, end = read_events(path)
        assert start["event"] == "epoch_start"
        assert end["event"] == "epoch_end"
        assert end["ok"] is True
        assert end["seconds"] >= 0
        assert end["policy"] == "ideal"

    def test_span_marks_failure_and_reraises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            with pytest.raises(RuntimeError, match="boom"):
                with span(log, "epoch"):
                    raise RuntimeError("boom")
        end = read_events(path)[-1]
        assert end["event"] == "epoch_end"
        assert end["ok"] is False

    def test_none_log_is_free(self):
        with span(None, "epoch"):
            pass  # must not raise


class TestTimer:
    def test_observes_block_duration(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t_seconds", buckets=(10.0,))
        with timer(histogram):
            pass
        sample = histogram.value()
        assert sample.count == 1
        assert sample.sum >= 0

    def test_none_histogram_is_free(self):
        with timer(None):
            pass  # must not raise


class TestRuntimeSwitch:
    def test_off_by_default(self):
        assert not runtime.enabled()
        assert runtime.get_context() is None
        assert runtime.get_registry() is None
        assert runtime.get_events() is None

    def test_enable_installs_context(self, tmp_path):
        context = runtime.enable(events_path=tmp_path / "ev.jsonl")
        try:
            assert runtime.enabled()
            assert runtime.get_registry() is context.registry
            assert runtime.get_events() is context.events
        finally:
            runtime.disable()
        assert not runtime.enabled()

    def test_observability_context_manager_restores_prior_state(self):
        assert not runtime.enabled()
        with runtime.observability() as context:
            assert runtime.get_registry() is context.registry
        assert not runtime.enabled()

    def test_scoped_registry_isolates_and_restores(self, tmp_path):
        outer = runtime.enable(events_path=tmp_path / "ev.jsonl")
        try:
            outer.registry.counter("outer_total").inc()
            with runtime.scoped_registry() as scoped:
                assert scoped.registry is not outer.registry
                # The surrounding event log is kept.
                assert scoped.events is outer.events
                scoped.registry.counter("inner_total").inc()
                assert scoped.registry.get("outer_total") is None
            assert runtime.get_registry() is outer.registry
            assert outer.registry.get("inner_total") is None
        finally:
            runtime.disable()
