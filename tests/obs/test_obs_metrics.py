"""Metrics registry: counters, gauges, histograms, snapshot merging."""

import pickle

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Histogram,
    MetricError,
    MetricsRegistry,
    MetricsSnapshot,
)


class TestCounter:
    def test_inc_accumulates_per_label_set(self):
        counter = Counter("requests_total", labelnames=("outcome",))
        counter.inc(outcome="ok")
        counter.inc(3, outcome="ok")
        counter.inc(outcome="failed")
        assert counter.value(outcome="ok") == 4
        assert counter.value(outcome="failed") == 1

    def test_untouched_sample_reads_zero(self):
        counter = Counter("requests_total", labelnames=("outcome",))
        assert counter.value(outcome="never") == 0

    def test_negative_inc_rejected(self):
        counter = Counter("requests_total")
        with pytest.raises(MetricError, match="cannot decrease"):
            counter.inc(-1)

    def test_set_total_adopts_external_tally(self):
        counter = Counter("admissions_total", labelnames=("policy",))
        counter.set_total(10, policy="c")
        counter.set_total(25, policy="c")
        assert counter.value(policy="c") == 25

    def test_set_total_rejects_backwards_movement(self):
        counter = Counter("admissions_total")
        counter.set_total(10)
        with pytest.raises(MetricError, match="moved backwards"):
            counter.set_total(9)

    def test_wrong_label_names_rejected(self):
        counter = Counter("requests_total", labelnames=("outcome",))
        with pytest.raises(MetricError, match="expected labels"):
            counter.inc(status="ok")
        with pytest.raises(MetricError, match="expected labels"):
            counter.inc()  # missing the declared label entirely

    def test_label_values_stringified(self):
        counter = Counter("epochs_total", labelnames=("epoch",))
        counter.inc(epoch=7)
        assert counter.value(epoch="7") == 1


class TestGauge:
    def test_set_overwrites(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("table_entries", labelnames=("policy",))
        gauge.set(10, policy="c")
        gauge.set(4, policy="c")
        assert gauge.value(policy="c") == 4


class TestHistogram:
    def test_observe_buckets_sum_count(self):
        histogram = Histogram("wait_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        sample = histogram.value()
        assert sample.bucket_counts == [1, 2, 1]  # 50.0 only lands in +Inf
        assert sample.count == 5
        assert sample.sum == pytest.approx(56.05)

    def test_default_buckets_used_when_unspecified(self):
        assert Histogram("t").buckets == DEFAULT_BUCKETS

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(MetricError, match="sorted"):
            Histogram("t", buckets=(1.0, 0.5))

    def test_empty_buckets_rejected(self):
        with pytest.raises(MetricError, match="non-empty"):
            Histogram("t", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "help", ("x",))
        second = registry.counter("a_total", "help", ("x",))
        assert first is second
        assert len(registry) == 1

    def test_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        with pytest.raises(MetricError, match="already registered"):
            registry.gauge("a_total")

    def test_label_schema_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total", labelnames=("x",))
        with pytest.raises(MetricError, match="already registered"):
            registry.counter("a_total", labelnames=("y",))

    def test_histogram_bucket_clash_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(MetricError, match="buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_invalid_names_rejected(self):
        with pytest.raises(MetricError):
            Counter("")
        with pytest.raises(MetricError):
            Counter("has space")
        with pytest.raises(MetricError):
            Counter("9starts_with_digit")


def build_snapshot(counter_by=2, gauge_value=1.0):
    registry = MetricsRegistry()
    registry.counter("c_total", "c", ("k",)).inc(counter_by, k="a")
    registry.gauge("g", "g", ("k",)).set(gauge_value, k="a")
    registry.histogram("h", "h", (), buckets=(1.0, 10.0)).observe(0.5)
    return registry.snapshot()


class TestSnapshot:
    def test_snapshot_is_a_deep_copy(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc(5)
        snap = registry.snapshot()
        counter.inc(5)
        assert snap.metrics["c_total"]["samples"][()] == 5

    def test_snapshot_pickles(self):
        snap = build_snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone.metrics == snap.metrics

    def test_counters_and_histograms_add_gauges_keep_max(self):
        merged = MetricsSnapshot.merged(
            [build_snapshot(counter_by=2, gauge_value=7.0),
             build_snapshot(counter_by=3, gauge_value=4.0)]
        )
        assert merged.metrics["c_total"]["samples"][("a",)] == 5
        assert merged.metrics["g"]["samples"][("a",)] == 7.0
        hist = merged.metrics["h"]["samples"][()]
        assert hist == {"bucket_counts": [2, 0], "sum": 1.0, "count": 2}

    def test_merge_is_order_independent_for_gauges(self):
        a = build_snapshot(gauge_value=7.0)
        b = build_snapshot(gauge_value=4.0)
        ab = MetricsSnapshot.merged([a, b])
        ba = MetricsSnapshot.merged([b, a])
        assert ab.metrics == ba.metrics

    def test_merge_rejects_schema_clash(self):
        registry = MetricsRegistry()
        registry.gauge("c_total", "", ("k",)).set(1, k="a")
        with pytest.raises(MetricError, match="cannot merge"):
            build_snapshot().merge(registry.snapshot())

    def test_merge_rejects_bucket_mismatch(self):
        registry = MetricsRegistry()
        registry.histogram("h", "h", (), buckets=(2.0, 20.0)).observe(0.5)
        with pytest.raises(MetricError, match="bucket bounds differ"):
            build_snapshot().merge(registry.snapshot())

    def test_merge_does_not_alias_the_source(self):
        target = MetricsSnapshot()
        source = build_snapshot()
        target.merge(source)
        target.metrics["h"]["samples"][()]["count"] += 100
        assert source.metrics["h"]["samples"][()]["count"] == 1

    def test_to_jsonable_round_trips_through_json(self):
        import json

        data = json.loads(json.dumps(build_snapshot().to_jsonable()))
        assert data["c_total"]["samples"] == [
            {"labels": {"k": "a"}, "value": 2}
        ]
        assert data["h"]["buckets"] == [1.0, 10.0]


class TestMergeSnapshotIntoRegistry:
    def test_live_metrics_accumulate_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "c", ("k",)).inc(10, k="a")
        registry.merge_snapshot(build_snapshot(counter_by=2))
        assert registry.get("c_total").value(k="a") == 12
        # Absent metrics are created with the snapshot's schema.
        assert registry.get("g").value(k="a") == 1.0
        assert registry.get("h").value().count == 1

    def test_gauge_merge_keeps_maximum(self):
        registry = MetricsRegistry()
        registry.gauge("g", "g", ("k",)).set(9.0, k="a")
        registry.merge_snapshot(build_snapshot(gauge_value=4.0))
        assert registry.get("g").value(k="a") == 9.0
