"""Parallel policy-suite execution equals the serial reference run."""

import json

import pytest

from repro.faults import FaultPlan, OutageWindow
from repro.sim.experiment import run_policy_suite
from repro.sim.parallel import (
    MANIFEST_SCHEMA_VERSION,
    default_jobs,
    run_suite_parallel,
)

#: A small but representative slice: oracle, discrete sieve, unsieved.
SUITE = ("ideal", "sievestore-d", "aod-16")


@pytest.fixture(scope="module")
def serial_results(tiny_context):
    return run_policy_suite(
        tiny_context, SUITE, track_minutes=True, fast_path=True, jobs=1
    )


def assert_suites_equal(parallel, serial):
    assert set(parallel) == set(serial)
    for name in serial:
        assert parallel[name].policy_name == serial[name].policy_name
        assert parallel[name].stats.per_day == serial[name].stats.per_day
        assert (
            parallel[name].stats.per_minute == serial[name].stats.per_minute
        )


def test_two_workers_match_serial(tiny_context, serial_results):
    parallel = run_policy_suite(
        tiny_context, SUITE, track_minutes=True, fast_path=True, jobs=2
    )
    assert_suites_equal(parallel, serial_results)


def test_all_cores_match_serial(tiny_context, serial_results):
    parallel = run_policy_suite(
        tiny_context, SUITE, track_minutes=True, fast_path=True, jobs=None
    )
    assert_suites_equal(parallel, serial_results)


def test_object_path_through_workers(tiny_context):
    # fast_path=False in the workers must also equal the serial run.
    serial = run_policy_suite(
        tiny_context, ("aod-16",), track_minutes=False, fast_path=False, jobs=1
    )
    parallel = run_policy_suite(
        tiny_context, ("aod-16",), track_minutes=False, fast_path=False, jobs=2
    )
    assert (
        parallel["aod-16"].stats.per_day == serial["aod-16"].stats.per_day
    )


def test_results_keyed_in_request_order(tiny_context):
    names = ("aod-16", "ideal")
    results = run_suite_parallel(
        tiny_context, names, track_minutes=False, jobs=2
    )
    assert list(results) == list(names)


def test_invalid_jobs_rejected(tiny_context):
    with pytest.raises(ValueError):
        run_suite_parallel(tiny_context, SUITE, jobs=-1)


def test_default_jobs_positive():
    assert default_jobs() >= 1


class TestManifestMetadata:
    """Manifest schema v2: per-task fault-plan and checkpoint metadata."""

    def test_fields_default_to_none(self, tiny_context):
        results = run_policy_suite(
            tiny_context, ("aod-16",), track_minutes=False, jobs=1
        )
        assert results.manifest["schema"] == MANIFEST_SCHEMA_VERSION
        (task,) = results.manifest["tasks"]
        assert task["fault_plan"] is None
        assert task["checkpoint"] is None

    def test_records_plan_fingerprint_and_checkpoint(self, tiny_context,
                                                     tmp_path):
        plan = FaultPlan(outages=(OutageWindow(1e9,),))  # beyond the trace
        results = run_policy_suite(
            tiny_context, ("aod-16", "ideal"), track_minutes=False, jobs=1,
            fault_plan=plan, checkpoint_dir=tmp_path, checkpoint_every=5000,
        )
        for task in results.manifest["tasks"]:
            assert task["fault_plan"] == plan.fingerprint()
            assert task["checkpoint"] == {
                "path": str(tmp_path / f"{task['policy']}.ckpt"),
                "every": 5000,
            }
        # The per-task checkpoint files were actually written.
        assert (tmp_path / "aod-16.ckpt").exists()

    def test_manifest_serialization_round_trip(self, tiny_context, tmp_path):
        plan = FaultPlan(outages=(OutageWindow(1e9,),))
        results = run_policy_suite(
            tiny_context, ("aod-16",), track_minutes=False, jobs=1,
            fault_plan=plan, checkpoint_dir=tmp_path / "ckpts",
        )
        path = tmp_path / "manifest.json"
        results.save_manifest(path)
        assert json.loads(path.read_text()) == results.manifest
