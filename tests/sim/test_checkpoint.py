"""Crash-consistent checkpoint/resume and fault-plan simulation."""

import json

import pytest

from repro.faults import ErrorWindow, FaultPlan, OutageWindow
from repro.sim import resume_simulation, simulate
from repro.sim.experiment import build_policy
from repro.sim.serialize import (
    CHECKPOINT_MAGIC,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
    stats_to_dict,
)
from repro.traces.model import Trace
from repro.util.intervals import SECONDS_PER_DAY

#: Cadence chosen so the final checkpoint of the shared tiny trace
#: (37k requests) lands mid-trace, never on the last request.
EVERY = 997


def run(ctx, policy_name="sievestore-d", fast=False, track_minutes=False,
        **kwargs):
    policy, capacity = build_policy(policy_name, ctx)
    trace = ctx.columnar_trace() if fast else ctx.object_trace()
    return simulate(
        trace, policy, capacity_blocks=capacity, days=ctx.days,
        track_minutes=track_minutes, fast_path=fast, **kwargs
    )


class TestCheckpointFileFormat:
    def test_payload_round_trip(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint({"cursor": 41, "nested": {"k": [1, 2]}}, path)
        assert load_checkpoint(path) == {"cursor": 41, "nested": {"k": [1, 2]}}

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "absent.ckpt")

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "not.ckpt"
        path.write_bytes(b"definitely not a checkpoint, far too short?")
        with pytest.raises(CheckpointError, match="not a SieveStore"):
            load_checkpoint(path)

    def test_detects_corruption(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint({"cursor": 1}, path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_detects_truncation(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint({"cursor": 1, "pad": "x" * 256}, path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-20])
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_refuses_unknown_schema_version(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint({"cursor": 1}, path)
        raw = bytearray(path.read_bytes())
        raw[len(CHECKPOINT_MAGIC) + 3] += 1  # bump the version field
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="schema version"):
            load_checkpoint(path)

    def test_rejects_nonpositive_cadence(self, tiny_context, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            run(tiny_context, checkpoint_path=tmp_path / "c.ckpt",
                checkpoint_every=0)


class TestResumeEquivalence:
    @pytest.mark.parametrize("fast", [False, True],
                             ids=["object-engine", "fast-engine"])
    def test_resume_is_bit_identical(self, tiny_context, tmp_path, fast):
        baseline = run(tiny_context, fast=fast, track_minutes=True)
        path = tmp_path / "mid.ckpt"
        checkpointed = run(
            tiny_context, fast=fast, track_minutes=True,
            checkpoint_path=path, checkpoint_every=EVERY,
        )
        # Checkpointing itself must not perturb the run.
        assert stats_to_dict(checkpointed.stats) == stats_to_dict(
            baseline.stats
        )
        # The file on disk is the *last periodic* checkpoint — a genuine
        # mid-trace state.  Resuming replays only the tail, yet per-day
        # AND per-minute statistics come out bit-identical.
        cursor = load_checkpoint(path)["cursor"]
        assert 0 < cursor < len(tiny_context.object_trace().requests)
        trace = (
            tiny_context.columnar_trace()
            if fast
            else tiny_context.object_trace()
        )
        resumed = resume_simulation(path, trace)
        assert resumed.engine == ("fast" if fast else "object")
        assert stats_to_dict(resumed.stats) == stats_to_dict(baseline.stats)
        assert sorted(resumed.cache.residents()) == sorted(
            baseline.cache.residents()
        )

    def test_resume_accepts_either_trace_form(self, tiny_context, tmp_path):
        path = tmp_path / "c.ckpt"
        baseline = run(tiny_context, checkpoint_path=path,
                       checkpoint_every=EVERY)
        resumed = resume_simulation(path, tiny_context.columnar_trace())
        assert stats_to_dict(resumed.stats) == stats_to_dict(baseline.stats)

    def test_resume_requires_a_trace(self, tiny_context, tmp_path):
        path = tmp_path / "c.ckpt"
        run(tiny_context, checkpoint_path=path, checkpoint_every=EVERY)
        with pytest.raises(CheckpointError, match="do not embed the trace"):
            resume_simulation(path)

    def test_resume_rejects_mismatched_trace(self, tiny_context, tmp_path):
        path = tmp_path / "c.ckpt"
        run(tiny_context, checkpoint_path=path, checkpoint_every=EVERY)
        wrong = Trace(tiny_context.object_trace().requests[:100])
        with pytest.raises(CheckpointError, match="does not match"):
            resume_simulation(path, wrong)

    def test_resume_with_faults_is_bit_identical(self, tiny_context, tmp_path):
        plan = FaultPlan(
            errors=(ErrorWindow(
                2.0 * SECONDS_PER_DAY, 2.5 * SECONDS_PER_DAY, "read", 0.5
            ),),
            outages=(OutageWindow(
                4.0 * SECONDS_PER_DAY, 4.5 * SECONDS_PER_DAY
            ),),
            seed=13,
        )
        baseline = run(tiny_context, policy_name="aod-16", fault_plan=plan)
        path = tmp_path / "f.ckpt"
        run(tiny_context, policy_name="aod-16", fault_plan=plan,
            checkpoint_path=path, checkpoint_every=EVERY)
        resumed = resume_simulation(path, tiny_context.object_trace())
        # The injector's RNG stream and wear state ride inside the
        # checkpoint, so even probabilistic error draws replay exactly.
        assert stats_to_dict(resumed.stats) == stats_to_dict(baseline.stats)


class TestFaultSimulation:
    def test_mid_trace_outage_completes_and_reports_time(self, tiny_context):
        plan = FaultPlan(outages=(OutageWindow(
            3.0 * SECONDS_PER_DAY, 4.0 * SECONDS_PER_DAY
        ),))
        result = run(tiny_context, policy_name="aod-16", fault_plan=plan)
        assert result.stats.bypass_seconds == SECONDS_PER_DAY
        assert result.stats.total.bypass_accesses > 0
        payload = stats_to_dict(result.stats)
        assert payload["bypass_seconds"] == SECONDS_PER_DAY

    def test_degraded_window_reports_time_and_errors(self, tiny_context):
        plan = FaultPlan(errors=(ErrorWindow(
            2.0 * SECONDS_PER_DAY, 2.5 * SECONDS_PER_DAY, "read"
        ),))
        result = run(tiny_context, policy_name="aod-16", fault_plan=plan)
        assert result.stats.degraded_seconds == pytest.approx(
            0.5 * SECONDS_PER_DAY
        )
        assert result.stats.total.read_errors > 0

    def test_empty_plan_is_byte_identical(self, tiny_context):
        reference = run(tiny_context)
        empty = run(tiny_context, fault_plan=FaultPlan())
        assert json.dumps(stats_to_dict(empty.stats)) == json.dumps(
            stats_to_dict(reference.stats)
        )
        # No fault keys leak into fault-free output.
        payload = stats_to_dict(reference.stats)
        assert "degraded_seconds" not in payload
        assert all("read_errors" not in day for day in payload["per_day"])

    def test_fault_plan_forces_object_engine(self, tiny_context, monkeypatch):
        import repro.sim.engine as engine_module

        monkeypatch.setattr(engine_module, "_FALLBACK_WARNED", False)
        plan = FaultPlan(outages=(OutageWindow(0.0, 1.0),))
        with pytest.warns(RuntimeWarning, match="fault plan active"):
            result = run(tiny_context, fast=True, fault_plan=plan)
        assert result.engine == "object"
