"""JSON result serialization round-tripping."""

import json

import pytest

from repro.cache.stats import CacheStats
from repro.sim.engine import SimulationResult
from repro.sim.serialize import (
    SCHEMA_VERSION,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
    stats_from_dict,
    stats_to_dict,
)


def sample_stats():
    stats = CacheStats(days=2)
    stats.record_hit(10.0, is_write=False, blocks=3)
    stats.record_miss(20.0, is_write=True, blocks=2)
    stats.record_allocation_write(20.5, blocks=2)
    stats.record_backing_write(21.0, blocks=1, is_writeback=True)
    stats.record_ssd_io(10.0, 4, is_write=False)
    stats.record_ssd_io(86401.0, 2, is_write=True)
    return stats


def sample_result():
    return SimulationResult(
        policy_name="sievestore-c",
        stats=sample_stats(),
        cache=None,
        policy=None,
        wall_seconds=1.25,
        engine="fast",
    )


class TestStatsRoundTrip:
    def test_per_day_preserved(self):
        original = sample_stats()
        restored = stats_from_dict(stats_to_dict(original))
        for a, b in zip(original.per_day, restored.per_day):
            assert a == b

    def test_per_minute_preserved(self):
        original = sample_stats()
        restored = stats_from_dict(stats_to_dict(original))
        assert restored.per_minute.keys() == original.per_minute.keys()
        for minute in original.per_minute:
            assert restored.per_minute[minute].reads == original.per_minute[minute].reads
            assert restored.per_minute[minute].writes == original.per_minute[minute].writes

    def test_json_serializable(self):
        json.dumps(stats_to_dict(sample_stats()))


class TestResultRoundTrip:
    def test_dict_round_trip(self):
        original = sample_result()
        restored = result_from_dict(result_to_dict(original))
        assert restored.policy_name == original.policy_name
        assert restored.wall_seconds == original.wall_seconds
        assert restored.stats.total == original.stats.total

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "result.json"
        save_result(sample_result(), path)
        restored = load_result(path)
        assert restored.daily_capture() == sample_result().daily_capture()

    def test_schema_version_written(self):
        assert result_to_dict(sample_result())["schema_version"] == SCHEMA_VERSION

    def test_engine_round_trips(self):
        restored = result_from_dict(result_to_dict(sample_result()))
        assert restored.engine == "fast"

    def test_engine_missing_defaults_to_object(self):
        # Files written before the engine field existed still load.
        payload = result_to_dict(sample_result())
        del payload["engine"]
        assert result_from_dict(payload).engine == "object"

    def test_unknown_schema_rejected(self):
        payload = result_to_dict(sample_result())
        payload["schema_version"] = 999
        with pytest.raises(ValueError):
            result_from_dict(payload)

    def test_loaded_result_feeds_metrics(self, tmp_path):
        from repro.sim.metrics import mean_capture, total_allocation_writes

        path = tmp_path / "r.json"
        save_result(sample_result(), path)
        restored = load_result(path)
        assert total_allocation_writes(restored) == 2
        assert mean_capture(restored) >= 0.0

    def test_simulation_round_trip(self, tiny_context, tmp_path):
        from repro.sim import run_policy

        original = run_policy("wmna-16", tiny_context, track_minutes=True)
        path = tmp_path / "wmna.json"
        save_result(original, path)
        restored = load_result(path)
        assert restored.daily_capture() == original.daily_capture()
        assert len(restored.stats.per_minute) == len(original.stats.per_minute)
