"""Experiment registry: configuration keys and scaled sizing."""

import pytest

from repro.cache.allocation import AllocateOnDemand, WriteMissNoAllocate
from repro.core.ideal import IdealDailySieve
from repro.core.random_sieve import RandSieveBlkD, RandSieveC
from repro.core.sievestore_c import SieveStoreC
from repro.core.sievestore_d import SieveStoreD
from repro.sim.experiment import (
    FIGURE5_POLICIES,
    build_policy,
    run_policy,
    sievestore_c_with_window,
    sievestore_d_with_threshold,
)
from repro.util.units import GIB


class TestContextSizing:
    def test_sieved_capacity_is_scaled_16gb(self, tiny_context):
        expected = int(16 * GIB / 512 * tiny_context.scale)
        assert tiny_context.sieved_capacity == max(expected, 64)

    def test_unsieved_large_is_double(self, tiny_context):
        assert tiny_context.unsieved_large_capacity == pytest.approx(
            2 * tiny_context.sieved_capacity, rel=0.02
        )

    def test_daily_counts_cover_all_days(self, tiny_context):
        assert len(tiny_context.daily_counts) == tiny_context.days

    def test_imct_scaled(self, tiny_context):
        assert tiny_context.imct_slots >= 1024


class TestBuildPolicy:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("ideal", IdealDailySieve),
            ("sievestore-d", SieveStoreD),
            ("sievestore-c", SieveStoreC),
            ("randsieve-blkd", RandSieveBlkD),
            ("randsieve-c", RandSieveC),
            ("aod-16", AllocateOnDemand),
            ("wmna-32", WriteMissNoAllocate),
        ],
    )
    def test_constructs_expected_type(self, tiny_context, name, cls):
        policy, capacity = build_policy(name, tiny_context)
        assert isinstance(policy, cls)
        assert capacity > 0

    def test_unsieved_32_gets_double_capacity(self, tiny_context):
        _, cap16 = build_policy("aod-16", tiny_context)
        _, cap32 = build_policy("aod-32", tiny_context)
        assert cap32 == tiny_context.unsieved_large_capacity
        assert cap16 == tiny_context.sieved_capacity

    def test_unknown_name_rejected(self, tiny_context):
        with pytest.raises(ValueError):
            build_policy("lru-magic", tiny_context)

    def test_figure5_list_is_buildable(self, tiny_context):
        for name in FIGURE5_POLICIES:
            build_policy(name, tiny_context)


class TestRunners:
    def test_run_policy_renames_result(self, tiny_context):
        result = run_policy("wmna-16", tiny_context, track_minutes=False)
        assert result.policy_name == "wmna-16"
        assert result.stats.total.accesses > 0

    def test_threshold_sweep_runner(self, tiny_context):
        result = sievestore_d_with_threshold(tiny_context, threshold=15)
        assert "t=15" in result.policy_name
        assert isinstance(result.policy, SieveStoreD)
        assert result.policy.config.threshold == 15

    def test_window_sweep_runner(self, tiny_context):
        result = sievestore_c_with_window(tiny_context, window_hours=2.0)
        assert result.policy.config.window.window_seconds == 2 * 3600

    def test_single_tier_ablation_runner(self, tiny_context):
        result = sievestore_c_with_window(
            tiny_context, window_hours=8.0, single_tier=True
        )
        assert result.policy.config.single_tier_admission
        assert "single-tier" in result.policy_name
