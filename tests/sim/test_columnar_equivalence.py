"""The fast path's contract: bit-identical statistics, or a visible fallback.

``simulate(..., fast_path=True)`` is an optimization, not an
approximation — for every supported configuration it must produce the
very same :class:`CacheStats` (per-day counters AND per-minute I/O
units) and the same final cache contents as the reference object-model
engine.  These tests pin that contract over the shared synthetic
ensemble trace for a representative slice of the Figure-5 policies:
discrete sieves (epoch-batched installs), continuous sieves (stateful
per-miss admission and RNG consumption order), and the unsieved
allocate-on-demand baselines.
"""

import pytest

from repro.cache.write_policy import WriteMode
from repro.sim.engine import simulate
from repro.sim.experiment import build_policy, context_for_trace
from repro.traces.columnar import ColumnarTrace

#: One representative per policy family (plus ideal's oracle batching).
EQUIVALENCE_POLICIES = (
    "ideal",
    "sievestore-d",
    "sievestore-c",
    "randsieve-c",
    "aod-16",
    "wmna-16",
)


def run_both(name, ctx, **kwargs):
    policy_slow, capacity = build_policy(name, ctx)
    policy_fast, _ = build_policy(name, ctx)
    slow = simulate(
        ctx.object_trace(), policy_slow, capacity, ctx.days,
        fast_path=False, **kwargs,
    )
    fast = simulate(
        ctx.columnar_trace(), policy_fast, capacity, ctx.days,
        fast_path=True, **kwargs,
    )
    return slow, fast


def assert_identical(slow, fast):
    assert fast.stats.per_day == slow.stats.per_day
    assert fast.stats.per_minute == slow.stats.per_minute
    assert fast.cache.resident_set() == slow.cache.resident_set()


@pytest.mark.parametrize("name", EQUIVALENCE_POLICIES)
def test_fast_path_bit_identical(name, tiny_context):
    slow, fast = run_both(name, tiny_context)
    assert_identical(slow, fast)


def test_fast_path_identical_with_sub_day_epochs(tiny_context):
    slow, fast = run_both(
        "sievestore-d", tiny_context, epoch_seconds=7 * 3600.0
    )
    assert_identical(slow, fast)


def test_fast_path_accepts_object_trace(tiny_context):
    # Callers can pass either representation; coercion happens inside.
    policy, capacity = build_policy("aod-16", tiny_context)
    via_object = simulate(
        tiny_context.object_trace(), policy, capacity, tiny_context.days,
        fast_path=True,
    )
    policy2, _ = build_policy("aod-16", tiny_context)
    via_columns = simulate(
        tiny_context.columnar_trace(), policy2, capacity, tiny_context.days,
        fast_path=True,
    )
    assert via_object.stats.per_day == via_columns.stats.per_day


def test_object_path_accepts_columnar_trace(tiny_context):
    policy, capacity = build_policy("aod-16", tiny_context)
    result = simulate(
        tiny_context.columnar_trace(), policy, capacity, tiny_context.days,
        fast_path=False,
    )
    policy2, _ = build_policy("aod-16", tiny_context)
    reference = simulate(
        tiny_context.object_trace(), policy2, capacity, tiny_context.days,
    )
    assert result.stats.per_day == reference.stats.per_day


@pytest.mark.parametrize(
    "kwargs",
    [
        {"replacement": "fifo"},
        {"write_mode": WriteMode.WRITE_BACK},
    ],
    ids=["fifo", "write-back"],
)
def test_unsupported_configs_fall_back(kwargs, tiny_context):
    # fast_path=True uses the reference engine for configurations the
    # fast loop does not specialize — same stats, warned once per
    # process and recorded in SimulationResult.engine.
    policy_slow, capacity = build_policy("aod-16", tiny_context)
    policy_fast, _ = build_policy("aod-16", tiny_context)
    reference = simulate(
        tiny_context.object_trace(), policy_slow, capacity,
        tiny_context.days, **kwargs,
    )
    fallback = simulate(
        tiny_context.columnar_trace(), policy_fast, capacity,
        tiny_context.days, fast_path=True, **kwargs,
    )
    assert fallback.stats.per_day == reference.stats.per_day
    assert fallback.stats.per_minute == reference.stats.per_minute


def test_context_daily_counts_from_columns(tiny_trace, tiny_trace_config):
    # A columnar-seeded context computes the oracle counts vectorized;
    # they must equal the reference context's per-block walk.
    columns = ColumnarTrace.from_trace(tiny_trace)
    reference = context_for_trace(
        tiny_trace, days=tiny_trace_config.days, scale=tiny_trace_config.scale
    )
    columnar = context_for_trace(
        columns, days=tiny_trace_config.days, scale=tiny_trace_config.scale
    )
    assert columnar.daily_counts == reference.daily_counts
