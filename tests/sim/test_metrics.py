"""Figure-series builders."""

import pytest

from repro.cache.stats import CacheStats
from repro.sim.engine import SimulationResult
from repro.sim.metrics import (
    allocation_write_series,
    capture_breakdown,
    capture_improvement,
    capture_series,
    mean_capture,
    ssd_operation_series,
    total_allocation_writes,
)


def make_result(name, per_day):
    """per_day: list of (read_hits, write_hits, read_misses, write_misses, allocs)."""
    stats = CacheStats(days=len(per_day), track_minutes=False)
    for day, (rh, wh, rm, wm, alloc) in enumerate(per_day):
        d = stats.per_day[day]
        d.read_hits, d.write_hits = rh, wh
        d.read_misses, d.write_misses = rm, wm
        d.allocation_writes = alloc
        d.accesses = rh + wh + rm + wm
    return SimulationResult(
        policy_name=name, stats=stats, cache=None, policy=None, wall_seconds=0.0
    )


@pytest.fixture
def results():
    return {
        "a": make_result("a", [(6, 2, 1, 1, 3), (3, 1, 5, 1, 2)]),
        "b": make_result("b", [(1, 1, 4, 4, 8), (2, 0, 6, 2, 7)]),
    }


class TestSeries:
    def test_capture_series(self, results):
        series = capture_series(results)
        assert series["a"][0] == pytest.approx(0.8)
        assert series["b"][0] == pytest.approx(0.2)

    def test_allocation_series(self, results):
        assert allocation_write_series(results)["b"] == [8, 7]

    def test_breakdown_sums_to_capture(self, results):
        breakdown = capture_breakdown(results)
        for name in results:
            for day in breakdown[name]:
                assert day["read_hits"] + day["write_hits"] == pytest.approx(
                    day["captured"]
                )

    def test_ssd_operation_series(self, results):
        ops = ssd_operation_series(results)["a"][0]
        assert ops == {
            "read_hits": 6,
            "write_hits": 2,
            "allocation_writes": 3,
            "total": 11,
        }


class TestAggregates:
    def test_mean_capture(self, results):
        assert mean_capture(results["a"]) == pytest.approx((0.8 + 0.4) / 2)

    def test_mean_capture_skips_days(self, results):
        # SieveStore-D's average excludes the bootstrap day (paper 5.1).
        assert mean_capture(results["a"], skip_days=(0,)) == pytest.approx(0.4)

    def test_total_allocation_writes(self, results):
        assert total_allocation_writes(results["b"]) == 15

    def test_capture_improvement(self, results):
        improvement = capture_improvement(results["a"], results["b"])
        assert improvement == pytest.approx((0.6 / 0.2) - 1)

    def test_improvement_against_zero_baseline(self):
        zero = make_result("z", [(0, 0, 1, 1, 0)])
        other = make_result("o", [(1, 0, 1, 0, 0)])
        assert capture_improvement(other, zero) == float("inf")


class TestEmptyDayEdges:
    """Zero-access and skipped days must report 0.0, never divide by it."""

    def test_capture_breakdown_zero_access_day_reports_zero(self):
        results = {"q": make_result("q", [(0, 0, 0, 0, 0), (3, 1, 4, 0, 2)])}
        quiet_day = capture_breakdown(results)["q"][0]
        assert quiet_day == {
            "read_hits": 0.0, "write_hits": 0.0, "captured": 0.0,
        }

    def test_capture_series_zero_access_day_reports_zero(self):
        results = {"q": make_result("q", [(0, 0, 0, 0, 0), (1, 0, 1, 0, 0)])}
        assert capture_series(results)["q"][0] == 0.0

    def test_mean_capture_ignores_zero_access_days(self):
        # An idle day must not drag the average toward zero.
        result = make_result("q", [(0, 0, 0, 0, 0), (3, 1, 1, 0, 0)])
        assert mean_capture(result) == pytest.approx(0.8)

    def test_mean_capture_all_days_skipped_is_zero(self):
        result = make_result("q", [(1, 0, 1, 0, 0), (1, 0, 1, 0, 0)])
        assert mean_capture(result, skip_days=(0, 1)) == 0.0

    def test_mean_capture_all_days_empty_is_zero(self):
        result = make_result("q", [(0, 0, 0, 0, 0)])
        assert mean_capture(result) == 0.0
