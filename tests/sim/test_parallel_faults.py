"""Fault tolerance of the parallel suite runner.

A long multi-config sweep must survive one sick task: worker crashes
degrade to in-process serial execution, task exceptions get one bounded
retry and then a structured failure record, and every surviving
policy's statistics stay bit-identical to a serial run.  Fault
injection rides the ``SIEVESTORE_FAULT_INJECT`` env var (worker
processes inherit it), which is also how CI exercises this path.
"""

import json
import os

import pytest

from repro.sim.experiment import run_policy_suite
from repro.sim.parallel import (
    FAULT_ENV_VAR,
    MANIFEST_SCHEMA_VERSION,
    PolicyFailure,
    SuiteRun,
    default_jobs,
    run_suite_parallel,
    run_suite_serial,
)

SUITE = ("ideal", "sievestore-d", "aod-16")


@pytest.fixture(scope="module")
def serial_reference(tiny_context):
    return run_suite_serial(
        tiny_context, SUITE, track_minutes=True, fast_path=True
    )


def assert_matches_serial(run, serial, names):
    for name in names:
        assert run[name].stats.per_day == serial[name].stats.per_day
        assert run[name].stats.per_minute == serial[name].stats.per_minute


class TestInjectedTaskFailure:
    def test_partial_results_and_failure_record(
        self, tiny_context, serial_reference, monkeypatch
    ):
        monkeypatch.setenv(FAULT_ENV_VAR, "raise:sievestore-d")
        run = run_suite_parallel(
            tiny_context, SUITE, track_minutes=True, fast_path=True, jobs=2
        )
        assert set(run) == {"ideal", "aod-16"}
        assert not run.ok
        failure = run.failures["sievestore-d"]
        assert isinstance(failure, PolicyFailure)
        assert failure.error_type == "InjectedWorkerFault"
        assert failure.retries == 1  # one bounded retry was spent
        assert_matches_serial(run, serial_reference, ("ideal", "aod-16"))
        outcomes = {t["policy"]: t["outcome"] for t in run.manifest["tasks"]}
        assert outcomes == {
            "ideal": "ok", "sievestore-d": "failed", "aod-16": "ok",
        }


class TestInjectedWorkerCrash:
    def test_serial_fallback_preserves_survivors(
        self, tiny_context, serial_reference, monkeypatch
    ):
        monkeypatch.setenv(FAULT_ENV_VAR, "crash:sievestore-d")
        with pytest.warns(RuntimeWarning, match="worker pool broke"):
            run = run_suite_parallel(
                tiny_context, SUITE, track_minutes=True, fast_path=True,
                jobs=2,
            )
        # Every surviving policy completed (pool or serial fallback),
        # bit-identical to the serial run; the dead one is recorded.
        assert set(run) == {"ideal", "aod-16"}
        assert "sievestore-d" in run.failures
        assert run.manifest["pool_broken"] is True
        assert_matches_serial(run, serial_reference, ("ideal", "aod-16"))
        executors = {t["policy"]: t["executor"] for t in run.manifest["tasks"]}
        # The crashed policy's retry necessarily ran in-process.
        assert executors["sievestore-d"] == "serial-fallback"


class TestFlakyTaskRetry:
    def test_one_shot_failure_retries_to_success(
        self, tiny_context, serial_reference, tmp_path, monkeypatch
    ):
        marker = tmp_path / "flaky-marker"
        monkeypatch.setenv(FAULT_ENV_VAR, f"flaky:aod-16:{marker}")
        run = run_suite_parallel(
            tiny_context, SUITE, track_minutes=True, fast_path=True, jobs=2
        )
        assert run.ok
        assert set(run) == set(SUITE)
        assert marker.exists()  # the fault did fire once
        records = {t["policy"]: t for t in run.manifest["tasks"]}
        assert records["aod-16"]["retries"] == 1
        assert records["aod-16"]["outcome"] == "ok"
        assert records["ideal"]["retries"] == 0
        assert_matches_serial(run, serial_reference, SUITE)


class TestTaskTimeout:
    def test_hung_task_times_out_with_failure_record(
        self, tiny_context, monkeypatch
    ):
        # The hang must outlast both timeout windows (first attempt +
        # retry), and the timeout must leave the healthy task plenty of
        # room for worker startup on a loaded single-core machine.
        monkeypatch.setenv(FAULT_ENV_VAR, "hang:aod-16:10.0")
        run = run_suite_parallel(
            tiny_context, ("ideal", "aod-16"), track_minutes=False,
            fast_path=True, jobs=2, task_timeout=2.0,
        )
        assert "ideal" in run
        failure = run.failures["aod-16"]
        assert failure.error_type == "TimeoutError"
        assert failure.retries == 1
        records = {t["policy"]: t for t in run.manifest["tasks"]}
        assert records["aod-16"]["outcome"] == "timeout"


class TestNamesHygiene:
    def test_duplicates_deduped_preserving_order(self, tiny_context):
        run = run_suite_parallel(
            tiny_context, ("aod-16", "aod-16", "ideal", "aod-16"),
            track_minutes=False, jobs=2,
        )
        assert list(run) == ["aod-16", "ideal"]
        assert run.manifest["requested"] == [
            "aod-16", "aod-16", "ideal", "aod-16",
        ]
        assert run.manifest["names"] == ["aod-16", "ideal"]
        assert len(run.manifest["tasks"]) == 2

    def test_empty_names_returns_empty_without_pool(self, tiny_context):
        run = run_suite_parallel(tiny_context, (), jobs=4)
        assert len(run) == 0
        assert run.ok
        assert run.manifest["tasks"] == []


class TestDefaultJobs:
    def test_prefers_scheduling_affinity(self, monkeypatch):
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {0, 1, 2}, raising=False
        )
        assert default_jobs() == 3

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 5)
        assert default_jobs() == 5

    def test_affinity_error_falls_back(self, monkeypatch):
        def broken(pid):
            raise OSError("no affinity support")

        monkeypatch.setattr(os, "sched_getaffinity", broken, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert default_jobs() == 4


class TestManifest:
    def test_schema_and_save(self, tiny_context, tmp_path):
        run = run_suite_parallel(
            tiny_context, ("aod-16",), track_minutes=False,
            fast_path=True, jobs=2,
        )
        path = tmp_path / "manifest.json"
        run.save_manifest(path)
        manifest = json.loads(path.read_text())
        assert manifest == run.manifest
        assert manifest["schema"] == MANIFEST_SCHEMA_VERSION
        assert manifest["pool_broken"] is False
        (task,) = manifest["tasks"]
        assert task["policy"] == "aod-16"
        assert task["outcome"] == "ok"
        assert task["engine"] == "fast"
        assert task["executor"] == "pool"
        assert task["retries"] == 0
        assert task["worker_pid"] not in (None, os.getpid())
        assert task["wall_seconds"] > 0

    def test_engine_records_object_path(self, tiny_context):
        run = run_suite_parallel(
            tiny_context, ("aod-16",), track_minutes=False,
            fast_path=False, jobs=2,
        )
        (task,) = run.manifest["tasks"]
        assert task["engine"] == "object"
        assert run["aod-16"].engine == "object"


class TestSerialSuiteRun:
    def test_jobs_one_returns_suite_run(self, tiny_context):
        run = run_policy_suite(
            tiny_context, ("aod-16",), track_minutes=False, jobs=1
        )
        assert isinstance(run, SuiteRun)
        assert run.ok
        (task,) = run.manifest["tasks"]
        assert task["executor"] == "serial"
        assert task["worker_pid"] == os.getpid()

    def test_serial_failures_are_recorded_not_raised(
        self, tiny_context, monkeypatch
    ):
        monkeypatch.setenv(FAULT_ENV_VAR, "raise:aod-16")
        run = run_suite_serial(
            tiny_context, ("ideal", "aod-16"), track_minutes=False
        )
        assert "ideal" in run
        assert run.failures["aod-16"].error_type == "InjectedWorkerFault"
