"""Shard-level replay coordinator: equivalence, faults, checkpoints."""

import json

import pytest

from repro.cache.stats import CacheStats
from repro.sim.engine import simulate
from repro.sim.experiment import ExperimentContext, build_policy
from repro.sim.parallel import (
    FAULT_ENV_VAR,
    SHARD_MANIFEST_VERSION,
    run_sharded_replay,
    shard_task_names,
)
from repro.sim.serialize import stats_to_dict
from repro.traces import tiny_config
from repro.traces.segments import segment_columnar
from repro.traces.synthetic import EnsembleTraceGenerator

ROWS_PER_SEGMENT = 4000
CHUNK_ROWS = 2500
DAYS = 3
SCALE = 1e-4
SHARDS = 4


@pytest.fixture(scope="module")
def seg_columns():
    return EnsembleTraceGenerator(tiny_config(days=DAYS)).generate_columnar()


@pytest.fixture(scope="module")
def seg_store(tmp_path_factory, seg_columns):
    directory = tmp_path_factory.mktemp("shard-replay") / "store"
    return segment_columnar(
        seg_columns, directory, rows_per_segment=ROWS_PER_SEGMENT
    )


@pytest.fixture(scope="module")
def serial_run(seg_store):
    """The reference: four shards replayed serially in-process."""
    return run_sharded_replay(
        seg_store, "sievestore-c", days=DAYS, scale=SCALE, shards=SHARDS,
        jobs=1, track_minutes=False, chunk_rows=CHUNK_ROWS,
    )


def stats_json(stats) -> str:
    return json.dumps(stats_to_dict(stats), sort_keys=True)


class TestShardedEquivalence:
    def test_single_shard_matches_unsharded_simulate(
        self, seg_store, seg_columns
    ):
        context = ExperimentContext(
            trace=seg_columns,
            days=DAYS,
            scale=SCALE,
            daily_counts=seg_columns.daily_block_counts(DAYS),
        )
        policy, capacity = build_policy("sievestore-c", context)
        unsharded = simulate(
            seg_columns, policy, capacity_blocks=capacity, days=DAYS,
            track_minutes=False, fast_path=True,
        )
        run = run_sharded_replay(
            seg_store, "sievestore-c", days=DAYS, scale=SCALE, shards=1,
            jobs=1, track_minutes=False, chunk_rows=CHUNK_ROWS,
        )
        assert run.ok
        assert stats_json(run.stats) == stats_json(unsharded.stats)

    def test_serial_shards_all_complete_and_merge(
        self, serial_run, seg_columns
    ):
        assert serial_run.ok
        assert list(serial_run.shard_stats) == shard_task_names(SHARDS)
        merged_accesses = sum(
            day.accesses for day in serial_run.stats.per_day
        )
        shard_accesses = sum(
            day.accesses
            for stats in serial_run.shard_stats.values()
            for day in stats.per_day
        )
        assert merged_accesses == shard_accesses
        # Sharding repartitions the trace but never drops requests.
        assert stats_json(serial_run.stats) == stats_json(
            CacheStats.merged(list(serial_run.shard_stats.values()))
        )

    def test_manifest_records_the_run(self, serial_run):
        manifest = serial_run.manifest
        assert manifest["schema"] == SHARD_MANIFEST_VERSION
        assert manifest["kind"] == "sharded-replay"
        assert manifest["policy"] == "sievestore-c"
        assert manifest["shards"] == SHARDS
        assert manifest["names"] == shard_task_names(SHARDS)
        assert manifest["chunk_rows"] == CHUNK_ROWS
        assert manifest["pool_broken"] is False
        assert len(manifest["tasks"]) == SHARDS
        assert all(t["outcome"] == "ok" for t in manifest["tasks"])
        assert all(t["retries"] == 0 for t in manifest["tasks"])


class TestFaultRecovery:
    def test_flaky_shard_retries_and_pool_matches_serial(
        self, seg_store, serial_run, tmp_path, monkeypatch
    ):
        marker = tmp_path / "flaky-marker"
        monkeypatch.setenv(FAULT_ENV_VAR, f"flaky:shard-2:{marker}")
        run = run_sharded_replay(
            seg_store, "sievestore-c", days=DAYS, scale=SCALE,
            shards=SHARDS, jobs=2, track_minutes=False,
            chunk_rows=CHUNK_ROWS,
        )
        assert marker.exists()  # the fault actually fired
        assert run.ok
        assert stats_json(run.stats) == stats_json(serial_run.stats)
        record = next(
            t for t in run.manifest["tasks"] if t["policy"] == "shard-2"
        )
        assert record["outcome"] == "ok"
        assert record["retries"] == 1

    def test_persistent_failure_yields_no_merged_stats(
        self, seg_store, monkeypatch
    ):
        monkeypatch.setenv(FAULT_ENV_VAR, "raise:shard-1")
        run = run_sharded_replay(
            seg_store, "sievestore-c", days=DAYS, scale=SCALE,
            shards=SHARDS, jobs=1, track_minutes=False,
            chunk_rows=CHUNK_ROWS,
        )
        assert not run.ok
        assert run.stats is None  # partial merges would be silently wrong
        assert set(run.failures) == {"shard-1"}
        assert run.failures["shard-1"].error_type == "InjectedWorkerFault"
        record = next(
            t for t in run.manifest["tasks"] if t["policy"] == "shard-1"
        )
        assert record["outcome"] == "failed"
        # The healthy shards still report their statistics.
        assert len(run.shard_stats) == SHARDS - 1


class TestCheckpointResume:
    def test_coordinator_resumes_a_half_finished_shard(
        self, seg_store, serial_run, tmp_path
    ):
        """A shard checkpoint left by a killed run is picked up — the
        coordinator resumes mid-shard instead of replaying from row 0,
        and the merged statistics still match a clean run."""

        class Killed(RuntimeError):
            pass

        def killer(requests_done, _current_epoch):
            if requests_done >= 2000:
                raise Killed(f"killed at {requests_done}")

        checkpoint_dir = tmp_path / "ckpts"
        checkpoint_dir.mkdir()
        view = seg_store.shard(2, SHARDS)
        context = ExperimentContext(
            trace=view,
            days=DAYS,
            scale=SCALE / SHARDS,
            daily_counts=view.daily_block_counts(
                DAYS, chunk_rows=CHUNK_ROWS
            ),
        )
        policy, capacity = build_policy("sievestore-c", context)
        path = checkpoint_dir / "shard-2.ckpt"
        with pytest.raises(Killed):
            simulate(
                view, policy, capacity_blocks=capacity, days=DAYS,
                track_minutes=False, fast_path=True, chunk_rows=CHUNK_ROWS,
                checkpoint_path=path, checkpoint_every=1000,
                progress_every=500, progress_hook=killer,
                label="sievestore-c",
            )
        assert path.exists()
        run = run_sharded_replay(
            seg_store, "sievestore-c", days=DAYS, scale=SCALE,
            shards=SHARDS, jobs=1, track_minutes=False,
            chunk_rows=CHUNK_ROWS, checkpoint_dir=checkpoint_dir,
            checkpoint_every=1000,
        )
        assert run.ok
        assert stats_json(run.stats) == stats_json(serial_run.stats)
        record = next(
            t for t in run.manifest["tasks"] if t["policy"] == "shard-2"
        )
        assert record["checkpoint"]["path"] == str(path)

    def test_unusable_checkpoint_warns_and_restarts(
        self, seg_store, serial_run, tmp_path
    ):
        checkpoint_dir = tmp_path / "ckpts"
        checkpoint_dir.mkdir()
        (checkpoint_dir / "shard-0.ckpt").write_bytes(b"not a checkpoint")
        with pytest.warns(RuntimeWarning, match="restarting the shard"):
            run = run_sharded_replay(
                seg_store, "sievestore-c", days=DAYS, scale=SCALE,
                shards=SHARDS, jobs=1, track_minutes=False,
                chunk_rows=CHUNK_ROWS, checkpoint_dir=checkpoint_dir,
            )
        assert run.ok
        assert stats_json(run.stats) == stats_json(serial_run.stats)
