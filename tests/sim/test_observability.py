"""End-to-end observability: the off-path invariant and the on-path wiring.

The load-bearing guarantee is the *off* path: with observability
disabled (the default), simulation results and run manifests are
byte-identical to a build without ``repro.obs`` — same ``CacheStats``,
same schema-2 manifest, no ``metrics`` keys anywhere.  The on path then
has to produce the same simulation numbers while collecting metrics.
"""

import json

import pytest

from repro.obs import runtime
from repro.obs.events import read_events
from repro.obs.export import parse_prometheus, to_prometheus
from repro.sim import resume_simulation, simulate
from repro.sim.experiment import build_policy, run_policy, run_policy_suite
from repro.sim.serialize import stats_to_dict

SUITE = ("aod-16", "sievestore-c")


@pytest.fixture(autouse=True)
def observability_off():
    """Tests flip the switch themselves; never leak it across tests."""
    runtime.disable()
    yield
    runtime.disable()


def run_suite(tiny_context, **kwargs):
    return run_policy_suite(
        tiny_context, SUITE, track_minutes=False, fast_path=True,
        jobs=1, **kwargs
    )


class TestDisabledIsByteIdentical:
    def test_manifest_matches_schema2_with_no_metrics_keys(self, tiny_context):
        baseline = run_suite(tiny_context)
        assert baseline.manifest["schema"] == 2
        assert "metrics" not in baseline.manifest
        for task in baseline.manifest["tasks"]:
            assert "metrics" not in task
        assert baseline.metrics is None

    def test_stats_identical_with_and_without_observability(
        self, tiny_context
    ):
        baseline = run_suite(tiny_context)
        runtime.enable()
        observed = run_suite(tiny_context)
        runtime.disable()
        for name in SUITE:
            assert json.dumps(stats_to_dict(observed[name].stats)) == (
                json.dumps(stats_to_dict(baseline[name].stats))
            )

    def test_engine_obs_is_none_when_disabled(self, tiny_context):
        from repro.sim.engine import _engine_obs

        policy, _capacity = build_policy("aod-16", tiny_context)
        assert _engine_obs(policy, "aod-16", "fast") is None


class TestEnabledCollectsMetrics:
    def test_suite_manifest_carries_v3_metrics(self, tiny_context):
        runtime.enable()
        run = run_suite(tiny_context)
        assert run.manifest["schema"] == 3
        assert run.metrics is not None
        suite_metrics = run.manifest["metrics"]
        for task in run.manifest["tasks"]:
            assert task["metrics"] is not None
        # Engine throughput appears labeled per policy.
        samples = suite_metrics["sim_blocks_total"]["samples"]
        policies = {row["labels"]["policy"] for row in samples}
        assert policies == set(SUITE)
        # The sieve's decision tallies only exist for SieveStore-C.
        admits = suite_metrics["sieve_admissions_total"]["samples"]
        assert {row["labels"]["policy"] for row in admits} == {"sievestore-c"}
        # Suite-runner metrics count both tasks as ok.
        tasks = suite_metrics["suite_tasks_total"]["samples"]
        assert sum(row["value"] for row in tasks) == len(SUITE)

    def test_blocks_total_matches_the_trace(self, tiny_trace, tiny_context):
        runtime.enable()
        run = run_suite(tiny_context)
        total_blocks = sum(r.block_count for r in tiny_trace.requests)
        for row in run.manifest["metrics"]["sim_blocks_total"]["samples"]:
            assert row["value"] == total_blocks

    def test_per_task_registries_do_not_double_count(self, tiny_context):
        runtime.enable()
        run = run_suite(tiny_context)
        for task in run.manifest["tasks"]:
            rows = task["metrics"]["sim_requests_total"]["samples"]
            # One policy per task: its snapshot holds only its own label.
            assert {row["labels"]["policy"] for row in rows} == {
                task["policy"]
            }

    def test_snapshot_exports_as_parseable_prometheus(self, tiny_context):
        runtime.enable()
        run = run_suite(tiny_context)
        parsed = parse_prometheus(to_prometheus(run.metrics))
        assert "sim_blocks_total" in parsed
        assert "sim_epoch_wall_seconds" in parsed
        assert parsed["sim_epoch_wall_seconds"]["type"] == "histogram"

    def test_run_policy_uses_config_name_as_label(self, tiny_context):
        runtime.enable()
        run_policy("aod-32", tiny_context, track_minutes=False, fast_path=True)
        counter = runtime.get_registry().get("sim_requests_total")
        assert counter.value(policy="aod-32", engine="fast") == len(
            tiny_context.trace.requests
        )

    def test_object_engine_labels_engine_dimension(self, tiny_context):
        runtime.enable()
        run_policy("aod-16", tiny_context, track_minutes=False, fast_path=False)
        counter = runtime.get_registry().get("sim_requests_total")
        assert counter.value(policy="aod-16", engine="object") > 0
        assert counter.value(policy="aod-16", engine="fast") == 0


class TestEventLog:
    def test_run_events_bracket_the_run(self, tiny_context, tmp_path):
        events_path = tmp_path / "events.jsonl"
        runtime.enable(events_path=events_path)
        run_policy("aod-16", tiny_context, track_minutes=False, fast_path=True)
        runtime.disable()
        events = read_events(events_path)
        assert [e["event"] for e in events] == ["run_start", "run_end"]
        assert events[0]["policy"] == "aod-16"
        assert events[1]["requests"] == len(tiny_context.trace.requests)

    def test_resume_appends_coherently_to_the_same_log(
        self, tiny_context, tmp_path
    ):
        events_path = tmp_path / "events.jsonl"
        ckpt_path = tmp_path / "run.ckpt"
        policy, capacity = build_policy("aod-16", tiny_context)
        trace = tiny_context.columnar_trace()

        runtime.enable(events_path=events_path)
        simulate(
            trace, policy, capacity_blocks=capacity, days=tiny_context.days,
            track_minutes=False, fast_path=True,
            checkpoint_path=ckpt_path, checkpoint_every=997,
        )
        resumed = resume_simulation(ckpt_path, trace)
        runtime.disable()

        names = [e["event"] for e in read_events(events_path)]
        assert names[0] == "run_start"
        assert "checkpoint_saved" in names
        assert "run_resume" in names
        assert names[-1] == "run_end"
        # The seam is ordered: resume comes after the partial run.
        assert names.index("run_resume") > names.index("checkpoint_saved")
        assert resumed.stats.per_day  # the resumed run actually finished
