"""Sub-day epochs: batch allocation-writes land on the right calendar day.

Epoch boundary ``k`` fires at ``k * epoch_seconds``.  For sub-day
epochs that instant is generally *not* day ``k`` — a 7-hour epoch's
fourth boundary (28 h) belongs to calendar day 1 — and the Section 5.1
epoch-length sensitivity analysis depends on the attribution being the
day *containing* the boundary.  Both engines must agree, and the
default one-day epoch must keep its historical bucketing (boundary k at
k * 86400 == start of day k).
"""


from repro.core.sievestore_d import SieveStoreD, SieveStoreDConfig
from repro.sim.engine import simulate, total_epoch_count
from repro.sim.experiment import build_policy
from repro.traces.columnar import ColumnarTrace
from repro.traces.model import IOKind, IORequest, Trace
from repro.util.intervals import SECONDS_PER_DAY

SEVEN_HOURS = 7 * 3600.0


def one_block_read(time, address):
    return IORequest(
        issue_time=time,
        completion_time=time + 0.01,
        server_id=0,
        volume_id=0,
        block_offset=address,
        block_count=1,
        kind=IOKind.READ,
    )


def admit_everything():
    """SieveStore-D that batches every block seen in the epoch."""
    return SieveStoreD(SieveStoreDConfig(threshold=0, capacity_blocks=1 << 20))


class TestSevenHourEpochsOverEightDays:
    """One fresh block per 7 h epoch: boundary k installs epoch k-1's
    block, so exactly one allocation-write lands at k * 25200 s."""

    DAYS = 8

    def build_trace(self):
        epochs = total_epoch_count(self.DAYS, SEVEN_HOURS)
        assert epochs == 28
        # One request in each full epoch 0..26 (epoch 27 is the partial
        # tail beyond the 8-day trace).
        requests = [
            one_block_read(epoch * SEVEN_HOURS + 60.0, 1000 + epoch)
            for epoch in range(epochs - 1)
        ]
        return Trace(requests)

    def expected_per_day(self):
        """Each boundary's single install, bucketed by calendar day."""
        expected = [0] * self.DAYS
        for boundary in range(1, 28):
            boundary_time = boundary * SEVEN_HOURS
            day = min(int(boundary_time // SECONDS_PER_DAY), self.DAYS - 1)
            expected[day] += 1
        return expected

    def run(self, fast_path):
        trace = self.build_trace()
        return simulate(
            trace if not fast_path else ColumnarTrace.from_trace(trace),
            admit_everything(),
            1 << 20,
            days=self.DAYS,
            epoch_seconds=SEVEN_HOURS,
            fast_path=fast_path,
        )

    def test_reference_path_buckets_by_boundary_day(self):
        result = self.run(fast_path=False)
        assert result.daily_allocation_writes() == self.expected_per_day()

    def test_fast_path_buckets_by_boundary_day(self):
        result = self.run(fast_path=True)
        assert result.daily_allocation_writes() == self.expected_per_day()

    def test_not_bucketed_by_epoch_index(self):
        # The old bug: day = epoch index.  27 boundaries over 8 days
        # clamp to [1, 1, 1, 1, 1, 1, 1, 21] under that rule — ensure
        # we are not reproducing it.
        by_epoch_index = [0] * self.DAYS
        for boundary in range(1, 28):
            by_epoch_index[min(boundary, self.DAYS - 1)] += 1
        assert self.expected_per_day() != by_epoch_index
        assert (
            self.run(fast_path=False).daily_allocation_writes()
            != by_epoch_index
        )


class TestMidDayBoundary:
    def test_noon_boundary_attributed_to_day_zero(self):
        # A 12 h epoch's first boundary (noon of day 0) must charge its
        # batch to day 0; the epoch-index rule charged day 1.
        trace = Trace([one_block_read(60.0, 5)])
        result = simulate(
            trace, admit_everything(), 16, days=2,
            epoch_seconds=12 * 3600.0,
        )
        assert result.daily_allocation_writes() == [1, 0]


class TestEnginesAgreeOnSharedTrace:
    def test_sub_day_epoch_per_day_identical(self, tiny_context):
        policy_slow, capacity = build_policy("sievestore-d", tiny_context)
        policy_fast, _ = build_policy("sievestore-d", tiny_context)
        slow = simulate(
            tiny_context.object_trace(), policy_slow, capacity,
            tiny_context.days, epoch_seconds=SEVEN_HOURS, fast_path=False,
        )
        fast = simulate(
            tiny_context.columnar_trace(), policy_fast, capacity,
            tiny_context.days, epoch_seconds=SEVEN_HOURS, fast_path=True,
        )
        assert fast.stats.per_day == slow.stats.per_day
        assert fast.stats.per_minute == slow.stats.per_minute
        # Totals are conserved: bucketing moves writes between days,
        # never creates or destroys them.
        assert sum(fast.daily_allocation_writes()) == sum(
            slow.daily_allocation_writes()
        )


class TestDailyEpochUnchanged:
    def test_boundary_times_coincide_with_day_starts(self, tiny_context):
        # With the default one-day epoch, boundary k fires at k * 86400
        # — the first instant of day k — so the fixed attribution rule
        # reduces to the historical `day = epoch` bucketing exactly.
        policy_default, capacity = build_policy("sievestore-d", tiny_context)
        policy_explicit, _ = build_policy("sievestore-d", tiny_context)
        default = simulate(
            tiny_context.object_trace(), policy_default, capacity,
            tiny_context.days,
        )
        explicit = simulate(
            tiny_context.object_trace(), policy_explicit, capacity,
            tiny_context.days, epoch_seconds=float(SECONDS_PER_DAY),
        )
        assert default.stats.per_day == explicit.stats.per_day
        for day in range(tiny_context.days):
            boundary_time = day * float(SECONDS_PER_DAY)
            assert int(boundary_time // SECONDS_PER_DAY) == day
