"""Out-of-core streamed replay: engine equivalence, resume, memory."""

import json
import tracemalloc

import pytest

from repro.sim.engine import resume_simulation, simulate
from repro.sim.experiment import ExperimentContext, build_policy
from repro.sim.serialize import stats_to_dict
from repro.traces import tiny_config
from repro.traces.segments import segment_columnar
from repro.traces.synthetic import EnsembleTraceGenerator

ROWS_PER_SEGMENT = 5000
CHUNK_ROWS = 3000
DAYS = 3
SCALE = 1e-4


@pytest.fixture(scope="module")
def seg_config():
    return tiny_config(days=DAYS)


@pytest.fixture(scope="module")
def seg_columns(seg_config):
    return EnsembleTraceGenerator(seg_config).generate_columnar()


@pytest.fixture(scope="module")
def seg_store(tmp_path_factory, seg_columns):
    directory = tmp_path_factory.mktemp("replay-segments") / "store"
    return segment_columnar(
        seg_columns, directory, rows_per_segment=ROWS_PER_SEGMENT
    )


@pytest.fixture(scope="module")
def seg_context(seg_columns, seg_config):
    return ExperimentContext(
        trace=seg_columns,
        days=seg_config.days,
        scale=SCALE,
        daily_counts=seg_columns.daily_block_counts(seg_config.days),
    )


def stats_json(stats) -> str:
    return json.dumps(stats_to_dict(stats), sort_keys=True)


def run_trace(trace, ctx, policy_name, fast, **kwargs):
    policy, capacity = build_policy(policy_name, ctx)
    return simulate(
        trace, policy, capacity_blocks=capacity, days=ctx.days,
        track_minutes=True, fast_path=fast, **kwargs
    )


class Killed(RuntimeError):
    """Raised by the killing progress hook to abort a run mid-trace."""


def make_killer(after_requests):
    def hook(requests_done, _current_epoch):
        if requests_done >= after_requests:
            raise Killed(f"killed at {requests_done}")

    return hook


class TestStreamedEquivalence:
    @pytest.mark.parametrize("policy", ["sievestore-c", "sievestore-d", "ideal"])
    def test_fast_engine_bit_identical(
        self, seg_store, seg_columns, seg_context, policy
    ):
        whole = run_trace(seg_columns, seg_context, policy, fast=True)
        streamed = run_trace(
            seg_store, seg_context, policy, fast=True, chunk_rows=CHUNK_ROWS
        )
        assert streamed.engine == "fast"
        assert stats_json(streamed.stats) == stats_json(whole.stats)

    def test_object_engine_bit_identical(
        self, seg_store, seg_columns, seg_context
    ):
        whole = run_trace(seg_columns, seg_context, "sievestore-c", fast=False)
        streamed = run_trace(
            seg_store, seg_context, "sievestore-c", fast=False,
            chunk_rows=CHUNK_ROWS,
        )
        assert streamed.engine == "object"
        assert stats_json(streamed.stats) == stats_json(whole.stats)

    def test_chunk_budget_never_changes_results(self, seg_store, seg_context):
        coarse = run_trace(seg_store, seg_context, "sievestore-c", fast=True)
        fine = run_trace(
            seg_store, seg_context, "sievestore-c", fast=True, chunk_rows=701
        )
        assert stats_json(coarse.stats) == stats_json(fine.stats)


class TestKillAndResume:
    #: Kill past the first segment boundary (segments hold 5000 of the
    #: trace's 10.6k rows) with a checkpoint cadence that guarantees the
    #: last checkpoint before the kill lands beyond that boundary.
    KILL_AT = 9000
    EVERY = 4000

    @pytest.mark.parametrize("fast", [True, False], ids=["fast", "object"])
    def test_resume_across_segment_boundary_is_bit_identical(
        self, seg_store, seg_context, tmp_path, fast
    ):
        uninterrupted = run_trace(
            seg_store, seg_context, "sievestore-c", fast=fast,
            chunk_rows=CHUNK_ROWS,
        )
        path = tmp_path / "killed.ckpt"
        with pytest.raises(Killed):
            run_trace(
                seg_store, seg_context, "sievestore-c", fast=fast,
                chunk_rows=CHUNK_ROWS, checkpoint_path=path,
                checkpoint_every=self.EVERY, progress_every=1000,
                progress_hook=make_killer(self.KILL_AT),
            )
        from repro.sim.serialize import load_checkpoint

        cursor = load_checkpoint(path)["cursor"]
        assert ROWS_PER_SEGMENT < cursor <= self.KILL_AT
        resumed = resume_simulation(path, seg_store, chunk_rows=CHUNK_ROWS)
        assert stats_json(resumed.stats) == stats_json(uninterrupted.stats)

    def test_segmented_checkpoint_resumes_with_in_ram_trace(
        self, seg_store, seg_columns, seg_context, tmp_path
    ):
        path = tmp_path / "interop.ckpt"
        with pytest.raises(Killed):
            run_trace(
                seg_store, seg_context, "sievestore-c", fast=True,
                chunk_rows=CHUNK_ROWS, checkpoint_path=path,
                checkpoint_every=self.EVERY, progress_every=1000,
                progress_hook=make_killer(self.KILL_AT),
            )
        uninterrupted = run_trace(
            seg_columns, seg_context, "sievestore-c", fast=True
        )
        resumed = resume_simulation(path, seg_columns)
        assert stats_json(resumed.stats) == stats_json(uninterrupted.stats)

    def test_in_ram_checkpoint_resumes_with_segment_store(
        self, seg_store, seg_columns, seg_context, tmp_path
    ):
        path = tmp_path / "interop-back.ckpt"
        with pytest.raises(Killed):
            run_trace(
                seg_columns, seg_context, "sievestore-c", fast=True,
                checkpoint_path=path, checkpoint_every=self.EVERY,
                progress_every=1000, progress_hook=make_killer(self.KILL_AT),
            )
        uninterrupted = run_trace(
            seg_columns, seg_context, "sievestore-c", fast=True
        )
        resumed = resume_simulation(path, seg_store, chunk_rows=CHUNK_ROWS)
        assert stats_json(resumed.stats) == stats_json(uninterrupted.stats)


class TestBoundedMemory:
    """The acceptance criterion: streaming must not materialize the
    trace.  At a scale where the trace dominates fixed simulation state,
    the streamed run's traced peak must sit far below the in-RAM run's
    (which holds whole-trace columns *and* whole-trace Python lists),
    and the raw chunk iterator must peak well under the trace itself —
    its footprint is set by the chunk budget, not the row count.
    """

    BIG_CHUNK_ROWS = 2000

    @pytest.fixture(scope="class")
    def big_columns(self):
        # ~64k rows / ~1.9 MB of columns: large enough that whole-trace
        # materialization is visible above cache/policy/stats overhead.
        config = tiny_config(days=DAYS, scale=6e-5)
        return EnsembleTraceGenerator(config).generate_columnar()

    @pytest.fixture(scope="class")
    def big_store(self, tmp_path_factory, big_columns):
        directory = tmp_path_factory.mktemp("big-segments") / "store"
        return segment_columnar(big_columns, directory, rows_per_segment=8000)

    @staticmethod
    def _trace_bytes(columns):
        return sum(
            column.nbytes
            for column in (
                columns.issue_time, columns.completion_time,
                columns.address, columns.block_count,
                columns.is_write, columns.aligned_4k,
            )
        )

    @staticmethod
    def _traced_peak(fn):
        tracemalloc.start()
        try:
            result = fn()
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return result, peak

    def test_streamed_replay_peak_is_bounded_by_chunks_not_trace(
        self, big_store, big_columns
    ):
        context = ExperimentContext(
            trace=big_columns,
            days=DAYS,
            scale=1e-5,
            daily_counts=big_columns.daily_block_counts(DAYS),
        )

        def run(trace, **kwargs):
            policy, capacity = build_policy("sievestore-c", context)
            return simulate(
                trace, policy, capacity_blocks=capacity, days=DAYS,
                track_minutes=False, fast_path=True, **kwargs
            )

        whole, in_ram_peak = self._traced_peak(lambda: run(big_columns))
        streamed, streamed_peak = self._traced_peak(
            lambda: run(big_store, chunk_rows=self.BIG_CHUNK_ROWS)
        )
        assert stats_json(streamed.stats) == stats_json(whole.stats)
        # Measured ratio is ~0.07; anything near 1.0 means the streamed
        # path materialized the whole trace after all.
        assert streamed_peak < in_ram_peak / 2, (
            f"streamed peak {streamed_peak} not well below "
            f"in-RAM peak {in_ram_peak}"
        )

    def test_chunk_iterator_peak_tracks_chunk_budget(
        self, big_store, big_columns
    ):
        trace_bytes = self._trace_bytes(big_columns)

        def iterate():
            total = 0
            for _base, chunk in big_store.iter_chunks(self.BIG_CHUNK_ROWS):
                total += int(chunk.block_count.sum())
            return total

        total, peak = self._traced_peak(iterate)
        assert total == int(big_columns.block_count.sum())
        # Measured ratio is ~0.04: only per-chunk views are resident.
        assert peak < trace_bytes / 4, (
            f"iterator peak {peak} not bounded by chunk budget "
            f"(trace is {trace_bytes} bytes)"
        )
