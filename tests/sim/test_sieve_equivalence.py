"""Fast-engine sieve specialization vs the object engine, bit for bit.

The ``_W_SIEVE`` path in :mod:`repro.sim.fast_engine` runs SieveStore-C
through :class:`repro.core.sieve_kernel.SieveStoreCKernel` instead of
per-miss ``wants()`` calls.  These tests drive both engines over the
same trace and demand *complete* state equality: per-day and per-minute
statistics, the resident set, every sieve telemetry counter, the MCT's
insert/eviction/peak accounting, and the full per-slot IMCT counter
matrix — across default, aliased, saturated, single-tier, pruning, and
sub-day-epoch configurations, and across SIGKILL-style checkpoint
resume on either engine (including fast<->object conversion).
"""

import pytest

from repro.core import SieveStoreC, SieveStoreCConfig, WindowSpec
from repro.core.autotune import AdaptiveSieveStoreC
from repro.core.windows import COUNTER_SATURATION
from repro.sim import resume_simulation, simulate
from repro.sim.experiment import build_policy
from repro.sim.fast_engine import _W_CALL, _W_SIEVE, _wants_mode
from repro.sim.serialize import (
    CheckpointError,
    load_checkpoint,
    stats_to_dict,
)

#: Mid-trace checkpoint cadence (see tests/sim/test_checkpoint.py).
EVERY = 997


def run_engine(ctx, policy, fast, **kwargs):
    trace = ctx.columnar_trace() if fast else ctx.object_trace()
    return simulate(
        trace, policy, capacity_blocks=ctx.sieved_capacity, days=ctx.days,
        track_minutes=True, fast_path=fast, **kwargs
    )


def run_pair(ctx, config=None, collision_tracking=False, **kwargs):
    """Run the same SieveStore-C configuration on both engines."""
    results = []
    for fast in (False, True):
        if config is None:
            policy, _capacity = build_policy("sievestore-c", ctx)
        else:
            policy = SieveStoreC(config)
        if collision_tracking:
            policy.imct.enable_collision_tracking()
        results.append(run_engine(ctx, policy, fast, **kwargs))
    return results


def imct_matrix(policy):
    """The full per-slot IMCT state (counts + last subwindow)."""
    return (
        [list(c._counts) for c in policy.imct._counters],
        [c._last_subwindow for c in policy.imct._counters],
    )


def assert_sieve_identical(obj_result, fast_result):
    assert obj_result.engine == "object"
    assert fast_result.engine == "fast"
    assert stats_to_dict(fast_result.stats) == stats_to_dict(obj_result.stats)
    assert sorted(fast_result.cache.residents()) == sorted(
        obj_result.cache.residents()
    )
    obj, fast = obj_result.policy, fast_result.policy
    for counter in ("admissions", "imct_rejections", "promotions",
                    "mct_rejections"):
        assert getattr(fast, counter) == getattr(obj, counter), counter
    assert fast.imct.recorded_misses == obj.imct.recorded_misses
    assert fast.imct.alias_collisions == obj.imct.alias_collisions
    for counter in ("inserts", "evictions", "peak_entries"):
        assert getattr(fast.mct, counter) == getattr(obj.mct, counter), counter
    assert fast.metastate_entries() == obj.metastate_entries()
    assert imct_matrix(fast) == imct_matrix(obj)


class TestDispatch:
    def test_plain_sievestore_c_takes_the_sieve_path(self):
        assert _wants_mode(SieveStoreC()) == _W_SIEVE

    def test_adaptive_subclass_takes_the_general_path(self):
        # AdaptiveSieveStoreC mutates its t2 mid-run; the kernel must
        # never capture it.
        assert _wants_mode(AdaptiveSieveStoreC()) == _W_CALL


class TestEngineEquivalence:
    def test_default_config(self, tiny_context):
        obj, fast = run_pair(tiny_context)
        assert_sieve_identical(obj, fast)

    def test_aliased_tiny_table(self, tiny_context):
        # 257 slots over tens of thousands of blocks: heavy aliasing,
        # so tier-1 promotions lean on piggy-backed counts.
        config = SieveStoreCConfig(imct_slots=257)
        obj, fast = run_pair(tiny_context, config)
        assert_sieve_identical(obj, fast)

    def test_single_slot_saturation(self, tiny_context):
        # Every address shares one slot and the window spans the whole
        # trace, so the counter pins at the uint8 ceiling — the fast
        # path's saturating bump must clamp exactly where the object
        # path's min() does.
        config = SieveStoreCConfig(
            imct_slots=1,
            window=WindowSpec(window_seconds=20 * 86400.0, subwindows=4),
        )
        obj, fast = run_pair(tiny_context, config)
        assert_sieve_identical(obj, fast)
        counts, _last = imct_matrix(obj.policy)
        assert max(counts[0]) == COUNTER_SATURATION

    def test_single_tier_ablation(self, tiny_context):
        config = SieveStoreCConfig(single_tier_admission=True)
        obj, fast = run_pair(tiny_context, config)
        assert_sieve_identical(obj, fast)
        assert obj.policy.mct.inserts == 0  # tier 2 never engaged

    def test_small_window_forces_mct_prunes(self, tiny_context):
        # A one-hour window expires MCT entries quickly; the kernel
        # drives the live MCT so opportunistic prune timing (and its
        # eviction count) must line up exactly.
        config = SieveStoreCConfig(
            window=WindowSpec(window_seconds=3600.0, subwindows=4)
        )
        obj, fast = run_pair(tiny_context, config)
        assert_sieve_identical(obj, fast)
        assert obj.policy.mct.evictions > 0

    def test_sub_day_epoch(self, tiny_context):
        obj, fast = run_pair(tiny_context, epoch_seconds=7 * 3600.0)
        assert_sieve_identical(obj, fast)

    def test_t2_zero_admits_on_first_exact_miss(self, tiny_context):
        config = SieveStoreCConfig(t2=0)
        obj, fast = run_pair(tiny_context, config)
        assert_sieve_identical(obj, fast)
        assert obj.policy.admissions > 0

    def test_collision_tracking(self, tiny_context):
        config = SieveStoreCConfig(imct_slots=257)
        obj, fast = run_pair(tiny_context, config, collision_tracking=True)
        assert_sieve_identical(obj, fast)
        assert obj.policy.imct.alias_collisions > 0
        # The shadow last-address arrays must agree slot by slot too.
        assert (
            fast.policy.imct._last_address == obj.policy.imct._last_address
        )


class TestCheckpointResume:
    def baseline(self, ctx):
        policy, _capacity = build_policy("sievestore-c", ctx)
        return run_engine(ctx, policy, fast=False)

    def checkpointed(self, ctx, fast, path):
        policy, _capacity = build_policy("sievestore-c", ctx)
        return run_engine(
            ctx, policy, fast, checkpoint_path=path, checkpoint_every=EVERY
        )

    @pytest.mark.parametrize("fast", [False, True],
                             ids=["object-engine", "fast-engine"])
    def test_mid_epoch_resume_same_engine(self, tiny_context, tmp_path, fast):
        baseline = self.baseline(tiny_context)
        path = tmp_path / "sieve.ckpt"
        checkpointed = self.checkpointed(tiny_context, fast, path)
        # Checkpointing itself must not perturb the run.
        if fast:
            assert_sieve_identical(baseline, checkpointed)
        else:
            assert stats_to_dict(checkpointed.stats) == stats_to_dict(
                baseline.stats
            )
        # The file on disk is a genuine mid-trace snapshot.
        cursor = load_checkpoint(path)["cursor"]
        assert 0 < cursor < len(tiny_context.object_trace().requests)
        trace = (
            tiny_context.columnar_trace()
            if fast
            else tiny_context.object_trace()
        )
        resumed = resume_simulation(path, trace)
        assert resumed.engine == ("fast" if fast else "object")
        assert stats_to_dict(resumed.stats) == stats_to_dict(baseline.stats)
        assert imct_matrix(resumed.policy) == imct_matrix(baseline.policy)
        assert resumed.policy.metastate_entries() == (
            baseline.policy.metastate_entries()
        )

    @pytest.mark.parametrize(
        ("source_fast", "target"),
        [(True, "object"), (False, "fast")],
        ids=["fast-to-object", "object-to-fast"],
    )
    def test_cross_engine_resume(self, tiny_context, tmp_path,
                                 source_fast, target):
        baseline = self.baseline(tiny_context)
        path = tmp_path / "cross.ckpt"
        self.checkpointed(tiny_context, source_fast, path)
        trace = (
            tiny_context.columnar_trace()
            if target == "fast"
            else tiny_context.object_trace()
        )
        resumed = resume_simulation(path, trace, engine=target)
        assert resumed.engine == target
        assert stats_to_dict(resumed.stats) == stats_to_dict(baseline.stats)
        assert sorted(resumed.cache.residents()) == sorted(
            baseline.cache.residents()
        )
        policy = resumed.policy
        for counter in ("admissions", "imct_rejections", "promotions",
                        "mct_rejections"):
            assert getattr(policy, counter) == getattr(
                baseline.policy, counter
            ), counter
        assert imct_matrix(policy) == imct_matrix(baseline.policy)
        assert policy.metastate_entries() == (
            baseline.policy.metastate_entries()
        )

    def test_resume_rejects_unknown_engine(self, tiny_context, tmp_path):
        path = tmp_path / "bad.ckpt"
        self.checkpointed(tiny_context, False, path)
        with pytest.raises(CheckpointError, match="unknown resume engine"):
            resume_simulation(
                path, tiny_context.object_trace(), engine="quantum"
            )

    def test_fast_resume_refuses_fault_checkpoints(self, tiny_context,
                                                   tmp_path):
        from repro.faults import FaultPlan, OutageWindow
        from repro.util.intervals import SECONDS_PER_DAY

        plan = FaultPlan(outages=(OutageWindow(
            3.0 * SECONDS_PER_DAY, 4.0 * SECONDS_PER_DAY
        ),))
        policy, _capacity = build_policy("sievestore-c", tiny_context)
        path = tmp_path / "faulty.ckpt"
        run_engine(
            tiny_context, policy, fast=False, fault_plan=plan,
            checkpoint_path=path, checkpoint_every=EVERY,
        )
        with pytest.raises(CheckpointError, match="fault-injected"):
            resume_simulation(
                path, tiny_context.columnar_trace(), engine="fast"
            )
