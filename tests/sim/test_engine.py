"""Trace-driven simulation engine."""

import warnings

import pytest

import repro.sim.engine as engine_module
from repro.cache.allocation import AllocateOnDemand, NeverAllocate, StaticSet
from repro.core.sievestore_d import SieveStoreD, SieveStoreDConfig
from repro.sim.engine import simulate, total_epoch_count
from repro.traces.model import IOKind, IORequest, Trace
from repro.util.intervals import SECONDS_PER_DAY


def req(day, offset_s, block_offset=0, blocks=2, kind=IOKind.READ):
    issue = day * SECONDS_PER_DAY + offset_s
    return IORequest(
        issue_time=issue,
        completion_time=issue + 0.01,
        server_id=0,
        volume_id=0,
        block_offset=block_offset,
        block_count=blocks,
        kind=kind,
    )


class TestBasicRuns:
    def test_aod_counts(self):
        trace = Trace([req(0, 1.0), req(0, 2.0)])
        result = simulate(trace, AllocateOnDemand(), 16, days=1)
        total = result.stats.total
        assert total.accesses == 4
        assert total.hits == 2
        assert total.allocation_writes == 2

    def test_never_allocate_never_hits(self):
        trace = Trace([req(0, 1.0), req(0, 2.0)])
        result = simulate(trace, NeverAllocate(), 16, days=1)
        assert result.stats.total.hits == 0
        assert result.stats.total.allocation_writes == 0

    def test_consistency_always_checked(self):
        trace = Trace([req(0, 1.0)])
        result = simulate(trace, AllocateOnDemand(), 16, days=1)
        result.stats.check_consistency()

    def test_wall_time_recorded(self):
        trace = Trace([req(0, 1.0)])
        assert simulate(trace, AllocateOnDemand(), 4, days=1).wall_seconds >= 0


class TestEpochBoundaries:
    def test_static_set_installed_before_first_request(self):
        trace = Trace([req(0, 1.0)])
        result = simulate(trace, StaticSet({0, 1}), 16, days=1)
        assert result.stats.total.hits == 2

    def test_discrete_policy_sees_every_boundary(self):
        policy = SieveStoreD(SieveStoreDConfig(threshold=0))
        trace = Trace([req(0, 1.0), req(2, 1.0)])  # day 1 idle
        simulate(trace, policy, 16, days=3)
        assert policy.epochs_completed == 3

    def test_boundaries_fire_even_after_last_request(self):
        policy = SieveStoreD()
        trace = Trace([req(0, 1.0)])
        simulate(trace, policy, 16, days=4)
        assert policy.epochs_completed == 4

    def test_sievestore_d_hits_on_following_day(self):
        blocks = 2
        requests = [req(0, float(i), blocks=blocks) for i in range(11)]
        requests += [req(1, 1.0, blocks=blocks)]
        policy = SieveStoreD(SieveStoreDConfig(threshold=10, capacity_blocks=16))
        result = simulate(Trace(requests), policy, 16, days=2)
        assert result.stats.per_day[0].hits == 0
        assert result.stats.per_day[1].hits == blocks


class TestCustomEpochs:
    def test_shorter_epochs_fire_more_boundaries(self):
        policy = SieveStoreD(SieveStoreDConfig(threshold=0))
        trace = Trace([req(0, 1.0)])
        simulate(trace, policy, 16, days=1, epoch_seconds=6 * 3600.0)
        assert policy.epochs_completed == 4

    def test_half_day_epoch_allocates_mid_day(self):
        # 11 touches in the morning; the noon boundary installs the
        # block; the afternoon touch hits.
        requests = [req(0, float(i), blocks=1) for i in range(11)]
        requests.append(req(0, 13 * 3600.0, blocks=1))
        policy = SieveStoreD(SieveStoreDConfig(threshold=10, capacity_blocks=16))
        result = simulate(
            Trace(requests), policy, 16, days=1, epoch_seconds=12 * 3600.0
        )
        assert result.stats.per_day[0].hits == 1

    def test_rejects_bad_epoch(self):
        with pytest.raises(ValueError):
            simulate(Trace([]), AllocateOnDemand(), 4, days=1, epoch_seconds=0)

    def test_default_epoch_is_one_day(self):
        policy = SieveStoreD()
        simulate(Trace([req(0, 1.0)]), policy, 16, days=2)
        assert policy.epochs_completed == 2


class TestEpochCount:
    def test_daily_epochs(self):
        assert total_epoch_count(8, SECONDS_PER_DAY) == 8

    def test_non_dividing_epoch_rounds_up(self):
        # 8 days / 7 hours = 27.43 epochs; the partial 28th still fires.
        assert total_epoch_count(8, 7 * 3600.0) == 28

    def test_epoch_longer_than_trace_still_fires_once(self):
        assert total_epoch_count(1, 7 * SECONDS_PER_DAY) == 1

    def test_exact_division_not_overcounted(self):
        assert total_epoch_count(1, 86400.0 / 900000 * 1000) == 900

    def test_float_quotient_rounding_caught(self):
        # 3 days / (3 days / 7): the float epoch is a hair below the
        # real seventh, so the true quotient exceeds 7 and an eighth
        # (partial) epoch fires — but the float quotient rounds to
        # exactly 7.0 and math.ceil over it would undercount.
        assert total_epoch_count(3, 3 * SECONDS_PER_DAY / 7) == 8

    def test_seven_hour_epochs_over_eight_days(self):
        policy = SieveStoreD(SieveStoreDConfig(threshold=0))
        trace = Trace([req(0, 1.0), req(7, 1.0)])
        simulate(trace, policy, 16, days=8, epoch_seconds=7 * 3600.0)
        assert policy.epochs_completed == 28


class TestEngineField:
    def test_fast_path_recorded(self):
        trace = Trace([req(0, 1.0)])
        result = simulate(trace, AllocateOnDemand(), 16, days=1, fast_path=True)
        assert result.engine == "fast"

    def test_object_path_recorded(self):
        trace = Trace([req(0, 1.0)])
        result = simulate(trace, AllocateOnDemand(), 16, days=1)
        assert result.engine == "object"

    def test_fallback_records_object_and_warns_once(self, monkeypatch):
        monkeypatch.setattr(engine_module, "_FALLBACK_WARNED", False)
        trace = Trace([req(0, 1.0)])
        with pytest.warns(RuntimeWarning, match="fell back"):
            result = simulate(
                trace, AllocateOnDemand(), 16, days=1,
                fast_path=True, replacement="fifo",
            )
        assert result.engine == "object"
        # Second fallback in the same process: no further warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            simulate(
                trace, AllocateOnDemand(), 16, days=1,
                fast_path=True, replacement="fifo",
            )

    def test_fallback_warning_state_is_resettable(self, monkeypatch):
        monkeypatch.setattr(engine_module, "_FALLBACK_WARNED", False)
        trace = Trace([req(0, 1.0)])
        with pytest.warns(RuntimeWarning, match="fell back"):
            simulate(
                trace, AllocateOnDemand(), 16, days=1,
                fast_path=True, replacement="fifo",
            )
        # The suite runner resets per task so each task's first
        # fallback warns again, no matter what ran before it.
        engine_module._reset_fallback_warnings()
        with pytest.warns(RuntimeWarning, match="fell back"):
            simulate(
                trace, AllocateOnDemand(), 16, days=1,
                fast_path=True, replacement="fifo",
            )


class TestDailyCapture:
    def test_capture_series_shape(self):
        trace = Trace([req(0, 1.0), req(1, 1.0)])
        result = simulate(trace, AllocateOnDemand(), 16, days=2)
        assert len(result.daily_capture()) == 2
        assert len(result.daily_allocation_writes()) == 2

    def test_replacement_choice_respected(self):
        trace = Trace([req(0, float(i), block_offset=i * 2) for i in range(10)])
        lru = simulate(trace, AllocateOnDemand(), 4, days=1, replacement="lru")
        fifo = simulate(trace, AllocateOnDemand(), 4, days=1, replacement="fifo")
        # Disjoint single-touch blocks: same results either way, but both
        # must run and keep the cache at capacity.
        assert len(lru.cache) == 4
        assert len(fifo.cache) == 4

    def test_minutes_tracked_when_enabled(self):
        trace = Trace([req(0, 1.0), req(0, 2.0)])
        with_minutes = simulate(trace, AllocateOnDemand(), 16, days=1)
        without = simulate(
            trace, AllocateOnDemand(), 16, days=1, track_minutes=False
        )
        assert with_minutes.stats.per_minute
        assert not without.stats.per_minute
