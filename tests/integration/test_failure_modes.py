"""Failure-injection and edge-condition tests.

A production library must fail loudly and precisely; these tests pin
the error behaviour at the seams — malformed traces, corrupt logs,
degenerate configurations — and the graceful paths (idle days, empty
traces, single-frame caches).
"""

import pytest

from repro.cache import AllocateOnDemand, BlockCache
from repro.core.sievestore_c import SieveStoreC, SieveStoreCConfig
from repro.core.sievestore_d import SieveStoreD
from repro.sim.engine import simulate
from repro.traces.model import IOKind, IORequest, Trace
from repro.util.intervals import SECONDS_PER_DAY


def req(day=0, offset_s=0.0, **kw):
    issue = day * SECONDS_PER_DAY + offset_s
    defaults = dict(
        issue_time=issue, completion_time=issue + 0.01, server_id=0,
        volume_id=0, block_offset=0, block_count=2, kind=IOKind.READ,
    )
    defaults.update(kw)
    return IORequest(**defaults)


class TestDegenerateTraces:
    def test_empty_trace_simulates(self):
        result = simulate(Trace([]), AllocateOnDemand(), 8, days=3,
                          track_minutes=False)
        assert result.stats.total.accesses == 0
        assert all(d.hit_ratio == 0.0 for d in result.stats.per_day)

    def test_single_request(self):
        result = simulate(Trace([req()]), AllocateOnDemand(), 8, days=1,
                          track_minutes=False)
        assert result.stats.total.accesses == 2

    def test_idle_middle_day(self):
        trace = Trace([req(day=0), req(day=2)])
        result = simulate(trace, AllocateOnDemand(), 8, days=3,
                          track_minutes=False)
        assert result.stats.per_day[1].accesses == 0

    def test_requests_past_configured_days_clamp(self):
        trace = Trace([req(day=9)])
        result = simulate(trace, AllocateOnDemand(), 8, days=3,
                          track_minutes=False)
        # Clamped into the last day rather than lost or crashing.
        assert result.stats.per_day[2].accesses == 2

    def test_one_frame_cache(self):
        trace = Trace([req(offset_s=i, block_offset=i * 4) for i in range(10)])
        result = simulate(trace, AllocateOnDemand(), 1, days=1,
                          track_minutes=False)
        assert len(result.cache) == 1
        result.cache.check_invariants()


class TestMalformedInputs:
    def test_negative_time_rejected_at_bucketing(self):
        from repro.util.intervals import day_of, minute_of

        with pytest.raises(ValueError):
            day_of(-1.0)
        with pytest.raises(ValueError):
            minute_of(-0.5)

    def test_corrupt_log_line_raises(self, tmp_path):
        from repro.offline.logs import AccessLog
        from repro.offline.mapreduce import reduce_all

        log = AccessLog(tmp_path, partitions=1)
        log.partition_path(0).write_text("12 3\nnot-a-record\n")
        with pytest.raises(ValueError):
            reduce_all(log)

    def test_msr_malformed_row_raises(self, tmp_path):
        from repro.traces.msr import read_msr_csv

        path = tmp_path / "bad.csv"
        path.write_text("123,host,0,Read,not-an-offset,4096,100\n")
        with pytest.raises(ValueError):
            read_msr_csv(path)

    def test_msr_comment_and_blank_lines_skipped(self, tmp_path):
        from repro.traces.msr import read_msr_csv

        path = tmp_path / "ok.csv"
        path.write_text(
            "# header comment\n"
            "\n"
            "10000000,host,0,Read,0,512,1000\n"
        )
        assert len(read_msr_csv(path)) == 1


class TestDegenerateConfigurations:
    def test_sievestore_c_threshold_one(self):
        """t1=1, t2=0: degenerates toward allocate-on-second-touch."""
        sieve = SieveStoreC(SieveStoreCConfig(imct_slots=1 << 12, t1=1, t2=1))
        assert not sieve.wants(5, is_write=False, time=0.0)  # promotes
        assert sieve.wants(5, is_write=False, time=1.0)

    def test_sievestore_d_threshold_zero_admits_everything(self):
        policy = SieveStoreD.__new__(SieveStoreD)
        from repro.core.sievestore_d import SieveStoreDConfig

        policy.__init__(SieveStoreDConfig(threshold=0, capacity_blocks=1000))
        policy.observe(1, is_write=False, time=0.0, hit=False)
        assert policy.epoch_boundary(1) == {1}

    def test_tiny_imct_still_functions(self):
        sieve = SieveStoreC(SieveStoreCConfig(imct_slots=1, t1=2, t2=1))
        # One slot: everything aliases, but the MCT keeps exactness.
        for address in range(50):
            sieve.wants(address, is_write=False, time=float(address))
        assert sieve.imct.slots == 1

    def test_cache_capacity_one_with_batch(self):
        cache = BlockCache(1)
        cache.replace_contents({7})
        assert 7 in cache
        with pytest.raises(ValueError):
            cache.replace_contents({1, 2})


class TestClockRollover:
    def test_subwindow_counter_survives_long_idle(self):
        from repro.core.windows import SubwindowCounter

        counter = SubwindowCounter(4)
        counter.record(0, amount=9)
        # A week of silence later, state must read as empty, not stale
        # garbage.
        assert counter.total(10_000) == 0
        assert counter.record(10_000) == 1

    def test_mct_prune_after_long_idle(self):
        from repro.core.mct import MissCountTable
        from repro.core.windows import WindowSpec

        mct = MissCountTable(WindowSpec(100.0, 4), prune_interval=1e9)
        for address in range(100):
            mct.record_miss(address, 0.0)
        assert mct.prune(1e6) == 100
        assert len(mct) == 0
