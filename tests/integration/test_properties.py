"""Cross-module property-based tests (hypothesis).

These check global invariants that individual unit tests cannot: the
engine's accounting against a brute-force reference cache, conservation
of occupancy across aggregation windows, sieve admission monotonicity,
and the allocation/replacement split.
"""

from collections import OrderedDict

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import AllocateOnDemand, WriteMissNoAllocate
from repro.cache.stats import CacheStats
from repro.core.sievestore_c import SieveStoreC, SieveStoreCConfig
from repro.core.sievestore_d import SieveStoreD, SieveStoreDConfig
from repro.core.windows import WindowSpec
from repro.sim.engine import simulate
from repro.ssd.device import INTEL_X25E
from repro.ssd.occupancy import occupancy_from_stats
from repro.traces.model import IOKind, IORequest, Trace


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
@st.composite
def random_traces(draw, max_requests=60, max_offset=40):
    """Small chronological single-server traces."""
    n = draw(st.integers(min_value=1, max_value=max_requests))
    requests = []
    time = 0.0
    for _ in range(n):
        time += draw(st.floats(min_value=0.01, max_value=500.0))
        requests.append(
            IORequest(
                issue_time=time,
                completion_time=time + draw(st.floats(min_value=0.0, max_value=1.0)),
                server_id=0,
                volume_id=0,
                block_offset=draw(st.integers(min_value=0, max_value=max_offset)),
                block_count=draw(st.integers(min_value=1, max_value=4)),
                kind=draw(st.sampled_from([IOKind.READ, IOKind.WRITE])),
            )
        )
    return Trace(requests)


def reference_lru_aod(trace, capacity, write_allocate=True):
    """Brute-force demand-fill LRU over the block stream."""
    lru = OrderedDict()
    hits = misses = allocs = 0
    for request in trace:
        for address in request.addresses():
            if address in lru:
                hits += 1
                lru.move_to_end(address)
            else:
                misses += 1
                if write_allocate or request.is_read:
                    allocs += 1
                    lru[address] = None
                    if len(lru) > capacity:
                        lru.popitem(last=False)
    return hits, misses, allocs


# ---------------------------------------------------------------------------
# engine vs reference
# ---------------------------------------------------------------------------
class TestEngineAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(trace=random_traces(), capacity=st.integers(min_value=1, max_value=16))
    def test_aod_matches_bruteforce_lru(self, trace, capacity):
        result = simulate(
            trace, AllocateOnDemand(), capacity, days=1, track_minutes=False
        )
        hits, misses, allocs = reference_lru_aod(trace, capacity)
        total = result.stats.total
        assert (total.hits, total.misses, total.allocation_writes) == (
            hits,
            misses,
            allocs,
        )

    @settings(max_examples=60, deadline=None)
    @given(trace=random_traces(), capacity=st.integers(min_value=1, max_value=16))
    def test_wmna_matches_bruteforce(self, trace, capacity):
        result = simulate(
            trace, WriteMissNoAllocate(), capacity, days=1, track_minutes=False
        )
        hits, misses, allocs = reference_lru_aod(
            trace, capacity, write_allocate=False
        )
        total = result.stats.total
        assert (total.hits, total.misses, total.allocation_writes) == (
            hits,
            misses,
            allocs,
        )

    @settings(max_examples=40, deadline=None)
    @given(trace=random_traces())
    def test_accounting_identity(self, trace):
        for policy in (AllocateOnDemand(), WriteMissNoAllocate()):
            result = simulate(trace, policy, 8, days=1, track_minutes=False)
            total = result.stats.total
            assert total.hits + total.misses == total.accesses
            assert total.accesses == trace.total_blocks()

    @settings(max_examples=40, deadline=None)
    @given(trace=random_traces(), capacity=st.integers(min_value=1, max_value=8))
    def test_aod_allocates_every_miss(self, trace, capacity):
        result = simulate(
            trace, AllocateOnDemand(), capacity, days=1, track_minutes=False
        )
        total = result.stats.total
        assert total.allocation_writes == total.misses


# ---------------------------------------------------------------------------
# sieve properties
# ---------------------------------------------------------------------------
class TestSieveProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        counts=st.dictionaries(
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=1, max_value=30),
            max_size=40,
        ),
        t_low=st.integers(min_value=0, max_value=10),
        delta=st.integers(min_value=1, max_value=10),
    )
    def test_d_selection_monotone_in_threshold(self, counts, t_low, delta):
        """A higher threshold selects a subset of the lower's batch.

        (Note: per-day *insertion counts* are NOT monotone in the
        threshold — a block selected on consecutive days at a low
        threshold inserts zero times, while a higher threshold that
        excludes it on day one inserts it on day two — so the invariant
        lives at the selection rule, not the allocation-write totals.)
        """
        from collections import Counter

        table = Counter(counts)
        low = SieveStoreD(SieveStoreDConfig(threshold=t_low))
        high = SieveStoreD(SieveStoreDConfig(threshold=t_low + delta))
        assert high.select_allocation(table) <= low.select_allocation(table)

    @settings(max_examples=30, deadline=None)
    @given(trace=random_traces())
    def test_c_never_allocates_first_touch(self, trace):
        """With t1 >= 2, a block's first miss is never admitted."""
        policy = SieveStoreC(
            SieveStoreCConfig(imct_slots=1 << 16, t1=2, t2=1,
                              window=WindowSpec(1e9, 4))
        )
        seen = set()
        for request in trace:
            for address in request.addresses():
                first_touch = address not in seen
                seen.add(address)
                admitted = policy.wants(address, request.is_write,
                                        request.issue_time)
                if first_touch and len(seen) == 1:
                    assert not admitted

    @settings(max_examples=30, deadline=None)
    @given(trace=random_traces(max_offset=200))
    def test_sieve_allocations_bounded_by_unsieved(self, trace):
        sieve = SieveStoreC(SieveStoreCConfig(imct_slots=1 << 16, t1=2, t2=1))
        sieved = simulate(trace, sieve, 64, days=1, track_minutes=False)
        unsieved = simulate(
            trace, AllocateOnDemand(), 64, days=1, track_minutes=False
        )
        assert (
            sieved.stats.total.allocation_writes
            <= unsieved.stats.total.allocation_writes
        )


# ---------------------------------------------------------------------------
# occupancy conservation
# ---------------------------------------------------------------------------
class TestOccupancyConservation:
    @settings(max_examples=40, deadline=None)
    @given(
        events=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=59),   # minute
                st.integers(min_value=0, max_value=50),   # read units
                st.integers(min_value=0, max_value=50),   # write units
            ),
            max_size=40,
        ),
        window=st.sampled_from([1, 2, 5, 10, 30, 60]),
    )
    def test_busy_seconds_invariant_across_windows(self, events, window):
        """Total busy-seconds is independent of the aggregation window."""
        stats = CacheStats(days=1)
        for minute, reads, writes in events:
            if reads:
                stats.record_ssd_io(minute * 60.0, reads, is_write=False)
            if writes:
                stats.record_ssd_io(minute * 60.0, writes, is_write=True)
        fine = occupancy_from_stats(stats, INTEL_X25E, 60, window_minutes=1)
        coarse = occupancy_from_stats(stats, INTEL_X25E, 60, window_minutes=window)
        fine_busy = sum(v * 60.0 for v in fine.values)
        coarse_busy = sum(v * 60.0 * window for v in coarse.values)
        assert fine_busy == pytest.approx(coarse_busy, rel=1e-9, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=50)
    )
    def test_coverage_monotone_in_drives(self, values):
        from repro.ssd.occupancy import OccupancySeries

        series = OccupancySeries(
            minutes=tuple(range(len(values))), values=tuple(values)
        )
        fractions = [series.fraction_within(k) for k in range(0, 12)]
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))
        assert fractions[-1] == 1.0

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=50),
        cov_lo=st.floats(min_value=0.5, max_value=0.9),
        cov_hi=st.floats(min_value=0.91, max_value=1.0),
    )
    def test_drives_monotone_in_coverage(self, values, cov_lo, cov_hi):
        from repro.ssd.occupancy import OccupancySeries

        series = OccupancySeries(
            minutes=tuple(range(len(values))), values=tuple(values)
        )
        assert series.drives_for_coverage(cov_lo) <= series.drives_for_coverage(
            cov_hi
        )


# ---------------------------------------------------------------------------
# cache capacity safety under any policy
# ---------------------------------------------------------------------------
class TestCapacitySafety:
    @settings(max_examples=30, deadline=None)
    @given(
        trace=random_traces(max_offset=100),
        capacity=st.integers(min_value=1, max_value=6),
        replacement=st.sampled_from(["lru", "fifo", "lfu", "random"]),
    )
    def test_capacity_never_exceeded(self, trace, capacity, replacement):
        result = simulate(
            trace,
            AllocateOnDemand(),
            capacity,
            days=1,
            replacement=replacement,
            track_minutes=False,
        )
        assert len(result.cache) <= capacity
        result.cache.check_invariants()
