"""End-to-end: the paper's qualitative results on the shared tiny trace.

These tests run the full Figure-5 policy suite once (module-scoped) and
assert the *shape* claims of Section 5 — orderings and magnitude
classes, not absolute numbers.
"""

import pytest

from repro.sim import (
    mean_capture,
    run_policy_suite,
    total_allocation_writes,
)
from repro.ssd.device import INTEL_X25E
from repro.ssd.occupancy import occupancy_from_stats

DAYS = 8


@pytest.fixture(scope="module")
def suite(tiny_context):
    return run_policy_suite(tiny_context)


def capture(suite, name):
    skip = (0,) if name in ("sievestore-d", "randsieve-blkd") else ()
    return mean_capture(suite[name], skip_days=skip)


class TestFigure5Shape:
    def test_sievestore_c_close_to_ideal(self, suite):
        # Paper: SieveStore-C within ~4% of the day-by-day ideal.
        assert capture(suite, "sievestore-c") > 0.90 * capture(suite, "ideal")

    def test_sievestore_d_close_to_ideal(self, suite):
        # Paper: SieveStore-D within ~14% of ideal (excluding day 1).
        assert capture(suite, "sievestore-d") > 0.75 * capture(suite, "ideal")

    def test_sieves_beat_same_size_unsieved(self, suite):
        # At equal (16 GB-scaled) capacity, sieving wins decisively.
        same_size = max(capture(suite, "aod-16"), capture(suite, "wmna-16"))
        assert capture(suite, "sievestore-c") > same_size
        assert capture(suite, "sievestore-d") > 0.95 * same_size

    def test_sievestore_c_beats_best_unsieved(self, suite):
        best_unsieved = max(
            capture(suite, name)
            for name in ("aod-16", "wmna-16", "aod-32", "wmna-32")
        )
        assert capture(suite, "sievestore-c") > best_unsieved

    def test_day1_bootstrap_zero_for_d(self, suite):
        # Figure 5: SieveStore-D shows zero accesses on day 1.
        assert suite["sievestore-d"].daily_capture()[0] == 0.0

    def test_d_weak_on_day2(self, suite):
        # Day 1's partial logs qualify few blocks, so day 2 lags ideal.
        d_day2 = suite["sievestore-d"].daily_capture()[1]
        ideal_day2 = suite["ideal"].daily_capture()[1]
        assert d_day2 < 0.8 * ideal_day2

    def test_random_blkd_near_useless(self, suite):
        # "The extremely poor hit ratio of RandSieve-BlkD is to be
        # expected because of the low likelihood of randomly selecting
        # the hot blocks."
        assert capture(suite, "randsieve-blkd") < 0.1 * capture(suite, "ideal")

    def test_random_c_below_sievestore_c(self, suite):
        # RandSieve-C mostly allocates low-reuse blocks (~60% of misses).
        assert capture(suite, "randsieve-c") < capture(suite, "sievestore-c")

    def test_bigger_unsieved_cache_helps_but_not_enough(self, suite):
        assert capture(suite, "aod-32") > capture(suite, "aod-16")
        assert capture(suite, "wmna-32") > capture(suite, "wmna-16")
        assert capture(suite, "sievestore-c") > min(
            capture(suite, "aod-32"), capture(suite, "wmna-32")
        )


class TestFigure6Shape:
    def test_sieving_cuts_allocation_writes_by_orders_of_magnitude(self, suite):
        # Paper: "more than two orders of magnitude smaller".
        for sieve in ("sievestore-c", "sievestore-d"):
            for unsieved in ("aod-32", "wmna-32"):
                ratio = total_allocation_writes(suite[unsieved]) / max(
                    1, total_allocation_writes(suite[sieve])
                )
                assert ratio > 100, (sieve, unsieved, ratio)

    def test_random_sieves_between(self, suite):
        # Random sieving helps vs unsieved but is ~an order of magnitude
        # worse than true sieving (paper: 8.5x on average).
        rand = total_allocation_writes(suite["randsieve-c"])
        sieve = total_allocation_writes(suite["sievestore-c"])
        unsieved = total_allocation_writes(suite["wmna-32"])
        assert sieve < rand < unsieved
        assert rand / sieve > 3

    def test_wmna_allocates_less_than_aod(self, suite):
        assert total_allocation_writes(suite["wmna-32"]) < total_allocation_writes(
            suite["aod-32"]
        )


class TestFigure7Shape:
    def test_allocation_writes_dominate_unsieved_ssd_ops(self, suite):
        # "Without sieving, the allocation-writes constitute the
        # dominant fraction of all SSD accesses."
        total = suite["aod-32"].stats.total
        assert total.allocation_writes > total.hits

    def test_allocation_writes_negligible_for_sievestore(self, suite):
        # "the bars for the allocation-writes are ... nearly-invisible".
        for name in ("sievestore-c", "sievestore-d"):
            total = suite[name].stats.total
            assert total.allocation_writes < 0.05 * total.hits


class TestFigure8and9Shape:
    #: Aggregation window for scaled-trace occupancy: wide enough that
    #: the expected I/O-unit count per window leaves the small-number
    #: noise regime (see occupancy_from_stats docs).
    WINDOW = 60

    def test_sievestore_needs_fewer_drives_than_unsieved(
        self, suite, tiny_trace_config
    ):
        device = INTEL_X25E.scaled(tiny_trace_config.scale)
        minutes = DAYS * 1440
        drives = {}
        for name in ("sievestore-c", "sievestore-d", "wmna-32"):
            series = occupancy_from_stats(
                suite[name].stats, device, minutes, window_minutes=self.WINDOW
            )
            drives[name] = series.drives_for_coverage(0.999)
        assert drives["sievestore-c"] <= 2
        assert drives["sievestore-d"] <= 2
        assert drives["wmna-32"] > drives["sievestore-c"]

    def test_sievestore_occupancy_mostly_under_one(
        self, suite, tiny_trace_config
    ):
        device = INTEL_X25E.scaled(tiny_trace_config.scale)
        series = occupancy_from_stats(
            suite["sievestore-c"].stats,
            device,
            DAYS * 1440,
            window_minutes=self.WINDOW,
        )
        assert series.fraction_within(1) > 0.95


class TestAccountingInvariants:
    def test_all_policies_see_the_same_accesses(self, suite):
        totals = {name: r.stats.total.accesses for name, r in suite.items()}
        assert len(set(totals.values())) == 1

    def test_hits_plus_misses_equals_accesses(self, suite):
        for result in suite.values():
            result.stats.check_consistency()

    def test_capacity_respected(self, suite, tiny_context):
        for name, result in suite.items():
            result.cache.check_invariants()
