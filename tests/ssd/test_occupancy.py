"""Per-minute drive occupancy and drives-needed (Figures 8/9 machinery)."""

import pytest

from repro.cache.stats import CacheStats
from repro.ssd.device import INTEL_X25E
from repro.ssd.occupancy import (
    OccupancySeries,
    coverage_table,
    occupancy_from_stats,
    sorted_drive_requirements,
)


def series(values):
    return OccupancySeries(
        minutes=tuple(range(len(values))), values=tuple(values)
    )


class TestOccupancySeries:
    def test_drives_needed_is_ceiling(self):
        s = series([0.0, 0.4, 1.0, 1.3, 2.0])
        assert s.drives_needed() == [0, 1, 1, 2, 2]

    def test_max_occupancy(self):
        assert series([0.2, 0.9, 0.5]).max_occupancy() == 0.9

    def test_full_coverage_is_worst_case(self):
        s = series([0.5] * 99 + [6.3])
        assert s.drives_for_coverage(1.0) == 7

    def test_dilluted_coverage_ignores_peaks(self):
        # 999 quiet minutes, one 7-drive peak: 99.9% coverage needs 1.
        s = series([0.5] * 999 + [6.3])
        assert s.drives_for_coverage(0.999) == 1

    def test_fraction_within(self):
        s = series([0.5] * 90 + [1.5] * 10)
        assert s.fraction_within(1) == pytest.approx(0.9)
        assert s.fraction_within(2) == 1.0

    def test_invalid_coverage(self):
        with pytest.raises(ValueError):
            series([0.1]).drives_for_coverage(0.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            OccupancySeries(minutes=(0, 1), values=(0.1,))


class TestOccupancyFromStats:
    def test_reads_and_writes_weighted_by_service_time(self):
        stats = CacheStats(days=1)
        # One minute of 35000 reads = 1 second busy = occupancy 1/60.
        stats.record_ssd_io(30.0, 35000, is_write=False)
        s = occupancy_from_stats(stats, INTEL_X25E, total_minutes=2)
        assert s.values[0] == pytest.approx(1 / 60)
        assert s.values[1] == 0.0

    def test_writes_dominate(self):
        stats = CacheStats(days=1)
        stats.record_ssd_io(0.0, 3300, is_write=True)  # 1 busy second
        stats.record_ssd_io(60.0, 3300, is_write=False)  # ~0.094 s
        s = occupancy_from_stats(stats, INTEL_X25E, total_minutes=2)
        assert s.values[0] > 10 * s.values[1]

    def test_quiet_minutes_zero_filled(self):
        # Coverage statistics span the whole trace, as in the paper's
        # 10,080-minute analysis.
        stats = CacheStats(days=1)
        stats.record_ssd_io(0.0, 100, is_write=False)
        s = occupancy_from_stats(stats, INTEL_X25E, total_minutes=100)
        assert len(s) == 100
        assert s.fraction_within(0) == pytest.approx(0.99)

    def test_rejects_nonpositive_minutes(self):
        with pytest.raises(ValueError):
            occupancy_from_stats(CacheStats(days=1), INTEL_X25E, 0)


class TestHelpers:
    def test_sorted_requirements(self):
        s = series([2.5, 0.1, 1.0])
        assert sorted_drive_requirements(s) == [1, 1, 3]

    def test_coverage_table(self):
        s = series([0.5] * 999 + [6.3])
        table = coverage_table(s, coverages=(1.0, 0.999))
        assert table[1.0] == 7
        assert table[0.999] == 1
