"""End-to-end latency model (extension)."""

import pytest

from repro.cache.stats import CacheStats
from repro.ssd.latency import ERA_2010, LatencyModel, latency_report


def stats_with(read_hits=0, write_hits=0, read_misses=0, write_misses=0,
               allocation_writes=0):
    stats = CacheStats(days=1, track_minutes=False)
    day = stats.per_day[0]
    day.read_hits, day.write_hits = read_hits, write_hits
    day.read_misses, day.write_misses = read_misses, write_misses
    day.allocation_writes = allocation_writes
    day.accesses = read_hits + write_hits + read_misses + write_misses
    return stats


class TestModel:
    def test_defaults_sane(self):
        assert ERA_2010.hdd_read_ms > 10 * ERA_2010.ssd_read_ms
        assert ERA_2010.ssd_write_ms > ERA_2010.ssd_read_ms

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(ssd_read_ms=0)
        with pytest.raises(ValueError):
            LatencyModel(hdd_write_ms=-1)


class TestReport:
    def test_all_hits(self):
        report = latency_report(stats_with(read_hits=100))
        assert report.mean_access_ms == pytest.approx(0.1)
        assert report.mean_no_cache_ms == pytest.approx(8.0)
        assert report.speedup == pytest.approx(80.0)

    def test_all_misses_no_speedup(self):
        report = latency_report(stats_with(read_misses=100))
        assert report.mean_access_ms == pytest.approx(8.0)
        assert report.speedup == pytest.approx(1.0)

    def test_mixed(self):
        report = latency_report(
            stats_with(read_hits=50, read_misses=50)
        )
        assert report.mean_access_ms == pytest.approx((50 * 0.1 + 50 * 8) / 100)
        assert 1.0 < report.speedup < 80.0

    def test_allocation_overhead_counts_against_speedup(self):
        clean = latency_report(stats_with(read_hits=50, read_misses=50))
        churning = latency_report(
            stats_with(read_hits=50, read_misses=50, allocation_writes=50)
        )
        assert churning.allocation_overhead_ms > 0
        assert churning.speedup < clean.speedup

    def test_empty_stats(self):
        report = latency_report(CacheStats(days=1, track_minutes=False))
        assert report.mean_access_ms == 0.0

    def test_writes_weighted_separately(self):
        reads = latency_report(stats_with(write_hits=0, read_hits=100))
        writes = latency_report(stats_with(write_hits=100))
        assert writes.mean_access_ms > reads.mean_access_ms

    def test_simulation_integration(self, tiny_context):
        from repro.sim import run_policy

        sieved = latency_report(
            run_policy("sievestore-c", tiny_context, track_minutes=False).stats
        )
        unsieved = latency_report(
            run_policy("aod-16", tiny_context, track_minutes=False).stats
        )
        # Sieving wins on end-to-end latency: similar-or-better hit mix
        # without the allocation-write tax.
        assert sieved.speedup > 1.0
        assert sieved.speedup > unsieved.speedup
