"""SSD parameter model (Intel X25-E)."""

import pytest

from repro.ssd.device import INTEL_X25E, SSDModel
from repro.util.units import GIB


class TestX25EParameters:
    """Section 4's published device ratings."""

    def test_read_iops(self):
        assert INTEL_X25E.read_iops == 35_000

    def test_write_iops(self):
        assert INTEL_X25E.write_iops == 3_300

    def test_sequential_bandwidths(self):
        assert INTEL_X25E.seq_read_mbps == 250
        assert INTEL_X25E.seq_write_mbps == 170

    def test_endurance_one_petabyte(self):
        assert INTEL_X25E.endurance_bytes == 1e15

    def test_random_bandwidth_tighter_than_sequential(self):
        # "The random bandwidth ... is 140MB/s and 13.2MB/s which is a
        # tighter constraint than sequential bandwidth."
        assert INTEL_X25E.random_read_mbps == pytest.approx(143.4, abs=1)
        assert INTEL_X25E.random_write_mbps == pytest.approx(13.5, abs=0.5)
        assert INTEL_X25E.random_read_mbps < INTEL_X25E.seq_read_mbps
        assert INTEL_X25E.random_write_mbps < INTEL_X25E.seq_write_mbps


class TestServiceTimes:
    def test_read_occupancy(self):
        # Each 4KB read occupies the drive for 1/35000 s (Section 4).
        assert INTEL_X25E.read_service_time == pytest.approx(1 / 35000)

    def test_write_occupancy(self):
        assert INTEL_X25E.write_service_time == pytest.approx(1 / 3300)

    def test_occupancy_seconds(self):
        seconds = INTEL_X25E.occupancy_seconds(35000, 3300)
        assert seconds == pytest.approx(2.0)

    def test_writes_cost_more_than_reads(self):
        assert INTEL_X25E.write_service_time > 10 * INTEL_X25E.read_service_time


class TestScaling:
    def test_scaled_preserves_service_ratio(self):
        scaled = INTEL_X25E.scaled(1e-3)
        ratio = scaled.write_service_time / scaled.read_service_time
        full = INTEL_X25E.write_service_time / INTEL_X25E.read_service_time
        assert ratio == pytest.approx(full)

    def test_scaled_occupancy_matches_scaled_load(self):
        # drives-needed invariance: load/throughput ratio is preserved.
        scaled = INTEL_X25E.scaled(0.01)
        full_occ = INTEL_X25E.occupancy_seconds(10000, 1000)
        scaled_occ = scaled.occupancy_seconds(100, 10)
        assert scaled_occ == pytest.approx(full_occ)

    def test_scaled_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            INTEL_X25E.scaled(0.0)
        with pytest.raises(ValueError):
            INTEL_X25E.scaled(2.0)


class TestValidation:
    def test_rejects_nonpositive_iops(self):
        with pytest.raises(ValueError):
            SSDModel("bad", 0, 1, 1, 1, GIB, 1e15)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SSDModel("bad", 1, 1, 1, 1, 0, 1e15)
