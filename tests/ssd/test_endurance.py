"""SSD endurance / lifetime arithmetic (Section 5.1)."""

import pytest

from repro.cache.stats import CacheStats
from repro.ssd.device import INTEL_X25E
from repro.ssd.endurance import (
    endurance_report,
    lifetime_years,
    paper_endurance_example,
)
from repro.util.intervals import SECONDS_PER_DAY


class TestLifetimeYears:
    def test_paper_example_exceeds_ten_years(self):
        # "the disk's endurance is over 10 years
        #  = (10^15 / (5 x 10^8 x 512 x 365))"
        years = paper_endurance_example(INTEL_X25E)
        assert years == pytest.approx(1e15 / (5e8 * 512 * 365), rel=1e-9)
        assert years > 10

    def test_zero_writes_is_infinite(self):
        assert lifetime_years(INTEL_X25E, 0) == float("inf")

    def test_scales_inversely_with_write_rate(self):
        assert lifetime_years(INTEL_X25E, 1e8) == pytest.approx(
            5 * lifetime_years(INTEL_X25E, 5e8)
        )

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            lifetime_years(INTEL_X25E, -1)


class TestEnduranceReport:
    def test_report_from_stats(self):
        stats = CacheStats(days=2, track_minutes=False)
        stats.record_hit(0.0, is_write=True, blocks=1000)
        stats.record_allocation_write(0.0, blocks=500)
        stats.record_hit(SECONDS_PER_DAY + 1, is_write=True, blocks=3000)
        report = endurance_report(INTEL_X25E, stats)
        assert report.peak_daily_write_blocks == 3000
        assert report.mean_daily_write_blocks == pytest.approx(2250)
        assert report.lifetime_years_at_peak < report.lifetime_years_at_mean

    def test_idle_days_excluded_from_mean(self):
        stats = CacheStats(days=3, track_minutes=False)
        stats.record_hit(0.0, is_write=True, blocks=100)
        report = endurance_report(INTEL_X25E, stats)
        assert report.mean_daily_write_blocks == 100
