"""Hash-partitioned access logs (SieveStore-D metastate)."""

import pytest

from repro.offline.logs import AccessLog


class TestLifecycle:
    def test_context_manager_opens_and_closes(self, tmp_path):
        with AccessLog(tmp_path, partitions=4) as log:
            log.append(1)
        assert log.records_written == 1

    def test_append_without_open_raises(self, tmp_path):
        log = AccessLog(tmp_path)
        with pytest.raises(RuntimeError):
            log.append(1)

    def test_rejects_nonpositive_partitions(self, tmp_path):
        with pytest.raises(ValueError):
            AccessLog(tmp_path, partitions=0)

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "logs"
        with AccessLog(target, partitions=2) as log:
            log.append(5)
        assert target.exists()


class TestPartitioning:
    def test_partition_stable(self, tmp_path):
        log = AccessLog(tmp_path, partitions=8)
        assert log.partition_of(42) == log.partition_of(42)

    def test_record_lands_in_its_partition(self, tmp_path):
        with AccessLog(tmp_path, partitions=8) as log:
            log.append(42, count=3)
        partition = log.partition_of(42)
        assert list(log.read_partition(partition)) == [(42, 3)]
        for other in range(8):
            if other != partition:
                assert list(log.read_partition(other)) == []

    def test_spread_across_partitions(self, tmp_path):
        with AccessLog(tmp_path, partitions=8) as log:
            for address in range(400):
                log.append(address)
        sizes = [sum(1 for _ in log.read_partition(i)) for i in range(8)]
        assert min(sizes) > 10  # roughly uniform


class TestReadWrite:
    def test_append_rejects_bad_count(self, tmp_path):
        with AccessLog(tmp_path) as log:
            with pytest.raises(ValueError):
                log.append(1, count=0)

    def test_missing_partition_reads_empty(self, tmp_path):
        log = AccessLog(tmp_path, partitions=2)
        assert list(log.read_partition(0)) == []

    def test_appending_twice_accumulates_lines(self, tmp_path):
        with AccessLog(tmp_path, partitions=1) as log:
            log.append(7)
        with AccessLog(tmp_path, partitions=1) as log:
            log.append(7)
        assert list(log.read_partition(0)) == [(7, 1), (7, 1)]

    def test_partition_sizes(self, tmp_path):
        with AccessLog(tmp_path, partitions=2) as log:
            log.append(1)
        assert sum(log.partition_sizes()) > 0

    def test_clear(self, tmp_path):
        with AccessLog(tmp_path, partitions=2) as log:
            log.append(1)
        log.clear()
        assert sum(log.partition_sizes()) == 0
        assert log.records_written == 0

    def test_clear_while_open_raises(self, tmp_path):
        log = AccessLog(tmp_path)
        log.open()
        with pytest.raises(RuntimeError):
            log.clear()
        log.close()
