"""Sort + run-length per-key reduction, and equivalence with the
in-memory sieve (the paper's offline pipeline for SieveStore-D)."""

import random
from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core.sievestore_d import SieveStoreD, SieveStoreDConfig
from repro.offline.logs import AccessLog
from repro.offline.mapreduce import (
    compact,
    epoch_allocation,
    log_trace_day,
    reduce_all,
    reduce_partition,
)


class TestReduction:
    def test_counts_duplicates(self, tmp_path):
        with AccessLog(tmp_path, partitions=4) as log:
            for _ in range(5):
                log.append(10)
            log.append(11)
        counts = reduce_all(log)
        assert counts == Counter({10: 5, 11: 1})

    def test_mixes_raw_and_compacted_tuples(self, tmp_path):
        with AccessLog(tmp_path, partitions=1) as log:
            log.append(3, count=4)
            log.append(3, count=1)
        assert reduce_all(log)[3] == 5

    def test_reduce_partition_sorted_output(self, tmp_path):
        with AccessLog(tmp_path, partitions=1) as log:
            for address in (9, 1, 5, 1, 9, 9):
                log.append(address)
        reduced = list(reduce_partition(log, 0))
        assert reduced == [(1, 2), (5, 1), (9, 3)]

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=200))
    def test_equals_counter(self, addresses):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            with AccessLog(tmp, partitions=4) as log:
                for address in addresses:
                    log.append(address)
            assert reduce_all(log) == Counter(addresses)


class TestCompaction:
    def test_compaction_preserves_counts(self, tmp_path):
        with AccessLog(tmp_path, partitions=4) as log:
            for address in [1, 2, 1, 1, 3, 2] * 50:
                log.append(address)
        before = reduce_all(log)
        saved = compact(log)
        assert saved > 0
        assert reduce_all(log) == before

    def test_compaction_is_idempotent(self, tmp_path):
        with AccessLog(tmp_path, partitions=2) as log:
            for address in (1, 1, 2):
                log.append(address)
        compact(log)
        assert compact(log) == 0

    def test_incremental_compact_then_more_appends(self, tmp_path):
        # Section 3.2: "per-key reductions may be periodically performed
        # in an incremental way to reduce the size of the logs".
        with AccessLog(tmp_path, partitions=2) as log:
            for _ in range(10):
                log.append(5)
        compact(log)
        with AccessLog(tmp_path, partitions=2) as log:
            for _ in range(7):
                log.append(5)
        assert reduce_all(log)[5] == 17


class TestEpochAllocation:
    def test_threshold_rule(self, tmp_path):
        with AccessLog(tmp_path, partitions=2) as log:
            for _ in range(11):
                log.append(1)
            for _ in range(10):
                log.append(2)
        assert epoch_allocation(log, threshold=10) == {1}

    def test_capacity_cap(self, tmp_path):
        with AccessLog(tmp_path, partitions=2) as log:
            for address, n in [(1, 5), (2, 9), (3, 7)]:
                for _ in range(n):
                    log.append(address)
        assert epoch_allocation(log, threshold=1, capacity_blocks=2) == {2, 3}

    def test_matches_in_memory_sieve(self, tmp_path):
        """The offline pipeline and SieveStoreD produce identical batches."""
        rng = random.Random(42)
        accesses = [rng.randrange(200) for _ in range(5000)]

        policy = SieveStoreD(SieveStoreDConfig(threshold=10))
        with AccessLog(tmp_path, partitions=8) as log:
            for address in accesses:
                policy.observe(address, is_write=False, time=0.0, hit=False)
                log.append(address)

        offline = epoch_allocation(
            log, threshold=10, capacity_blocks=policy.config.capacity_blocks
        )
        in_memory = policy.epoch_boundary(1)
        assert offline == in_memory


class TestLogTraceDay:
    def test_logs_every_block(self, tmp_path, tiny_trace):
        requests = tiny_trace.requests[:50]
        with AccessLog(tmp_path, partitions=4) as log:
            written = log_trace_day(log, requests)
        assert written == sum(r.block_count for r in requests)
        assert sum(reduce_all(log).values()) == written
