"""K-node appliance clusters (Section 7 extension, simulated)."""

import pytest

from repro.cache.allocation import AllocateOnDemand
from repro.core.sievestore_c import SieveStoreC, SieveStoreCConfig
from repro.ensemble.cluster import simulate_cluster
from repro.sim.engine import simulate

DAYS = 8


def sieve_factory(node):
    return SieveStoreC(SieveStoreCConfig(imct_slots=1 << 13))


class TestClusterSimulation:
    @pytest.fixture(scope="class")
    def one_node(self, tiny_trace, tiny_context):
        return simulate_cluster(
            tiny_trace,
            sieve_factory,
            total_capacity_blocks=tiny_context.sieved_capacity,
            days=DAYS,
            nodes=1,
        )

    @pytest.fixture(scope="class")
    def four_nodes(self, tiny_trace, tiny_context):
        return simulate_cluster(
            tiny_trace,
            sieve_factory,
            total_capacity_blocks=tiny_context.sieved_capacity,
            days=DAYS,
            nodes=4,
        )

    def test_single_node_matches_flat_simulation(
        self, one_node, tiny_trace, tiny_context
    ):
        flat = simulate(
            tiny_trace,
            sieve_factory(0),
            tiny_context.sieved_capacity,
            DAYS,
            track_minutes=False,
        )
        assert one_node.total.accesses == flat.stats.total.accesses
        assert one_node.total.hits == flat.stats.total.hits

    def test_cluster_sees_every_access(self, four_nodes, tiny_trace):
        assert four_nodes.total.accesses == tiny_trace.total_blocks()

    def test_partitions_cover_all_servers(self, four_nodes):
        covered = sorted(s for p in four_nodes.partitions for s in p)
        assert covered == list(range(13))

    def test_load_spreads_across_nodes(self, four_nodes):
        shares = four_nodes.node_access_shares()
        assert len(shares) == 4
        assert sum(shares) == pytest.approx(1.0)
        assert max(shares) < 0.75

    def test_capture_close_to_single_node(self, one_node, four_nodes):
        # Moderate partitioning keeps most of the sharing benefit.
        assert four_nodes.mean_capture > 0.7 * one_node.mean_capture

    def test_daily_capture_length(self, four_nodes):
        assert len(four_nodes.daily_capture()) == DAYS

    def test_validation(self, tiny_trace):
        with pytest.raises(ValueError):
            simulate_cluster(tiny_trace, sieve_factory, 100, DAYS, nodes=0)

    def test_restricted_server_set(self, tiny_trace):
        result = simulate_cluster(
            tiny_trace,
            lambda node: AllocateOnDemand(),
            total_capacity_blocks=128,
            days=DAYS,
            nodes=2,
            server_ids=[0, 5],
        )
        in_scope = sum(
            r.block_count for r in tiny_trace if r.server_id in (0, 5)
        )
        assert result.total.accesses == in_scope

    def test_independent_sieve_state(self, tiny_trace, tiny_context):
        """Each node owns its sieve — admissions are node-local."""
        policies = {}

        def recording_factory(node):
            policies[node] = SieveStoreC(SieveStoreCConfig(imct_slots=1 << 12))
            return policies[node]

        simulate_cluster(
            tiny_trace, recording_factory,
            tiny_context.sieved_capacity, DAYS, nodes=3,
        )
        assert len(policies) == 3
        assert sum(p.admissions for p in policies.values()) > 0
