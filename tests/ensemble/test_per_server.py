"""Section 5.3: ensemble vs ideal per-server caching."""

from collections import Counter

import pytest

from repro.ensemble.per_server import (
    compare_ensemble_vs_per_server,
    ensemble_ideal_shares,
    per_server_capacity_blocks,
    per_server_ideal_shares,
    whole_drive_cost_comparison,
)
from repro.traces.model import pack_address


def skewed_vs_flat_day():
    """Server 1 has 200 valuable blocks; server 2 is uniformly cold.

    The per-server 1% quota forces 100 of server 2's useless blocks to
    be 'cached' while only 100 of server 1's 200 valuable blocks fit;
    the ensemble-level 1% takes all 200 valuable blocks.
    """
    counts = Counter()
    for i in range(200):
        counts[pack_address(1, 0, i)] = 50
    for i in range(200, 10000):
        counts[pack_address(1, 0, i)] = 1
    for i in range(10000):
        counts[pack_address(2, 0, i)] = 1
    return counts


class TestIdealShares:
    def test_ensemble_never_below_per_server(self, tiny_context):
        """The global top-1% is at least as good as per-server top-1%
        at the same total set size — the crux of Section 5.3."""
        comparison = compare_ensemble_vs_per_server(tiny_context.daily_counts)
        for day, (ensemble, private) in enumerate(
            zip(comparison.ensemble_shares, comparison.per_server_shares)
        ):
            assert ensemble >= private - 0.02, f"day {day}"
        assert comparison.mean_ensemble >= comparison.mean_per_server

    def test_ensemble_advantage_on_synthetic_trace(self, tiny_context):
        # O2 (hot servers differ by day) makes sharing strictly better.
        comparison = compare_ensemble_vs_per_server(tiny_context.daily_counts)
        assert comparison.ensemble_advantage > 0.0

    def test_quota_reallocation_win(self):
        # Skew differs across servers: the global 1% reallocates the
        # per-server quotas toward the skewed server's valuable blocks.
        days = [skewed_vs_flat_day()]
        comparison = compare_ensemble_vs_per_server(days, fraction=0.01)
        assert comparison.mean_ensemble > 1.5 * comparison.mean_per_server

    def test_shares_bounded(self, tiny_context):
        for share in per_server_ideal_shares(tiny_context.daily_counts):
            assert 0.0 <= share <= 1.0
        for share in ensemble_ideal_shares(tiny_context.daily_counts):
            assert 0.0 <= share <= 1.0

    def test_empty_day(self):
        assert ensemble_ideal_shares([Counter()]) == [0.0]
        assert per_server_ideal_shares([Counter()]) == [0.0]


class TestWholeDriveComparison:
    def test_ensemble_uses_fewer_drives(self, tiny_context):
        rows = whole_drive_cost_comparison(
            tiny_context.daily_counts, server_count=13, ensemble_drives=2
        )
        by_name = {row.configuration: row for row in rows}
        ensemble = by_name["ensemble (SieveStore)"]
        private = by_name["per-server (one drive each)"]
        assert ensemble.drives < private.drives
        assert ensemble.mean_capture >= private.mean_capture
        assert ensemble.capture_per_drive > private.capture_per_drive

    def test_validation(self, tiny_context):
        with pytest.raises(ValueError):
            whole_drive_cost_comparison(
                tiny_context.daily_counts, server_count=0, ensemble_drives=1
            )


class TestPerServerCapacity:
    def test_capacity_is_peak_top_set(self):
        day0 = Counter({pack_address(1, 0, i): 10 for i in range(100)})
        day1 = Counter({pack_address(1, 0, i): 10 for i in range(300)})
        capacities = per_server_capacity_blocks([day0, day1])
        assert capacities[1] == 3  # 1% of 300

    def test_sums_comparable_to_ensemble_top_set(self, tiny_context):
        capacities = per_server_capacity_blocks(tiny_context.daily_counts)
        total_private = sum(capacities.values())
        peak_ensemble = max(
            max(1, len(c) // 100) for c in tiny_context.daily_counts
        )
        # Same ~1% sizing rule: totals agree within a small factor.
        assert 0.5 * peak_ensemble < total_private < 3 * peak_ensemble
