"""Section 3.3 network feasibility arithmetic."""

import pytest

from repro.cache.stats import CacheStats
from repro.ensemble.network import (
    NetworkBudget,
    network_report,
    worst_case_ssd_utilization,
)
from repro.ssd.device import INTEL_X25E


class TestBudget:
    def test_four_gbe_default(self):
        budget = NetworkBudget()
        assert budget.total_bytes_per_second == pytest.approx(500e6)

    def test_utilization(self):
        budget = NetworkBudget()
        assert budget.utilization(250e6) == pytest.approx(0.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            NetworkBudget().utilization(-1)


class TestWorstCase:
    def test_paper_fifty_percent_claim(self):
        # "Even the maximum SSD access throughput (100% sequential
        # reads, 250MB/s) accounts for approximately 50% of the network
        # bandwidth."
        utilization = worst_case_ssd_utilization(INTEL_X25E, NetworkBudget())
        assert utilization == pytest.approx(0.5, abs=0.01)


class TestMeasuredReport:
    def test_report_from_stats(self):
        stats = CacheStats(days=1)
        stats.record_ssd_io(0.0, 1000, is_write=False)
        stats.record_ssd_io(30.0, 500, is_write=True)
        report = network_report(stats, INTEL_X25E, device_scale=1.0)
        assert 0 < report.measured_peak_utilization < 1
        assert report.write_share_of_traffic == pytest.approx(1 / 3)

    def test_device_scale_rescales_traffic(self):
        stats = CacheStats(days=1)
        stats.record_ssd_io(0.0, 100, is_write=False)
        small = network_report(stats, INTEL_X25E, device_scale=1.0)
        scaled = network_report(stats, INTEL_X25E, device_scale=0.01)
        assert scaled.measured_peak_utilization == pytest.approx(
            100 * small.measured_peak_utilization
        )

    def test_empty_stats(self):
        report = network_report(CacheStats(days=1), INTEL_X25E)
        assert report.measured_peak_utilization == 0.0
        assert report.write_share_of_traffic == 0.0

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            network_report(CacheStats(days=1), INTEL_X25E, device_scale=0)
