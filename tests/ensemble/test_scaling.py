"""Multi-appliance scaling (Section 7 extension)."""

from collections import Counter

import pytest

from repro.ensemble.scaling import (
    partition_servers,
    partitioned_ideal_shares,
    scaling_profile,
)


class TestPartitioning:
    def test_round_robin(self):
        assert partition_servers([0, 1, 2, 3, 4], 2) == [[0, 2, 4], [1, 3]]

    def test_single_node_gets_everything(self):
        assert partition_servers([3, 1, 2], 1) == [[1, 2, 3]]

    def test_per_server_limit(self):
        partitions = partition_servers(list(range(13)), 13)
        assert all(len(p) == 1 for p in partitions)

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_servers([1, 2], 0)
        with pytest.raises(ValueError):
            partition_servers([1, 2], 3)


class TestPartitionedShares:
    def test_one_partition_equals_ensemble_ideal(self, tiny_context):
        from repro.ensemble.per_server import ensemble_ideal_shares

        single = partitioned_ideal_shares(
            tiny_context.daily_counts, [list(range(13))]
        )
        ensemble = ensemble_ideal_shares(tiny_context.daily_counts)
        for a, b in zip(single, ensemble):
            assert a == pytest.approx(b)

    def test_thirteen_partitions_equal_per_server(self, tiny_context):
        from repro.ensemble.per_server import per_server_ideal_shares

        split = partitioned_ideal_shares(
            tiny_context.daily_counts, [[s] for s in range(13)]
        )
        per_server = per_server_ideal_shares(tiny_context.daily_counts)
        for a, b in zip(split, per_server):
            assert a == pytest.approx(b)

    def test_capture_degrades_with_partitioning(self, tiny_context):
        one = partitioned_ideal_shares(tiny_context.daily_counts,
                                       [list(range(13))])
        thirteen = partitioned_ideal_shares(
            tiny_context.daily_counts, [[s] for s in range(13)]
        )
        assert sum(one) >= sum(thirteen)

    def test_empty_day(self):
        assert partitioned_ideal_shares([Counter()], [[0]]) == [0.0]


class TestScalingProfile:
    def test_profile_shape(self, tiny_context):
        profile = scaling_profile(
            tiny_context.daily_counts, list(range(13)), node_counts=(1, 2, 13)
        )
        assert [p.nodes for p in profile] == [1, 2, 13]
        assert profile[0].capture_retention == pytest.approx(1.0)

    def test_retention_monotone_nonincreasing(self, tiny_context):
        profile = scaling_profile(
            tiny_context.daily_counts, list(range(13)),
            node_counts=(1, 2, 4, 13),
        )
        retentions = [p.capture_retention for p in profile]
        for a, b in zip(retentions, retentions[1:]):
            assert b <= a + 0.01

    def test_peak_traffic_share_drops_with_nodes(self, tiny_context):
        profile = scaling_profile(
            tiny_context.daily_counts, list(range(13)), node_counts=(1, 4)
        )
        assert profile[1].peak_node_traffic_share < profile[0].peak_node_traffic_share
        assert profile[0].peak_node_traffic_share == pytest.approx(1.0)
