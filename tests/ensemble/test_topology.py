"""Ensemble topology helpers."""

from collections import Counter

import pytest

from repro.ensemble.topology import (
    EnsembleTopology,
    daily_unique_blocks_by_server,
    per_server_daily_counts_from_ensemble,
)
from repro.traces.model import pack_address
from repro.traces.servers import paper_ensemble


class TestEnsembleTopology:
    @pytest.fixture
    def topology(self):
        return EnsembleTopology(paper_ensemble())

    def test_totals(self, topology):
        assert round(topology.total_capacity_gb) == 6449
        assert topology.total_volumes == 36

    def test_server_lookup(self, topology):
        assert topology.server(5).key == "prxy"

    def test_missing_server(self, topology):
        with pytest.raises(KeyError):
            topology.server(99)

    def test_server_ids(self, topology):
        assert topology.server_ids == list(range(13))


class TestPerServerSplit:
    def test_splits_by_packed_address(self):
        day0 = Counter(
            {
                pack_address(1, 0, 5): 3,
                pack_address(2, 0, 5): 7,
                pack_address(1, 1, 9): 2,
            }
        )
        split = per_server_daily_counts_from_ensemble([day0])
        assert sum(split[1][0].values()) == 5
        assert sum(split[2][0].values()) == 7

    def test_preserves_total_mass(self, tiny_context):
        split = per_server_daily_counts_from_ensemble(tiny_context.daily_counts)
        for day in range(tiny_context.days):
            total = sum(
                sum(counters[day].values()) for counters in split.values()
            )
            assert total == sum(tiny_context.daily_counts[day].values())

    def test_daily_unique_blocks(self):
        day0 = Counter({pack_address(1, 0, i): 1 for i in range(10)})
        day1 = Counter({pack_address(1, 0, i): 1 for i in range(3)})
        uniques = daily_unique_blocks_by_server([day0, day1])
        assert uniques[1] == [10, 3]
