"""Fault plans: validation, serialization, interval arithmetic."""

import pytest

from repro.faults import (
    PLAN_SCHEMA_VERSION,
    ErrorWindow,
    FaultPlan,
    LatencyWindow,
    OutageWindow,
)
from repro.faults.plan import total_seconds
from repro.ssd.device import INTEL_X25E

DAY = 86400.0


def full_plan():
    return FaultPlan(
        errors=(
            ErrorWindow(10.0, 20.0, "read", 0.5),
            ErrorWindow(15.0, 30.0, "write"),
        ),
        latency=(LatencyWindow(40.0, 50.0, factor=3.0),),
        outages=(OutageWindow(100.0, 200.0), OutageWindow(500.0)),
        wearout_bytes=1e9,
        seed=7,
    )


class TestWindowValidation:
    def test_error_window_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ErrorWindow(0.0, 1.0, "flush")

    def test_error_window_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            ErrorWindow(5.0, 5.0, "read")

    def test_error_window_rejects_negative_start(self):
        with pytest.raises(ValueError):
            ErrorWindow(-1.0, 1.0, "read")

    @pytest.mark.parametrize("probability", [0.0, -0.5, 1.5])
    def test_error_window_rejects_bad_probability(self, probability):
        with pytest.raises(ValueError):
            ErrorWindow(0.0, 1.0, "read", probability)

    def test_latency_window_rejects_speedup(self):
        with pytest.raises(ValueError):
            LatencyWindow(0.0, 1.0, factor=0.5)

    def test_outage_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            OutageWindow(10.0, 10.0)

    def test_open_ended_outage_allowed(self):
        window = OutageWindow(10.0)
        assert window.contains(1e12)
        assert not window.contains(9.0)

    def test_half_open_containment(self):
        window = ErrorWindow(10.0, 20.0, "read")
        assert window.contains(10.0)
        assert not window.contains(20.0)


class TestPlanBasics:
    def test_empty_plan(self):
        assert FaultPlan().is_empty
        assert not full_plan().is_empty

    def test_rejects_nonpositive_wearout(self):
        with pytest.raises(ValueError):
            FaultPlan(wearout_bytes=0)

    def test_lists_coerced_to_tuples(self):
        plan = FaultPlan(errors=[ErrorWindow(0.0, 1.0, "read")])
        assert isinstance(plan.errors, tuple)

    def test_from_endurance_uses_device_budget(self):
        plan = FaultPlan.from_endurance(INTEL_X25E, fraction=0.5)
        assert plan.wearout_bytes == INTEL_X25E.endurance_bytes * 0.5
        assert not plan.is_empty


class TestSerialization:
    def test_dict_round_trip(self):
        plan = full_plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_json_round_trip(self, tmp_path):
        plan = full_plan()
        path = tmp_path / "plan.json"
        plan.save_json(path)
        assert FaultPlan.load_json(path) == plan

    def test_rejects_unknown_schema_version(self):
        payload = full_plan().to_dict()
        payload["schema_version"] = PLAN_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            FaultPlan.from_dict(payload)

    def test_fingerprint_deterministic_and_sensitive(self):
        assert full_plan().fingerprint() == full_plan().fingerprint()
        assert FaultPlan().fingerprint() != full_plan().fingerprint()
        reseeded = FaultPlan(seed=1)
        assert reseeded.fingerprint() != FaultPlan().fingerprint()


class TestIntervalArithmetic:
    def test_bypass_merges_overlaps_and_clips(self):
        plan = FaultPlan(
            outages=(OutageWindow(10.0, 30.0), OutageWindow(20.0, 40.0),
                     OutageWindow(90.0)),
        )
        assert plan.bypass_intervals(100.0) == [(10.0, 40.0), (90.0, 100.0)]

    def test_wearout_extends_bypass_to_end_of_run(self):
        plan = FaultPlan(wearout_bytes=1.0)
        assert plan.bypass_intervals(50.0, worn_out_at=20.0) == [(20.0, 50.0)]
        assert plan.bypass_intervals(50.0, worn_out_at=None) == []

    def test_bypass_dominates_degraded(self):
        plan = FaultPlan(
            errors=(ErrorWindow(0.0, 40.0, "read"),),
            outages=(OutageWindow(10.0, 20.0),),
        )
        assert plan.degraded_intervals(100.0) == [(0.0, 10.0), (20.0, 40.0)]
        assert total_seconds(plan.degraded_intervals(100.0)) == 30.0

    def test_latency_windows_count_as_degraded(self):
        plan = FaultPlan(latency=(LatencyWindow(5.0, 15.0),))
        assert plan.degraded_intervals(100.0) == [(5.0, 15.0)]
