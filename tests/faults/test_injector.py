"""Fault injector: health queries, error draws, wear-out, picklability."""

import pickle

from repro.faults import (
    DeviceHealth,
    ErrorWindow,
    FaultInjector,
    FaultPlan,
    LatencyWindow,
    OutageWindow,
)
from repro.util.units import BLOCK_BYTES


def make_injector(**kwargs):
    return FaultInjector(FaultPlan(**kwargs))


class TestHealth:
    def test_healthy_by_default(self):
        assert make_injector().health_at(0.0) is DeviceHealth.HEALTHY

    def test_error_window_degrades(self):
        injector = make_injector(errors=(ErrorWindow(10.0, 20.0, "read"),))
        assert injector.health_at(5.0) is DeviceHealth.HEALTHY
        assert injector.health_at(15.0) is DeviceHealth.DEGRADED
        assert injector.health_at(25.0) is DeviceHealth.HEALTHY

    def test_latency_window_degrades(self):
        injector = make_injector(latency=(LatencyWindow(0.0, 10.0, 4.0),))
        assert injector.health_at(5.0) is DeviceHealth.DEGRADED
        assert injector.latency_factor(5.0) == 4.0
        assert injector.latency_factor(50.0) == 1.0

    def test_outage_bypasses_and_recovers(self):
        injector = make_injector(outages=(OutageWindow(10.0, 20.0),))
        assert injector.health_at(15.0) is DeviceHealth.BYPASS
        assert injector.health_at(25.0) is DeviceHealth.HEALTHY

    def test_outage_dominates_error_window(self):
        injector = make_injector(
            errors=(ErrorWindow(0.0, 100.0, "read"),),
            outages=(OutageWindow(40.0, 60.0),),
        )
        assert injector.health_at(50.0) is DeviceHealth.BYPASS


class TestErrorDraws:
    def test_certain_error_inside_window_only(self):
        injector = make_injector(errors=(ErrorWindow(10.0, 20.0, "read"),))
        assert not injector.read_fails(5.0)
        assert injector.read_fails(15.0)
        assert not injector.read_fails(25.0)
        assert injector.read_errors == 1

    def test_kinds_are_independent(self):
        injector = make_injector(errors=(ErrorWindow(0.0, 10.0, "write"),))
        assert not injector.read_fails(5.0)
        assert injector.write_fails(5.0)
        assert injector.write_errors == 1 and injector.read_errors == 0

    def test_probabilistic_draws_are_seeded(self):
        def draws(seed):
            injector = FaultInjector(FaultPlan(
                errors=(ErrorWindow(0.0, 1.0, "read", probability=0.5),),
                seed=seed,
            ))
            return [injector.read_fails(0.5) for _ in range(64)]

        outcomes = draws(3)
        assert outcomes == draws(3)       # deterministic
        assert True in outcomes and False in outcomes
        assert draws(4) != outcomes       # seed actually matters


class TestWearOut:
    def test_wearout_trips_once_budget_is_spent(self):
        injector = make_injector(wearout_bytes=4 * BLOCK_BYTES)
        injector.record_ssd_write(10.0, 3)
        assert not injector.worn_out
        injector.record_ssd_write(20.0, 1)
        assert injector.worn_out and injector.worn_out_at == 20.0
        # Wear-out is permanent BYPASS.
        assert injector.health_at(1e9) is DeviceHealth.BYPASS

    def test_wearout_instant_does_not_move(self):
        injector = make_injector(wearout_bytes=1.0)
        injector.record_ssd_write(5.0, 1)
        injector.record_ssd_write(9.0, 1)
        assert injector.worn_out_at == 5.0

    def test_no_budget_never_wears_out(self):
        injector = make_injector()
        injector.record_ssd_write(0.0, 10**9)
        assert not injector.worn_out


class TestCheckpointability:
    def test_pickle_preserves_rng_stream(self):
        plan = FaultPlan(
            errors=(ErrorWindow(0.0, 100.0, "read", probability=0.5),),
            seed=11,
        )
        original = FaultInjector(plan)
        for _ in range(10):
            original.read_fails(1.0)
        clone = pickle.loads(pickle.dumps(original))
        assert clone.read_errors == original.read_errors
        assert [clone.read_fails(2.0) for _ in range(32)] == [
            original.read_fails(2.0) for _ in range(32)
        ]

    def test_pickle_preserves_wear_state(self):
        injector = make_injector(wearout_bytes=BLOCK_BYTES)
        injector.record_ssd_write(3.0, 2)
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.worn_out_at == 3.0
        assert clone.ssd_bytes_written == injector.ssd_bytes_written


class TestTimeInStates:
    def test_degraded_and_bypass_accounting(self):
        injector = make_injector(
            errors=(ErrorWindow(0.0, 40.0, "read"),),
            outages=(OutageWindow(10.0, 20.0),),
        )
        degraded, bypass = injector.time_in_states(100.0)
        assert degraded == 30.0
        assert bypass == 10.0

    def test_wearout_counts_as_bypass(self):
        injector = make_injector(wearout_bytes=1.0)
        injector.record_ssd_write(60.0, 1)
        degraded, bypass = injector.time_in_states(100.0)
        assert (degraded, bypass) == (0.0, 40.0)
