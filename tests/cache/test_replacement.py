"""Replacement policies: LRU (the paper's default) and ablation variants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.replacement import (
    ClockReplacement,
    FIFOReplacement,
    LFUReplacement,
    LRUReplacement,
    RandomReplacement,
    make_replacement,
)


class TestLRU:
    def test_victim_is_least_recent(self):
        lru = LRUReplacement()
        for a in (1, 2, 3):
            lru.on_insert(a)
        assert lru.choose_victim() == 1

    def test_access_refreshes(self):
        lru = LRUReplacement()
        for a in (1, 2, 3):
            lru.on_insert(a)
        lru.on_access(1)
        assert lru.choose_victim() == 2

    def test_remove(self):
        lru = LRUReplacement()
        lru.on_insert(1)
        lru.on_insert(2)
        lru.on_remove(1)
        assert lru.choose_victim() == 2
        assert len(lru) == 1

    def test_empty_victim_raises(self):
        with pytest.raises(LookupError):
            LRUReplacement().choose_victim()

    def test_recency_order(self):
        lru = LRUReplacement()
        for a in (1, 2, 3):
            lru.on_insert(a)
        lru.on_access(2)
        assert list(lru.recency_order()) == [1, 3, 2]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=100))
    def test_matches_reference_model(self, accesses):
        """LRU victim always equals a brute-force recency list's head."""
        lru = LRUReplacement()
        reference = []
        for a in accesses:
            if a in reference:
                lru.on_access(a)
                reference.remove(a)
            else:
                lru.on_insert(a)
            reference.append(a)
        assert lru.choose_victim() == reference[0]


class TestFIFO:
    def test_ignores_access(self):
        fifo = FIFOReplacement()
        fifo.on_insert(1)
        fifo.on_insert(2)
        fifo.on_access(1)
        assert fifo.choose_victim() == 1

    def test_remove(self):
        fifo = FIFOReplacement()
        fifo.on_insert(1)
        fifo.on_insert(2)
        fifo.on_remove(1)
        assert fifo.choose_victim() == 2


class TestRandom:
    def test_deterministic_with_seed(self):
        def build():
            policy = RandomReplacement(seed=7)
            for a in range(10):
                policy.on_insert(a)
            return [policy.choose_victim() for _ in range(5)]

        assert build() == build()

    def test_victim_is_resident(self):
        policy = RandomReplacement(seed=1)
        for a in range(5):
            policy.on_insert(a)
        for _ in range(20):
            assert 0 <= policy.choose_victim() < 5

    def test_remove_keeps_index_consistent(self):
        policy = RandomReplacement(seed=3)
        for a in range(6):
            policy.on_insert(a)
        policy.on_remove(2)
        policy.on_remove(5)
        assert len(policy) == 4
        for _ in range(20):
            assert policy.choose_victim() in {0, 1, 3, 4}


class TestLFU:
    def test_victim_is_least_frequent(self):
        lfu = LFUReplacement()
        lfu.on_insert(1)
        lfu.on_insert(2)
        lfu.on_access(1)
        assert lfu.choose_victim() == 2

    def test_tie_broken_by_insertion_order(self):
        lfu = LFUReplacement()
        lfu.on_insert(1)
        lfu.on_insert(2)
        assert lfu.choose_victim() == 1

    def test_remove_updates_min_class(self):
        lfu = LFUReplacement()
        lfu.on_insert(1)
        lfu.on_insert(2)
        lfu.on_access(2)
        lfu.on_remove(1)
        assert lfu.choose_victim() == 2

    def test_frequency_accumulates(self):
        lfu = LFUReplacement()
        for a in (1, 2, 3):
            lfu.on_insert(a)
        for _ in range(3):
            lfu.on_access(1)
        lfu.on_access(2)
        assert lfu.choose_victim() == 3

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=6), max_size=80))
    def test_victim_minimizes_frequency(self, accesses):
        lfu = LFUReplacement()
        freq = {}
        for a in accesses:
            if a in freq:
                lfu.on_access(a)
                freq[a] += 1
            else:
                lfu.on_insert(a)
                freq[a] = 1
        if freq:
            assert freq[lfu.choose_victim()] == min(freq.values())


class TestClock:
    def test_unreferenced_head_is_victim(self):
        clock = ClockReplacement()
        clock.on_insert(1)
        clock.on_insert(2)
        assert clock.choose_victim() == 1

    def test_second_chance(self):
        clock = ClockReplacement()
        clock.on_insert(1)
        clock.on_insert(2)
        clock.on_access(1)  # 1 gets a second chance
        assert clock.choose_victim() == 2

    def test_hand_clears_bits(self):
        clock = ClockReplacement()
        for a in (1, 2, 3):
            clock.on_insert(a)
            clock.on_access(a)
        # All referenced: the hand clears 1, 2, 3 and comes back to 1.
        assert clock.choose_victim() == 1

    def test_remove(self):
        clock = ClockReplacement()
        clock.on_insert(1)
        clock.on_insert(2)
        clock.on_remove(1)
        assert clock.choose_victim() == 2
        assert len(clock) == 1

    def test_empty_raises(self):
        with pytest.raises(LookupError):
            ClockReplacement().choose_victim()

    def test_approximates_lru_on_skewed_stream(self):
        """CLOCK must protect a continually re-referenced block."""
        from repro.cache import BlockCache

        cache = BlockCache(3, replacement=ClockReplacement())
        cache.insert(0)
        for i in range(1, 50):
            cache.access(0)  # keep 0 hot
            if i not in cache:
                cache.insert(i)
        assert 0 in cache


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUReplacement),
        ("fifo", FIFOReplacement),
        ("lfu", LFUReplacement),
        ("random", RandomReplacement),
        ("clock", ClockReplacement),
        ("LRU", LRUReplacement),
    ])
    def test_constructs_by_name(self, name, cls):
        assert isinstance(make_replacement(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_replacement("arc")
