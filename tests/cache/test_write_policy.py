"""Write-through vs write-back (extension): dirty tracking and backing
write accounting."""


from repro.cache import AllocateOnDemand, BlockCache, NeverAllocate, WriteMode
from repro.cache.stats import CacheStats
from repro.cache.write_policy import DirtyTracker
from repro.core.appliance import SieveStoreAppliance
from repro.traces.model import IOKind, IORequest


def make_appliance(mode, policy=None, capacity=64):
    stats = CacheStats(days=1, track_minutes=False)
    cache = BlockCache(capacity)
    appliance = SieveStoreAppliance(
        cache, policy or AllocateOnDemand(), stats, write_mode=mode
    )
    return appliance, stats, cache


def write_request(offset=0, blocks=4, issue=0.0):
    return IORequest(
        issue_time=issue,
        completion_time=issue + 0.01,
        server_id=0,
        volume_id=0,
        block_offset=offset,
        block_count=blocks,
        kind=IOKind.WRITE,
    )


class TestDirtyTracker:
    def test_mark_and_clean(self):
        tracker = DirtyTracker()
        tracker.mark(1)
        assert 1 in tracker
        assert tracker.clean(1)
        assert not tracker.clean(1)

    def test_marks_counted(self):
        tracker = DirtyTracker()
        tracker.mark(1)
        tracker.mark(1)
        assert tracker.marks == 2
        assert len(tracker) == 1

    def test_drain(self):
        tracker = DirtyTracker()
        tracker.mark(1)
        tracker.mark(2)
        assert tracker.drain() == {1, 2}
        assert len(tracker) == 0

    def test_clean_many(self):
        tracker = DirtyTracker()
        tracker.mark(1)
        tracker.mark(2)
        assert tracker.clean_many([1, 2, 3]) == 2


class TestWriteThrough:
    def test_write_hits_forwarded(self):
        appliance, stats, _ = make_appliance(WriteMode.WRITE_THROUGH)
        appliance.process_request(write_request())           # miss + allocate
        appliance.process_request(write_request(issue=1.0))  # 4 write hits
        # miss-writes (4) + write-through hit forwards (4)
        assert stats.per_day[0].backing_writes == 8
        assert stats.per_day[0].writebacks == 0

    def test_nothing_ever_dirty(self):
        appliance, _, _ = make_appliance(WriteMode.WRITE_THROUGH)
        appliance.process_request(write_request())
        appliance.process_request(write_request(issue=1.0))
        assert len(appliance.dirty) == 0
        assert appliance.flush_dirty(2.0) == 0


class TestWriteBack:
    def test_write_hits_absorbed(self):
        appliance, stats, _ = make_appliance(WriteMode.WRITE_BACK)
        appliance.process_request(write_request())           # allocating write miss
        appliance.process_request(write_request(issue=1.0))  # absorbed hits
        # Nothing reaches the ensemble until a flush.
        assert stats.per_day[0].backing_writes == 0
        assert len(appliance.dirty) == 4

    def test_repeated_writes_coalesce(self):
        appliance, stats, _ = make_appliance(WriteMode.WRITE_BACK)
        for i in range(10):
            appliance.process_request(write_request(issue=float(i)))
        appliance.flush_dirty(20.0)
        # 40 block-writes arrived; 4 blocks flushed once each.
        assert stats.per_day[0].backing_writes == 4
        assert stats.per_day[0].writebacks == 4

    def test_unallocated_write_miss_goes_to_ensemble(self):
        appliance, stats, _ = make_appliance(
            WriteMode.WRITE_BACK, policy=NeverAllocate()
        )
        appliance.process_request(write_request())
        assert stats.per_day[0].backing_writes == 4
        assert len(appliance.dirty) == 0

    def test_eviction_flushes_dirty_victim(self):
        appliance, stats, cache = make_appliance(
            WriteMode.WRITE_BACK, capacity=4
        )
        appliance.process_request(write_request(offset=0, blocks=4))
        # Fill with new blocks, evicting the dirty ones.
        appliance.process_request(write_request(offset=100, blocks=4, issue=1.0))
        assert stats.per_day[0].writebacks == 4
        assert all(a not in appliance.dirty for a in range(4))

    def test_batch_replacement_flushes_dirty_evictees(self):
        from repro.cache import StaticSet

        stats = CacheStats(days=2, track_minutes=False)
        cache = BlockCache(64)
        policy = StaticSet(set(range(100, 104)))
        appliance = SieveStoreAppliance(
            cache, policy, stats, write_mode=WriteMode.WRITE_BACK
        )
        # Manually dirty a resident block, then let the batch evict it.
        cache.insert(0)
        appliance.dirty.mark(0)
        appliance.begin_day(0)
        assert stats.per_day[0].writebacks == 1
        assert 0 not in appliance.dirty

    def test_read_hits_never_dirty(self):
        appliance, _, _ = make_appliance(WriteMode.WRITE_BACK)
        read = IORequest(
            issue_time=0.0, completion_time=0.01, server_id=0, volume_id=0,
            block_offset=0, block_count=4, kind=IOKind.READ,
        )
        appliance.process_request(read)
        appliance.process_request(
            IORequest(issue_time=1.0, completion_time=1.01, server_id=0,
                      volume_id=0, block_offset=0, block_count=4,
                      kind=IOKind.READ)
        )
        assert len(appliance.dirty) == 0


class TestEngineIntegration:
    def test_write_back_reduces_backing_writes(self, tiny_trace):
        from repro.sim.engine import simulate
        from repro.core import SieveStoreC, SieveStoreCConfig

        def run(mode):
            policy = SieveStoreC(SieveStoreCConfig(imct_slots=1 << 14))
            return simulate(
                tiny_trace, policy, 512, days=8,
                track_minutes=False, write_mode=mode,
            ).stats.total

        through = run(WriteMode.WRITE_THROUGH)
        back = run(WriteMode.WRITE_BACK)
        # SSD-side accounting identical; ensemble writes strictly fewer.
        assert back.hits == through.hits
        assert back.allocation_writes == through.allocation_writes
        assert back.backing_writes < through.backing_writes

    def test_write_back_conserves_data(self, tiny_trace):
        """Every written block either reached the ensemble or was counted
        in a writeback: written set == backing-written set union dirty
        (flushed at end)."""
        from repro.sim.engine import simulate
        from repro.cache import AllocateOnDemand

        result = simulate(
            tiny_trace, AllocateOnDemand(), 512, days=8,
            track_minutes=False, write_mode=WriteMode.WRITE_BACK,
        )
        total = result.stats.total
        # Coalescing can only reduce ensemble writes.
        assert total.backing_writes <= total.write_hits + total.write_misses
        assert total.backing_writes > 0