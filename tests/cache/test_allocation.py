"""Unsieved allocation policies (Table 3)."""


from repro.cache.allocation import (
    AllocateOnDemand,
    NeverAllocate,
    StaticSet,
    WriteMissNoAllocate,
)


class TestAOD:
    def test_allocates_every_miss(self):
        policy = AllocateOnDemand()
        assert policy.wants(1, is_write=False, time=0.0)
        assert policy.wants(1, is_write=True, time=0.0)

    def test_no_epoch_batches(self):
        assert AllocateOnDemand().epoch_boundary(0) is None


class TestWMNA:
    def test_allocates_read_misses_only(self):
        # Table 3: WMNA allocates "on a read-miss".
        policy = WriteMissNoAllocate()
        assert policy.wants(1, is_write=False, time=0.0)
        assert not policy.wants(1, is_write=True, time=0.0)


class TestNeverAllocate:
    def test_never(self):
        policy = NeverAllocate()
        assert not policy.wants(1, is_write=False, time=0.0)
        assert not policy.wants(1, is_write=True, time=0.0)


class TestStaticSet:
    def test_installs_once(self):
        policy = StaticSet({1, 2, 3})
        assert set(policy.epoch_boundary(0)) == {1, 2, 3}
        assert policy.epoch_boundary(1) is None
        assert policy.epoch_boundary(2) is None

    def test_never_allocates_continuously(self):
        policy = StaticSet({1})
        policy.epoch_boundary(0)
        assert not policy.wants(9, is_write=False, time=0.0)

    def test_constructor_copies_input(self):
        blocks = {1, 2}
        policy = StaticSet(blocks)
        blocks.add(3)  # caller mutates after construction
        assert set(policy.epoch_boundary(0)) == {1, 2}
