"""Cache statistics accounting (per-day and per-minute)."""

import pytest

from repro.cache.stats import CacheStats, DayStats
from repro.util.intervals import SECONDS_PER_DAY


class TestDayStats:
    def test_hit_ratio(self):
        day = DayStats(accesses=10, read_hits=3, write_hits=2,
                       read_misses=4, write_misses=1)
        assert day.hit_ratio == 0.5

    def test_hit_ratio_idle_day(self):
        assert DayStats().hit_ratio == 0.0

    def test_ssd_operations_include_allocation_writes(self):
        # Figure 7: SSD ops = read hits + write hits + allocation-writes.
        day = DayStats(accesses=10, read_hits=4, write_hits=2,
                       read_misses=3, write_misses=1, allocation_writes=7)
        assert day.ssd_operations == 13
        assert day.ssd_writes == 9


class TestCacheStats:
    def test_rejects_zero_days(self):
        with pytest.raises(ValueError):
            CacheStats(days=0)

    def test_records_per_day(self):
        stats = CacheStats(days=2)
        stats.record_hit(10.0, is_write=False)
        stats.record_miss(SECONDS_PER_DAY + 5.0, is_write=True)
        assert stats.per_day[0].read_hits == 1
        assert stats.per_day[1].write_misses == 1

    def test_overflow_day_clamped_to_last(self):
        stats = CacheStats(days=2)
        stats.record_hit(5 * SECONDS_PER_DAY, is_write=False)
        assert stats.per_day[1].read_hits == 1

    def test_allocation_writes_not_accesses(self):
        stats = CacheStats(days=1)
        stats.record_allocation_write(0.0, blocks=3)
        assert stats.per_day[0].allocation_writes == 3
        assert stats.per_day[0].accesses == 0
        stats.check_consistency()

    def test_consistency_check_fires(self):
        stats = CacheStats(days=1)
        stats.per_day[0].accesses = 5  # corrupt
        with pytest.raises(AssertionError):
            stats.check_consistency()

    def test_total_aggregates(self):
        stats = CacheStats(days=2)
        stats.record_hit(0.0, is_write=False, blocks=2)
        stats.record_miss(SECONDS_PER_DAY + 1, is_write=False, blocks=3)
        total = stats.total
        assert total.accesses == 5
        assert total.read_hits == 2
        assert total.read_misses == 3


class TestMinuteTracking:
    def test_records_io_units_per_minute(self):
        stats = CacheStats(days=1)
        stats.record_ssd_io(61.0, 4, is_write=False)
        stats.record_ssd_io(65.0, 2, is_write=True)
        assert stats.per_minute[1].reads == 4
        assert stats.per_minute[1].writes == 2

    def test_disabled_tracking_records_nothing(self):
        stats = CacheStats(days=1, track_minutes=False)
        stats.record_ssd_io(61.0, 4, is_write=False)
        assert stats.per_minute == {}

    def test_zero_units_ignored(self):
        stats = CacheStats(days=1)
        stats.record_ssd_io(0.0, 0, is_write=False)
        assert stats.per_minute == {}

    def test_minute_series_sorted(self):
        stats = CacheStats(days=1)
        stats.record_ssd_io(600.0, 1, is_write=False)
        stats.record_ssd_io(60.0, 1, is_write=False)
        minutes = [m for m, _ in stats.minute_series()]
        assert minutes == sorted(minutes)
