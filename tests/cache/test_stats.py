"""Cache statistics accounting (per-day and per-minute)."""

import pytest

from repro.cache.stats import CacheStats, DayStats
from repro.util.intervals import SECONDS_PER_DAY


class TestDayStats:
    def test_hit_ratio(self):
        day = DayStats(accesses=10, read_hits=3, write_hits=2,
                       read_misses=4, write_misses=1)
        assert day.hit_ratio == 0.5

    def test_hit_ratio_idle_day(self):
        assert DayStats().hit_ratio == 0.0

    def test_ssd_operations_include_allocation_writes(self):
        # Figure 7: SSD ops = read hits + write hits + allocation-writes.
        day = DayStats(accesses=10, read_hits=4, write_hits=2,
                       read_misses=3, write_misses=1, allocation_writes=7)
        assert day.ssd_operations == 13
        assert day.ssd_writes == 9


class TestCacheStats:
    def test_rejects_zero_days(self):
        with pytest.raises(ValueError):
            CacheStats(days=0)

    def test_records_per_day(self):
        stats = CacheStats(days=2)
        stats.record_hit(10.0, is_write=False)
        stats.record_miss(SECONDS_PER_DAY + 5.0, is_write=True)
        assert stats.per_day[0].read_hits == 1
        assert stats.per_day[1].write_misses == 1

    def test_overflow_day_clamped_to_last(self):
        stats = CacheStats(days=2)
        stats.record_hit(5 * SECONDS_PER_DAY, is_write=False)
        assert stats.per_day[1].read_hits == 1

    def test_allocation_writes_not_accesses(self):
        stats = CacheStats(days=1)
        stats.record_allocation_write(0.0, blocks=3)
        assert stats.per_day[0].allocation_writes == 3
        assert stats.per_day[0].accesses == 0
        stats.check_consistency()

    def test_consistency_check_fires(self):
        stats = CacheStats(days=1)
        stats.per_day[0].accesses = 5  # corrupt
        with pytest.raises(AssertionError):
            stats.check_consistency()

    def test_total_aggregates(self):
        stats = CacheStats(days=2)
        stats.record_hit(0.0, is_write=False, blocks=2)
        stats.record_miss(SECONDS_PER_DAY + 1, is_write=False, blocks=3)
        total = stats.total
        assert total.accesses == 5
        assert total.read_hits == 2
        assert total.read_misses == 3


class TestMinuteTracking:
    def test_records_io_units_per_minute(self):
        stats = CacheStats(days=1)
        stats.record_ssd_io(61.0, 4, is_write=False)
        stats.record_ssd_io(65.0, 2, is_write=True)
        assert stats.per_minute[1].reads == 4
        assert stats.per_minute[1].writes == 2

    def test_disabled_tracking_records_nothing(self):
        stats = CacheStats(days=1, track_minutes=False)
        stats.record_ssd_io(61.0, 4, is_write=False)
        assert stats.per_minute == {}

    def test_zero_units_ignored(self):
        stats = CacheStats(days=1)
        stats.record_ssd_io(0.0, 0, is_write=False)
        assert stats.per_minute == {}

    def test_minute_series_sorted(self):
        stats = CacheStats(days=1)
        stats.record_ssd_io(600.0, 1, is_write=False)
        stats.record_ssd_io(60.0, 1, is_write=False)
        minutes = [m for m, _ in stats.minute_series()]
        assert minutes == sorted(minutes)


class TestMerge:
    def shard(self, day_time, hits, misses, io_units):
        stats = CacheStats(days=2)
        stats.record_hit(day_time, is_write=False, blocks=hits)
        stats.record_miss(day_time, is_write=True, blocks=misses)
        stats.record_allocation_write(day_time, blocks=misses)
        stats.record_backing_write(day_time, blocks=misses)
        stats.record_ssd_io(day_time, io_units, is_write=True)
        return stats

    def test_merge_adds_per_day_counters(self):
        a = self.shard(10.0, hits=3, misses=2, io_units=1)
        b = self.shard(SECONDS_PER_DAY + 10.0, hits=5, misses=1, io_units=2)
        merged = a.merge(b)
        assert merged is a
        assert a.per_day[0].read_hits == 3
        assert a.per_day[1].read_hits == 5
        assert a.total.accesses == 11
        assert a.total.allocation_writes == 3
        assert a.total.backing_writes == 3
        a.check_consistency()

    def test_merge_adds_minute_io(self):
        a = self.shard(10.0, hits=1, misses=1, io_units=4)
        b = self.shard(10.0, hits=1, misses=1, io_units=6)
        a.merge(b)
        assert a.per_minute[0].writes == 10

    def test_merge_rejects_day_mismatch(self):
        with pytest.raises(ValueError):
            CacheStats(days=2).merge(CacheStats(days=3))

    def test_merged_classmethod(self):
        parts = [
            self.shard(10.0, hits=2, misses=1, io_units=1),
            self.shard(10.0, hits=4, misses=3, io_units=2),
        ]
        combined = CacheStats.merged(parts)
        assert combined.total.accesses == 10
        assert combined.per_minute[0].writes == 3
        # The inputs are left untouched.
        assert parts[0].total.accesses == 3

    def test_merged_rejects_empty(self):
        with pytest.raises(ValueError):
            CacheStats.merged([])

    def test_merged_tracks_minutes_if_any_part_does(self):
        silent = CacheStats(days=1, track_minutes=False)
        loud = CacheStats(days=1, track_minutes=True)
        loud.record_ssd_io(0.0, 2, is_write=False)
        assert CacheStats.merged([silent, loud]).per_minute[0].reads == 2
        assert not CacheStats.merged([silent, silent]).track_minutes
