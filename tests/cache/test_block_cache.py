"""Fully-associative block cache: insertion, eviction, batch replace."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import BlockCache, FIFOReplacement


class TestBasicOperations:
    def test_starts_empty(self):
        cache = BlockCache(4)
        assert len(cache) == 0
        assert not cache.is_full

    def test_insert_then_hit(self):
        cache = BlockCache(4)
        cache.insert(1)
        assert cache.access(1)

    def test_miss_on_absent(self):
        cache = BlockCache(4)
        assert not cache.access(99)

    def test_contains(self):
        cache = BlockCache(4)
        cache.insert(7)
        assert 7 in cache
        assert 8 not in cache

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            BlockCache(0)

    def test_double_insert_rejected(self):
        cache = BlockCache(4)
        cache.insert(1)
        with pytest.raises(ValueError):
            cache.insert(1)

    def test_peek_does_not_touch_recency(self):
        cache = BlockCache(2)
        cache.insert(1)
        cache.insert(2)
        cache.peek(1)  # must NOT refresh 1
        cache.insert(3)  # evicts LRU
        assert 1 not in cache and 2 in cache and 3 in cache


class TestEviction:
    def test_evicts_when_full(self):
        cache = BlockCache(2)
        cache.insert(1)
        cache.insert(2)
        victim = cache.insert(3)
        assert victim == 1
        assert len(cache) == 2

    def test_lru_order_respects_access(self):
        cache = BlockCache(2)
        cache.insert(1)
        cache.insert(2)
        cache.access(1)  # 2 becomes LRU
        assert cache.insert(3) == 2

    def test_no_eviction_below_capacity(self):
        cache = BlockCache(3)
        assert cache.insert(1) is None
        assert cache.insert(2) is None


class TestRemoveDiscard:
    def test_remove(self):
        cache = BlockCache(4)
        cache.insert(5)
        cache.remove(5)
        assert 5 not in cache

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            BlockCache(4).remove(1)

    def test_discard(self):
        cache = BlockCache(4)
        cache.insert(5)
        assert cache.discard(5)
        assert not cache.discard(5)


class TestBatchReplace:
    """SieveStore-D's epoch-boundary batch allocation semantics."""

    def test_installs_new_contents(self):
        cache = BlockCache(8)
        inserted, removed = cache.replace_contents({1, 2, 3})
        assert (inserted, removed) == (3, 0)
        assert all(b in cache for b in (1, 2, 3))

    def test_overlap_cancels_moves(self):
        # "the replacement and allocation cancel each other to eliminate
        # unnecessary block moves" (Section 3.2).
        cache = BlockCache(8)
        cache.replace_contents({1, 2, 3})
        inserted, removed = cache.replace_contents({2, 3, 4})
        assert (inserted, removed) == (1, 1)

    def test_identical_batch_moves_nothing(self):
        cache = BlockCache(8)
        cache.replace_contents({1, 2})
        assert cache.replace_contents({1, 2}) == (0, 0)

    def test_rejects_oversized_batch(self):
        cache = BlockCache(2)
        with pytest.raises(ValueError):
            cache.replace_contents({1, 2, 3})

    def test_replacement_state_consistent_after_batch(self):
        cache = BlockCache(4)
        cache.replace_contents({1, 2, 3})
        cache.replace_contents({3, 4})
        cache.check_invariants()
        # Fill to capacity and force an eviction through the policy.
        cache.insert(10)
        cache.insert(11)
        victim = cache.insert(12)
        assert victim in {3, 4, 10, 11}


class TestInvariants:
    def test_capacity_never_exceeded(self):
        cache = BlockCache(5)
        for i in range(100):
            if i not in cache:
                cache.insert(i)
            cache.check_invariants()
        assert len(cache) == 5

    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["insert", "access", "discard"]),
                      st.integers(min_value=0, max_value=30)),
            max_size=200,
        ),
        capacity=st.integers(min_value=1, max_value=8),
    )
    def test_random_operations_preserve_invariants(self, ops, capacity):
        cache = BlockCache(capacity)
        for op, address in ops:
            if op == "insert":
                if address not in cache:
                    cache.insert(address)
            elif op == "access":
                cache.access(address)
            else:
                cache.discard(address)
        cache.check_invariants()
        assert len(cache) <= capacity

    def test_works_with_fifo(self):
        cache = BlockCache(2, replacement=FIFOReplacement())
        cache.insert(1)
        cache.insert(2)
        cache.access(1)  # FIFO ignores recency
        assert cache.insert(3) == 1
