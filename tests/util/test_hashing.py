"""Stable hashing for IMCT indexing and log partitioning."""

import pytest
from hypothesis import given, strategies as st

from repro.util.hashing import mix64, stable_bucket


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_in_64_bit_range(self):
        for value in (0, 1, 2**63, 2**64 - 1, -5):
            assert 0 <= mix64(value) < 2**64

    def test_scrambles_sequential_inputs(self):
        # Sequential block addresses must not map to sequential hashes.
        hashes = [mix64(i) for i in range(64)]
        assert len(set(hashes)) == 64
        deltas = {hashes[i + 1] - hashes[i] for i in range(63)}
        assert len(deltas) > 60  # no affine pattern

    def test_known_nonzero(self):
        assert mix64(0) != 0

    @given(st.integers())
    def test_total_over_python_ints(self, value):
        assert 0 <= mix64(value) < 2**64


class TestStableBucket:
    def test_range(self):
        for value in range(100):
            assert 0 <= stable_bucket(value, 7) < 7

    def test_deterministic_across_calls(self):
        assert stable_bucket(42, 1024) == stable_bucket(42, 1024)

    def test_salt_decorrelates(self):
        buckets = 97
        same = sum(
            1
            for v in range(500)
            if stable_bucket(v, buckets, salt=1) == stable_bucket(v, buckets, salt=2)
        )
        # Under independence, ~500/97 ~ 5 collisions expected.
        assert same < 40

    def test_roughly_uniform(self):
        buckets = 16
        histogram = [0] * buckets
        for value in range(16000):
            histogram[stable_bucket(value, buckets)] += 1
        assert min(histogram) > 700 and max(histogram) < 1300

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            stable_bucket(1, 0)
        with pytest.raises(ValueError):
            stable_bucket(1, -3)

    @given(st.integers(), st.integers(min_value=1, max_value=10**6))
    def test_always_in_range(self, value, buckets):
        assert 0 <= stable_bucket(value, buckets) < buckets
