"""Unit conversions: 512-byte blocks and 4-KB I/O costing units."""

import pytest
from hypothesis import given, strategies as st

from repro.util.units import (
    BLOCK_BYTES,
    BLOCKS_PER_IO_UNIT,
    GIB,
    IO_UNIT_BYTES,
    blocks_to_bytes,
    blocks_to_io_units,
    bytes_to_blocks,
    format_bytes,
)


class TestConstants:
    def test_block_is_512_bytes(self):
        assert BLOCK_BYTES == 512

    def test_io_unit_is_4kib(self):
        assert IO_UNIT_BYTES == 4096

    def test_blocks_per_io_unit(self):
        assert BLOCKS_PER_IO_UNIT == 8


class TestBlocksToBytes:
    def test_zero(self):
        assert blocks_to_bytes(0) == 0

    def test_one_block(self):
        assert blocks_to_bytes(1) == 512

    def test_gigabyte_cache(self):
        # The paper's 16 GB cache in blocks.
        assert blocks_to_bytes(16 * GIB // 512) == 16 * GIB

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            blocks_to_bytes(-1)


class TestBytesToBlocks:
    def test_exact(self):
        assert bytes_to_blocks(1024) == 2

    def test_rounds_up(self):
        assert bytes_to_blocks(513) == 2

    def test_sub_block_io_costs_one_block(self):
        assert bytes_to_blocks(1) == 1

    def test_zero(self):
        assert bytes_to_blocks(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bytes_to_blocks(-5)

    @given(st.integers(min_value=0, max_value=10**12))
    def test_roundtrip_dominates(self, nbytes):
        blocks = bytes_to_blocks(nbytes)
        assert blocks_to_bytes(blocks) >= nbytes
        assert blocks_to_bytes(blocks) - nbytes < BLOCK_BYTES

    def test_exact_at_float_precision_boundary(self):
        # 2**53 + 1 bytes is one byte past an exact multiple of 512, so
        # the true ceiling is 2**44 + 1 blocks.  The former float path
        # (math.ceil(a / 512)) collapsed the quotient to exactly 2**44.
        assert bytes_to_blocks(2**53) == 2**44
        assert bytes_to_blocks(2**53 + 1) == 2**44 + 1

    def test_exact_above_float_precision_boundary(self):
        nbytes = 2**60 + 7
        assert bytes_to_blocks(nbytes) == (nbytes + BLOCK_BYTES - 1) // BLOCK_BYTES

    @given(st.integers(min_value=0, max_value=2**70))
    def test_exact_ceiling_semantics_huge(self, nbytes):
        blocks = bytes_to_blocks(nbytes)
        assert (blocks - 1) * BLOCK_BYTES < nbytes <= blocks * BLOCK_BYTES or (
            nbytes == 0 and blocks == 0
        )


class TestBlocksToIoUnits:
    def test_sub_4k_charged_as_full_unit(self):
        # Section 4: "we conservatively assessed the same cost for a
        # sub-4KB I/O as that of a 4KB I/O".
        for blocks in range(1, 9):
            assert blocks_to_io_units(blocks) == 1

    def test_nine_blocks_costs_two_units(self):
        assert blocks_to_io_units(9) == 2

    def test_exact_multiple(self):
        assert blocks_to_io_units(16) == 2

    def test_zero(self):
        assert blocks_to_io_units(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            blocks_to_io_units(-1)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_ceiling_semantics(self, blocks):
        units = blocks_to_io_units(blocks)
        assert (units - 1) * BLOCKS_PER_IO_UNIT < blocks <= units * BLOCKS_PER_IO_UNIT

    def test_exact_at_float_precision_boundary(self):
        # One block past an 8-block multiple just above 2**53: the float
        # quotient cannot see the +1.
        assert blocks_to_io_units(2**53 + 1) == 2**50 + 1
        assert blocks_to_io_units(2**53) == 2**50


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(100) == "100 B"

    def test_kib(self):
        assert format_bytes(1536) == "1.5 KiB"

    def test_gib(self):
        assert format_bytes(16 * GIB) == "16.0 GiB"

    def test_large_stays_tib(self):
        assert "TiB" in format_bytes(5000 * GIB)
