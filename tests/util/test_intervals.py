"""Calendar bucketing of trace timestamps."""

import pytest
from hypothesis import given, strategies as st

from repro.util.intervals import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_MINUTE,
    day_of,
    hour_of,
    minute_of,
)


class TestConstants:
    def test_day_length(self):
        assert SECONDS_PER_DAY == 24 * SECONDS_PER_HOUR == 1440 * SECONDS_PER_MINUTE


class TestMinuteOf:
    def test_zero(self):
        assert minute_of(0.0) == 0

    def test_boundary(self):
        assert minute_of(59.999) == 0
        assert minute_of(60.0) == 1

    def test_week_trace_has_10080_minutes(self):
        # The paper's 7-day occupancy analysis covers 10,080 minutes.
        assert minute_of(7 * SECONDS_PER_DAY - 1) == 10079

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            minute_of(-0.1)


class TestDayOf:
    def test_calendar_partition(self):
        assert day_of(0.0) == 0
        assert day_of(SECONDS_PER_DAY - 0.001) == 0
        assert day_of(SECONDS_PER_DAY) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            day_of(-1.0)


class TestHourOf:
    def test_paper_window(self):
        # SieveStore-C's W = 8 hours spans hours 0..7.
        assert hour_of(8 * SECONDS_PER_HOUR - 1) == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            hour_of(-1.0)


@given(st.floats(min_value=0, max_value=1e9, allow_nan=False))
def test_buckets_consistent(t):
    assert minute_of(t) // 60 == hour_of(t)
    assert hour_of(t) // 24 == day_of(t)
