"""Calendar bucketing of trace timestamps."""

import pytest
from hypothesis import given, strategies as st

from repro.util.intervals import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_MINUTE,
    day_of,
    hour_of,
    minute_of,
)


class TestConstants:
    def test_day_length(self):
        assert SECONDS_PER_DAY == 24 * SECONDS_PER_HOUR == 1440 * SECONDS_PER_MINUTE


class TestMinuteOf:
    def test_zero(self):
        assert minute_of(0.0) == 0

    def test_boundary(self):
        assert minute_of(59.999) == 0
        assert minute_of(60.0) == 1

    def test_week_trace_has_10080_minutes(self):
        # The paper's 7-day occupancy analysis covers 10,080 minutes.
        assert minute_of(7 * SECONDS_PER_DAY - 1) == 10079

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            minute_of(-0.1)


class TestDayOf:
    def test_calendar_partition(self):
        assert day_of(0.0) == 0
        assert day_of(SECONDS_PER_DAY - 0.001) == 0
        assert day_of(SECONDS_PER_DAY) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            day_of(-1.0)


class TestHourOf:
    def test_paper_window(self):
        # SieveStore-C's W = 8 hours spans hours 0..7.
        assert hour_of(8 * SECONDS_PER_HOUR - 1) == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            hour_of(-1.0)


@given(st.floats(min_value=0, max_value=1e9, allow_nan=False))
def test_buckets_consistent(t):
    assert minute_of(t) // 60 == hour_of(t)
    assert hour_of(t) // 24 == day_of(t)


class TestIntegerExactness:
    """Integer timestamps must bucket exactly beyond float precision.

    ``float(2**53 + 1) == float(2**53)``, so the historical
    ``int(t // bucket)`` expression silently drops the low-order second
    for huge epoch-style timestamps.  Int inputs take a pure integer
    floor-division path instead.
    """

    def test_minute_exact_at_2_53(self):
        # 2**53 is not a minute multiple; check the surrounding indices
        # move exactly one second at a time.
        base = 2**53
        aligned = (base // SECONDS_PER_MINUTE) * SECONDS_PER_MINUTE
        assert minute_of(aligned) == base // SECONDS_PER_MINUTE
        assert minute_of(aligned - 1) == base // SECONDS_PER_MINUTE - 1
        assert minute_of(aligned + SECONDS_PER_MINUTE) == (
            base // SECONDS_PER_MINUTE + 1
        )

    def test_day_boundary_above_2_53(self):
        boundary = ((2**53 // SECONDS_PER_DAY) + 5) * SECONDS_PER_DAY
        assert boundary > 2**53
        assert day_of(boundary - 1) == day_of(boundary) - 1
        assert day_of(boundary) == boundary // SECONDS_PER_DAY
        assert day_of(boundary + 1) == day_of(boundary)

    def test_hour_boundary_above_2_53(self):
        boundary = ((2**53 // SECONDS_PER_HOUR) + 3) * SECONDS_PER_HOUR
        assert hour_of(boundary - 1) == hour_of(boundary) - 1
        assert hour_of(boundary + 1) == hour_of(boundary)

    def test_float_at_2_53_documents_the_drift(self):
        # The float representation cannot distinguish 2**53 + 1 from
        # 2**53 — this is exactly why int inputs take the exact path.
        assert float(2**53 + 1) == float(2**53)

    def test_int_and_float_agree_in_safe_range(self):
        for t in (0, 59, 60, 3599, 3600, 86399, 86400, 10**12):
            assert minute_of(t) == minute_of(float(t))
            assert hour_of(t) == hour_of(float(t))
            assert day_of(t) == day_of(float(t))

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            minute_of(-1)
