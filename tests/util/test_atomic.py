"""Durable atomic writes (temp sibling + fsync + replace + dir fsync)."""

import os

import pytest

from repro.util.atomic import atomic_write, atomic_write_path, fsync_directory


class TestAtomicWrite:
    def test_publishes_content(self, tmp_path):
        target = tmp_path / "out.bin"
        with atomic_write(target) as handle:
            handle.write(b"hello")
        assert target.read_bytes() == b"hello"

    def test_overwrites_existing(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        with atomic_write(target) as handle:
            handle.write(b"new")
        assert target.read_bytes() == b"new"

    def test_no_temp_residue_on_success(self, tmp_path):
        target = tmp_path / "out.bin"
        with atomic_write(target) as handle:
            handle.write(b"x")
        assert os.listdir(tmp_path) == ["out.bin"]

    def test_exception_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"original")
        with pytest.raises(RuntimeError):
            with atomic_write(target) as handle:
                handle.write(b"partial")
                raise RuntimeError("writer died")
        assert target.read_bytes() == b"original"
        assert os.listdir(tmp_path) == ["out.bin"]

    def test_exception_without_existing_target(self, tmp_path):
        target = tmp_path / "out.bin"
        with pytest.raises(RuntimeError):
            with atomic_write(target):
                raise RuntimeError("writer died")
        assert not target.exists()
        assert os.listdir(tmp_path) == []

    def test_fsyncs_data_before_replace(self, tmp_path, monkeypatch):
        """The temp file's bytes must be on disk before the rename."""
        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync", lambda fd: (events.append("fsync"), real_fsync(fd))[1]
        )
        monkeypatch.setattr(
            os,
            "replace",
            lambda a, b: (events.append("replace"), real_replace(a, b))[1],
        )
        with atomic_write(tmp_path / "out.bin") as handle:
            handle.write(b"data")
        # file fsync, then rename, then the directory fsync.
        assert events[0] == "fsync"
        assert "replace" in events
        assert events.index("fsync") < events.index("replace")
        assert events[-1] == "fsync"  # parent-directory fsync after rename


class TestAtomicWritePath:
    def test_publishes_content(self, tmp_path):
        target = tmp_path / "out.npz"
        with atomic_write_path(target) as tmp:
            tmp.write_bytes(b"payload")
        assert target.read_bytes() == b"payload"
        assert os.listdir(tmp_path) == ["out.npz"]

    def test_exception_cleans_temp(self, tmp_path):
        target = tmp_path / "out.npz"
        with pytest.raises(ValueError):
            with atomic_write_path(target) as tmp:
                tmp.write_bytes(b"junk")
                raise ValueError("boom")
        assert not target.exists()
        assert os.listdir(tmp_path) == []

    def test_fsyncs_before_replace(self, tmp_path, monkeypatch):
        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync", lambda fd: (events.append("fsync"), real_fsync(fd))[1]
        )
        monkeypatch.setattr(
            os,
            "replace",
            lambda a, b: (events.append("replace"), real_replace(a, b))[1],
        )
        with atomic_write_path(tmp_path / "out.npz") as tmp:
            tmp.write_bytes(b"data")
        assert events.index("fsync") < events.index("replace")
        assert events[-1] == "fsync"


class TestFsyncDirectory:
    def test_silently_skips_missing_path(self, tmp_path):
        fsync_directory(tmp_path / "does-not-exist")  # must not raise

    def test_syncs_real_directory(self, tmp_path):
        fsync_directory(tmp_path)  # must not raise
