"""The sharded byte store (repro.serve.store) — including the
concurrent reader/writer torture test."""

import threading

import pytest

from repro.serve.backend import EnsembleBackend
from repro.serve.store import (
    DEFAULT_SHARDS,
    STORE_LAYOUT_VERSION,
    ShardedByteStore,
    StoreError,
)


@pytest.fixture
def store(tmp_path):
    with ShardedByteStore(tmp_path / "store", shards=4, inline_bytes=32) as s:
        yield s


class TestBasicOperations:
    def test_get_put_roundtrip_inline(self, store):
        store.put(1, b"payload")
        assert store.get(1) == b"payload"

    def test_get_put_roundtrip_spilled(self, store):
        value = b"x" * 100  # above inline_bytes=32
        store.put(2, value)
        assert store.get(2) == value
        shard = store._shard_dir(store.shard_of(2))
        assert (shard / f"{2:016x}.val").exists()

    def test_missing_key(self, store):
        assert store.get(99) is None
        assert not store.contains(99)
        assert store.delete(99) is False

    def test_overwrite_spilled_with_inline_drops_the_file(self, store):
        store.put(3, b"y" * 100)
        path = store._shard_dir(store.shard_of(3)) / f"{3:016x}.val"
        assert path.exists()
        store.put(3, b"tiny")
        assert store.get(3) == b"tiny"
        assert not path.exists()

    def test_delete_spilled_removes_the_file(self, store):
        store.put(4, b"z" * 100)
        path = store._shard_dir(store.shard_of(4)) / f"{4:016x}.val"
        assert store.delete(4) is True
        assert not path.exists()
        assert store.get(4) is None

    def test_len_and_keys(self, store):
        for key in (1, 2, 3):
            store.put(key, b"v")
        assert len(store) == 3
        assert sorted(store.keys()) == [1, 2, 3]
        assert sum(store.shard_sizes().values()) == 3

    def test_missing_spilled_file_self_heals(self, store):
        store.put(5, b"w" * 100)
        (store._shard_dir(store.shard_of(5)) / f"{5:016x}.val").unlink()
        assert store.get(5) is None  # row dropped, key misses cleanly
        assert not store.contains(5)

    def test_non_bytes_rejected(self, store):
        with pytest.raises(TypeError, match="bytes-like"):
            store.put(1, "text")


class TestLayout:
    def test_shard_count_frozen_at_init(self, tmp_path):
        ShardedByteStore(tmp_path / "s", shards=4).close()
        reopened = ShardedByteStore(tmp_path / "s", shards=16)
        assert reopened.shards == 4  # recorded fanout wins
        reopened.close()

    def test_layout_version_mismatch_refused(self, tmp_path):
        ShardedByteStore(tmp_path / "s").close()
        meta = tmp_path / "s" / "store.json"
        meta.write_text(
            meta.read_text().replace(
                str(STORE_LAYOUT_VERSION), str(STORE_LAYOUT_VERSION + 1)
            )
        )
        with pytest.raises(StoreError, match="layout version"):
            ShardedByteStore(tmp_path / "s")

    def test_corrupt_metadata_refused(self, tmp_path):
        (tmp_path / "s").mkdir()
        (tmp_path / "s" / "store.json").write_text("not json")
        with pytest.raises(StoreError, match="unreadable"):
            ShardedByteStore(tmp_path / "s")

    def test_invalid_parameters(self, tmp_path):
        with pytest.raises(ValueError, match="shards"):
            ShardedByteStore(tmp_path / "a", shards=0)
        with pytest.raises(ValueError, match="inline_bytes"):
            ShardedByteStore(tmp_path / "b", inline_bytes=-1)

    def test_shard_placement_is_deterministic(self, tmp_path):
        first = ShardedByteStore(tmp_path / "s", shards=DEFAULT_SHARDS)
        second = ShardedByteStore(tmp_path / "s")
        assert all(first.shard_of(k) == second.shard_of(k) for k in range(200))
        first.close()
        second.close()


class TestCrossInstance:
    def test_two_instances_share_one_directory(self, tmp_path):
        a = ShardedByteStore(tmp_path / "s", shards=2, inline_bytes=16)
        b = ShardedByteStore(tmp_path / "s", shards=2, inline_bytes=16)
        a.put(1, b"from-a" * 10)
        b.put(2, b"from-b")
        assert b.get(1) == b"from-a" * 10
        assert a.get(2) == b"from-b"
        a.close()
        b.close()


class TestTorture:
    def test_concurrent_readers_and_writers(self, tmp_path):
        """Readers racing writers never see torn or foreign bytes.

        Every thread gets its own store instance over one directory
        (the bench's multi-client shape, minus the process boundary).
        Values are the deterministic backend payloads, so a reader can
        verify every byte it gets back; ``None`` (not yet written /
        deleted) is the only other legal outcome.
        """
        directory = tmp_path / "torture"
        backend = EnsembleBackend(payload_bytes=256, seed=11)
        keys = list(range(64))
        rounds = 30
        errors = []
        stop = threading.Event()

        def writer(offset):
            with ShardedByteStore(directory, shards=4, inline_bytes=64) as s:
                for round_no in range(rounds):
                    for key in keys[offset::2]:
                        s.put(key, backend.payload(key))
                        if (key + round_no) % 7 == 0:
                            s.delete(key)

        def reader():
            with ShardedByteStore(directory, shards=4, inline_bytes=64) as s:
                while not stop.is_set():
                    for key in keys:
                        value = s.get(key)
                        if value is not None and value != backend.payload(key):
                            errors.append((key, value))
                            return

        writers = [threading.Thread(target=writer, args=(i,)) for i in (0, 1)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join(timeout=120)
        stop.set()
        for thread in readers:
            thread.join(timeout=120)
        assert errors == []
