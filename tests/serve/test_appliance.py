"""The serving cache (repro.serve.appliance) + backend determinism."""

import pytest

from repro.core.admission import build_admission_gate
from repro.faults.injector import FaultInjector
from repro.faults.plan import ErrorWindow, FaultPlan, OutageWindow
from repro.serve.appliance import ServeStats, ServingCache
from repro.serve.backend import EnsembleBackend
from repro.serve.store import ShardedByteStore


def make_cache(tmp_path, gate_kind="unsieved", plan=None, **gate_kwargs):
    store = ShardedByteStore(tmp_path / "store", shards=2, inline_bytes=64)
    gate = build_admission_gate(gate_kind, **gate_kwargs)
    backend = EnsembleBackend(payload_bytes=32, seed=3)
    injector = FaultInjector(plan) if plan is not None else None
    return ServingCache(store, gate, backend, injector)


class TestBackend:
    def test_payloads_deterministic_across_instances(self):
        a = EnsembleBackend(payload_bytes=48, seed=9)
        b = EnsembleBackend(payload_bytes=48, seed=9)
        assert a.payload(123) == b.payload(123)
        assert len(a.payload(123)) == 48

    def test_payloads_differ_by_address_and_seed(self):
        backend = EnsembleBackend(payload_bytes=32, seed=9)
        assert backend.payload(1) != backend.payload(2)
        assert backend.payload(1) != EnsembleBackend(
            payload_bytes=32, seed=10
        ).payload(1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="miss_latency"):
            EnsembleBackend(miss_latency=-1)
        with pytest.raises(ValueError, match="payload_bytes"):
            EnsembleBackend(payload_bytes=0)


class TestHealthyServing:
    def test_read_miss_then_hit(self, tmp_path):
        cache = make_cache(tmp_path)  # unsieved: admit on first miss
        value = cache.read(5, time=0.0)
        assert value == cache.backend.payload(5)
        assert cache.stats.misses == 1
        again = cache.read(5, time=1.0)
        assert again == value
        assert cache.stats.hits == 1
        assert cache.backend.reads == 1  # the hit never touched the ensemble
        assert cache.stats.allocation_writes == 1

    def test_sieve_gates_admission(self, tmp_path):
        cache = make_cache(tmp_path, "sieve", imct_slots=64, t1=2, t2=1)
        for t in range(3):
            cache.read(9, time=float(t))
        # Admitted on the third miss (t1=2 then t2=1); the fourth is a hit.
        assert cache.stats.allocation_writes == 1
        assert cache.read(9, time=3.0) == cache.backend.payload(9)
        assert cache.stats.hits == 1

    def test_write_through_and_resident_update(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.write(7, time=0.0)
        assert cache.backend.writes == 1  # always lands on the ensemble
        assert cache.stats.allocation_writes == 1
        cache.write(7, time=1.0)
        assert cache.stats.update_writes == 1
        assert cache.stats.allocation_writes == 1  # update, not allocation
        assert cache.read(7, time=2.0) == cache.backend.payload(7)
        assert cache.stats.hits == 2


class TestDegradedServing:
    def test_failed_read_falls_back_to_ensemble(self, tmp_path):
        plan = FaultPlan(
            errors=(ErrorWindow(10.0, 20.0, "read", probability=1.0),)
        )
        cache = make_cache(tmp_path, plan=plan)
        cache.read(4, time=0.0)  # admitted while healthy
        value = cache.read(4, time=15.0)  # device read errors -> ensemble
        assert value == cache.backend.payload(4)
        assert cache.stats.read_faults == 1
        assert cache.backend.reads == 2
        assert cache.stats.health_transitions == {"healthy->degraded": 1}

    def test_failed_resident_write_drops_the_stale_copy(self, tmp_path):
        plan = FaultPlan(
            errors=(ErrorWindow(10.0, 20.0, "write", probability=1.0),)
        )
        cache = make_cache(tmp_path, plan=plan)
        cache.write(4, time=0.0)
        cache.write(4, time=15.0)  # device update fails mid-window
        assert cache.stats.write_faults == 1
        # The stale device copy is gone: the next read misses.
        cache.read(4, time=25.0)
        assert cache.stats.misses == 2

    def test_failed_allocation_suppresses_the_frame(self, tmp_path):
        plan = FaultPlan(
            errors=(ErrorWindow(0.0, 20.0, "write", probability=1.0),)
        )
        cache = make_cache(tmp_path, plan=plan)
        cache.read(4, time=5.0)  # gate admits, device write errors
        assert cache.stats.allocation_writes == 0
        assert cache.stats.write_faults == 1
        assert len(cache.store) == 0


class TestBypassServing:
    def test_outage_routes_everything_to_the_ensemble(self, tmp_path):
        plan = FaultPlan(outages=(OutageWindow(10.0, 20.0),))
        cache = make_cache(tmp_path, plan=plan)
        cache.read(4, time=0.0)
        assert cache.read(4, time=15.0) == cache.backend.payload(4)
        assert cache.stats.bypassed == 1
        assert cache.stats.hits == 0  # the resident copy was not consulted
        # Device back: the copy admitted before the outage still serves.
        cache.read(4, time=25.0)
        assert cache.stats.hits == 1
        assert cache.stats.health_transitions == {
            "healthy->bypass": 1,
            "bypass->healthy": 1,
        }

    def test_wearout_is_permanent_bypass(self, tmp_path):
        plan = FaultPlan(wearout_bytes=64.0)
        cache = make_cache(tmp_path, plan=plan)
        cache.write(1, time=0.0)  # 32B payload -> 1 block = 512B >= budget
        assert cache.injector.worn_out
        cache.write(2, time=1.0)
        assert cache.stats.bypassed == 1


class TestServeStats:
    def test_merge_sums_everything(self):
        a = ServeStats(requests=2, hits=1, health_transitions={"a->b": 1})
        b = ServeStats(requests=3, misses=2, health_transitions={"a->b": 2})
        merged = a.merge(b)
        assert merged.requests == 5
        assert merged.hits == 1
        assert merged.misses == 2
        assert merged.health_transitions == {"a->b": 3}

    def test_merged_of_none_is_zero(self):
        assert ServeStats.merged([]) == ServeStats()

    def test_to_dict_is_sorted_and_complete(self):
        data = ServeStats(health_transitions={"b": 2, "a": 1}).to_dict()
        assert list(data["health_transitions"]) == ["a", "b"]
        assert data["requests"] == 0
