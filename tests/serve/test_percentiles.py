"""Nearest-rank percentile math (repro.serve.percentiles)."""

import pytest

from repro.serve.percentiles import (
    LatencySummary,
    merge_samples,
    nearest_rank,
    summarize,
)


class TestNearestRank:
    def test_single_element_is_every_percentile(self):
        for fraction in (0.001, 0.5, 0.9, 0.99, 1.0):
            assert nearest_rank([42.0], fraction) == 42.0

    def test_two_elements(self):
        samples = [1.0, 2.0]
        assert nearest_rank(samples, 0.5) == 1.0
        assert nearest_rank(samples, 0.51) == 2.0
        assert nearest_rank(samples, 1.0) == 2.0

    def test_exact_rank_boundary_no_float_drift(self):
        # 0.99 * 100 rounds to 99.00000000000001 in float arithmetic; a
        # float ceil would land on rank 100 (the max).  Nearest-rank of
        # 100 samples at p99 must be the 99th value.
        samples = list(range(1, 101))
        assert nearest_rank(samples, 0.99) == 99
        assert nearest_rank(samples, 0.9) == 90
        assert nearest_rank(samples, 0.5) == 50

    def test_tied_samples(self):
        samples = [5.0] * 10
        assert nearest_rank(samples, 0.5) == 5.0
        assert nearest_rank(samples, 0.99) == 5.0

    def test_mostly_tied_with_outlier(self):
        samples = sorted([1.0] * 99 + [100.0])
        assert nearest_rank(samples, 0.99) == 1.0
        assert nearest_rank(samples, 1.0) == 100.0

    def test_large_sample(self):
        samples = list(range(1_000_000))
        assert nearest_rank(samples, 0.5) == 499_999
        assert nearest_rank(samples, 0.99) == 989_999
        assert nearest_rank(samples, 0.999) == 998_999

    def test_fraction_bounds(self):
        with pytest.raises(ValueError, match="fraction"):
            nearest_rank([1.0], 0.0)
        with pytest.raises(ValueError, match="fraction"):
            nearest_rank([1.0], 1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="zero samples"):
            nearest_rank([], 0.5)


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize([3.0, 1.0, 2.0])
        assert summary == LatencySummary(
            count=3, median=2.0, p90=3.0, p99=3.0, max=3.0, total=6.0
        )

    def test_one_element(self):
        summary = summarize([7.0])
        assert summary.median == summary.p90 == summary.p99 == summary.max == 7.0
        assert summary.count == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="zero samples"):
            summarize([])

    def test_to_dict_round_trips_the_fields(self):
        data = summarize([1.0, 2.0]).to_dict()
        assert set(data) == {"count", "median", "p90", "p99", "max", "total"}


class TestMergeAcrossProcesses:
    def test_merged_percentile_is_exact(self):
        # Split 1..100 over four "clients" with very different shapes.
        parts = [
            list(range(1, 26)),
            list(range(26, 51)),
            list(range(51, 76)),
            list(range(76, 101)),
        ]
        merged = summarize(merge_samples(parts))
        assert merged.count == 100
        assert merged.p99 == 99
        assert merged.max == 100

    def test_summaries_do_not_compose(self):
        # The p99-of-p99s is NOT the global p99 — the reason the bench
        # ships raw samples.  One client holds the whole tail.
        tail = [100.0] * 10
        body = [1.0] * 990
        per_client_p99s = [summarize(tail).p99, summarize(body).p99]
        assert max(per_client_p99s) == 100.0
        assert summarize(merge_samples([tail, body])).p99 == 1.0

    def test_merge_skips_nothing(self):
        assert merge_samples([[1.0], [], [2.0]]) == [1.0, 2.0]
