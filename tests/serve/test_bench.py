"""The multi-client serve bench (repro.serve.bench)."""

import json

import numpy as np
import pytest

from repro.faults.plan import ErrorWindow, FaultPlan, OutageWindow
from repro.serve.bench import (
    BenchOptions,
    partition_by_address,
    run_serve_bench,
    run_sieve_comparison,
)
from repro.traces.columnar import ColumnarTrace


def flash_crowd_trace(n=1200, hot_addresses=24, seed=5):
    """Hot set hammered by everyone, cold tail touched once — the
    workload shape where selective admission pays."""
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, hot_addresses, size=n // 2)
    cold = np.arange(50_000, 50_000 + n - n // 2)
    addresses = np.concatenate([hot, cold])
    rng.shuffle(addresses)
    times = np.sort(rng.uniform(0.0, 600.0, size=n))
    return ColumnarTrace(
        issue_time=times,
        completion_time=times + 0.001,
        address=addresses,
        block_count=np.ones(n, dtype=np.int32),
        is_write=rng.random(n) < 0.3,
        aligned_4k=np.ones(n, dtype=bool),
    )


FAST = BenchOptions(miss_latency=0.0, payload_bytes=64, t1=2, t2=1)


class TestPartition:
    def test_covers_every_row_exactly_once(self):
        columns = flash_crowd_trace(n=400)
        parts = partition_by_address(columns, 4)
        merged = np.sort(np.concatenate(parts))
        assert np.array_equal(merged, np.arange(len(columns)))

    def test_same_address_always_same_client(self):
        columns = flash_crowd_trace(n=400)
        parts = partition_by_address(columns, 4)
        owner = {}
        for client, indices in enumerate(parts):
            for address in columns.address[indices].tolist():
                assert owner.setdefault(address, client) == client

    def test_single_client_gets_everything(self):
        columns = flash_crowd_trace(n=50)
        (only,) = partition_by_address(columns, 1)
        assert len(only) == len(columns)

    def test_zero_clients_rejected(self):
        with pytest.raises(ValueError, match="clients"):
            partition_by_address(flash_crowd_trace(n=10), 0)


class TestSerialBench:
    def test_end_to_end_counts(self, tmp_path):
        columns = flash_crowd_trace(n=300)
        report = run_serve_bench(
            columns, tmp_path / "store", tmp_path / "shards",
            clients=2, options=FAST, parallel=False,
        )
        assert report.requests == len(columns)
        assert report.stats.requests == len(columns)
        assert report.stats.hits + report.stats.misses == len(columns)
        assert {r.executor for r in report.client_reports} == {"serial"}
        for op in ("read", "write"):
            summary = report.latency[op]
            assert summary is not None and summary.count > 0
            assert summary.median <= summary.p90 <= summary.p99 <= summary.max

    def test_manifest_records_every_client(self, tmp_path):
        columns = flash_crowd_trace(n=200)
        report = run_serve_bench(
            columns, tmp_path / "store", tmp_path / "shards",
            clients=3, options=FAST, parallel=False,
        )
        manifest = report.manifest()
        assert manifest["kind"] == "serve-bench"
        assert [c["client"] for c in manifest["clients"]] == [0, 1, 2]
        assert sum(c["requests"] for c in manifest["clients"]) == 200
        path = tmp_path / "manifest.json"
        report.save_manifest(path)
        assert json.loads(path.read_text()) == manifest

    def test_gate_admissions_match_store_allocations(self, tmp_path):
        columns = flash_crowd_trace(n=300)
        report = run_serve_bench(
            columns, tmp_path / "store", tmp_path / "shards",
            clients=2, options=FAST, parallel=False,
        )
        assert report.allocation_writes == sum(
            r.gate_admissions for r in report.client_reports
        )


class TestParallelBench:
    def test_four_clients_with_degraded_to_bypass_transition(self, tmp_path):
        """The acceptance scenario: 4 concurrent client processes, a
        fault plan that degrades then kills the device mid-replay, and
        stats/percentiles that survive the transition."""
        columns = flash_crowd_trace(n=800)
        plan = FaultPlan(
            errors=(ErrorWindow(200.0, 400.0, "read", probability=1.0),),
            outages=(OutageWindow(400.0,),),  # BYPASS until the end
        )
        options = BenchOptions(
            miss_latency=0.0, payload_bytes=64, t1=2, t2=1,
            fault_plan=plan.to_dict(),
        )
        report = run_serve_bench(
            columns, tmp_path / "store", tmp_path / "shards",
            clients=4, options=options, parallel=True,
        )
        assert report.clients == 4
        assert report.requests == len(columns)
        # Every client saw the same deterministic transitions.
        transitions = report.stats.health_transitions
        assert transitions.get("healthy->degraded") == 4
        assert transitions.get("degraded->bypass") == 4
        assert report.stats.bypassed > 0
        # Latency summaries cover the whole run, including bypass ops.
        total_ops = sum(
            summary.count
            for summary in report.latency.values()
            if summary is not None
        )
        assert total_ops == len(columns)
        assert report.latency["read"].p99 >= report.latency["read"].median

    def test_comparison_shows_strict_savings(self, tmp_path):
        out = run_sieve_comparison(
            flash_crowd_trace(n=600), tmp_path,
            clients=4, options=FAST, parallel=True,
        )
        sieved, unsieved = out["sieved"], out["unsieved"]
        assert sieved.allocation_writes < unsieved.allocation_writes
        assert out["allocation_writes_saved"] > 0
        assert 0 < out["allocation_write_ratio"] < 1
        # Both passes replayed the identical request stream.
        assert sieved.requests == unsieved.requests


class TestObservability:
    def test_metrics_merge_across_clients(self, tmp_path):
        from repro.obs import runtime

        columns = flash_crowd_trace(n=200)
        options = BenchOptions(
            miss_latency=0.0, payload_bytes=64, t1=2, t2=1,
            collect_metrics=True,
        )
        runtime.enable()
        try:
            report = run_serve_bench(
                columns, tmp_path / "store", tmp_path / "shards",
                clients=2, options=options, parallel=False,
            )
            registry = runtime.get_registry()
            ops = registry.counter(
                "serve_ops_total",
                "Serving-cache operations by outcome",
                ("op", "outcome"),
            )
            total = sum(value for _key, value in ops.samples())
            assert total == report.requests
        finally:
            runtime.disable()

    def test_collect_metrics_downgrades_when_obs_off(self, tmp_path):
        columns = flash_crowd_trace(n=100)
        options = BenchOptions(
            miss_latency=0.0, payload_bytes=64, collect_metrics=True
        )
        report = run_serve_bench(
            columns, tmp_path / "store", tmp_path / "shards",
            clients=1, options=options, parallel=False,
        )
        assert all(r.metrics is None for r in report.client_reports)
