"""Smoke tests: every shipped example must run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def isolated_trace_cache(tmp_path_factory, monkeypatch):
    """Keep example subprocesses' trace cache out of the working tree."""
    cache = tmp_path_factory.getbasetemp() / "example-trace-cache"
    monkeypatch.setenv("SIEVESTORE_TRACE_CACHE", str(cache))


def run_example(name, *args, timeout=600):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "served from the SSD" in result.stdout
        assert "the sieve at work" in result.stdout

    def test_compare_policies_with_small_scale(self):
        result = run_example("compare_policies.py", "4e-6")
        assert result.returncode == 0, result.stderr
        assert "fewer with sieving" in result.stdout
        assert "sievestore-c" in result.stdout

    def test_replay_msr_trace(self):
        result = run_example("replay_msr_trace.py")
        assert result.returncode == 0, result.stderr
        assert "batch allocation" in result.stdout

    @pytest.mark.slow
    def test_scale_out(self):
        result = run_example("scale_out.py")
        assert result.returncode == 0, result.stderr
        assert "cluster capture" in result.stdout
        assert "t2 trajectory" in result.stdout

    @pytest.mark.slow
    def test_capacity_planning(self):
        result = run_example("capacity_planning.py")
        assert result.returncode == 0, result.stderr
        assert "Drive requirements" in result.stdout
        assert "per-server" in result.stdout
