"""SVL010: opened resources must be closed or visibly hand off."""

from repro.staticcheck.analyzer import check_source


def _hits(source, module="fixture"):
    return [
        (f.line, f.symbol, f.severity)
        for f in check_source(source, module=module, select=["SVL010"])
    ]


def test_fixture_hits(fixture_source):
    hits = _hits(fixture_source("svl010_lifecycle.py"))
    assert [(line, sym) for line, sym, _ in hits] == [
        (7, "open:unbound:7"),
        (11, "open:fh"),
        (18, "sqlite3.connect:conn"),
        (24, "gzip.open:gz"),
    ]
    # Lifecycle findings are warnings: heuristic, not a hard gate.
    assert all(sev == "warning" for _, _, sev in hits)


def test_fixture_ok_is_clean(fixture_source):
    assert _hits(fixture_source("svl010_lifecycle_ok.py")) == []


def test_return_transfers_ownership():
    source = "def opener(path):\n    return open(path)\n"
    assert _hits(source) == []


def test_with_block_manages():
    source = "def read(path):\n    with open(path) as fh:\n        return fh.read()\n"
    assert _hits(source) == []


def test_passing_to_callee_transfers_ownership():
    source = "def feed(sink, path):\n    fh = open(path)\n    sink.consume(fh)\n"
    assert _hits(source) == []


def test_close_in_finally_governs():
    source = (
        "def copy(path, sink):\n"
        "    fh = open(path)\n"
        "    try:\n"
        "        sink.write(fh.read())\n"
        "    finally:\n"
        "        fh.close()\n"
    )
    assert _hits(source) == []


def test_rule_applies_everywhere():
    """SVL010 is unscoped: even obs/cli modules get the warning."""
    source = "def peek(path):\n    fh = open(path)\n    data = fh.read()\n    print(data)\n"
    assert [line for line, _, _ in _hits(source, module="repro.cli")] == [2]
