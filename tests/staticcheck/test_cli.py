"""End-to-end exit-code contract of ``python -m repro check``."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"

ALL_CODES = tuple(f"SVL{n:03d}" for n in range(1, 12))


def _run_check(*args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "check", *args],
        capture_output=True,
        text=True,
        cwd=cwd or REPO,
        env=env,
    )


def test_exit_0_on_clean_file(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text((FIXTURES / "clean.py").read_text())
    proc = _run_check(str(target))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout


def test_exit_0_on_src_tree():
    """The merged tree stays sievelint-clean (acceptance criterion)."""
    proc = _run_check("src")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_exit_1_on_violation(tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text("import time\nstamp = time.time()\n")
    proc = _run_check(str(target), cwd=tmp_path)
    assert proc.returncode == 1
    assert "SVL001" in proc.stdout


def test_exit_2_on_usage_error(tmp_path):
    proc = _run_check("--select", "NOPE", str(tmp_path))
    assert proc.returncode == 2
    assert "unknown rule code" in proc.stderr

    proc = _run_check(str(tmp_path / "missing-dir"))
    assert proc.returncode == 2


def test_json_format(tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text("import time\nstamp = time.time()\n")
    proc = _run_check(str(target), "--format", "json", cwd=tmp_path)
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["summary"]["findings"] == 1
    assert payload["findings"][0]["code"] == "SVL001"


def test_baseline_workflow(tmp_path):
    target = tmp_path / "legacy.py"
    target.write_text("import time\nstamp = time.time()\n")
    baseline = tmp_path / "staticcheck-baseline.json"

    # Grandfather the finding, then the same check passes.
    proc = _run_check(str(target), "--write-baseline", cwd=tmp_path)
    assert proc.returncode == 0
    assert baseline.exists()
    proc = _run_check(str(target), cwd=tmp_path)
    assert proc.returncode == 0, proc.stdout + proc.stderr

    # Fixing the violation makes the baseline stale — that also fails,
    # forcing a regenerate so the debt ledger stays honest.
    target.write_text("import time\nstamp = time.perf_counter()\n")
    proc = _run_check(str(target), cwd=tmp_path)
    assert proc.returncode == 1
    assert "stale baseline" in proc.stdout


def test_list_rules():
    proc = _run_check("--list-rules")
    assert proc.returncode == 0
    for code in ALL_CODES:
        assert code in proc.stdout


def test_committed_baseline_is_empty():
    """Debt-free tree: the committed baseline grandfathers nothing."""
    data = json.loads((REPO / "staticcheck-baseline.json").read_text())
    assert data == {"entries": {}, "version": 1}


def _seed_module(tmp_path, module, source):
    """Materialize ``module`` as a real package under ``tmp_path/tree``
    so the analyzer's path->module resolution sees the scoped name.
    The extra ``tree`` level keeps the seeded ``repro`` package from
    shadowing the real one when the subprocess runs ``-m repro``."""
    parts = module.split(".")
    directory = tmp_path / "tree"
    directory.mkdir(exist_ok=True)
    for package in parts[:-1]:
        directory = directory / package
        directory.mkdir(exist_ok=True)
        init = directory / "__init__.py"
        if not init.exists():
            init.write_text("")
    target = directory / f"{parts[-1]}.py"
    target.write_text(source)
    return target


#: One deliberate violation per interprocedural-era rule; each must be
#: caught end-to-end through the subprocess CLI with exit code 1.
SEEDED_VIOLATIONS = [
    (
        "SVL007",
        "repro.sim.dirty",
        "from pathlib import Path\n"
        "def save(path, payload):\n"
        "    Path(path).write_text(payload)\n",
    ),
    (
        "SVL008",
        "repro.serve.dirty",
        "import sqlite3\n"
        "CONN = sqlite3.connect('shards.sqlite')\n",
    ),
    (
        "SVL009",
        "repro.sim.dirty",
        "def record(registry):\n"
        "    registry.counter('totally_undeclared_total', 'help', ())\n",
    ),
    (
        "SVL010",
        "repro.sim.dirty",
        "def tail(path):\n"
        "    fh = open(path)\n"
        "    data = fh.read()\n"
        "    print(data)\n",
    ),
    (
        "SVL011",
        "repro.util.units",
        "import math\n"
        "def blocks(nbytes, block):\n"
        "    return math.ceil(nbytes / block)\n",
    ),
]


@pytest.mark.parametrize(
    "code,module,source",
    SEEDED_VIOLATIONS,
    ids=[case[0] for case in SEEDED_VIOLATIONS],
)
def test_exit_1_on_seeded_violation(tmp_path, code, module, source):
    _seed_module(tmp_path, module, source)
    proc = _run_check(str(tmp_path / "tree"), "--select", code, cwd=tmp_path)
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert code in proc.stdout


def test_explain_known_rule():
    proc = _run_check("--explain", "SVL007")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "SVL007" in proc.stdout
    assert "Example violation:" in proc.stdout
    assert "sievelint: disable=SVL007" in proc.stdout
    assert "--write-baseline" in proc.stdout


def test_explain_is_case_insensitive():
    proc = _run_check("--explain", "svl011")
    assert proc.returncode == 0
    assert "SVL011" in proc.stdout


def test_explain_unknown_rule_is_usage_error():
    proc = _run_check("--explain", "SVL999")
    assert proc.returncode == 2
    assert "no rule registered" in proc.stderr


def test_sievelint_module_entry_point(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.staticcheck", "--list-rules"],
        capture_output=True,
        text=True,
        env=env,
        cwd=tmp_path,
    )
    assert proc.returncode == 0
    assert "SVL001" in proc.stdout
