"""End-to-end exit-code contract of ``python -m repro check``."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def _run_check(*args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "check", *args],
        capture_output=True,
        text=True,
        cwd=cwd or REPO,
        env=env,
    )


def test_exit_0_on_clean_file(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text((FIXTURES / "clean.py").read_text())
    proc = _run_check(str(target))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout


def test_exit_0_on_src_tree():
    """The merged tree stays sievelint-clean (acceptance criterion)."""
    proc = _run_check("src")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_exit_1_on_violation(tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text("import time\nstamp = time.time()\n")
    proc = _run_check(str(target), cwd=tmp_path)
    assert proc.returncode == 1
    assert "SVL001" in proc.stdout


def test_exit_2_on_usage_error(tmp_path):
    proc = _run_check("--select", "NOPE", str(tmp_path))
    assert proc.returncode == 2
    assert "unknown rule code" in proc.stderr

    proc = _run_check(str(tmp_path / "missing-dir"))
    assert proc.returncode == 2


def test_json_format(tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text("import time\nstamp = time.time()\n")
    proc = _run_check(str(target), "--format", "json", cwd=tmp_path)
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["summary"]["findings"] == 1
    assert payload["findings"][0]["code"] == "SVL001"


def test_baseline_workflow(tmp_path):
    target = tmp_path / "legacy.py"
    target.write_text("import time\nstamp = time.time()\n")
    baseline = tmp_path / "staticcheck-baseline.json"

    # Grandfather the finding, then the same check passes.
    proc = _run_check(str(target), "--write-baseline", cwd=tmp_path)
    assert proc.returncode == 0
    assert baseline.exists()
    proc = _run_check(str(target), cwd=tmp_path)
    assert proc.returncode == 0, proc.stdout + proc.stderr

    # Fixing the violation makes the baseline stale — that also fails,
    # forcing a regenerate so the debt ledger stays honest.
    target.write_text("import time\nstamp = time.perf_counter()\n")
    proc = _run_check(str(target), cwd=tmp_path)
    assert proc.returncode == 1
    assert "stale baseline" in proc.stdout


def test_list_rules():
    proc = _run_check("--list-rules")
    assert proc.returncode == 0
    for code in ("SVL001", "SVL002", "SVL003", "SVL004", "SVL005", "SVL006"):
        assert code in proc.stdout


def test_committed_baseline_is_empty():
    """Debt-free tree: the committed baseline grandfathers nothing."""
    data = json.loads((REPO / "staticcheck-baseline.json").read_text())
    assert data == {"entries": {}, "version": 1}


def test_sievelint_module_entry_point(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.staticcheck", "--list-rules"],
        capture_output=True,
        text=True,
        env=env,
        cwd=tmp_path,
    )
    assert proc.returncode == 0
    assert "SVL001" in proc.stdout
