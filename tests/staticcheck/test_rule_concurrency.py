"""SVL008: shared sqlite handles in serve; worker-side global writes."""

from repro.staticcheck.analyzer import check_source


def _hits(source, module="repro.serve.fixture"):
    return [
        (f.line, f.symbol)
        for f in check_source(source, module=module, select=["SVL008"])
    ]


def test_fixture_hits(fixture_source):
    hits = _hits(fixture_source("svl008_concurrency.py"))
    assert hits == [
        (13, "shared-conn:self.conn"),
        (18, "repro.serve.fixture._set_mode:_MODE"),
        (23, "repro.serve.fixture._worker:_RESULTS"),
    ]


def test_fixture_ok_is_clean(fixture_source):
    assert _hits(fixture_source("svl008_concurrency_ok.py")) == []


def test_shared_connection_check_is_serve_scoped(fixture_source):
    """Outside repro.serve only the worker-global findings remain: no
    serving threads means a long-lived connection on self is fine."""
    hits = _hits(
        fixture_source("svl008_concurrency.py"), module="repro.sim.fixture"
    )
    assert [line for line, _ in hits] == [18, 23]
    assert all("shared-conn" not in sym for _, sym in hits)


def test_worker_global_via_transitive_call(fixture_source):
    """_set_mode never touches the pool directly; the call graph places
    it in a worker because _worker (a pool.map target) calls it."""
    hits = _hits(fixture_source("svl008_concurrency.py"))
    assert any(sym.endswith("_set_mode:_MODE") for _, sym in hits)


def test_module_level_connection_in_serve():
    source = (
        "import sqlite3\n"
        "CONN = sqlite3.connect('db.sqlite')\n"
    )
    assert _hits(source) == [(2, "shared-conn:CONN")]


def test_local_shadowing_is_not_flagged():
    source = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "_CACHE = {}\n"
        "def _worker(task):\n"
        "    _CACHE = {}\n"
        "    _CACHE[task] = 1\n"
        "    return task\n"
        "def run(tasks):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return list(pool.map(_worker, tasks))\n"
    )
    assert _hits(source) == []
