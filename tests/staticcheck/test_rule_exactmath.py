"""SVL011: exact-math modules may not round through floats."""

from repro.staticcheck.analyzer import check_source


def _lines(source, module="repro.util.units"):
    return [
        f.line for f in check_source(source, module=module, select=["SVL011"])
    ]


def test_fixture_hits(fixture_source):
    findings = check_source(
        fixture_source("svl011_exactmath.py"),
        module="repro.util.units",
        select=["SVL011"],
    )
    assert [f.line for f in findings] == [8, 11, 15, 19, 23]
    assert all(f.severity == "error" for f in findings)


def test_fixture_ok_is_clean(fixture_source):
    assert _lines(fixture_source("svl011_exactmath_ok.py")) == []


def test_scope_is_exact_module_set(fixture_source):
    """Only the three exact-math modules are in scope; the same source
    in the simulator (where floats are fine) is untouched."""
    source = fixture_source("svl011_exactmath.py")
    assert _lines(source, module="repro.sim.engine") == []
    assert _lines(source, module="repro.serve.percentiles") != []
    assert _lines(source, module="repro.util.intervals") != []


def test_fraction_wrapped_division_is_exact():
    source = (
        "import math\n"
        "from fractions import Fraction\n"
        "def ceil_ratio(a, b):\n"
        "    return math.ceil(Fraction(a, b))\n"
    )
    assert _lines(source) == []


def test_floor_division_is_exact():
    source = "def bucket(ts, s):\n    return int(ts // s)\n"
    assert _lines(source) == []


def test_fraction_from_string_is_exact():
    source = "from fractions import Fraction\nHALF = Fraction('0.5')\n"
    assert _lines(source) == []
