"""SVL005: serialized-schema drift must come with a version bump."""

from repro.staticcheck.analyzer import check_source

MODULE = "repro.sim.serialize"


def _findings(source):
    return check_source(source, module=MODULE, select=["SVL005"])


def test_clean_fixture_matches_registry(fixture_source):
    assert _findings(fixture_source("svl005_schema_ok.py")) == []


def test_field_added_without_bump_flagged(fixture_source):
    drifted = fixture_source("svl005_schema_ok.py").replace(
        '"engine": result.engine,',
        '"engine": result.engine,\n        "hostname": result.hostname,',
    )
    findings = _findings(drifted)
    assert len(findings) == 1
    finding = findings[0]
    assert finding.code == "SVL005"
    assert finding.symbol == "result-json"
    assert "hostname" in finding.message
    assert "SCHEMA_VERSION" in finding.message


def test_field_removed_without_bump_flagged(fixture_source):
    drifted = fixture_source("svl005_schema_ok.py").replace(
        '        "wall_seconds": result.wall_seconds,\n', ""
    )
    findings = _findings(drifted)
    assert [f.symbol for f in findings] == ["result-json"]
    assert "removed wall_seconds" in findings[0].message


def test_version_bump_without_registry_update_flagged(fixture_source):
    bumped = fixture_source("svl005_schema_ok.py").replace(
        "SCHEMA_VERSION = 1", "SCHEMA_VERSION = 2"
    )
    findings = _findings(bumped)
    # Both serialize-owned schemas reference SCHEMA_VERSION, so both
    # report the stale registry expectation.
    assert sorted(f.symbol for f in findings) == ["result-json", "stats-json"]
    assert all("schema_registry" in f.message for f in findings)


def test_bump_plus_registry_is_the_documented_fix(fixture_source):
    # Field drift *with* a bump still flags until the registry entry is
    # updated — the registry is the second half of the contract.
    drifted = (
        fixture_source("svl005_schema_ok.py")
        .replace("SCHEMA_VERSION = 1", "SCHEMA_VERSION = 2")
        .replace(
            '"engine": result.engine,',
            '"engine": result.engine,\n        "hostname": result.hostname,',
        )
    )
    findings = _findings(drifted)
    assert findings, "drift plus bump still needs a registry update"


def test_tracked_var_subscript_stores_extracted(fixture_source):
    # Removing a conditional subscript store counts as field removal.
    drifted = fixture_source("svl005_schema_ok.py").replace(
        '    if stats.degraded_seconds:\n'
        '        payload["degraded_seconds"] = stats.degraded_seconds\n',
        "",
    )
    findings = _findings(drifted)
    assert [f.symbol for f in findings] == ["stats-json"]
    assert "degraded_seconds" in findings[0].message


def test_missing_symbol_reports_stale_registry(fixture_source):
    gutted = fixture_source("svl005_schema_ok.py").replace(
        "def result_to_dict", "def renamed_to_dict"
    )
    findings = _findings(gutted)
    assert [f.symbol for f in findings] == ["result-json"]
    assert "not found" in findings[0].message


def test_unrelated_module_skipped():
    assert check_source(
        "X = 1\n", module="repro.analysis.report", select=["SVL005"]
    ) == []


def test_real_tree_specs_hold():
    """The committed registry matches the live source files."""
    from pathlib import Path

    from repro.staticcheck.analyzer import analyze_paths

    root = Path(__file__).resolve().parents[2]
    report = analyze_paths([root / "src"], select=["SVL005"])
    assert report.findings == []
