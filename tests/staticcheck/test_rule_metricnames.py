"""SVL009: metric registrations must match the declared registry."""

from repro.staticcheck.analyzer import check_source
from repro.staticcheck.metric_registry import METRICS, specs_by_name


def _hits(source, module="repro.sim.fixture"):
    return [
        (f.line, f.symbol)
        for f in check_source(source, module=module, select=["SVL009"])
    ]


def test_registry_is_ordered_and_unique():
    names = [spec.name for spec in METRICS]
    assert names == sorted(names)
    assert len(set(names)) == len(names)
    assert set(spec.kind for spec in METRICS) <= {
        "counter",
        "gauge",
        "histogram",
    }
    assert specs_by_name()["trace_cache_requests_total"].labels == ("outcome",)


def test_fixture_hits(fixture_source):
    hits = _hits(fixture_source("svl009_metricnames.py"))
    assert hits == [
        (4, "trace_cache_request_total"),  # undeclared (singular) name
        (9, "sim_requests_total"),  # kind drift: gauge vs counter
        (14, "trace_cache_requests_total"),  # label drift
    ]


def test_fixture_ok_is_clean(fixture_source):
    assert _hits(fixture_source("svl009_metricnames_ok.py")) == []


def test_dynamic_names_are_skipped():
    source = (
        "def restore(registry, name):\n"
        "    registry.counter(name, 'help', ())\n"
    )
    assert _hits(source) == []


def test_stale_spec_flagged_when_owning_module_scanned():
    """An empty repro.traces.store means the registry entry it owns has
    no surviving call site -> stale."""
    hits = _hits("", module="repro.traces.store")
    assert hits == [(1, "stale:trace_cache_requests_total")]


def test_stale_check_gated_on_module_presence():
    """Scanning an unrelated module must not flag every absent metric."""
    assert _hits("", module="repro.core.sieve") == []
