"""Baseline round-trip, consumption, and staleness semantics."""

import json

import pytest

from repro.staticcheck.baseline import Baseline
from repro.staticcheck.findings import Finding


def _finding(line, symbol="time.time", code="SVL001"):
    return Finding(
        code=code,
        severity="error",
        path="src/repro/sim/x.py",
        line=line,
        col=0,
        message="m",
        module="repro.sim.x",
        symbol=symbol,
    )


def test_round_trip_is_byte_stable(tmp_path):
    findings = [_finding(1), _finding(9), _finding(4, symbol="dt.now")]
    baseline = Baseline.from_findings(findings)
    path = tmp_path / "baseline.json"
    baseline.save(path)
    first = path.read_bytes()
    Baseline.load(path).save(path)
    assert path.read_bytes() == first
    data = json.loads(first)
    assert data["version"] == 1
    assert data["entries"]["repro.sim.x::SVL001::time.time"] == 2


def test_apply_consumes_counts():
    baseline = Baseline.from_findings([_finding(1), _finding(2)])
    # Same two findings on new line numbers: fully absorbed.
    new, stale = baseline.apply([_finding(10), _finding(20)])
    assert new == [] and stale == []
    # A third occurrence exceeds the recorded count.
    new, stale = baseline.apply([_finding(1), _finding(2), _finding(3)])
    assert [f.line for f in new] == [3]
    assert stale == []


def test_stale_entries_reported():
    baseline = Baseline.from_findings([_finding(1), _finding(2, "dt.now")])
    new, stale = baseline.apply([_finding(5)])
    assert new == []
    assert stale == ["repro.sim.x::SVL001::dt.now"]


def test_malformed_baseline_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 99, "entries": {}}')
    with pytest.raises(ValueError):
        Baseline.load(path)
    path.write_text('{"entries": {"k": -1}, "version": 1}')
    with pytest.raises(ValueError):
        Baseline.load(path)
    path.write_text("[]")
    with pytest.raises(ValueError):
        Baseline.load(path)
