"""SVL006: accumulation must not iterate unordered containers."""

from repro.staticcheck.analyzer import check_source

MODULE = "repro.cache.fixture"


def _lines(source, module=MODULE):
    return [
        f.line for f in check_source(source, module=module, select=["SVL006"])
    ]


def test_fixture_hits(fixture_source):
    findings = check_source(
        fixture_source("svl006_ordering.py"),
        module=MODULE,
        select=["SVL006"],
    )
    assert [f.line for f in findings] == [5, 13, 20]
    assert all(f.severity == "warning" for f in findings)


def test_sorted_wrapping_passes():
    source = (
        "def f(d):\n"
        "    out = 0\n"
        "    for v in sorted(d.values()):\n"
        "        out += v\n"
        "    return out\n"
    )
    assert _lines(source) == []


def test_items_iteration_not_flagged():
    source = (
        "def f(d):\n"
        "    out = 0\n"
        "    for k, v in d.items():\n"
        "        out += v\n"
        "    return out\n"
    )
    assert _lines(source) == []


def test_out_of_scope_module_ignored():
    source = (
        "def f(d):\n"
        "    out = 0\n"
        "    for v in d.values():\n"
        "        out += v\n"
        "    return out\n"
    )
    assert _lines(source, module="repro.analysis.report") == []


def test_subscript_store_counts_as_accumulation():
    source = (
        "def f(d):\n"
        "    out = {}\n"
        "    for v in d.values():\n"
        "        out[v.name] = v\n"
        "    return out\n"
    )
    assert _lines(source) == [3]


def test_set_algebra_flagged():
    source = (
        "def f(a, b):\n"
        "    total = 0\n"
        "    for x in set(a) | set(b):\n"
        "        total += x\n"
        "    return total\n"
    )
    assert _lines(source) == [3]
