"""Inline suppression pragmas and their parsing."""

from repro.staticcheck.analyzer import check_source
from repro.staticcheck.suppressions import parse_suppressions

VIOLATION = "import time\nx = time.time()\n"
MODULE = "repro.sim.fixture"


def test_line_suppression_silences_only_that_line():
    source = (
        "import time\n"
        "a = time.time()  # sievelint: disable=SVL001 -- needed here\n"
        "b = time.time()\n"
    )
    findings = check_source(source, module=MODULE, select=["SVL001"])
    assert [f.line for f in findings] == [3]


def test_file_wide_suppression():
    source = (
        "# sievelint: disable-file=SVL001\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.time()\n"
    )
    assert check_source(source, module=MODULE, select=["SVL001"]) == []


def test_multiple_codes_one_pragma():
    supp = parse_suppressions("x = 1  # sievelint: disable=SVL001,SVL006\n")
    assert supp.is_suppressed("SVL001", 1)
    assert supp.is_suppressed("SVL006", 1)
    assert not supp.is_suppressed("SVL002", 1)


def test_trailing_reason_tolerated():
    supp = parse_suppressions(
        "x = 1  # sievelint: disable=SVL004 -- hook runs pre-fork\n"
    )
    assert supp.is_suppressed("SVL004", 1)


def test_pragma_in_string_literal_ignored():
    source = 's = "# sievelint: disable=SVL001"\nimport time\nx = time.time()\n'
    findings = check_source(source, module=MODULE, select=["SVL001"])
    assert [f.line for f in findings] == [3]


def test_unrelated_comments_ignored():
    supp = parse_suppressions("x = 1  # a plain comment\n")
    assert not supp.is_suppressed("SVL001", 1)
    assert supp.file_wide == set()
