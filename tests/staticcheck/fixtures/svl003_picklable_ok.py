# Fixture: SVL003 negative — module-level callables and plain data only.
from concurrent.futures import ProcessPoolExecutor


def _task(x):
    return x + 1


def _init_worker(seed):
    del seed


def submit_all(pool, values):
    return [pool.submit(_task, v) for v in values]


def map_all(values):
    with ProcessPoolExecutor(initializer=_init_worker, initargs=(7,)) as pool:
        return list(pool.map(_task, values))
