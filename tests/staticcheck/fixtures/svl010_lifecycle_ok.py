# Fixture: SVL010 negative — every handle is with-managed, closed in
# finally, or visibly hands ownership elsewhere.
import sqlite3


def read_all(path):
    with open(path) as fh:
        return fh.read()


def copy(src, sink):
    fh = open(src)
    try:
        sink.write(fh.read())
    finally:
        fh.close()


def open_for_caller(path):
    return open(path)  # ownership transfers with the return


def stash(registry, key, path):
    fh = open(path)
    registry[key] = fh  # ownership moves into the registry


def feed(parser, path):
    parser.consume(open(path))  # recipient owns the handle


def probe(db_path):
    conn = sqlite3.connect(db_path)
    try:
        return conn.execute("select 1").fetchone()
    finally:
        conn.close()
