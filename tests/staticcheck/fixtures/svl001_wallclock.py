# Fixture: SVL001 positive (wall clock in a simulation module) and a
# guarded alternative on the same file.
import time
from datetime import datetime


def stamp_epoch():
    return time.time()  # HIT: wall clock


def stamp_day():
    return datetime.now()  # HIT: wall clock


def measure():
    return time.perf_counter()  # ok: monotonic duration


def suppressed_stamp():
    return time.time()  # sievelint: disable=SVL001 -- fixture exercises suppression
