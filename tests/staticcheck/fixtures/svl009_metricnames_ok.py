# Fixture: SVL009 negative — registrations matching the declared
# registry exactly (positional and keyword label forms), plus a
# dynamic registration that is outside the contract.
def record(registry, outcome, policy, engine):
    registry.counter(
        "trace_cache_requests_total",
        "Trace-cache lookups",
        ("outcome",),
    ).inc(outcome=outcome)
    registry.gauge(
        "sim_blocks_per_second",
        "Simulation throughput",
        labelnames=("policy", "engine"),
    ).set(1.0, policy=policy, engine=engine)
    registry.histogram(
        "sim_epoch_wall_seconds",
        "Epoch wall seconds",
        ("policy", "engine"),
    ).observe(0.5, policy=policy, engine=engine)


def restore(registry, name, entry):
    # Non-constant name: the merge/restore path registers dynamically
    # and is deliberately outside the registry contract.
    registry.counter(name, entry["help"], tuple(entry["labels"]))
