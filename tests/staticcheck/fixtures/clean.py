# Fixture: violates nothing — anchor for the exit-0 end-to-end test.
import time


def measure(work):
    start = time.perf_counter()
    work()
    return time.perf_counter() - start


def total(values):
    result = 0
    for value in sorted(values):
        result += value
    return result
