# Fixture: SVL011 positives — float ratios feeding rounding ops in an
# exact-math module.
import math
from fractions import Fraction


def blocks_needed(nbytes, block_bytes):
    return math.ceil(nbytes / block_bytes)  # HIT: float ratio

def rank_index(fraction, n):
    return int(fraction * n / 100)  # HIT: int() over true division


def rounded_share(hits, total):
    return round(hits / total)  # HIT: round() over true division


def floored_ratio(a, b):
    return math.floor(a / b)  # HIT: float ratio


def bad_seed():
    return Fraction(0.95)  # HIT: float literal seeds exact math
