# Fixture: SVL009 positives — every drift direction against the
# declared metric registry.
def record(registry, outcome):
    registry.counter(
        "trace_cache_request_total",  # HIT: undeclared (singular) name
        "Trace-cache lookups",
        ("outcome",),
    ).inc(outcome=outcome)
    registry.gauge(
        "sim_requests_total",  # HIT: declared as a counter
        "Requests",
        ("policy", "engine"),
    ).set(1)
    registry.counter(
        "trace_cache_requests_total",
        "Trace-cache lookups",
        ("result",),  # HIT: declared labels are ("outcome",)
    ).inc(result=outcome)
