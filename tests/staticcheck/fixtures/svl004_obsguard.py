# Fixture: SVL004 positive (unguarded dereference of an Optional obs
# handle) plus every accepted guard shape.
from repro.obs import runtime as obs_runtime
from repro.obs.runtime import get_registry


def unguarded():
    reg = obs_runtime.get_registry()
    reg.counter("x")  # HIT: may be None when metrics are off


def guarded_if():
    reg = get_registry()
    if reg is not None:
        reg.counter("x")  # ok


def guarded_early_exit():
    reg = get_registry()
    if reg is None:
        return
    reg.counter("x")  # ok


def guarded_ifexp():
    reg = get_registry()
    return reg.counter if reg is not None else None  # ok


def guarded_boolop():
    reg = get_registry()
    return reg is not None and reg.counter("x")  # ok


def reassigned():
    reg = get_registry()
    reg = object()
    return reg.__class__  # ok: no longer the Optional handle
