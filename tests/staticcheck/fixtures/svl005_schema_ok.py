# Fixture: a stand-in for repro.sim.serialize that satisfies the
# schema registry exactly.  Tests derive drifted variants from it by
# string substitution (extra field, version bump) and assert SVL005
# fires or stays quiet accordingly.
SCHEMA_VERSION = 1
CHECKPOINT_SCHEMA_VERSION = 1


def stats_to_dict(stats):
    payload = {
        "days": stats.days,
        "per_day": list(stats.per_day),
        "per_minute": dict(stats.per_minute),
    }
    if stats.degraded_seconds:
        payload["degraded_seconds"] = stats.degraded_seconds
    if stats.bypass_seconds:
        payload["bypass_seconds"] = stats.bypass_seconds
    return payload


def result_to_dict(result):
    return {
        "schema_version": SCHEMA_VERSION,
        "policy_name": result.policy_name,
        "wall_seconds": result.wall_seconds,
        "engine": result.engine,
        "stats": stats_to_dict(result.stats),
    }
