# Fixture: SVL006 negative — accumulation only over explicit orders.
def sum_values(table):
    total = 0
    for _key, value in sorted(table.items()):
        total += value
    return total


def sum_blocks(blocks):
    total = 0
    for block in sorted(set(blocks)):
        total += block
    return total


def collect(table):
    return [value * 2 for value in sorted(table.values())]
