# Fixture: SVL002 negative — seeded, function-scoped RNG construction.
import random

import numpy as np


def draw(seed, count):
    rng = random.Random(seed)
    return [rng.random() for _ in range(count)]


def draw_np(seed, count):
    gen = np.random.default_rng(seed)
    return gen.random(count)
