# Fixture: SVL006 positives (accumulation over dict views / sets) and
# the sorted()-wrapped forms that pass.
def sum_values(table):
    total = 0
    for value in table.values():  # HIT: unordered view feeds +=
        total += value
    return total


def sum_set(blocks):
    pending = set(blocks)
    total = 0
    for block in pending:  # HIT: set iteration feeds +=
        total += block
    return total


def collect_set(blocks):
    pending = {b for b in blocks}
    return [b * 2 for b in pending]  # HIT: list built from a set


def sum_sorted(table):
    total = 0
    for _key, value in sorted(table.items()):  # ok: explicit order
        total += value
    return total


def sum_items(table):
    total = 0
    for _key, value in table.items():  # ok: .items() follows insertion
        total += value
    return total


def no_accumulation(table):
    for value in table.values():  # ok: nothing accumulates
        print(value)
