# Fixture: SVL007 negative — every persisted write flows through
# repro.util.atomic, directly or via the interprocedural parameter
# exemption (every caller of _write_bare passes an atomic temp path).
import json
from pathlib import Path

import numpy as np

from repro.util.atomic import atomic_write, atomic_write_path


def save_manifest(path, payload):
    encoded = json.dumps(payload).encode("utf-8")
    with atomic_write(path) as handle:
        handle.write(encoded)


def save_arrays(path, arrays):
    with atomic_write(path) as handle:
        np.savez(handle, **arrays)


def save_arrays_via_temp(path, arrays):
    with atomic_write_path(path) as tmp:
        np.savez(tmp, **arrays)


def _write_bare(path, payload):
    Path(path).write_text(json.dumps(payload))


def publish(path, payload):
    with atomic_write_path(path) as tmp:
        _write_bare(tmp, payload)


def republish(path, payload):
    with atomic_write_path(path) as tmp:
        _write_bare(tmp, payload)


def append_log(path, line):
    with open(path, "a") as handle:
        handle.write(line)
