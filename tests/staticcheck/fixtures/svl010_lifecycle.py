# Fixture: SVL010 positives — handles opened and dropped.
import gzip
import sqlite3


def read_all(path):
    return open(path).read()  # HIT: handle never bound, fd dropped


def tail(path):
    fh = open(path)  # HIT: fh never closed on any path
    fh.seek(0, 2)
    size = fh.tell()
    return size


def probe(db_path):
    conn = sqlite3.connect(db_path)  # HIT: conn never closed
    cursor = conn.execute("select 1")
    return cursor.fetchone()


def peek(path):
    gz = gzip.open(path)  # HIT: gz never closed
    header = gz.read(16)
    return header
