"""SVL001 fixture: wall-clock reads the serve allowance permits."""

import time

started_at = time.time()  # allowed under repro.serve, banned elsewhere
elapsed = time.perf_counter()  # allowed everywhere
