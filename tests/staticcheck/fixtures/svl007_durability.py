# Fixture: SVL007 positives — persisted writes bypassing
# repro.util.atomic, including an interprocedural miss where the
# helper's caller hands it a raw destination.
import json
from pathlib import Path

import numpy as np


def save_manifest(path, payload):
    Path(path).write_text(json.dumps(payload))  # HIT: bare write_text


def save_arrays(path, arrays):
    with open(path, "wb") as handle:  # HIT: bare truncating open
        np.savez(handle, **arrays)  # HIT: handle is not atomic-bound


def _write_payload(path, payload):
    Path(path).write_text(json.dumps(payload))  # HIT: caller passes raw path


def publish(base, payload):
    _write_payload(base + ".json", payload)


def append_log(path, line):
    with open(path, "a") as handle:  # ok: append-mode event log
        handle.write(line)
