# Fixture: SVL008 positives — a connection shared across serving
# threads, and module globals mutated inside a pool-worker call graph
# (directly and one call deep).
import sqlite3
from concurrent.futures import ProcessPoolExecutor

_RESULTS = {}
_MODE = "idle"


class Store:
    def __init__(self, path):
        self.conn = sqlite3.connect(path)  # HIT: shared by every thread


def _set_mode(mode):
    global _MODE
    _MODE = mode  # HIT: rebind inside a pool-worker call graph


def _worker(task):
    _set_mode("busy")
    _RESULTS[task] = task * 2  # HIT: lands in the worker's module copy
    return task


def run(tasks):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(_worker, tasks))
