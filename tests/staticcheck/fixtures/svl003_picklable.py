# Fixture: SVL003 positives (lambda / nested function / open handle /
# lock submitted to the pool) and the sanctioned module-level callable.
import threading
from concurrent.futures import ProcessPoolExecutor


def _module_level_task(x):
    return x + 1


def submit_lambda(pool):
    return pool.submit(lambda x: x + 1, 2)  # HIT: lambda


def submit_nested(pool):
    def task(x):  # noqa: local function
        return x

    return pool.submit(task, 1)  # HIT: nested function


def submit_handle(pool, path):
    handle = open(path)
    return pool.submit(_module_level_task, handle)  # HIT: open file


def submit_lock(pool):
    return pool.submit(_module_level_task, threading.Lock())  # HIT: lock


def bad_initializer():
    mark = lambda: None  # noqa: E731
    return ProcessPoolExecutor(initializer=mark)  # HIT: lambda initializer


def submit_ok(pool):
    return pool.submit(_module_level_task, 3)  # ok: module-level callable
