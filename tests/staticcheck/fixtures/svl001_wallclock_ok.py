# Fixture: SVL001 negative — monotonic duration measurement only.
import time


def measure(work):
    start = time.perf_counter()
    work()
    return time.perf_counter() - start


def measure_ns(work):
    start = time.perf_counter_ns()
    work()
    return time.perf_counter_ns() - start
