# Fixture: SVL002 positives (global/unseeded/module-level RNG) and the
# sanctioned seeded-parameter pattern.
import random

import numpy as np

_SHARED = random.Random(7)  # HIT: module-level RNG even when seeded


def draw_global():
    return random.randint(0, 10)  # HIT: process-global RNG


def draw_unseeded():
    return random.Random()  # HIT: unseeded constructor


def draw_np_unseeded():
    return np.random.default_rng()  # HIT: unseeded numpy generator


def draw_np_global():
    return np.random.rand()  # HIT: numpy global RNG


def draw_seeded(seed):
    rng = random.Random(seed)  # ok: explicit seed, function scope
    gen = np.random.default_rng(seed)  # ok
    return rng.random() + gen.random()
