# Fixture: SVL011 negative — the sanctioned exact idioms.
import math
from fractions import Fraction


def blocks_needed(nbytes, block_bytes):
    return -(-nbytes // block_bytes)  # integer ceiling division


def rank_index(fraction, n):
    return math.ceil(Fraction(str(fraction)) * n)


def exact_ratio_ceil(a, b):
    return math.ceil(Fraction(a, b))


def bucket(timestamp, bucket_seconds):
    return int(timestamp // bucket_seconds)  # floor division stays exact


def good_seed():
    return Fraction("0.95")
