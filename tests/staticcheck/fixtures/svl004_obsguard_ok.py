# Fixture: SVL004 negative — every obs-handle dereference is guarded.
from repro.obs.runtime import get_registry


def record(outcome):
    registry = get_registry()
    if registry is not None:
        registry.counter("ops_total").inc(outcome=outcome)


def record_early_exit(outcome):
    registry = get_registry()
    if registry is None:
        return
    registry.counter("ops_total").inc(outcome=outcome)
