# Fixture: SVL008 negative — per-thread connections under
# threading.local, and workers that keep state function-local.
import sqlite3
import threading
from concurrent.futures import ProcessPoolExecutor


class Store:
    def __init__(self, path):
        self._path = path
        self._local = threading.local()

    def _connection(self):
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(self._path)
            self._local.conn = conn
        return conn


def _worker(task):
    local = {}
    local[task] = task * 2
    return local


def run(tasks):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(_worker, tasks))
