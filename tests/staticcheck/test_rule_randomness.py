"""SVL002: randomness must be explicitly seeded in simulation packages."""

from repro.staticcheck.analyzer import check_source


def _lines(source, module="repro.sim.fixture"):
    return [
        f.line for f in check_source(source, module=module, select=["SVL002"])
    ]


def test_fixture_hits(fixture_source):
    findings = check_source(
        fixture_source("svl002_randomness.py"),
        module="repro.traces.fixture",
        select=["SVL002"],
    )
    assert [f.line for f in findings] == [7, 11, 15, 19, 23]
    assert all(f.code == "SVL002" for f in findings)


def test_seeded_function_scope_passes(fixture_source):
    source = (
        "import random\n"
        "def f(seed):\n"
        "    return random.Random(seed).random()\n"
    )
    assert _lines(source) == []


def test_out_of_scope_module_ignored():
    source = "import random\nx = random.random()\n"
    assert _lines(source, module="repro.analysis.skew") == []
    assert _lines(source, module="repro.sim.engine") == [2]


def test_numpy_alias_resolution():
    source = (
        "import numpy as np\n"
        "def f():\n"
        "    return np.random.shuffle([1, 2])\n"
    )
    assert _lines(source) == [3]


def test_system_random_always_flagged():
    source = (
        "import random\n"
        "def f(seed):\n"
        "    return random.SystemRandom(seed)\n"
    )
    assert _lines(source) == [3]
