"""SVL004: Optional observability handles must be None-guarded."""

from repro.staticcheck.analyzer import check_source

MODULE = "repro.sim.fixture"


def _lines(source, module=MODULE):
    return [
        f.line for f in check_source(source, module=module, select=["SVL004"])
    ]


def test_fixture_single_hit(fixture_source):
    findings = check_source(
        fixture_source("svl004_obsguard.py"),
        module=MODULE,
        select=["SVL004"],
    )
    assert [(f.code, f.line) for f in findings] == [("SVL004", 9)]
    assert "reg" in findings[0].message


def test_engine_obs_local_producer_tracked():
    source = (
        "def _engine_obs(policy):\n"
        "    return None\n"
        "def run(policy):\n"
        "    obs = _engine_obs(policy)\n"
        "    obs.epoch_hook()\n"
    )
    assert _lines(source) == [5]


def test_guard_shapes_accepted():
    source = (
        "from repro.obs.runtime import get_context\n"
        "def a():\n"
        "    ctx = get_context()\n"
        "    if ctx is not None:\n"
        "        ctx.flush()\n"
        "def b():\n"
        "    ctx = get_context()\n"
        "    if ctx is None:\n"
        "        return 0\n"
        "    return ctx.value\n"
        "def c():\n"
        "    ctx = get_context()\n"
        "    hook = ctx.hook if ctx is not None else None\n"
        "    return hook\n"
        "def d():\n"
        "    ctx = get_context()\n"
        "    return ctx is not None and ctx.live\n"
        "def e():\n"
        "    ctx = get_context()\n"
        "    if ctx:\n"
        "        ctx.flush()\n"
    )
    assert _lines(source) == []


def test_obs_package_itself_exempt():
    source = (
        "from repro.obs.runtime import get_context\n"
        "def f():\n"
        "    return get_context().flush()\n"
    )
    assert _lines(source, module="repro.obs.export") == []


def test_chained_call_dereference_flagged():
    source = (
        "from repro.obs.runtime import get_events\n"
        "def f():\n"
        "    log = get_events()\n"
        "    log.emit('run_start')\n"
    )
    assert _lines(source) == [4]


def test_else_branch_of_none_check_guarded():
    source = (
        "from repro.obs.runtime import get_context\n"
        "def f():\n"
        "    ctx = get_context()\n"
        "    if ctx is None:\n"
        "        pass\n"
        "    else:\n"
        "        ctx.flush()\n"
    )
    assert _lines(source) == []
