"""SVL003: only picklable objects cross the process-pool boundary."""

from repro.staticcheck.analyzer import check_source

MODULE = "repro.sim.parallel"


def _lines(source, module=MODULE):
    return [
        f.line for f in check_source(source, module=module, select=["SVL003"])
    ]


def test_fixture_hits(fixture_source):
    findings = check_source(
        fixture_source("svl003_picklable.py"),
        module=MODULE,
        select=["SVL003"],
    )
    assert [f.line for f in findings] == [12, 19, 24, 28, 33]
    assert all(f.code == "SVL003" for f in findings)


def test_module_level_callable_passes():
    source = (
        "def _worker(x):\n"
        "    return x\n"
        "def run(pool):\n"
        "    return pool.submit(_worker, 1)\n"
    )
    assert _lines(source) == []


def test_rule_scoped_to_parallel_module():
    source = "def run(pool):\n    return pool.submit(lambda: 1)\n"
    assert _lines(source, module="repro.sim.engine") == []
    assert _lines(source) == [2]


def test_pool_initializer_checked():
    source = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "def build():\n"
        "    return ProcessPoolExecutor(initializer=lambda: None)\n"
    )
    assert _lines(source) == [3]


def test_with_open_handle_flagged():
    source = (
        "def _worker(x):\n"
        "    return x\n"
        "def run(pool, path):\n"
        "    with open(path) as fh:\n"
        "        return pool.submit(_worker, fh)\n"
    )
    assert _lines(source) == [5]
