"""ProjectGraph: symbol table, edge resolution, boundary facts."""

from pathlib import Path

from repro.staticcheck.callgraph import ProjectGraph
from repro.staticcheck.context import ModuleContext, Project


def _ctx(source, module):
    return ModuleContext.from_source(
        source, Path(f"<{module}>"), module=module
    )


def _graph(*pairs):
    return ProjectGraph([_ctx(src, mod) for src, mod in pairs])


def test_symbol_table_indexes_functions_methods_and_nested():
    graph = _graph(
        (
            "def top():\n"
            "    def inner():\n"
            "        pass\n"
            "    return inner\n"
            "class Store:\n"
            "    def put(self, key):\n"
            "        pass\n",
            "repro.demo",
        )
    )
    assert set(graph.functions) == {
        "repro.demo.top",
        "repro.demo.top.inner",
        "repro.demo.Store.put",
    }
    assert graph.function("repro.demo.Store.put").cls == "Store"
    assert graph.function("repro.demo.top").name == "top"


def test_cross_module_edges_resolve_through_imports():
    graph = _graph(
        ("def helper(x):\n    return x\n", "repro.a"),
        (
            "from repro.a import helper\n"
            "def caller():\n"
            "    return helper(1)\n",
            "repro.b",
        ),
    )
    caller = graph.function("repro.b.caller")
    assert [site.callee for site in caller.calls] == ["repro.a.helper"]
    callers = graph.callers_of("repro.a.helper")
    assert [(fn.qualname, call.lineno) for fn, call in callers] == [
        ("repro.b.caller", 3)
    ]


def test_self_method_dispatch_resolves():
    graph = _graph(
        (
            "class Engine:\n"
            "    def run(self):\n"
            "        self.step()\n"
            "    def step(self):\n"
            "        pass\n",
            "repro.demo",
        )
    )
    run = graph.function("repro.demo.Engine.run")
    assert [site.callee for site in run.calls] == ["repro.demo.Engine.step"]


def test_unresolvable_calls_produce_no_edges():
    graph = _graph(
        (
            "def caller(obj):\n"
            "    obj.method()\n"
            "    unknown_name(1)\n",
            "repro.demo",
        )
    )
    assert graph.function("repro.demo.caller").calls == []


def test_pool_facts_propagate_transitively():
    graph = _graph(
        (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def leaf():\n"
            "    pass\n"
            "def worker(task):\n"
            "    leaf()\n"
            "    return task\n"
            "def driver(tasks):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(worker, tasks))\n",
            "repro.demo",
        )
    )
    worker = graph.function("repro.demo.worker")
    leaf = graph.function("repro.demo.leaf")
    driver = graph.function("repro.demo.driver")
    assert worker.pool_entry and worker.runs_in_pool_worker
    assert not leaf.pool_entry and leaf.runs_in_pool_worker
    assert not driver.runs_in_pool_worker
    assert [f.qualname for f in graph.pool_worker_functions()] == [
        "repro.demo.leaf",
        "repro.demo.worker",
    ]


def test_initializer_is_a_pool_entry():
    graph = _graph(
        (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def _init(cfg):\n"
            "    pass\n"
            "def driver():\n"
            "    return ProcessPoolExecutor(initializer=_init)\n",
            "repro.demo",
        )
    )
    assert graph.function("repro.demo._init").pool_entry


def test_thread_facts_propagate():
    graph = _graph(
        (
            "import threading\n"
            "def tick():\n"
            "    poll()\n"
            "def poll():\n"
            "    pass\n"
            "def start():\n"
            "    threading.Thread(target=tick).start()\n",
            "repro.demo",
        )
    )
    assert graph.function("repro.demo.tick").thread_entry
    assert graph.function("repro.demo.poll").reachable_from_thread
    assert not graph.function("repro.demo.start").reachable_from_thread


def test_touches_persisted_path_fact():
    graph = _graph(
        (
            "from pathlib import Path\n"
            "def save(path):\n"
            "    Path(path).write_text('x')\n"
            "def load(path):\n"
            "    return Path(path).read_text()\n",
            "repro.demo",
        )
    )
    assert graph.function("repro.demo.save").touches_persisted_path
    assert not graph.function("repro.demo.load").touches_persisted_path


def test_project_graph_is_lazy_and_cached():
    project = Project([_ctx("def f():\n    pass\n", "repro.demo")])
    graph = project.graph
    assert graph is project.graph  # built once, cached
    assert "repro.demo.f" in graph.functions
