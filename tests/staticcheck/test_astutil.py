"""Import resolution and module naming plumbing."""

import ast
from pathlib import Path

from repro.staticcheck.astutil import ImportMap, module_matches, module_name_for


def _resolve(source, expr):
    tree = ast.parse(source + "\n_probe = " + expr)
    imports = ImportMap(tree, module="repro.sim.engine")
    probe = tree.body[-1].value
    return imports.resolve(probe)


def test_plain_import():
    assert _resolve("import time", "time.time") == "time.time"


def test_aliased_import():
    assert _resolve("import numpy as np", "np.random.rand") == (
        "numpy.random.rand"
    )


def test_from_import_with_alias():
    assert _resolve(
        "from datetime import datetime as dt", "dt.now"
    ) == "datetime.datetime.now"


def test_from_import_submodule():
    assert _resolve(
        "from repro.obs import runtime as obs_runtime",
        "obs_runtime.get_registry",
    ) == "repro.obs.runtime.get_registry"


def test_relative_import_anchored_at_package():
    assert _resolve("from . import serialize", "serialize.save_checkpoint") == (
        "repro.sim.serialize.save_checkpoint"
    )


def test_unimported_root_unresolved():
    assert _resolve("import time", "self.clock") is None
    assert _resolve("import time", "local_var.field") is None


def test_module_name_for_package_file():
    path = Path(__file__).resolve().parents[2] / "src/repro/sim/parallel.py"
    assert module_name_for(path) == "repro.sim.parallel"
    init = Path(__file__).resolve().parents[2] / "src/repro/obs/__init__.py"
    assert module_name_for(init) == "repro.obs"


def test_module_matches_prefix_semantics():
    assert module_matches("repro.sim.engine", ("repro.sim",))
    assert module_matches("repro.sim", ("repro.sim",))
    assert not module_matches("repro.simulator", ("repro.sim",))
