"""Meta-test: every registered rule ships fixtures, docs, and an example.

For each SVL code the contract is:

* at least one positive fixture ``svl{nnn}_*.py`` that fires under the
  rule's declared ``fixture_module`` — and every positive fixture
  fires (a stale fixture that stopped triggering is a silent coverage
  hole);
* at least one negative fixture ``svl{nnn}_*_ok.py`` that stays clean
  under the same module identity;
* a row in the README's static-analysis rules table;
* a non-empty ``--explain`` example that itself trips the rule.
"""

import re
from pathlib import Path

import pytest

from repro.staticcheck.analyzer import check_source
from repro.staticcheck.registry import all_rules

FIXTURES = Path(__file__).parent / "fixtures"
README = Path(__file__).parent.parent.parent / "README.md"

RULES = all_rules()


def _fixture_sets(code):
    stem = f"svl{int(code[3:]):03d}"
    paths = sorted(FIXTURES.glob(f"{stem}_*.py"))
    negatives = [p for p in paths if p.stem.endswith("_ok")]
    positives = [p for p in paths if not p.stem.endswith("_ok")]
    return positives, negatives


@pytest.mark.parametrize("rule", RULES, ids=lambda r: r.meta.code)
def test_rule_has_firing_positive_fixtures(rule):
    positives, _ = _fixture_sets(rule.meta.code)
    assert positives, f"{rule.meta.code} has no positive fixture"
    for path in positives:
        findings = check_source(
            path.read_text(),
            module=rule.meta.fixture_module,
            select=[rule.meta.code],
        )
        assert findings, (
            f"{path.name} no longer triggers {rule.meta.code} under "
            f"module {rule.meta.fixture_module!r}"
        )
        assert all(f.code == rule.meta.code for f in findings)


@pytest.mark.parametrize("rule", RULES, ids=lambda r: r.meta.code)
def test_rule_has_clean_negative_fixtures(rule):
    _, negatives = _fixture_sets(rule.meta.code)
    assert negatives, f"{rule.meta.code} has no negative (_ok) fixture"
    for path in negatives:
        findings = check_source(
            path.read_text(),
            module=rule.meta.fixture_module,
            select=[rule.meta.code],
        )
        assert not findings, (
            f"{path.name} should be clean but raised: "
            + "; ".join(f"L{f.line} {f.message}" for f in findings)
        )


@pytest.mark.parametrize("rule", RULES, ids=lambda r: r.meta.code)
def test_rule_is_documented_in_readme(rule):
    text = README.read_text()
    pattern = rf"^\|[\s`]*{rule.meta.code}\b"
    assert re.search(pattern, text, re.MULTILINE), (
        f"README.md static-analysis table is missing a row for "
        f"{rule.meta.code}"
    )


@pytest.mark.parametrize("rule", RULES, ids=lambda r: r.meta.code)
def test_rule_example_trips_the_rule(rule):
    assert rule.meta.example.strip(), f"{rule.meta.code} has no example"
    findings = check_source(
        rule.meta.example,
        module=rule.meta.fixture_module,
        select=[rule.meta.code],
    )
    assert findings, (
        f"{rule.meta.code}'s --explain example does not trigger the rule"
    )


def test_fixture_files_all_belong_to_a_rule():
    """Every svlNNN_* fixture maps to a registered rule code."""
    codes = {int(r.meta.code[3:]) for r in RULES}
    for path in FIXTURES.glob("svl*.py"):
        number = int(re.match(r"svl(\d+)_", path.name).group(1))
        assert number in codes, f"{path.name} references unknown rule"
