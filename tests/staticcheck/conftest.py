"""Shared helpers for the sievelint test suite."""

from __future__ import annotations

from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def fixture_source():
    """Loader returning the text of a named fixture file."""

    def load(name: str) -> str:
        return (FIXTURES / name).read_text()

    return load
