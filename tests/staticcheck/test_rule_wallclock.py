"""SVL001: wall-clock reads outside repro.obs / the CLI."""

from repro.staticcheck.analyzer import check_source


def _codes(source, module):
    return [
        (f.code, f.line)
        for f in check_source(source, module=module, select=["SVL001"])
    ]


def test_fixture_hits_and_suppression(fixture_source):
    findings = check_source(
        fixture_source("svl001_wallclock.py"),
        module="repro.sim.fixture",
        select=["SVL001"],
    )
    assert [f.line for f in findings] == [8, 12]
    assert all(f.code == "SVL001" for f in findings)
    assert all(f.severity == "error" for f in findings)
    # time.perf_counter (line 16) and the suppressed time.time (line 20)
    # produce nothing.


def test_allowed_in_obs_and_cli():
    source = "import time\nstamp = time.time()\n"
    assert _codes(source, "repro.obs.events") == []
    assert _codes(source, "repro.cli") == []
    assert _codes(source, "repro.sim.engine") == [("SVL001", 2)]


def test_allowed_in_serve(fixture_source):
    """The live serving layer measures real wall time by design."""
    source = fixture_source("svl001_serve_allowed.py")
    assert _codes(source, "repro.serve.bench") == []
    assert _codes(source, "repro.serve") == []
    # The same source outside the allowance still trips the rule, so
    # the fixture genuinely exercises the wall-clock ban.
    assert _codes(source, "repro.sim.engine") == [("SVL001", 5)]


def test_datetime_variants_and_aliases():
    source = (
        "from datetime import datetime as dt\n"
        "import datetime\n"
        "a = dt.now()\n"
        "b = datetime.date.today()\n"
        "c = datetime.datetime.utcnow()\n"
    )
    assert _codes(source, "repro.core.sieve") == [
        ("SVL001", 3),
        ("SVL001", 4),
        ("SVL001", 5),
    ]


def test_perf_counter_is_not_flagged():
    source = "import time\nelapsed = time.perf_counter()\n"
    assert _codes(source, "repro.sim.engine") == []
