"""SVL007: persisted writes must flow through repro.util.atomic."""

from repro.staticcheck.analyzer import check_source


def _lines(source, module="repro.sim.fixture"):
    return [
        f.line for f in check_source(source, module=module, select=["SVL007"])
    ]


def test_fixture_hits(fixture_source):
    findings = check_source(
        fixture_source("svl007_durability.py"),
        module="repro.sim.fixture",
        select=["SVL007"],
    )
    assert [f.line for f in findings] == [11, 15, 16, 20]
    assert all(f.code == "SVL007" for f in findings)
    assert all(f.severity == "error" for f in findings)
    # The append-mode log at the bottom of the fixture never fires.


def test_fixture_ok_is_clean(fixture_source):
    assert _lines(fixture_source("svl007_durability_ok.py")) == []


def test_interprocedural_exemption_requires_atomic_callers(fixture_source):
    """The _ok fixture's helper writes via a bare parameter and stays
    clean only because every resolved caller hands it an
    atomic_write_path temp name.  Re-point one caller at a raw path and
    the helper's write site fires again."""
    source = fixture_source("svl007_durability_ok.py").replace(
        "def republish(path, payload):\n"
        "    with atomic_write_path(path) as tmp:\n"
        "        _write_bare(tmp, payload)",
        "def republish(path, payload):\n"
        "    _write_bare(path, payload)",
    )
    assert _lines(source) == [29]  # _write_bare's write_text


def test_helper_without_callers_is_not_exempt():
    """A parameter write with no resolved caller cannot prove safety."""
    source = (
        "from pathlib import Path\n"
        "def orphan(path, payload):\n"
        "    Path(path).write_text(payload)\n"
    )
    assert _lines(source) == [3]


def test_module_level_write_is_flagged():
    source = (
        "from pathlib import Path\n"
        "Path('state.json').write_text('{}')\n"
    )
    assert _lines(source) == [2]


def test_out_of_scope_module_is_ignored():
    source = (
        "from pathlib import Path\n"
        "def save(path):\n"
        "    Path(path).write_text('x')\n"
    )
    assert _lines(source, module="repro.cli") == []


def test_append_and_exclusive_modes_are_not_writes():
    source = (
        "def log(path, line):\n"
        "    with open(path, 'a') as fh:\n"
        "        fh.write(line)\n"
        "def touch(path):\n"
        "    with open(path, 'x') as fh:\n"
        "        fh.write('')\n"
    )
    assert _lines(source) == []
