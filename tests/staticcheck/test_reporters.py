"""Text and JSON reporter output shapes."""

from repro.staticcheck.analyzer import Report
from repro.staticcheck.findings import Finding
from repro.staticcheck.reporters import (
    REPORT_FORMAT_VERSION,
    render_json,
    render_text,
)


def _report():
    report = Report(files_scanned=3, suppressed=1)
    report.findings = [
        Finding(
            code="SVL001",
            severity="error",
            path="src/a.py",
            line=4,
            col=8,
            message="wall clock",
            module="a",
            symbol="time.time",
        ),
        Finding(
            code="SVL006",
            severity="warning",
            path="src/b.py",
            line=9,
            col=0,
            message="unordered",
            module="b",
            symbol="d.values()",
        ),
    ]
    return report


def test_text_reporter_lines_and_summary():
    text = render_text(_report())
    lines = text.splitlines()
    assert lines[0] == "src/a.py:4:8: SVL001 [error] wall clock"
    assert lines[1] == "src/b.py:9:0: SVL006 [warning] unordered"
    assert "2 findings (1 errors, 1 warnings) in 3 files" in lines[-1]
    assert "1 suppressed inline" in lines[-1]


def test_json_reporter_schema():
    payload = render_json(_report())
    assert payload["version"] == REPORT_FORMAT_VERSION == 2
    assert payload["summary"] == {
        "files_scanned": 3,
        "findings": 2,
        "errors": 1,
        "warnings": 1,
        "suppressed": 1,
        "stale_baseline": 0,
    }
    first = payload["findings"][0]
    assert set(first) == {
        "code",
        "severity",
        "path",
        "line",
        "col",
        "column",
        "end_line",
        "module",
        "message",
        "symbol",
    }
    assert first["code"] == "SVL001"
    # v2: column mirrors col; end_line defaults to line when a rule
    # recorded no span.
    assert first["column"] == first["col"] == 8
    assert first["end_line"] == first["line"] == 4


def test_json_reporter_end_line_span():
    report = Report(files_scanned=1)
    report.findings = [
        Finding(
            code="SVL007",
            severity="error",
            path="src/c.py",
            line=10,
            col=4,
            message="torn write",
            module="c",
            symbol="save",
            end_line=14,
        )
    ]
    payload = render_json(report)
    assert payload["findings"][0]["end_line"] == 14


def test_json_reporter_orders_findings_deterministically():
    report = _report()
    # Deliberately shuffled: same file ordered by line/col/code, then
    # by path — render_json must not trust caller order.
    report.findings = list(reversed(report.findings)) + [
        Finding(
            code="SVL002",
            severity="error",
            path="src/a.py",
            line=4,
            col=8,
            message="rng",
            module="a",
            symbol="random.random",
        )
    ]
    payload = render_json(report)
    keys = [
        (f["path"], f["line"], f["column"], f["code"])
        for f in payload["findings"]
    ]
    assert keys == sorted(keys)


def test_stale_baseline_rendered():
    report = _report()
    report.findings = []
    report.stale_baseline = ["a::SVL001::time.time"]
    text = render_text(report, stale_hint="regenerate")
    assert "stale baseline entry" in text
    assert "regenerate" in text
    payload = render_json(report)
    assert payload["stale_baseline"] == ["a::SVL001::time.time"]
