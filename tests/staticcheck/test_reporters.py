"""Text and JSON reporter output shapes."""

from repro.staticcheck.analyzer import Report
from repro.staticcheck.findings import Finding
from repro.staticcheck.reporters import render_json, render_text


def _report():
    report = Report(files_scanned=3, suppressed=1)
    report.findings = [
        Finding(
            code="SVL001",
            severity="error",
            path="src/a.py",
            line=4,
            col=8,
            message="wall clock",
            module="a",
            symbol="time.time",
        ),
        Finding(
            code="SVL006",
            severity="warning",
            path="src/b.py",
            line=9,
            col=0,
            message="unordered",
            module="b",
            symbol="d.values()",
        ),
    ]
    return report


def test_text_reporter_lines_and_summary():
    text = render_text(_report())
    lines = text.splitlines()
    assert lines[0] == "src/a.py:4:8: SVL001 [error] wall clock"
    assert lines[1] == "src/b.py:9:0: SVL006 [warning] unordered"
    assert "2 findings (1 errors, 1 warnings) in 3 files" in lines[-1]
    assert "1 suppressed inline" in lines[-1]


def test_json_reporter_schema():
    payload = render_json(_report())
    assert payload["version"] == 1
    assert payload["summary"] == {
        "files_scanned": 3,
        "findings": 2,
        "errors": 1,
        "warnings": 1,
        "suppressed": 1,
        "stale_baseline": 0,
    }
    first = payload["findings"][0]
    assert set(first) == {
        "code",
        "severity",
        "path",
        "line",
        "col",
        "module",
        "message",
        "symbol",
    }
    assert first["code"] == "SVL001"


def test_stale_baseline_rendered():
    report = _report()
    report.findings = []
    report.stale_baseline = ["a::SVL001::time.time"]
    text = render_text(report, stale_hint="regenerate")
    assert "stale baseline entry" in text
    assert "regenerate" in text
    payload = render_json(report)
    assert payload["stale_baseline"] == ["a::SVL001::time.time"]
