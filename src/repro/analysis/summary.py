"""Trace summarization: the "what am I looking at" report.

Produces the inventory-style statistics the paper's Table 1 and
Section 2 open with — per-server traffic, read/write mix, request
sizes, alignment — for any :class:`~repro.traces.model.Trace`
(synthetic or loaded from MSR CSV).  Used by the CLI's ``summarize``
command and handy when validating a newly imported trace.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

from repro.traces.model import Trace
from repro.util.intervals import SECONDS_PER_DAY
from repro.util.units import BLOCK_BYTES, GIB


@dataclass
class ServerTraffic:
    """Per-server traffic totals."""

    server_id: int
    requests: int = 0
    blocks: int = 0
    read_blocks: int = 0

    @property
    def read_fraction(self) -> float:
        """Read share of this server's block traffic."""
        return self.read_blocks / self.blocks if self.blocks else 0.0


@dataclass
class TraceSummary:
    """Aggregate statistics of one trace."""

    requests: int
    block_accesses: int
    bytes_accessed: int
    days: int
    servers: List[ServerTraffic]
    read_fraction: float
    aligned_fraction: float
    request_size_blocks_mean: float
    request_size_histogram: Dict[str, int]

    @property
    def accesses_per_request(self) -> float:
        """Mean 512-byte blocks touched per request."""
        return self.block_accesses / self.requests if self.requests else 0.0

    @property
    def daily_bytes_gb(self) -> float:
        """Mean bytes moved per active day, in GiB."""
        if self.days == 0:
            return 0.0
        return self.bytes_accessed / GIB / self.days


_SIZE_BUCKETS = ((1, "<=1"), (4, "2-4"), (8, "5-8"), (16, "9-16"),
                 (64, "17-64"), (float("inf"), ">64"))


def _size_bucket(blocks: int) -> str:
    for bound, label in _SIZE_BUCKETS:
        if blocks <= bound:
            return label
    raise AssertionError("unreachable")


def summarize_trace(trace: Trace) -> TraceSummary:
    """Compute a :class:`TraceSummary` in one pass over the trace."""
    per_server: Dict[int, ServerTraffic] = {}
    read_blocks = 0
    aligned = 0
    total_blocks = 0
    histogram: Counter = Counter()
    last_time = 0.0
    for request in trace:
        traffic = per_server.setdefault(
            request.server_id, ServerTraffic(server_id=request.server_id)
        )
        traffic.requests += 1
        traffic.blocks += request.block_count
        total_blocks += request.block_count
        if request.is_read:
            traffic.read_blocks += request.block_count
            read_blocks += request.block_count
        if request.aligned_4k:
            aligned += 1
        histogram[_size_bucket(request.block_count)] += 1
        last_time = max(last_time, request.issue_time)

    n = len(trace)
    return TraceSummary(
        requests=n,
        block_accesses=total_blocks,
        bytes_accessed=total_blocks * BLOCK_BYTES,
        days=int(last_time // SECONDS_PER_DAY) + 1 if n else 0,
        servers=sorted(per_server.values(), key=lambda s: s.server_id),
        read_fraction=read_blocks / total_blocks if total_blocks else 0.0,
        aligned_fraction=aligned / n if n else 0.0,
        request_size_blocks_mean=total_blocks / n if n else 0.0,
        request_size_histogram=dict(histogram),
    )


def summary_rows(summary: TraceSummary) -> List[list]:
    """Per-server rows for the report renderer."""
    return [
        [
            s.server_id,
            s.requests,
            s.blocks,
            round(s.blocks / max(1, summary.block_accesses), 3),
            round(s.read_fraction, 2),
        ]
        for s in summary.servers
    ]
