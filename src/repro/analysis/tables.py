"""Analytical models behind the paper's Table 2 (and the MIN bound).

Table 2 isolates the cost of allocation-writes with a thought
experiment: assume an oracle replacement policy keeps the top-1% blocks
always resident (fixing the hit ratio at 35% with a 3:1 read:write
split), then count the SSD operations each *allocation* policy incurs:

==========================  =========  ===============  =============
Policy                      Alloc.-wr  SSD write ops    SSD ops total
==========================  =========  ===============  =============
Allocate-on-demand (AOD)    65%        73.75%           100%
Write-no-allocate (WMNA)    48.75%     57.5%            83.75%*
Ideal-selective (ISA)       ~0 (eps)   <9.75%           <44.75%*
==========================  =========  ===============  =============

(*the paper's table reports the write column; totals follow from
read hits 26.25% + write column.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class AllocationPolicyRow:
    """One row of Table 2, all values as fractions of total accesses."""

    policy: str
    hits: float
    misses: float
    allocation_writes: float
    read_hits: float
    write_hits: float

    @property
    def ssd_writes(self) -> float:
        """Write hits + allocation-writes (the slow operations)."""
        return self.write_hits + self.allocation_writes

    @property
    def ssd_operations(self) -> float:
        """All SSD operations: hits + allocation-writes."""
        return self.hits + self.allocation_writes


def table2_rows(
    hit_rate: float = 0.35,
    read_fraction: float = 0.75,
    ideal_allocation_fraction: float = 0.0,
) -> List[AllocationPolicyRow]:
    """Reproduce Table 2 for a given hit rate and read:write mix.

    Args:
        hit_rate: assumed hit ratio under oracle retention (paper: 35%,
            "the approximate average hit-rate for the ideal-allocation
            scheme over all eight calendar days").
        read_fraction: fraction of accesses that are reads, in both hits
            and misses (paper: 3:1, i.e. 0.75).
        ideal_allocation_fraction: allocation-writes of the ideal
            selective policy as a fraction of accesses — the paper's
            epsilon, ~1% of *unique blocks*, far below 1% of accesses.
    """
    if not 0 <= hit_rate <= 1:
        raise ValueError(f"hit_rate must be in [0, 1], got {hit_rate}")
    if not 0 <= read_fraction <= 1:
        raise ValueError(f"read_fraction must be in [0, 1], got {read_fraction}")
    miss_rate = 1.0 - hit_rate
    read_hits = hit_rate * read_fraction
    write_hits = hit_rate * (1.0 - read_fraction)
    read_misses = miss_rate * read_fraction

    return [
        AllocationPolicyRow(
            policy="aod",
            hits=hit_rate,
            misses=miss_rate,
            allocation_writes=miss_rate,  # every miss allocates
            read_hits=read_hits,
            write_hits=write_hits,
        ),
        AllocationPolicyRow(
            policy="wmna",
            hits=hit_rate,
            misses=miss_rate,
            allocation_writes=read_misses,  # only read misses allocate
            read_hits=read_hits,
            write_hits=write_hits,
        ),
        AllocationPolicyRow(
            policy="isa",
            hits=hit_rate,
            misses=miss_rate,
            allocation_writes=ideal_allocation_fraction,
            read_hits=read_hits,
            write_hits=write_hits,
        ),
    ]


def ssd_write_amplification(row: AllocationPolicyRow, baseline_hits: float = 0.35) -> float:
    """SSD-operation inflation relative to hits-only service.

    The paper notes AOD raises SSD operations from 35% (hits only) to
    100% of accesses; this returns that ratio for any row.
    """
    if baseline_hits <= 0:
        raise ValueError("baseline_hits must be positive")
    return row.ssd_operations / baseline_hits
