"""Popularity-skew characterization (the paper's Figure 2).

Figure 2(a) bins each day's blocks into 10,000 equal-population bins by
descending access count and plots each bin's mean count against its
percentile rank; 2(b) plots the cumulative access share against
percentile; 2(c) zooms the CDF into the top 5%.  These are the analyses
behind observation O1.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

#: The paper's bin count: each bin holds 0.01% of the day's blocks.
PAPER_BINS = 10_000


@dataclass(frozen=True)
class SkewProfile:
    """Binned popularity profile of one day (or any block-count table).

    Attributes:
        percentiles: upper percentile rank of each bin (0.01 .. 100).
        mean_counts: mean access count of blocks in each bin.
        cumulative_share: fraction of all accesses captured by this bin
            and all more-popular bins (Figure 2(b)'s Y value).
        unique_blocks: number of distinct blocks.
        total_accesses: total accesses.
    """

    percentiles: Tuple[float, ...]
    mean_counts: Tuple[float, ...]
    cumulative_share: Tuple[float, ...]
    unique_blocks: int
    total_accesses: int

    def share_of_top(self, fraction: float) -> float:
        """Cumulative access share of the top ``fraction`` of blocks.

        Interpolates between bins; ``fraction`` is e.g. 0.01 for the top
        1%.
        """
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if not self.percentiles:
            return 0.0
        target = fraction * 100.0
        return float(
            np.interp(target, self.percentiles, self.cumulative_share)
        )

    def count_at_percentile(self, percentile: float) -> float:
        """Mean per-block access count of the bin at a percentile rank."""
        if not self.percentiles:
            return 0.0
        return float(np.interp(percentile, self.percentiles, self.mean_counts))


def skew_profile(counts: Counter, bins: int = PAPER_BINS) -> SkewProfile:
    """Bin a block->count table into a :class:`SkewProfile`.

    Blocks are sorted by descending count and split into ``bins``
    equal-population bins (the last bin absorbs the remainder).  With
    fewer blocks than bins, each block gets its own bin.
    """
    if bins <= 0:
        raise ValueError(f"bins must be positive, got {bins}")
    values = np.sort(np.fromiter(counts.values(), dtype=np.int64))[::-1]
    n = len(values)
    if n == 0:
        return SkewProfile((), (), (), 0, 0)
    total = int(values.sum())
    effective_bins = min(bins, n)
    edges = np.linspace(0, n, effective_bins + 1).astype(np.int64)
    cumsum = np.concatenate([[0], np.cumsum(values)])
    mean_counts = []
    cumulative = []
    percentiles = []
    for i in range(effective_bins):
        lo, hi = int(edges[i]), int(edges[i + 1])
        if hi <= lo:
            continue
        mean_counts.append((cumsum[hi] - cumsum[lo]) / (hi - lo))
        cumulative.append(cumsum[hi] / total)
        percentiles.append(hi / n * 100.0)
    return SkewProfile(
        percentiles=tuple(percentiles),
        mean_counts=tuple(mean_counts),
        cumulative_share=tuple(cumulative),
        unique_blocks=n,
        total_accesses=total,
    )


def daily_skew_profiles(
    daily_counts: Sequence[Counter], bins: int = PAPER_BINS
) -> List[SkewProfile]:
    """Figure 2's per-day profiles for a whole trace."""
    return [skew_profile(counts, bins=bins) for counts in daily_counts]


def access_count_quantiles(counts: Counter) -> dict:
    """O1's headline statistics for one day's counts.

    Returns the fractions of blocks with <=4 and <=10 accesses, the
    fraction accessed exactly once, and the top-1% access share — the
    numbers the paper quotes in Section 2.
    """
    values = np.fromiter(counts.values(), dtype=np.int64)
    if len(values) == 0:
        return {
            "blocks": 0,
            "accesses": 0,
            "fraction_le_4": 0.0,
            "fraction_le_10": 0.0,
            "fraction_single": 0.0,
            "top1_share": 0.0,
        }
    total = int(values.sum())
    top = np.sort(values)[::-1][: max(1, len(values) // 100)]
    return {
        "blocks": int(len(values)),
        "accesses": total,
        "fraction_le_4": float((values <= 4).mean()),
        "fraction_le_10": float((values <= 10).mean()),
        "fraction_single": float((values == 1).mean()),
        "top1_share": float(top.sum() / total),
    }
