"""Trace analyses behind the paper's tables and figures.

* :mod:`~repro.analysis.skew` — Figure 2 (popularity skew, O1).
* :mod:`~repro.analysis.variation` — Figure 3 (skew variation, O2).
* :mod:`~repro.analysis.tables` — Table 2 (allocation-policy impact).
* :mod:`~repro.analysis.report` — plain-text table/series renderers.
"""

from repro.analysis.skew import (
    PAPER_BINS,
    SkewProfile,
    access_count_quantiles,
    daily_skew_profiles,
    skew_profile,
)
from repro.analysis.variation import (
    composition_variation,
    cumulative_access_curve,
    gini_coefficient,
    server_day_gini,
    top_set_server_composition,
    volume_gini,
)
from repro.analysis.tables import (
    AllocationPolicyRow,
    ssd_write_amplification,
    table2_rows,
)
from repro.analysis.summary import (
    ServerTraffic,
    TraceSummary,
    summarize_trace,
    summary_rows,
)
from repro.analysis.report import (
    format_ratio,
    render_histogram_line,
    render_series,
    render_table,
)

__all__ = [
    "PAPER_BINS",
    "SkewProfile",
    "access_count_quantiles",
    "daily_skew_profiles",
    "skew_profile",
    "composition_variation",
    "cumulative_access_curve",
    "gini_coefficient",
    "server_day_gini",
    "top_set_server_composition",
    "volume_gini",
    "AllocationPolicyRow",
    "ssd_write_amplification",
    "table2_rows",
    "ServerTraffic",
    "TraceSummary",
    "summarize_trace",
    "summary_rows",
    "format_ratio",
    "render_histogram_line",
    "render_series",
    "render_table",
]
