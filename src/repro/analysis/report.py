"""Plain-text renderers for the reproduced tables and figure series.

Every benchmark prints through these helpers so the reproduction's
output is greppable and diffable (no plotting dependencies).  Numbers
are the data behind the paper's figures; the renderers label them with
the corresponding table/figure ids.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as a fixed-width ASCII table."""
    formatted: List[List[str]] = []
    for row in rows:
        formatted.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in formatted))
        if formatted
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Sequence[float]],
    x_label: str = "day",
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render named per-day series as rows of a table (figure data)."""
    names = list(series)
    length = max((len(v) for v in series.values()), default=0)
    headers = [x_label] + names
    rows = []
    for x in range(length):
        row: List = [x]
        for name in names:
            values = series[name]
            row.append(float(values[x]) if x < len(values) else float("nan"))
        rows.append(row)
    return render_table(headers, rows, title=title, float_format=float_format)


def render_histogram_line(
    values: Sequence[float],
    width: int = 60,
    label_format: str = "{:.2f}",
) -> str:
    """A one-line unicode sparkline for quick visual shape checks."""
    if not values:
        return "(empty)"
    blocks = " ▁▂▃▄▅▆▇█"
    peak = max(values) or 1.0
    step = max(1, len(values) // width)
    sampled = [max(values[i : i + step]) for i in range(0, len(values), step)]
    chars = "".join(blocks[min(8, int(v / peak * 8))] for v in sampled)
    return f"{chars}  (max={label_format.format(peak)})"


def format_ratio(value: float, reference: float) -> str:
    """'x / y (z%)' comparison string used in bench output."""
    if reference == 0:
        return f"{value:.3f} / 0 (n/a)"
    return f"{value:.3f} / {reference:.3f} ({value / reference * 100:.0f}%)"
