"""Popularity-skew *variation* analyses (the paper's Figure 3).

Figure 3 shows that skew varies (a) server-to-server, (b)
volume-to-volume inside a server, (c) day-to-day for one server, and
(d) that the server composition of the ensemble's top-1% block set
shifts over the week — observation O2, the case for ensemble-level
(rather than per-server) caching.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence

import numpy as np

from repro.core.ideal import top_fraction_blocks
from repro.traces.model import Trace, server_of_address


def cumulative_access_curve(counts: Counter, points: int = 100) -> List[dict]:
    """Normalized cumulative-access curve for one block-count table.

    Returns ``points`` samples of (block_fraction, access_fraction) with
    blocks ordered by descending count — the axes of Figures 3(a)-(c).
    A strongly skewed workload bows toward the top-left; a skew-free one
    follows the diagonal.
    """
    if points <= 0:
        raise ValueError(f"points must be positive, got {points}")
    values = np.sort(np.fromiter(counts.values(), dtype=np.int64))[::-1]
    if len(values) == 0:
        return []
    total = values.sum()
    cumsum = np.cumsum(values)
    indices = np.unique(
        np.clip((np.linspace(0, 1, points + 1)[1:] * len(values)).astype(int), 1, len(values))
    )
    return [
        {
            "block_fraction": int(i) / len(values),
            "access_fraction": float(cumsum[i - 1] / total),
        }
        for i in indices
    ]


def gini_coefficient(counts: Counter) -> float:
    """Gini coefficient of the access-count distribution.

    A scalar skew summary: 0 means every block is equally accessed
    (Src1-like), values near 1 mean a few blocks absorb nearly all
    accesses (Prxy-like).  Used to *quantify* Figure 3's visual
    contrasts in the benches.
    """
    values = np.sort(np.fromiter(counts.values(), dtype=np.float64))
    n = len(values)
    if n == 0:
        return 0.0
    total = values.sum()
    if total == 0:
        return 0.0
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * values).sum()) / (n * total) - (n + 1) / n)


def server_day_gini(
    trace: Trace, days: int
) -> Dict[int, List[float]]:
    """Per-server, per-day Gini coefficients (Figures 3(a) and 3(c))."""
    from repro.traces.streams import per_server_daily_counts

    result: Dict[int, List[float]] = {}
    for server_id, counters in per_server_daily_counts(trace, days).items():
        result[server_id] = [gini_coefficient(c) for c in counters]
    return result


def volume_gini(trace: Trace, server_id: int, days: int) -> Dict[int, float]:
    """Whole-trace Gini per volume of one server (Figure 3(b))."""
    counters: Dict[int, Counter] = {}
    for request in trace:
        if request.server_id != server_id:
            continue
        counter = counters.setdefault(request.volume_id, Counter())
        base = next(request.addresses())
        for i in range(request.block_count):
            counter[base + i] += 1
    return {vol: gini_coefficient(c) for vol, c in counters.items()}


def top_set_server_composition(
    daily_counts: Sequence[Counter], fraction: float = 0.01
) -> List[Dict[int, float]]:
    """Figure 3(d): per-day share of the ensemble top-``fraction`` block
    set contributed by each server.

    Returns, for each day, a mapping server_id -> fraction of the top
    set's blocks owned by that server (fractions sum to 1 for non-empty
    days).
    """
    composition: List[Dict[int, float]] = []
    for counts in daily_counts:
        top = top_fraction_blocks(counts, fraction)
        per_server: Counter = Counter()
        for address in top:
            per_server[server_of_address(address)] += 1
        total = sum(per_server.values())
        composition.append(
            {server: n / total for server, n in sorted(per_server.items())}
            if total
            else {}
        )
    return composition


def composition_variation(composition: Sequence[Dict[int, float]]) -> float:
    """Mean total-variation distance between successive days' compositions.

    Quantifies Figure 3(d)'s time variation: 0 means the same server mix
    every day; 1 means complete turnover.
    """
    distances = []
    for previous, current in zip(composition, composition[1:]):
        if not previous or not current:
            continue
        servers = set(previous) | set(current)
        distances.append(
            0.5 * sum(abs(previous.get(s, 0.0) - current.get(s, 0.0)) for s in servers)
        )
    return float(np.mean(distances)) if distances else 0.0
