"""SieveStore reproduction: a highly-selective, ensemble-level disk cache.

Reproduces Pritchett & Thottethodi, *SieveStore: A Highly-Selective,
Ensemble-level Disk Cache for Cost-Performance* (ISCA 2010), as a
self-contained Python library:

* :mod:`repro.traces` — block-trace model and a synthetic 13-server
  ensemble workload calibrated to the paper's published trace
  characteristics (observations O1/O2);
* :mod:`repro.cache` — the fully-associative block-cache substrate with
  pluggable allocation (who gets in) and replacement (who gets out);
* :mod:`repro.core` — the contribution: SieveStore-D (discrete,
  access-count batch allocation), SieveStore-C (continuous two-tier
  IMCT/MCT lazy allocation), ideal/random sieves, Belady analysis, and
  the deployable appliance composition;
* :mod:`repro.offline` — SieveStore-D's hash-partitioned log +
  map-reduce metastate pipeline;
* :mod:`repro.ssd` — the Intel X25-E device model, per-minute drive
  occupancy costing, and endurance analysis;
* :mod:`repro.ensemble` — per-server caching baselines and network
  feasibility (the quadrant comparison);
* :mod:`repro.sim` — the trace-driven simulation engine and experiment
  registry;
* :mod:`repro.analysis` — skew/variation analyses and report rendering.

Quick start::

    from repro import quick_simulation

    result = quick_simulation("sievestore-c")
    print(result.daily_capture())

See ``examples/`` for full scenarios and ``benchmarks/`` for the
regeneration of every table and figure in the paper's evaluation.
"""

from repro.cache import BlockCache
from repro.core import (
    SieveStoreAppliance,
    SieveStoreC,
    SieveStoreCConfig,
    SieveStoreD,
    SieveStoreDConfig,
)
from repro.sim import context_for_trace, run_policy, simulate
from repro.traces import (
    EnsembleTraceGenerator,
    SyntheticTraceConfig,
    Trace,
    generate_ensemble_trace,
    small_config,
    tiny_config,
)

__version__ = "1.0.0"


def quick_simulation(policy_name: str = "sievestore-c", scale: float = 1.5e-5):
    """One-call demo: synthesize a scaled ensemble trace and run a policy.

    Args:
        policy_name: any configuration key from
            :data:`repro.sim.experiment.FIGURE5_POLICIES`.
        scale: linear workload scale (see
            :class:`repro.traces.SyntheticTraceConfig`).

    Returns:
        a :class:`repro.sim.SimulationResult`.
    """
    config = SyntheticTraceConfig(scale=scale)
    trace = EnsembleTraceGenerator(config).generate()
    ctx = context_for_trace(trace, days=config.days, scale=scale)
    return run_policy(policy_name, ctx, track_minutes=False)


__all__ = [
    "BlockCache",
    "SieveStoreAppliance",
    "SieveStoreC",
    "SieveStoreCConfig",
    "SieveStoreD",
    "SieveStoreDConfig",
    "context_for_trace",
    "run_policy",
    "simulate",
    "EnsembleTraceGenerator",
    "SyntheticTraceConfig",
    "Trace",
    "generate_ensemble_trace",
    "small_config",
    "tiny_config",
    "quick_simulation",
    "__version__",
]
