"""Ensemble topology: servers, volumes, and where the cache sits.

Models the deployment picture of the paper's Figure 4: a set of servers
whose block traffic flows through a single SieveStore appliance to the
backing storage ensemble.  The topology object mostly answers sizing
questions (how big is each server's share of traffic, what would a
per-server partitioning look like) for the Section 5.3 comparison.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.traces.model import server_of_address
from repro.traces.servers import ServerProfile


@dataclass
class EnsembleTopology:
    """The servers behind one SieveStore appliance."""

    servers: List[ServerProfile]

    @property
    def server_ids(self) -> List[int]:
        """Ids of all servers behind the appliance."""
        return [s.server_id for s in self.servers]

    @property
    def total_capacity_gb(self) -> float:
        """Total backing-storage capacity of the ensemble (GB)."""
        return sum(s.size_gb for s in self.servers)

    @property
    def total_volumes(self) -> int:
        """Total volume count across all servers."""
        return sum(s.volume_count for s in self.servers)

    def server(self, server_id: int) -> ServerProfile:
        """Look up one server's profile by id."""
        for profile in self.servers:
            if profile.server_id == server_id:
                return profile
        raise KeyError(f"no server with id {server_id}")


def per_server_daily_counts_from_ensemble(
    daily_counts: Sequence[Counter],
) -> Dict[int, List[Counter]]:
    """Split ensemble per-day block counts into per-server tables.

    Works from the packed global addresses, so it can run on the same
    ``daily_counts`` the experiment context already computed (no second
    pass over the trace).
    """
    result: Dict[int, List[Counter]] = {}
    days = len(daily_counts)
    for day, counts in enumerate(daily_counts):
        for address, count in counts.items():
            server = server_of_address(address)
            if server not in result:
                result[server] = [Counter() for _ in range(days)]
            result[server][day][address] = count
    return result


def daily_unique_blocks_by_server(
    daily_counts: Sequence[Counter],
) -> Dict[int, List[int]]:
    """Per-server, per-day unique block counts (per-server sizing input)."""
    per_server = per_server_daily_counts_from_ensemble(daily_counts)
    return {
        server: [len(c) for c in counters]
        for server, counters in per_server.items()
    }
