"""Network feasibility arithmetic for the SieveStore node (Section 3.3).

The paper's worst-case analysis: a reasonably configured appliance with
four Gigabit Ethernet links offers ~500 MB/s; even the SSD's maximum
access throughput (250 MB/s of 100%-sequential reads) is only ~50% of
that, and real SSD load is far lower.  Allocation traffic (copies of
newly-admitted blocks) is negligible because sieving admits so few
blocks.  This module packages that arithmetic so the bench can evaluate
it against measured simulation traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.stats import CacheStats
from repro.ssd.device import SSDModel
from repro.util.units import IO_UNIT_BYTES

#: Bytes per second of one Gigabit Ethernet link (decimal gigabit).
GBE_BYTES_PER_SECOND = 125_000_000.0


@dataclass(frozen=True)
class NetworkBudget:
    """Link budget of the appliance node."""

    links: int = 4
    link_bytes_per_second: float = GBE_BYTES_PER_SECOND

    @property
    def total_bytes_per_second(self) -> float:
        """Aggregate bandwidth across the node's links."""
        return self.links * self.link_bytes_per_second

    def utilization(self, bytes_per_second: float) -> float:
        """Fraction of the node's aggregate link bandwidth used."""
        if bytes_per_second < 0:
            raise ValueError("bytes_per_second must be non-negative")
        return bytes_per_second / self.total_bytes_per_second


@dataclass(frozen=True)
class NetworkReport:
    """Worst-case and measured network utilization of the appliance."""

    ssd_peak_utilization: float
    measured_peak_utilization: float
    write_share_of_traffic: float


def worst_case_ssd_utilization(
    device: SSDModel, budget: NetworkBudget
) -> float:
    """The paper's worst case: SSD streaming sequential reads flat out."""
    return budget.utilization(device.seq_read_mbps * 1e6)


def network_report(
    stats: CacheStats,
    device: SSDModel,
    budget: NetworkBudget = NetworkBudget(),
    device_scale: float = 1.0,
) -> NetworkReport:
    """Evaluate the Section 3.3 argument against measured traffic.

    Hit traffic serves blocks over the network; allocation traffic
    copies admitted blocks in.  Per-minute 4-KB unit counts from the
    simulation are converted to bytes/s; ``device_scale`` maps a scaled
    workload back to full-scale bandwidth for comparison against the
    (full-scale) link budget.
    """
    if device_scale <= 0:
        raise ValueError("device_scale must be positive")
    peak_units = 0
    total_units = 0
    total_write_units = 0
    for _minute, io in stats.minute_series():
        units = io.reads + io.writes
        peak_units = max(peak_units, units)
        total_units += units
        total_write_units += io.writes
    peak_bytes_per_second = peak_units * IO_UNIT_BYTES / 60.0 / device_scale
    return NetworkReport(
        ssd_peak_utilization=worst_case_ssd_utilization(device, budget),
        measured_peak_utilization=budget.utilization(peak_bytes_per_second),
        write_share_of_traffic=(
            total_write_units / total_units if total_units else 0.0
        ),
    )
