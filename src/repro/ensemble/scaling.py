"""Multi-appliance scaling (the paper's Section 7 "scaling" question).

One SieveStore node covers 13 servers comfortably; what happens when
the ensemble outgrows a single appliance?  This module evaluates the
natural scale-out: partition the servers across K appliances, each with
1/K of the total cache capacity.

The interesting trade-off is the mirror image of Section 5.3's
per-server argument: partitioning *reduces* sharing (each node can only
follow the hot sets of its own servers), so capture degrades as K
grows — gracefully while each partition still aggregates several
servers, sharply as K approaches the per-server limit (K = 13 *is*
quadrant III).  Meanwhile per-node IOPS load drops ~linearly, which is
what buys headroom.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.ideal import top_fraction_blocks
from repro.traces.model import server_of_address


def partition_servers(server_ids: Sequence[int], nodes: int) -> List[List[int]]:
    """Spread servers across appliances round-robin.

    Round-robin (rather than contiguous ranges) keeps each node's
    traffic mix diverse, which is what lets intra-node sharing keep
    working.
    """
    if nodes <= 0:
        raise ValueError(f"nodes must be positive, got {nodes}")
    if nodes > len(server_ids):
        raise ValueError(
            f"cannot spread {len(server_ids)} servers over {nodes} nodes"
        )
    partitions: List[List[int]] = [[] for _ in range(nodes)]
    for index, server in enumerate(sorted(server_ids)):
        partitions[index % nodes].append(server)
    return partitions


def partitioned_ideal_shares(
    daily_counts: Sequence[Counter],
    partitions: Sequence[Sequence[int]],
    fraction: float = 0.01,
) -> List[float]:
    """Daily ideal capture of a partitioned deployment.

    Each node holds the top ``fraction`` of the blocks accessed *in its
    partition* each day (the day-by-day ideal, i.e. the most generous
    version of each node).  With one partition this is exactly the
    ensemble ideal; with one partition per server it is the Section 5.3
    per-server baseline.
    """
    node_of_server: Dict[int, int] = {}
    for node, servers in enumerate(partitions):
        for server in servers:
            node_of_server[server] = node

    shares: List[float] = []
    for counts in daily_counts:
        total = sum(counts.values())
        if total == 0:
            shares.append(0.0)
            continue
        per_node: List[Counter] = [Counter() for _ in partitions]
        for address, count in counts.items():
            node = node_of_server.get(server_of_address(address))
            if node is not None:
                per_node[node][address] = count
        captured = 0
        for node_counts in per_node:
            for address in top_fraction_blocks(node_counts, fraction):
                captured += node_counts[address]
        shares.append(captured / total)
    return shares


@dataclass(frozen=True)
class ScalingPoint:
    """Capture/load profile of one K-appliance configuration."""

    nodes: int
    mean_capture: float
    #: capture relative to the single-appliance (fully shared) ideal
    capture_retention: float
    #: mean share of ensemble accesses the busiest node serves
    peak_node_traffic_share: float


def scaling_profile(
    daily_counts: Sequence[Counter],
    server_ids: Sequence[int],
    node_counts: Sequence[int] = (1, 2, 4, 13),
    fraction: float = 0.01,
) -> List[ScalingPoint]:
    """Evaluate ideal capture and load spread across appliance counts."""
    baseline_shares = partitioned_ideal_shares(
        daily_counts, [list(server_ids)], fraction
    )
    baseline = sum(baseline_shares) / len(baseline_shares) if baseline_shares else 0.0

    profile: List[ScalingPoint] = []
    for nodes in node_counts:
        partitions = partition_servers(server_ids, nodes)
        shares = partitioned_ideal_shares(daily_counts, partitions, fraction)
        mean_share = sum(shares) / len(shares) if shares else 0.0

        # Traffic split: how much of the ensemble's accesses each node
        # fields (the busiest node bounds per-node IOPS needs).
        node_of_server = {
            server: node
            for node, servers in enumerate(partitions)
            for server in servers
        }
        peak_shares = []
        for counts in daily_counts:
            total = sum(counts.values())
            if total == 0:
                continue
            per_node = [0] * nodes
            for address, count in counts.items():
                node = node_of_server.get(server_of_address(address))
                if node is not None:
                    per_node[node] += count
            peak_shares.append(max(per_node) / total)
        profile.append(
            ScalingPoint(
                nodes=nodes,
                mean_capture=mean_share,
                capture_retention=mean_share / baseline if baseline else 0.0,
                peak_node_traffic_share=(
                    sum(peak_shares) / len(peak_shares) if peak_shares else 0.0
                ),
            )
        )
    return profile
