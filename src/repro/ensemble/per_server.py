"""Per-server caching baselines (quadrants III/IV; paper Section 5.3).

The paper strengthens the case for ensemble-level caching by comparing
SieveStore against *ideal* per-server configurations:

* **Iso-capacity (elastic)**: assume SSD capacity is arbitrarily
  divisible at constant cost-per-byte, and give each server a private
  cache holding exactly the top 1% of its own accessed blocks each day.
  Total capacity (and, by the elasticity assumption, cost) matches the
  ensemble cache.  Because a statically partitioned cache cannot move
  capacity toward whichever server is hot today (O2), it captures fewer
  accesses than the shared ensemble cache.

* **Whole-drive**: real SSDs come in discrete sizes, so per-server
  deployment needs at least one physical drive per server — 13 drives
  for the paper's ensemble versus SieveStore's 1-2 — a strictly worse
  cost point for no more capture.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.ideal import top_fraction_blocks
from repro.ensemble.topology import per_server_daily_counts_from_ensemble


@dataclass(frozen=True)
class CaptureComparison:
    """Daily capture of ensemble-ideal vs per-server-ideal caching."""

    ensemble_shares: List[float]
    per_server_shares: List[float]

    @property
    def mean_ensemble(self) -> float:
        """Mean daily capture of the shared ensemble cache."""
        return sum(self.ensemble_shares) / len(self.ensemble_shares)

    @property
    def mean_per_server(self) -> float:
        """Mean daily capture of the per-server configuration."""
        return sum(self.per_server_shares) / len(self.per_server_shares)

    @property
    def ensemble_advantage(self) -> float:
        """Relative capture advantage of ensemble-level caching."""
        if self.mean_per_server == 0:
            return float("inf")
        return self.mean_ensemble / self.mean_per_server - 1.0


def per_server_ideal_shares(
    daily_counts: Sequence[Counter], fraction: float = 0.01
) -> List[float]:
    """Daily capture of the iso-capacity per-server ideal configuration.

    Each server caches the top ``fraction`` of *its own* blocks each
    day; the day's capture is the captured accesses of all servers over
    the ensemble's total accesses.
    """
    per_server = per_server_daily_counts_from_ensemble(daily_counts)
    days = len(daily_counts)
    shares: List[float] = []
    for day in range(days):
        total = sum(daily_counts[day].values())
        if total == 0:
            shares.append(0.0)
            continue
        captured = 0
        for _server, counters in sorted(per_server.items()):
            counts = counters[day]
            for address in top_fraction_blocks(counts, fraction):
                captured += counts[address]
        shares.append(captured / total)
    return shares


def ensemble_ideal_shares(
    daily_counts: Sequence[Counter], fraction: float = 0.01
) -> List[float]:
    """Daily capture of the shared ensemble-level ideal top-fraction cache."""
    shares: List[float] = []
    for counts in daily_counts:
        total = sum(counts.values())
        if total == 0:
            shares.append(0.0)
            continue
        top = top_fraction_blocks(counts, fraction)
        shares.append(sum(counts[a] for a in top) / total)
    return shares


def compare_ensemble_vs_per_server(
    daily_counts: Sequence[Counter], fraction: float = 0.01
) -> CaptureComparison:
    """The Section 5.3 iso-capacity comparison (same total capacity)."""
    return CaptureComparison(
        ensemble_shares=ensemble_ideal_shares(daily_counts, fraction),
        per_server_shares=per_server_ideal_shares(daily_counts, fraction),
    )


@dataclass(frozen=True)
class DriveCostRow:
    """Cost (drives) vs performance (capture) of one configuration."""

    configuration: str
    drives: int
    mean_capture: float

    @property
    def capture_per_drive(self) -> float:
        """Capture bought per physical drive (cost-performance)."""
        return self.mean_capture / self.drives if self.drives else 0.0


def whole_drive_cost_comparison(
    daily_counts: Sequence[Counter],
    server_count: int,
    ensemble_drives: int,
    fraction: float = 0.01,
) -> List[DriveCostRow]:
    """The Section 5.3 whole-drive cost comparison.

    Per-server deployment needs at least one physical drive per server
    (``server_count`` drives); the ensemble appliance needs
    ``ensemble_drives`` (1-2 in the paper, from the Figure 9 analysis).
    Capture numbers are the ideal ones from the iso-capacity analysis —
    maximally generous to per-server caching, which still loses on cost.
    """
    if server_count <= 0 or ensemble_drives <= 0:
        raise ValueError("server_count and ensemble_drives must be positive")
    comparison = compare_ensemble_vs_per_server(daily_counts, fraction)
    return [
        DriveCostRow(
            configuration="ensemble (SieveStore)",
            drives=ensemble_drives,
            mean_capture=comparison.mean_ensemble,
        ),
        DriveCostRow(
            configuration="per-server (one drive each)",
            drives=server_count,
            mean_capture=comparison.mean_per_server,
        ),
    ]


def per_server_capacity_blocks(
    daily_counts: Sequence[Counter], fraction: float = 0.01
) -> Dict[int, int]:
    """Elastic per-server capacity: peak daily top-set size per server.

    This is the capacity the iso-capacity configuration implicitly
    needs; summed over servers it is comparable to the ensemble cache's
    capacity (both hold ~``fraction`` of the daily footprint).
    """
    per_server = per_server_daily_counts_from_ensemble(daily_counts)
    return {
        server: max(
            (len(top_fraction_blocks(c, fraction)) for c in counters),
            default=0,
        )
        for server, counters in per_server.items()
    }
