"""Appliance clusters: simulate K SieveStore nodes side by side.

:mod:`repro.ensemble.scaling` answers the Section-7 scale-out question
with ideal (oracle) analysis; this module answers it with the real
machinery: K independent appliances, each with its own sieve, cache
(1/K of the total capacity), and statistics, with requests routed by
the server partition.  The cluster result aggregates per-day capture
and exposes per-node statistics for load analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.cache.allocation import AllocationPolicy
from repro.cache.block_cache import BlockCache
from repro.cache.replacement import make_replacement
from repro.cache.stats import CacheStats, DayStats
from repro.core.appliance import SieveStoreAppliance
from repro.ensemble.scaling import partition_servers
from repro.traces.model import Trace
from repro.util.intervals import SECONDS_PER_DAY

#: Builds a fresh allocation policy for one node (one per appliance —
#: sieve metastate must not be shared across nodes).
PolicyFactory = Callable[[int], AllocationPolicy]


@dataclass
class ClusterResult:
    """Outcome of one cluster simulation."""

    nodes: int
    partitions: List[List[int]]
    node_stats: List[CacheStats]

    @property
    def total(self) -> DayStats:
        """Whole-cluster totals across all nodes."""
        combined = DayStats()
        for stats in self.node_stats:
            total = stats.total
            combined.accesses += total.accesses
            combined.read_hits += total.read_hits
            combined.write_hits += total.write_hits
            combined.read_misses += total.read_misses
            combined.write_misses += total.write_misses
            combined.allocation_writes += total.allocation_writes
            combined.backing_writes += total.backing_writes
            combined.writebacks += total.writebacks
        return combined

    def daily_capture(self) -> List[float]:
        """Cluster-wide per-day hit fraction."""
        days = self.node_stats[0].days if self.node_stats else 0
        captures = []
        for day in range(days):
            hits = sum(s.per_day[day].hits for s in self.node_stats)
            accesses = sum(s.per_day[day].accesses for s in self.node_stats)
            captures.append(hits / accesses if accesses else 0.0)
        return captures

    def node_access_shares(self) -> List[float]:
        """Each node's share of the cluster's block accesses."""
        totals = [stats.total.accesses for stats in self.node_stats]
        grand = sum(totals)
        return [t / grand if grand else 0.0 for t in totals]

    @property
    def mean_capture(self) -> float:
        """Mean daily cluster-wide capture."""
        captures = [c for c in self.daily_capture() if c > 0 or True]
        return sum(captures) / len(captures) if captures else 0.0


def simulate_cluster(
    trace: Trace,
    policy_factory: PolicyFactory,
    total_capacity_blocks: int,
    days: int,
    nodes: int,
    server_ids: Optional[Sequence[int]] = None,
    replacement: str = "lru",
    track_minutes: bool = False,
) -> ClusterResult:
    """Run a K-node appliance cluster over one ensemble trace.

    Args:
        trace: the chronological ensemble trace.
        policy_factory: called once per node (with the node index) to
            build that node's allocation policy.
        total_capacity_blocks: cluster-wide cache capacity; each node
            gets an equal share (at least one frame).
        days: calendar days in the trace.
        nodes: appliance count.
        server_ids: servers to partition (default: those in the trace).
        replacement: per-node replacement policy name.
        track_minutes: collect per-minute SSD I/O per node.
    """
    if nodes <= 0:
        raise ValueError(f"nodes must be positive, got {nodes}")
    if server_ids is None:
        server_ids = sorted({request.server_id for request in trace})
    partitions = partition_servers(server_ids, nodes)
    node_of_server: Dict[int, int] = {
        server: node
        for node, servers in enumerate(partitions)
        for server in servers
    }

    per_node_capacity = max(1, total_capacity_blocks // nodes)
    appliances: List[SieveStoreAppliance] = []
    node_stats: List[CacheStats] = []
    for node in range(nodes):
        stats = CacheStats(days=days, track_minutes=track_minutes)
        cache = BlockCache(
            per_node_capacity, replacement=make_replacement(replacement)
        )
        appliances.append(
            SieveStoreAppliance(cache, policy_factory(node), stats)
        )
        node_stats.append(stats)

    current_day = -1
    for request in trace:
        request_day = int(request.issue_time // SECONDS_PER_DAY)
        while current_day < request_day:
            current_day += 1
            for appliance in appliances:
                appliance.begin_day(current_day)
        node = node_of_server.get(request.server_id)
        if node is None:
            continue  # server outside the configured partition set
        appliances[node].process_request(request)
    while current_day < days - 1:
        current_day += 1
        for appliance in appliances:
            appliance.begin_day(current_day)

    for stats in node_stats:
        stats.check_consistency()
    return ClusterResult(
        nodes=nodes, partitions=partitions, node_stats=node_stats
    )
