"""Ensemble topology, per-server caching baselines, network feasibility."""

from repro.ensemble.topology import (
    EnsembleTopology,
    daily_unique_blocks_by_server,
    per_server_daily_counts_from_ensemble,
)
from repro.ensemble.per_server import (
    CaptureComparison,
    DriveCostRow,
    compare_ensemble_vs_per_server,
    ensemble_ideal_shares,
    per_server_capacity_blocks,
    per_server_ideal_shares,
    whole_drive_cost_comparison,
)
from repro.ensemble.cluster import ClusterResult, simulate_cluster
from repro.ensemble.scaling import (
    ScalingPoint,
    partition_servers,
    partitioned_ideal_shares,
    scaling_profile,
)
from repro.ensemble.network import (
    GBE_BYTES_PER_SECOND,
    NetworkBudget,
    NetworkReport,
    network_report,
    worst_case_ssd_utilization,
)

__all__ = [
    "EnsembleTopology",
    "daily_unique_blocks_by_server",
    "per_server_daily_counts_from_ensemble",
    "CaptureComparison",
    "DriveCostRow",
    "compare_ensemble_vs_per_server",
    "ensemble_ideal_shares",
    "per_server_capacity_blocks",
    "per_server_ideal_shares",
    "whole_drive_cost_comparison",
    "ClusterResult",
    "simulate_cluster",
    "ScalingPoint",
    "partition_servers",
    "partitioned_ideal_shares",
    "scaling_profile",
    "GBE_BYTES_PER_SECOND",
    "NetworkBudget",
    "NetworkReport",
    "network_report",
    "worst_case_ssd_utilization",
]
