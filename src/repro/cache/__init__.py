"""Cache substrate: fully-associative block cache, replacement, allocation.

The split between :mod:`~repro.cache.allocation` (who gets in) and
:mod:`~repro.cache.replacement` (who gets evicted) mirrors the paper's
Section 3: sieving is an *allocation* mechanism, and no replacement
policy can substitute for it.
"""

from repro.cache.block_cache import BlockCache
from repro.cache.replacement import (
    ClockReplacement,
    FIFOReplacement,
    LFUReplacement,
    LRUReplacement,
    RandomReplacement,
    ReplacementPolicy,
    make_replacement,
)
from repro.cache.allocation import (
    AllocateOnDemand,
    AllocationPolicy,
    NeverAllocate,
    StaticSet,
    WriteMissNoAllocate,
)
from repro.cache.stats import CacheStats, DayStats, MinuteIO
from repro.cache.write_policy import DirtyTracker, WriteMode

__all__ = [
    "BlockCache",
    "ClockReplacement",
    "FIFOReplacement",
    "LFUReplacement",
    "LRUReplacement",
    "RandomReplacement",
    "ReplacementPolicy",
    "make_replacement",
    "AllocateOnDemand",
    "AllocationPolicy",
    "NeverAllocate",
    "StaticSet",
    "WriteMissNoAllocate",
    "CacheStats",
    "DayStats",
    "MinuteIO",
    "DirtyTracker",
    "WriteMode",
]
