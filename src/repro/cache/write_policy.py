"""Write handling for the cached blocks: write-through vs write-back.

The paper's evaluation counts SSD operations and is agnostic about when
dirty data reaches the backing ensemble.  Because the SieveStore
appliance's medium is *non-volatile* (flash), it can safely absorb
writes and flush them lazily — an extension the paper's deployment
model invites:

* **WRITE_THROUGH** — every write hit is also forwarded to the backing
  ensemble immediately.  The ensemble sees all write traffic; the cache
  only saves it read traffic.
* **WRITE_BACK** — write hits only dirty the cached block; the ensemble
  sees a write only when a dirty block is evicted (or on an explicit
  flush).  Repeated writes to a hot block coalesce into one backing
  write, multiplying the ensemble's write-traffic savings.

:class:`DirtyTracker` maintains the dirty-block set; the appliance
consults it on evictions and batch replacements.
"""

from __future__ import annotations

import enum
from typing import Iterable, Set


class WriteMode(enum.Enum):
    """When dirty data is propagated to the backing ensemble."""

    WRITE_THROUGH = "write-through"
    WRITE_BACK = "write-back"


class DirtyTracker:
    """The set of cached blocks holding data newer than the ensemble's."""

    def __init__(self) -> None:
        self._dirty: Set[int] = set()
        #: total blocks ever marked dirty (for write-coalescing stats)
        self.marks = 0

    def __len__(self) -> int:
        return len(self._dirty)

    def __contains__(self, address: int) -> bool:
        return address in self._dirty

    def mark(self, address: int) -> None:
        """A cached block was written."""
        self.marks += 1
        self._dirty.add(address)

    def clean(self, address: int) -> bool:
        """A block was written back (or evicted); returns whether it was
        dirty."""
        if address in self._dirty:
            self._dirty.remove(address)
            return True
        return False

    def drain(self) -> Set[int]:
        """Flush everything (shutdown / end-of-trace); returns the set."""
        drained, self._dirty = self._dirty, set()
        return drained

    def clean_many(self, addresses: Iterable[int]) -> int:
        """Clean a batch (epoch replacement); returns how many were dirty."""
        cleaned = 0
        for address in addresses:
            if self.clean(address):
                cleaned += 1
        return cleaned
