"""Replacement policies for the fully-associative block cache.

The paper uses LRU for every continuously-allocated configuration
("LRU replacement was common for all the continuous configurations",
Section 4).  FIFO, Random, and LFU are provided for ablation studies;
Belady's MIN, which needs future knowledge, lives in
:mod:`repro.core.belady`.
"""

from __future__ import annotations

import abc
import random
from collections import OrderedDict
from typing import Dict, Iterator


class ReplacementPolicy(abc.ABC):
    """Tracks resident blocks and chooses eviction victims.

    The owning :class:`~repro.cache.block_cache.BlockCache` guarantees
    that ``on_insert`` is never called for a resident block, and that
    ``on_access``/``on_remove`` are only called for resident blocks.
    """

    @abc.abstractmethod
    def on_insert(self, address: int) -> None:
        """A block was inserted into the cache."""

    @abc.abstractmethod
    def on_access(self, address: int) -> None:
        """A resident block was accessed (hit)."""

    @abc.abstractmethod
    def on_remove(self, address: int) -> None:
        """A resident block was removed without going through evict()."""

    @abc.abstractmethod
    def choose_victim(self) -> int:
        """Return the address to evict next (must be resident)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of tracked resident blocks."""


class LRUReplacement(ReplacementPolicy):
    """Least-recently-used replacement (the paper's default)."""

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def on_insert(self, address: int) -> None:
        self._order[address] = None

    def on_access(self, address: int) -> None:
        self._order.move_to_end(address)

    def on_remove(self, address: int) -> None:
        del self._order[address]

    def choose_victim(self) -> int:
        if not self._order:
            raise LookupError("cannot choose a victim from an empty cache")
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)

    def recency_order(self) -> Iterator[int]:
        """Resident addresses from least- to most-recently used."""
        return iter(self._order)


class FIFOReplacement(ReplacementPolicy):
    """First-in-first-out replacement (ablation)."""

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def on_insert(self, address: int) -> None:
        self._order[address] = None

    def on_access(self, address: int) -> None:
        pass  # insertion order is not disturbed by hits

    def on_remove(self, address: int) -> None:
        del self._order[address]

    def choose_victim(self) -> int:
        if not self._order:
            raise LookupError("cannot choose a victim from an empty cache")
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)


class RandomReplacement(ReplacementPolicy):
    """Uniform-random replacement (ablation); seeded for determinism."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._slots: list = []
        self._index: Dict[int, int] = {}

    def on_insert(self, address: int) -> None:
        self._index[address] = len(self._slots)
        self._slots.append(address)

    def on_access(self, address: int) -> None:
        pass

    def on_remove(self, address: int) -> None:
        position = self._index.pop(address)
        last = self._slots.pop()
        if last != address:
            self._slots[position] = last
            self._index[last] = position

    def choose_victim(self) -> int:
        if not self._slots:
            raise LookupError("cannot choose a victim from an empty cache")
        return self._slots[self._rng.randrange(len(self._slots))]

    def __len__(self) -> int:
        return len(self._slots)


class LFUReplacement(ReplacementPolicy):
    """Least-frequently-used replacement with LRU tie-breaking (ablation).

    Frequencies count hits since insertion.  Implemented with an
    OrderedDict per frequency class, giving O(1) amortized updates.
    """

    def __init__(self) -> None:
        self._freq: Dict[int, int] = {}
        self._classes: Dict[int, "OrderedDict[int, None]"] = {}
        self._min_freq: int = 0

    def _class(self, freq: int) -> "OrderedDict[int, None]":
        return self._classes.setdefault(freq, OrderedDict())

    def on_insert(self, address: int) -> None:
        self._freq[address] = 1
        self._class(1)[address] = None
        self._min_freq = 1

    def on_access(self, address: int) -> None:
        freq = self._freq[address]
        bucket = self._classes[freq]
        del bucket[address]
        if not bucket:
            del self._classes[freq]
            if self._min_freq == freq:
                self._min_freq = freq + 1
        self._freq[address] = freq + 1
        self._class(freq + 1)[address] = None

    def on_remove(self, address: int) -> None:
        freq = self._freq.pop(address)
        bucket = self._classes[freq]
        del bucket[address]
        if not bucket:
            del self._classes[freq]
            if self._min_freq == freq:
                self._min_freq = min(self._classes, default=0)

    def choose_victim(self) -> int:
        if not self._freq:
            raise LookupError("cannot choose a victim from an empty cache")
        bucket = self._classes[self._min_freq]
        return next(iter(bucket))

    def __len__(self) -> int:
        return len(self._freq)


class ClockReplacement(ReplacementPolicy):
    """CLOCK (second-chance) replacement (ablation).

    Blocks sit on a ring with a reference bit; the hand sweeps forward,
    clearing set bits and evicting the first unreferenced block.  A
    cheap LRU approximation — the policy most real block caches
    actually ship.
    """

    def __init__(self) -> None:
        self._ring: "OrderedDict[int, bool]" = OrderedDict()

    def on_insert(self, address: int) -> None:
        self._ring[address] = False

    def on_access(self, address: int) -> None:
        self._ring[address] = True

    def on_remove(self, address: int) -> None:
        del self._ring[address]

    def choose_victim(self) -> int:
        if not self._ring:
            raise LookupError("cannot choose a victim from an empty cache")
        while True:
            address, referenced = next(iter(self._ring.items()))
            if not referenced:
                return address
            # Second chance: clear the bit and rotate to the back.
            del self._ring[address]
            self._ring[address] = False

    def __len__(self) -> int:
        return len(self._ring)


def make_replacement(name: str, seed: int = 0) -> ReplacementPolicy:
    """Construct a replacement policy by name
    ('lru', 'fifo', 'random', 'lfu', 'clock')."""
    factories = {
        "lru": LRUReplacement,
        "fifo": FIFOReplacement,
        "lfu": LFUReplacement,
        "clock": ClockReplacement,
    }
    lowered = name.lower()
    if lowered == "random":
        return RandomReplacement(seed=seed)
    if lowered not in factories:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"expected one of lru, fifo, random, lfu, clock"
        )
    return factories[lowered]()
