"""Fully-associative 512-byte block cache with pluggable replacement.

This models the disk-cache metastate the paper simulates: "the
data-structures ... for the metastate of a fully-associative, 16GB
cache with LRU replacement (tags, LRU stack information)" (Section 4).
Only metastate is modeled — there is no data payload — which is exactly
what a trace-driven cache simulation needs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Set

from repro.cache.replacement import LRUReplacement, ReplacementPolicy


class BlockCache:
    """A set of resident block addresses bounded by a frame capacity.

    The cache never allocates on its own: callers decide *whether* to
    insert (the allocation policy / sieve) and the cache decides *whom*
    to evict (the replacement policy).  This separation mirrors the
    paper's central distinction between allocation and replacement
    (Section 3).
    """

    def __init__(
        self,
        capacity_blocks: int,
        replacement: Optional[ReplacementPolicy] = None,
    ):
        if capacity_blocks <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_blocks}")
        self.capacity_blocks = capacity_blocks
        self.replacement = replacement if replacement is not None else LRUReplacement()
        self._resident: Set[int] = set()

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, address: int) -> bool:
        return address in self._resident

    @property
    def is_full(self) -> bool:
        """Whether every frame is occupied."""
        return len(self._resident) >= self.capacity_blocks

    def access(self, address: int) -> bool:
        """Look up a block; returns True on hit and updates recency."""
        if address in self._resident:
            self.replacement.on_access(address)
            return True
        return False

    def peek(self, address: int) -> bool:
        """Look up a block without updating replacement state."""
        return address in self._resident

    def insert(self, address: int) -> Optional[int]:
        """Insert a block, evicting if needed; returns the victim or None.

        Inserting a resident block is an error — callers must check with
        :meth:`access`/:meth:`peek` first, because a real cache would
        have served that access as a hit.
        """
        if address in self._resident:
            raise ValueError(f"block {address} is already resident")
        victim = None
        if len(self._resident) >= self.capacity_blocks:
            victim = self.replacement.choose_victim()
            self._evict(victim)
        self._resident.add(address)
        self.replacement.on_insert(address)
        return victim

    def _evict(self, address: int) -> None:
        self._resident.remove(address)
        self.replacement.on_remove(address)

    def remove(self, address: int) -> None:
        """Remove a resident block (used by batch replacement)."""
        if address not in self._resident:
            raise KeyError(f"block {address} is not resident")
        self._evict(address)

    def discard(self, address: int) -> bool:
        """Remove a block if resident; returns whether it was."""
        if address in self._resident:
            self._evict(address)
            return True
        return False

    def clear(self) -> int:
        """Drop every resident block; returns how many were dropped.

        Models whole-device data loss (outage/wear-out): the frames
        survive but their contents do not, so a recovered device starts
        cold and the sieve must re-earn every allocation.
        """
        dropped = len(self._resident)
        for address in list(self._resident):
            self._evict(address)
        return dropped

    def residents(self) -> Iterator[int]:
        """Iterate over resident addresses (unspecified order)."""
        return iter(self._resident)

    def resident_set(self) -> Set[int]:
        """A copy of the resident address set."""
        return set(self._resident)

    def replace_contents(self, addresses: Iterable[int]) -> tuple:
        """Batch-replace the cache contents (SieveStore-D epochs).

        Blocks present in both the old and the new set stay resident
        without being counted as moved — the paper's optimization that
        "the replacement and allocation cancel each other to eliminate
        unnecessary block moves" (Section 3.2).

        Returns ``(inserted, removed)`` counts; ``inserted`` is the
        number of allocation-writes the batch implies.
        """
        new_set = set(addresses)
        if len(new_set) > self.capacity_blocks:
            raise ValueError(
                f"batch of {len(new_set)} blocks exceeds capacity "
                f"{self.capacity_blocks}"
            )
        to_remove = self._resident - new_set
        to_insert = new_set - self._resident
        for address in to_remove:
            self._evict(address)
        for address in to_insert:
            self._resident.add(address)
            self.replacement.on_insert(address)
        return len(to_insert), len(to_remove)

    def check_invariants(self) -> None:
        """Verify the cache's internal consistency (used by tests)."""
        if len(self._resident) > self.capacity_blocks:
            raise AssertionError(
                f"resident {len(self._resident)} exceeds capacity "
                f"{self.capacity_blocks}"
            )
        if len(self.replacement) != len(self._resident):
            raise AssertionError(
                f"replacement tracks {len(self.replacement)} blocks but "
                f"{len(self._resident)} are resident"
            )
