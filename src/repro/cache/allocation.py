"""Allocation policies: who gets into the cache (Table 3 of the paper).

The paper's central claim is that *allocation*, not replacement, is the
lever that matters for ensemble-level disk caching.  This module defines
the allocation-policy protocol shared by the unsieved baselines (AOD,
WMNA), the random sieves, and both SieveStore variants, plus the two
unsieved policies themselves:

==============  =====================================================
Key             When is a block allocated?
==============  =====================================================
AOD             on a miss
WMNA            on a read-miss
SieveStore-D    access count over an epoch exceeds a threshold;
                batch-allocated at the epoch boundary
SieveStore-C    on the nth miss in the previous time window
==============  =====================================================
"""

from __future__ import annotations

import abc
from typing import Iterable, Optional, Set


class AllocationPolicy(abc.ABC):
    """Decides which missed blocks earn a cache frame.

    The simulation engine calls, in order:

    * :meth:`epoch_boundary` whenever a calendar-day boundary is
      crossed, *before* processing the new day's accesses.  A non-None
      return value batch-replaces the cache contents (discrete
      policies); continuous policies return None.
    * :meth:`observe` for every block access (hit or miss) — this is
      the metastate-maintenance hook (SieveStore-D's access log,
      SieveStore-C's miss counts).
    * :meth:`wants` for every miss — True means "allocate this block
      now", which costs one allocation-write.
    """

    #: short identifier used in experiment tables
    name: str = "base"

    def epoch_boundary(self, day: int) -> Optional[Iterable[int]]:
        """Batch of addresses to install at the start of ``day``, or None."""
        return None

    def observe(self, address: int, is_write: bool, time: float, hit: bool) -> None:
        """Record an access for metastate purposes (default: nothing)."""

    @abc.abstractmethod
    def wants(self, address: int, is_write: bool, time: float) -> bool:
        """Should this missed block be allocated a frame right now?"""


class AllocateOnDemand(AllocationPolicy):
    """AOD: allocate on every miss (conventional demand-fill cache)."""

    name = "aod"

    def wants(self, address: int, is_write: bool, time: float) -> bool:
        return True


class WriteMissNoAllocate(AllocationPolicy):
    """WMNA: allocate on read misses only.

    Write misses are sent straight to the underlying storage without
    taking a frame, avoiding allocation-writes for the write-miss
    stream (but not for read misses).
    """

    name = "wmna"

    def wants(self, address: int, is_write: bool, time: float) -> bool:
        return not is_write


class NeverAllocate(AllocationPolicy):
    """Null policy: the cache contents change only via epoch batches.

    Useful as the continuous-phase companion of purely discrete
    policies and in tests.
    """

    name = "never"

    def wants(self, address: int, is_write: bool, time: float) -> bool:
        return False


class StaticSet(AllocationPolicy):
    """Installs a fixed block set on day 0 and never changes it.

    This is the "fixed allocation" comparison from the paper's Belady
    discussion (Section 3.1) and a convenient oracle harness for tests.
    """

    name = "static"

    def __init__(self, blocks: Iterable[int]):
        self._blocks: Set[int] = set(blocks)
        self._installed = False

    def epoch_boundary(self, day: int) -> Optional[Iterable[int]]:
        if not self._installed:
            self._installed = True
            return set(self._blocks)
        return None

    def wants(self, address: int, is_write: bool, time: float) -> bool:
        return False
