"""Cache statistics: hits, misses, allocation-writes, per-day/per-minute.

The paper's figures aggregate three disjoint classes of SSD operations
(Figure 7): **read hits**, **write hits**, and **allocation-writes**
(the insertion write performed when a missed block is allocated a cache
frame).  Misses that are not allocated bypass the SSD entirely.  All
counts here are in 512-byte block units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.util.intervals import day_of, minute_of


@dataclass
class DayStats:
    """Per-day block-level counters.

    ``backing_writes`` counts blocks written to the underlying ensemble
    (write-through forwards, write-back evict-time flushes, and all
    write misses); ``writebacks`` is the evict-time subset.  Both are
    zero-cost extensions to the paper's accounting — they never affect
    the SSD-side numbers the figures report.

    The fault counters (``read_errors``/``write_errors``: SSD block
    operations that failed inside a fault plan's error windows;
    ``bypass_accesses``: block accesses served while the device was in
    BYPASS) stay zero on fault-free runs, so existing figures are
    unchanged unless a :class:`~repro.faults.plan.FaultPlan` is active.
    An errored operation is counted as a *miss* (the SSD did not serve
    it), keeping ``hits + misses == accesses`` intact.
    """

    accesses: int = 0
    read_hits: int = 0
    write_hits: int = 0
    read_misses: int = 0
    write_misses: int = 0
    allocation_writes: int = 0
    backing_writes: int = 0
    writebacks: int = 0
    read_errors: int = 0
    write_errors: int = 0
    bypass_accesses: int = 0

    @property
    def hits(self) -> int:
        """All hits (reads + writes)."""
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        """All misses (reads + writes)."""
        return self.read_misses + self.write_misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of block accesses served by the cache (0 if idle)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def ssd_operations(self) -> int:
        """All SSD ops: hits plus allocation-writes (Figure 7's bars)."""
        return self.hits + self.allocation_writes

    @property
    def ssd_writes(self) -> int:
        """Slow SSD write ops: write hits plus allocation-writes."""
        return self.write_hits + self.allocation_writes


@dataclass
class MinuteIO:
    """Per-minute SSD read/write op counts, in 4-KB I/O units.

    These drive the drive-occupancy costing of Section 4: each 4-KB read
    occupies the drive for 1/35000 s and each 4-KB write for 1/3300 s.
    """

    reads: int = 0
    writes: int = 0


class CacheStats:
    """Accumulates block-level cache statistics for a simulation run.

    Per-day counters feed Figures 5-7; per-minute 4-KB I/O-unit counters
    feed the drive-occupancy analysis of Figures 8-9.  Minute-level
    accounting can be disabled for analyses that do not need it.
    """

    def __init__(self, days: int, track_minutes: bool = True):
        if days <= 0:
            raise ValueError(f"days must be positive, got {days}")
        self.days = days
        self.track_minutes = track_minutes
        self.per_day: List[DayStats] = [DayStats() for _ in range(days)]
        self.per_minute: Dict[int, MinuteIO] = {}
        #: wall of simulated seconds spent in DEGRADED / BYPASS device
        #: health (assigned once at end of run from the fault plan's
        #: windows; always 0.0 on fault-free runs).
        self.degraded_seconds: float = 0.0
        self.bypass_seconds: float = 0.0

    # -- block-level recording -------------------------------------------
    def _day(self, time: float) -> DayStats:
        day = day_of(time)
        if day >= self.days:
            day = self.days - 1
        return self.per_day[day]

    def record_hit(self, time: float, is_write: bool, blocks: int = 1) -> None:
        """Count cache hits for ``blocks`` 512-byte blocks."""
        stats = self._day(time)
        stats.accesses += blocks
        if is_write:
            stats.write_hits += blocks
        else:
            stats.read_hits += blocks

    def record_miss(self, time: float, is_write: bool, blocks: int = 1) -> None:
        """Count cache misses for ``blocks`` 512-byte blocks."""
        stats = self._day(time)
        stats.accesses += blocks
        if is_write:
            stats.write_misses += blocks
        else:
            stats.read_misses += blocks

    def record_allocation_write(self, time: float, blocks: int = 1) -> None:
        """Record insertion writes; does not count as an access."""
        self._day(time).allocation_writes += blocks

    def record_backing_write(
        self, time: float, blocks: int = 1, is_writeback: bool = False
    ) -> None:
        """Record writes reaching the backing ensemble (extension)."""
        day = self._day(time)
        day.backing_writes += blocks
        if is_writeback:
            day.writebacks += blocks

    # -- fault recording (no-ops on fault-free runs) ------------------------
    def record_read_error(self, time: float, blocks: int = 1) -> None:
        """Count SSD block reads that failed (served from backing instead)."""
        self._day(time).read_errors += blocks

    def record_write_error(self, time: float, blocks: int = 1) -> None:
        """Count SSD block writes that failed (allocation/update suppressed)."""
        self._day(time).write_errors += blocks

    def record_bypass_access(self, time: float, blocks: int = 1) -> None:
        """Count block accesses served while the device was in BYPASS."""
        self._day(time).bypass_accesses += blocks

    # -- minute-level 4-KB unit recording ----------------------------------
    def record_ssd_io(self, time: float, io_units: int, is_write: bool) -> None:
        """Record SSD traffic in 4-KB units for occupancy costing."""
        if not self.track_minutes or io_units <= 0:
            return
        entry = self.per_minute.setdefault(minute_of(time), MinuteIO())
        if is_write:
            entry.writes += io_units
        else:
            entry.reads += io_units

    # -- merging ------------------------------------------------------------
    def merge(self, other: "CacheStats") -> "CacheStats":
        """Accumulate another run's counters into this one, in place.

        Both operands must cover the same number of days.  Per-day
        counters add field-wise; per-minute I/O entries add read/write
        unit counts.  This is what lets sharded or worker-partitioned
        simulations (one trace shard per process) combine their
        statistics into one run-level :class:`CacheStats`.

        Returns ``self`` for chaining.
        """
        if other.days != self.days:
            raise ValueError(
                f"cannot merge stats over {other.days} days into stats "
                f"over {self.days} days"
            )
        for mine, theirs in zip(self.per_day, other.per_day):
            mine.accesses += theirs.accesses
            mine.read_hits += theirs.read_hits
            mine.write_hits += theirs.write_hits
            mine.read_misses += theirs.read_misses
            mine.write_misses += theirs.write_misses
            mine.allocation_writes += theirs.allocation_writes
            mine.backing_writes += theirs.backing_writes
            mine.writebacks += theirs.writebacks
            mine.read_errors += theirs.read_errors
            mine.write_errors += theirs.write_errors
            mine.bypass_accesses += theirs.bypass_accesses
        for minute, entry in other.per_minute.items():
            mine_entry = self.per_minute.setdefault(minute, MinuteIO())
            mine_entry.reads += entry.reads
            mine_entry.writes += entry.writes
        self.degraded_seconds += other.degraded_seconds
        self.bypass_seconds += other.bypass_seconds
        return self

    @classmethod
    def merged(cls, parts: "List[CacheStats]") -> "CacheStats":
        """Merge a non-empty sequence of stats into a fresh instance."""
        if not parts:
            raise ValueError("cannot merge an empty sequence of stats")
        result = cls(
            days=parts[0].days,
            track_minutes=any(p.track_minutes for p in parts),
        )
        for part in parts:
            result.merge(part)
        return result

    # -- aggregation --------------------------------------------------------
    @property
    def total(self) -> DayStats:
        """Whole-run totals as a single DayStats."""
        total = DayStats()
        for day in self.per_day:
            total.accesses += day.accesses
            total.read_hits += day.read_hits
            total.write_hits += day.write_hits
            total.read_misses += day.read_misses
            total.write_misses += day.write_misses
            total.allocation_writes += day.allocation_writes
            total.backing_writes += day.backing_writes
            total.writebacks += day.writebacks
            total.read_errors += day.read_errors
            total.write_errors += day.write_errors
            total.bypass_accesses += day.bypass_accesses
        return total

    def minute_series(self) -> List[Tuple[int, MinuteIO]]:
        """(minute, MinuteIO) pairs in chronological order."""
        return sorted(self.per_minute.items())

    def check_consistency(self) -> None:
        """Internal invariant: hits + misses == accesses, every day."""
        for index, day in enumerate(self.per_day):
            if day.hits + day.misses != day.accesses:
                raise AssertionError(
                    f"day {index}: hits({day.hits}) + misses({day.misses}) "
                    f"!= accesses({day.accesses})"
                )
