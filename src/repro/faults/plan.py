"""Declarative device-fault plans for the simulated SSD.

The paper deploys SieveStore as a *transparent* appliance (Section 4,
Figure 4): when the cache device misbehaves, the ensemble below it must
keep serving.  A :class:`FaultPlan` is the declarative schedule of
everything that can go wrong with the simulated device over one run:

* **transient error windows** — intervals during which individual SSD
  reads or writes fail (always, or with a seeded per-operation
  probability);
* **latency-degradation windows** — intervals during which the device
  is slow enough that the appliance counts itself DEGRADED (observable
  in :attr:`repro.cache.stats.CacheStats.degraded_seconds`);
* **outage windows** — whole-device failures, with an optional recovery
  time (``end=None`` never recovers);
* **endurance wear-out** — a cumulative SSD-write-byte budget (fed by
  the :attr:`repro.ssd.device.SSDModel.endurance_bytes` accounting)
  past which the device fails permanently.

Plans are immutable, validated on construction, JSON round-trippable
(the CLI's ``--fault-plan FILE``), and content-fingerprinted so run
manifests can record exactly which plan drove a task.  An empty plan is
guaranteed to leave simulation output byte-identical to a run without
any plan at all.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.util.atomic import atomic_write

#: Bump on plan-schema changes; loaders refuse unknown versions.
PLAN_SCHEMA_VERSION = 1

#: Error-window kinds.
READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class ErrorWindow:
    """Transient per-operation SSD errors inside ``[start, end)``.

    ``probability`` is the chance that one block-level operation of the
    window's ``kind`` fails; draws come from the plan's seeded RNG, so
    runs are deterministic and checkpoint/resume-safe.
    """

    start: float
    end: float
    kind: str  # READ or WRITE
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in (READ, WRITE):
            raise ValueError(f"error kind must be 'read' or 'write', got {self.kind!r}")
        if not self.start < self.end:
            raise ValueError(f"empty error window [{self.start}, {self.end})")
        if self.start < 0:
            raise ValueError(f"window start must be non-negative, got {self.start}")
        if not 0 < self.probability <= 1:
            raise ValueError(f"probability must be in (0, 1], got {self.probability}")

    def contains(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class LatencyWindow:
    """Device slow-down inside ``[start, end)``: service times x ``factor``."""

    start: float
    end: float
    factor: float = 2.0

    def __post_init__(self) -> None:
        if not self.start < self.end:
            raise ValueError(f"empty latency window [{self.start}, {self.end})")
        if self.start < 0:
            raise ValueError(f"window start must be non-negative, got {self.start}")
        if self.factor < 1.0:
            raise ValueError(f"latency factor must be >= 1, got {self.factor}")

    def contains(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class OutageWindow:
    """Whole-device failure from ``start`` until ``end`` (None = forever)."""

    start: float
    end: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"outage start must be non-negative, got {self.start}")
        if self.end is not None and not self.start < self.end:
            raise ValueError(f"empty outage window [{self.start}, {self.end})")

    def contains(self, time: float) -> bool:
        return self.start <= time and (self.end is None or time < self.end)


@dataclass(frozen=True)
class FaultPlan:
    """The full fault schedule for one simulated device (see module docs)."""

    errors: Tuple[ErrorWindow, ...] = ()
    latency: Tuple[LatencyWindow, ...] = ()
    outages: Tuple[OutageWindow, ...] = ()
    #: cumulative SSD write bytes after which the device is worn out
    #: (permanent failure); ``None`` disables wear-out.
    wearout_bytes: Optional[float] = None
    #: seed for probabilistic error draws.
    seed: int = 0

    def __post_init__(self) -> None:
        # Coerce lists (e.g. from from_dict) into the frozen tuple form.
        object.__setattr__(self, "errors", tuple(self.errors))
        object.__setattr__(self, "latency", tuple(self.latency))
        object.__setattr__(self, "outages", tuple(self.outages))
        if self.wearout_bytes is not None and self.wearout_bytes <= 0:
            raise ValueError(
                f"wearout_bytes must be positive, got {self.wearout_bytes}"
            )

    @property
    def is_empty(self) -> bool:
        """True when the plan schedules nothing (byte-identical runs)."""
        return (
            not self.errors
            and not self.latency
            and not self.outages
            and self.wearout_bytes is None
        )

    # -- construction helpers ---------------------------------------------
    @classmethod
    def from_endurance(
        cls, device, fraction: float = 1.0, seed: int = 0
    ) -> "FaultPlan":
        """Wear-out-only plan at a fraction of a device's endurance budget.

        ``device`` is a :class:`repro.ssd.device.SSDModel`; the threshold
        comes from :func:`repro.ssd.endurance.wearout_threshold_bytes`.
        """
        from repro.ssd.endurance import wearout_threshold_bytes

        return cls(wearout_bytes=wearout_threshold_bytes(device, fraction), seed=seed)

    # -- degraded/bypass interval arithmetic -------------------------------
    def bypass_intervals(
        self, duration: float, worn_out_at: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """Disjoint intervals (clipped to ``[0, duration]``) with the
        device fully failed: outages plus post-wear-out time."""
        raw = [
            (w.start, duration if w.end is None else min(w.end, duration))
            for w in self.outages
        ]
        if worn_out_at is not None:
            raw.append((worn_out_at, duration))
        return _union([(max(0.0, s), min(e, duration)) for s, e in raw if s < e])

    def degraded_intervals(
        self, duration: float, worn_out_at: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """Disjoint degraded intervals: error/latency windows minus any
        overlapping bypass time (bypass dominates degraded)."""
        raw = [(w.start, min(w.end, duration)) for w in self.errors]
        raw += [(w.start, min(w.end, duration)) for w in self.latency]
        degraded = _union([(s, e) for s, e in raw if s < e])
        return _subtract(degraded, self.bypass_intervals(duration, worn_out_at))

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON form (inverse of :meth:`from_dict`)."""
        return {
            "schema_version": PLAN_SCHEMA_VERSION,
            "seed": self.seed,
            "wearout_bytes": self.wearout_bytes,
            "errors": [
                {
                    "start": w.start,
                    "end": w.end,
                    "kind": w.kind,
                    "probability": w.probability,
                }
                for w in self.errors
            ],
            "latency": [
                {"start": w.start, "end": w.end, "factor": w.factor}
                for w in self.latency
            ],
            "outages": [
                {"start": w.start, "end": w.end} for w in self.outages
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        version = payload.get("schema_version")
        if version != PLAN_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported fault-plan schema version {version!r} "
                f"(expected {PLAN_SCHEMA_VERSION})"
            )
        return cls(
            errors=tuple(ErrorWindow(**w) for w in payload.get("errors", ())),
            latency=tuple(LatencyWindow(**w) for w in payload.get("latency", ())),
            outages=tuple(OutageWindow(**w) for w in payload.get("outages", ())),
            wearout_bytes=payload.get("wearout_bytes"),
            seed=payload.get("seed", 0),
        )

    def save_json(self, path: Union[str, Path]) -> None:
        encoded = (json.dumps(self.to_dict(), indent=2) + "\n").encode("utf-8")
        with atomic_write(path) as handle:
            handle.write(encoded)

    @classmethod
    def load_json(cls, path: Union[str, Path]) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def fingerprint(self) -> str:
        """Short content hash, recorded per task in run manifests."""
        encoded = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(encoded).hexdigest()[:16]


def _union(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Merge possibly-overlapping half-open intervals into disjoint ones."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _subtract(
    intervals: List[Tuple[float, float]], holes: List[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Remove ``holes`` (disjoint, sorted) from disjoint sorted intervals."""
    result: List[Tuple[float, float]] = []
    for start, end in intervals:
        cursor = start
        for hole_start, hole_end in holes:
            if hole_end <= cursor or hole_start >= end:
                continue
            if hole_start > cursor:
                result.append((cursor, hole_start))
            cursor = max(cursor, hole_end)
            if cursor >= end:
                break
        if cursor < end:
            result.append((cursor, end))
    return result


def total_seconds(intervals: List[Tuple[float, float]]) -> float:
    """Sum of interval lengths."""
    return sum(end - start for start, end in intervals)
