"""Device-fault modeling: declarative plans plus the runtime injector.

The paper's appliance is transparent: the ensemble keeps serving when
the SSD misbehaves.  This package models that misbehaviour —

* :class:`FaultPlan` / :class:`ErrorWindow` / :class:`LatencyWindow` /
  :class:`OutageWindow`: declarative, JSON round-trippable schedules of
  transient errors, latency degradation, whole-device outages, and
  endurance wear-out;
* :class:`FaultInjector`: the per-run stateful driver the appliance
  queries (deterministic, picklable, checkpoint-safe);
* :class:`DeviceHealth`: the HEALTHY → DEGRADED → BYPASS state machine
  the appliance walks.
"""

from repro.faults.injector import DeviceHealth, FaultInjector
from repro.faults.plan import (
    PLAN_SCHEMA_VERSION,
    ErrorWindow,
    FaultPlan,
    LatencyWindow,
    OutageWindow,
)

__all__ = [
    "PLAN_SCHEMA_VERSION",
    "DeviceHealth",
    "ErrorWindow",
    "FaultInjector",
    "FaultPlan",
    "LatencyWindow",
    "OutageWindow",
]
