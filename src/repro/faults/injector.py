"""Runtime fault injection: a :class:`FaultPlan` made queryable.

The :class:`FaultInjector` is the mutable runtime companion of an
immutable :class:`~repro.faults.plan.FaultPlan`.  The appliance asks it,
per operation, whether the device is available, whether a read or write
fails, and reports every SSD write so endurance wear-out can trip.  All
state — the RNG for probabilistic error draws, cumulative bytes
written, the wear-out instant — is plain picklable Python, so an
injector rides inside crash-consistent simulation checkpoints and
resumes bit-identically.
"""

from __future__ import annotations

import enum
import random
from typing import Optional, Tuple

from repro.faults.plan import READ, WRITE, FaultPlan, total_seconds
from repro.util.units import BLOCK_BYTES


class DeviceHealth(enum.Enum):
    """The appliance's device-health state machine states.

    * ``HEALTHY`` — the SSD serves everything normally.
    * ``DEGRADED`` — the device is up but misbehaving (transient
      read/write errors, latency degradation): reads that fail fall
      back to the backing ensemble, writes that fail suppress
      allocation, and the sieve keeps observing.
    * ``BYPASS`` — the device is gone (outage or wear-out): every
      request passes straight through to the backing ensemble.
    """

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    BYPASS = "bypass"


class FaultInjector:
    """Stateful driver of one fault plan over one simulation run."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        #: cumulative SSD write bytes (endurance accounting)
        self.ssd_bytes_written = 0
        #: simulated instant the wear-out budget was exhausted, if ever
        self.worn_out_at: Optional[float] = None
        #: operation-level error tallies (mirrored into CacheStats)
        self.read_errors = 0
        self.write_errors = 0

    # -- health -----------------------------------------------------------
    @property
    def worn_out(self) -> bool:
        return self.worn_out_at is not None

    def health_at(self, time: float) -> DeviceHealth:
        """Device health the appliance should assume at ``time``."""
        if self.worn_out or any(w.contains(time) for w in self.plan.outages):
            return DeviceHealth.BYPASS
        if any(w.contains(time) for w in self.plan.errors) or any(
            w.contains(time) for w in self.plan.latency
        ):
            return DeviceHealth.DEGRADED
        return DeviceHealth.HEALTHY

    def latency_factor(self, time: float) -> float:
        """Service-time multiplier at ``time`` (1.0 when unimpaired)."""
        factor = 1.0
        for window in self.plan.latency:
            if window.contains(time):
                factor = max(factor, window.factor)
        return factor

    # -- per-operation error draws ----------------------------------------
    def _op_fails(self, kind: str, time: float) -> bool:
        for window in self.plan.errors:
            if window.kind == kind and window.contains(time):
                if window.probability >= 1.0 or self._rng.random() < window.probability:
                    return True
        return False

    def read_fails(self, time: float) -> bool:
        """One SSD block read at ``time``; True means it errored."""
        if self._op_fails(READ, time):
            self.read_errors += 1
            return True
        return False

    def write_fails(self, time: float) -> bool:
        """One SSD block write at ``time``; True means it errored."""
        if self._op_fails(WRITE, time):
            self.write_errors += 1
            return True
        return False

    # -- endurance wear-out -----------------------------------------------
    def record_ssd_write(self, time: float, blocks: int) -> None:
        """Account ``blocks`` 512-byte blocks written to the SSD.

        When the plan's ``wearout_bytes`` budget is exhausted the device
        is marked worn out at ``time``; the appliance transitions to
        BYPASS on its next health check.
        """
        self.ssd_bytes_written += blocks * BLOCK_BYTES
        if (
            self.plan.wearout_bytes is not None
            and not self.worn_out
            and self.ssd_bytes_written >= self.plan.wearout_bytes
        ):
            self.worn_out_at = time

    # -- end-of-run accounting --------------------------------------------
    def time_in_states(self, duration: float) -> Tuple[float, float]:
        """``(degraded_seconds, bypass_seconds)`` over ``[0, duration]``.

        Computed analytically from the plan's windows (clipped to the
        run) plus the dynamic wear-out instant; bypass time dominates
        overlapping degraded windows.
        """
        bypass = self.plan.bypass_intervals(duration, self.worn_out_at)
        degraded = self.plan.degraded_intervals(duration, self.worn_out_at)
        return total_seconds(degraded), total_seconds(bypass)
