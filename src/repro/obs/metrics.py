"""Labeled metrics: Counter / Gauge / Histogram + mergeable snapshots.

The registry is deliberately tiny and dependency-free: metric objects
hold plain dicts keyed by label-value tuples, and :meth:`MetricsRegistry
.snapshot` captures everything as a :class:`MetricsSnapshot` — a
plain-data, picklable object that crosses process boundaries unchanged
(the parallel suite runner ships one back per worker task) and merges
field-wise:

* **counters** and **histograms** add sample-wise (per-process totals
  combine into run totals);
* **gauges** are point-in-time values, so a label-set collision keeps
  the *maximum* (deterministic regardless of merge order — the common
  gauges here, table sizes and throughput, want the peak anyway).

Label values are always stringified, matching the Prometheus data
model; label *names* are fixed per metric at creation time and
re-registration with a different type or label schema is an error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default histogram buckets (seconds-flavoured, like Prometheus').
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

LabelKey = Tuple[str, ...]


class MetricError(ValueError):
    """Invalid metric usage: bad labels, type clash, merge mismatch."""


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise MetricError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise MetricError(f"metric name cannot start with a digit: {name!r}")
    return name


class Metric:
    """Common labeled-sample machinery; use the concrete subclasses."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ):
        self.name = _validate_name(name)
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._samples: Dict[LabelKey, object] = {}

    def _key(self, labels: Dict[str, object]) -> LabelKey:
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"{self.name}: expected labels {sorted(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[n]) for n in self.labelnames)

    def samples(self) -> List[Tuple[LabelKey, object]]:
        """``(label_values, value)`` pairs in insertion order."""
        return list(self._samples.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name} "
            f"labels={self.labelnames} samples={len(self._samples)}>"
        )


class Counter(Metric):
    """Monotonically-increasing labeled counter."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: object) -> None:
        """Add ``amount`` (must be >= 0) to the labeled sample."""
        if amount < 0:
            raise MetricError(
                f"{self.name}: counters cannot decrease (inc {amount})"
            )
        key = self._key(labels)
        self._samples[key] = self._samples.get(key, 0) + amount

    def set_total(self, value: float, **labels: object) -> None:
        """Overwrite the labeled sample with a cumulative total.

        For adopting counters maintained elsewhere (e.g. the sieve's
        own admission/rejection tallies) without double counting; the
        value must not move backwards.
        """
        key = self._key(labels)
        if value < self._samples.get(key, 0):
            raise MetricError(
                f"{self.name}: counter total moved backwards "
                f"({self._samples[key]} -> {value})"
            )
        self._samples[key] = value

    def value(self, **labels: object) -> float:
        """Current value of the labeled sample (0 if never touched)."""
        return self._samples.get(self._key(labels), 0)


class Gauge(Metric):
    """Point-in-time labeled value (table sizes, throughput, ...)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        self._samples[self._key(labels)] = value

    def value(self, **labels: object) -> float:
        return self._samples.get(self._key(labels), 0)


@dataclass
class HistogramValue:
    """One labeled histogram sample: bucket counts + sum + count."""

    bucket_counts: List[int]
    sum: float = 0.0
    count: int = 0

    def observe(self, value: float, bounds: Sequence[float]) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                break
        # values beyond the last bound only land in the implicit +Inf
        # bucket, which is ``count`` itself.


class Histogram(Metric):
    """Labeled histogram over fixed, metric-wide bucket bounds."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise MetricError(
                f"{self.name}: bucket bounds must be sorted and non-empty"
            )
        self.buckets: Tuple[float, ...] = bounds

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        sample = self._samples.get(key)
        if sample is None:
            sample = HistogramValue(bucket_counts=[0] * len(self.buckets))
            self._samples[key] = sample
        sample.observe(value, self.buckets)

    def value(self, **labels: object) -> Optional[HistogramValue]:
        return self._samples.get(self._key(labels))


@dataclass
class MetricsSnapshot:
    """Plain-data capture of a registry — picklable and mergeable.

    ``metrics`` maps metric name to::

        {"kind": "counter"|"gauge"|"histogram", "help": str,
         "labelnames": (...,), "buckets": (...,)  # histograms only
         "samples": {label_values_tuple: number | histogram dict}}

    Histogram sample values are ``{"bucket_counts": [...], "sum": s,
    "count": n}``.  Everything is built from tuples/lists/dicts/numbers
    so the snapshot pickles and deep-compares cheaply.
    """

    metrics: Dict[str, dict] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Accumulate ``other`` into this snapshot, in place.

        Counters/histograms add; gauges keep the per-label maximum.
        Returns ``self`` for chaining.
        """
        for name, theirs in other.metrics.items():
            mine = self.metrics.get(name)
            if mine is None:
                self.metrics[name] = _copy_entry(theirs)
                continue
            if mine["kind"] != theirs["kind"] or tuple(
                mine["labelnames"]
            ) != tuple(theirs["labelnames"]):
                raise MetricError(
                    f"cannot merge metric {name!r}: "
                    f"{mine['kind']}{tuple(mine['labelnames'])} vs "
                    f"{theirs['kind']}{tuple(theirs['labelnames'])}"
                )
            kind = mine["kind"]
            if kind == "histogram" and tuple(mine["buckets"]) != tuple(
                theirs["buckets"]
            ):
                raise MetricError(
                    f"cannot merge histogram {name!r}: bucket bounds differ"
                )
            for key, value in theirs["samples"].items():
                current = mine["samples"].get(key)
                if current is None:
                    mine["samples"][key] = _copy_sample(value)
                elif kind == "counter":
                    mine["samples"][key] = current + value
                elif kind == "gauge":
                    mine["samples"][key] = max(current, value)
                else:  # histogram
                    current["bucket_counts"] = [
                        a + b
                        for a, b in zip(
                            current["bucket_counts"], value["bucket_counts"]
                        )
                    ]
                    current["sum"] += value["sum"]
                    current["count"] += value["count"]
        return self

    @classmethod
    def merged(cls, parts: Iterable["MetricsSnapshot"]) -> "MetricsSnapshot":
        """Merge any number of snapshots into a fresh one."""
        result = cls()
        for part in parts:
            result.merge(part)
        return result

    def to_jsonable(self) -> dict:
        """JSON-safe form: label tuples become ``{"labels": {...}}`` rows."""
        out = {}
        for name, entry in self.metrics.items():
            labelnames = list(entry["labelnames"])
            rows = []
            for key, value in entry["samples"].items():
                rows.append(
                    {
                        "labels": dict(zip(labelnames, key)),
                        "value": _copy_sample(value),
                    }
                )
            item = {
                "kind": entry["kind"],
                "help": entry["help"],
                "labelnames": labelnames,
                "samples": rows,
            }
            if entry["kind"] == "histogram":
                item["buckets"] = list(entry["buckets"])
            out[name] = item
        return out


def _copy_sample(value):
    if isinstance(value, dict):
        return {
            "bucket_counts": list(value["bucket_counts"]),
            "sum": value["sum"],
            "count": value["count"],
        }
    return value


def _copy_entry(entry: dict) -> dict:
    copied = {
        "kind": entry["kind"],
        "help": entry["help"],
        "labelnames": tuple(entry["labelnames"]),
        "samples": {
            key: _copy_sample(value)
            for key, value in entry["samples"].items()
        },
    }
    if entry["kind"] == "histogram":
        copied["buckets"] = tuple(entry["buckets"])
    return copied


class MetricsRegistry:
    """Insertion-ordered collection of named metrics.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: repeated
    registration with the same schema returns the existing metric, and
    a schema clash raises :class:`MetricError` (two call sites silently
    disagreeing about labels is the bug this catches).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name, help, labelnames, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls) or existing.labelnames != tuple(
                labelnames
            ):
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}{existing.labelnames}"
                )
            return existing
        metric = cls(name, help, labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        metric = self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )
        if buckets is not None and metric.buckets != tuple(buckets):
            raise MetricError(
                f"histogram {name!r} already registered with buckets "
                f"{metric.buckets}"
            )
        return metric

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def snapshot(self) -> MetricsSnapshot:
        """Deep-copied plain-data capture of every metric."""
        snap = MetricsSnapshot()
        # Exports must preserve metric registration order (fixed by
        # deterministic module import order), not re-sort by name.
        for metric in self._metrics.values():  # sievelint: disable=SVL006 -- registration order
            entry = {
                "kind": metric.kind,
                "help": metric.help,
                "labelnames": metric.labelnames,
                "samples": {},
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = metric.buckets
            for key, value in metric.samples():
                if isinstance(value, HistogramValue):
                    entry["samples"][key] = {
                        "bucket_counts": list(value.bucket_counts),
                        "sum": value.sum,
                        "count": value.count,
                    }
                else:
                    entry["samples"][key] = value
            snap.metrics[metric.name] = entry
        return snap

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot's samples into this registry's live metrics.

        Metrics absent from the registry are created with the
        snapshot's schema; merge semantics match
        :meth:`MetricsSnapshot.merge`.
        """
        for name, entry in snapshot.metrics.items():
            kind = entry["kind"]
            labelnames = tuple(entry["labelnames"])
            if kind == "counter":
                metric = self.counter(name, entry["help"], labelnames)
                for key, value in entry["samples"].items():
                    metric._samples[key] = metric._samples.get(key, 0) + value
            elif kind == "gauge":
                metric = self.gauge(name, entry["help"], labelnames)
                for key, value in entry["samples"].items():
                    metric._samples[key] = max(
                        metric._samples.get(key, value), value
                    )
            elif kind == "histogram":
                metric = self.histogram(
                    name, entry["help"], labelnames, buckets=entry["buckets"]
                )
                for key, value in entry["samples"].items():
                    sample = metric._samples.get(key)
                    if sample is None:
                        metric._samples[key] = HistogramValue(
                            bucket_counts=list(value["bucket_counts"]),
                            sum=value["sum"],
                            count=value["count"],
                        )
                    else:
                        sample.bucket_counts = [
                            a + b
                            for a, b in zip(
                                sample.bucket_counts, value["bucket_counts"]
                            )
                        ]
                        sample.sum += value["sum"]
                        sample.count += value["count"]
            else:  # pragma: no cover - snapshots only carry known kinds
                raise MetricError(f"unknown metric kind {kind!r} in snapshot")
