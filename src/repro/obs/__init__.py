"""``repro.obs`` — zero-overhead-when-disabled run telemetry.

The paper's argument is an accounting argument: sieving wins because it
eliminates allocation-writes.  This package makes those decisions
watchable while they happen instead of only as end-of-run aggregates:

* a labeled metrics registry (:class:`Counter` / :class:`Gauge` /
  :class:`Histogram`) whose :class:`MetricsSnapshot`\\ s are picklable
  and mergeable, so per-process results combine across the parallel
  suite runner;
* an append-only JSON-lines :class:`EventLog` plus :func:`span` /
  :func:`timer` helpers, written per run and appended to coherently by
  resumed checkpoint runs;
* two exporters: Prometheus text exposition (:func:`to_prometheus`,
  with a minimal :func:`parse_prometheus` validator) and JSON
  (:func:`to_json`).

Observability is off unless :func:`enable` (or the CLI's
``--metrics-out`` / ``--events-out`` / ``--progress`` flags) turns it
on; with it off, simulation output — ``CacheStats``, result JSON, and
the suite run manifest — is byte-identical to a build without this
package.
"""

from repro.obs.events import EventLog, read_events, span, timer
from repro.obs.export import (
    PrometheusParseError,
    parse_prometheus,
    to_json,
    to_prometheus,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.runtime import (
    ObsContext,
    disable,
    enable,
    enabled,
    get_context,
    get_events,
    get_registry,
    observability,
    scoped_registry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "MetricsSnapshot",
    "EventLog",
    "read_events",
    "span",
    "timer",
    "PrometheusParseError",
    "parse_prometheus",
    "to_json",
    "to_prometheus",
    "ObsContext",
    "enable",
    "disable",
    "enabled",
    "get_context",
    "get_events",
    "get_registry",
    "observability",
    "scoped_registry",
]
