"""Instrumentation glue between the simulators and the metrics registry.

Everything here is called **only when observability is enabled** — the
hot paths stay untouched when it is off.  Per-block costs are avoided
even when it is on: sieve decision counts are adopted from the tallies
the policies already keep (sampled at run end), epoch wall times are
observed once per boundary, and device-health transitions fire on the
rare transition itself.

Metric names emitted (see the README's Observability section):

==============================================  =========  ==========================
``sim_requests_total``                          counter    policy, engine
``sim_blocks_total``                            counter    policy, engine
``sim_wall_seconds_total``                      counter    policy, engine
``sim_blocks_per_second``                       gauge      policy, engine
``sim_epoch_wall_seconds``                      histogram  policy, engine
``sieve_admissions_total``                      counter    policy
``sieve_rejections_total``                      counter    policy, tier
``sieve_promotions_total``                      counter    policy
``sieve_tracked_blocks``                        gauge      policy
``imct_alias_collisions_total``                 counter    policy
``mct_inserts_total`` / ``mct_evictions_total`` counter    policy
``mct_entries`` / ``mct_peak_entries``          gauge      policy
``appliance_health_transitions_total``          counter    policy, from_state, to_state
==============================================  =========  ==========================
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.obs.metrics import MetricsRegistry

#: Histogram bounds for per-epoch wall times (sub-ms to minutes).
EPOCH_WALL_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 15.0, 60.0, 300.0,
)


def record_run_throughput(
    registry: MetricsRegistry,
    policy_name: str,
    engine: str,
    requests: int,
    blocks: int,
    wall_seconds: float,
) -> None:
    """Whole-run engine throughput counters + blocks/sec gauge."""
    labels = {"policy": policy_name, "engine": engine}
    registry.counter(
        "sim_requests_total", "Trace requests replayed", ("policy", "engine")
    ).inc(requests, **labels)
    registry.counter(
        "sim_blocks_total",
        "512-byte block accesses simulated",
        ("policy", "engine"),
    ).inc(blocks, **labels)
    registry.counter(
        "sim_wall_seconds_total",
        "Wall-clock seconds spent simulating",
        ("policy", "engine"),
    ).inc(wall_seconds, **labels)
    registry.gauge(
        "sim_blocks_per_second",
        "Simulation throughput of the last run",
        ("policy", "engine"),
    ).set(blocks / wall_seconds if wall_seconds > 0 else 0.0, **labels)


def make_epoch_timer(
    registry: MetricsRegistry, policy_name: str, engine: str
) -> Callable[[int, int], None]:
    """Boundary hook observing wall time between epoch boundaries.

    The returned callable matches the engines' ``boundary_hook``
    signature ``(epoch, cursor)``.
    """
    histogram = registry.histogram(
        "sim_epoch_wall_seconds",
        "Wall-clock seconds spent simulating each epoch",
        ("policy", "engine"),
        buckets=EPOCH_WALL_BUCKETS,
    )
    state = {"last": time.perf_counter()}

    def hook(epoch: int, cursor: int) -> None:
        now = time.perf_counter()
        histogram.observe(
            now - state["last"], policy=policy_name, engine=engine
        )
        state["last"] = now

    return hook


def enable_policy_tracking(policy) -> None:
    """Switch on the cheap in-policy instrumentation a policy offers.

    Currently: IMCT alias-collision tracking (a per-slot last-address
    shadow array, allocated only here).  Safe to call for any policy.
    """
    imct = getattr(policy, "imct", None)
    if imct is not None and hasattr(imct, "enable_collision_tracking"):
        imct.enable_collision_tracking()


def sample_sieve_metrics(
    registry: MetricsRegistry, policy, policy_name: str
) -> None:
    """Adopt the sieve's own decision tallies as cumulative counters.

    Reads whatever the policy exposes (duck-typed, all optional):
    SieveStore-C's admissions / tier rejections / promotions and its
    IMCT/MCT tables; SieveStore-D's tracked-block count.  Policies
    without tallies (AOD, WMNA, ...) contribute nothing.
    """
    labels = {"policy": policy_name}
    if hasattr(policy, "admissions"):
        registry.counter(
            "sieve_admissions_total",
            "Blocks admitted through the sieve",
            ("policy",),
        ).set_total(policy.admissions, **labels)
    if hasattr(policy, "imct_rejections"):
        rejections = registry.counter(
            "sieve_rejections_total",
            "Misses rejected by the sieve, per tier",
            ("policy", "tier"),
        )
        rejections.set_total(policy.imct_rejections, tier="imct", **labels)
        if hasattr(policy, "mct_rejections"):
            rejections.set_total(policy.mct_rejections, tier="mct", **labels)
    if hasattr(policy, "promotions"):
        registry.counter(
            "sieve_promotions_total",
            "Blocks promoted from the IMCT into the MCT",
            ("policy",),
        ).set_total(policy.promotions, **labels)
    if hasattr(policy, "tracked_blocks"):
        registry.gauge(
            "sieve_tracked_blocks",
            "Blocks with live metastate in the sieve",
            ("policy",),
        ).set(policy.tracked_blocks, **labels)

    imct = getattr(policy, "imct", None)
    if imct is not None and hasattr(imct, "alias_collisions"):
        registry.counter(
            "imct_alias_collisions_total",
            "IMCT miss recordings that aliased a different address "
            "(requires collision tracking)",
            ("policy",),
        ).set_total(imct.alias_collisions, **labels)
    mct = getattr(policy, "mct", None)
    if mct is not None and hasattr(mct, "inserts"):
        registry.counter(
            "mct_inserts_total", "Blocks entering the precise MCT", ("policy",)
        ).set_total(mct.inserts, **labels)
        registry.counter(
            "mct_evictions_total",
            "Stale blocks pruned from the precise MCT",
            ("policy",),
        ).set_total(mct.evictions, **labels)
        registry.gauge(
            "mct_entries", "Live MCT entries at end of run", ("policy",)
        ).set(len(mct), **labels)
        registry.gauge(
            "mct_peak_entries", "Peak MCT entries over the run", ("policy",)
        ).set(mct.peak_entries, **labels)


def make_health_observer(
    registry: MetricsRegistry, policy_name: str, events=None
) -> Callable[[float, object, object], None]:
    """Observer for the appliance's device-health state machine.

    Matches ``SieveStoreAppliance.health_observer``'s signature
    ``(time, old_state, new_state)``; transitions are rare, so this
    never touches the request hot path.
    """
    transitions = registry.counter(
        "appliance_health_transitions_total",
        "Device-health state-machine transitions",
        ("policy", "from_state", "to_state"),
    )

    def observer(sim_time: float, old, new) -> None:
        transitions.inc(
            policy=policy_name, from_state=old.name, to_state=new.name
        )
        if events is not None:
            events.emit(
                "health_transition",
                policy=policy_name,
                sim_time=round(float(sim_time), 3),
                from_state=old.name,
                to_state=new.name,
            )

    return observer


def combine_hooks(
    *hooks: Optional[Callable[[int, int], None]]
) -> Optional[Callable[[int, int], None]]:
    """Fold several optional ``(epoch, cursor)`` hooks into one."""
    active = [hook for hook in hooks if hook is not None]
    if not active:
        return None
    if len(active) == 1:
        return active[0]

    def combined(epoch: int, cursor: int) -> None:
        for hook in active:
            hook(epoch, cursor)

    return combined
