"""The process-wide observability switch.

Observability is **off by default**: :func:`get_context` returns
``None``, every instrumentation site short-circuits on that, and a run
produces byte-identical results and artifacts to a build without this
package (asserted by ``tests/sim/test_observability.py``).

:func:`enable` installs an :class:`ObsContext` (metrics registry +
optional JSON-lines event log); :func:`disable` tears it down.  The
parallel suite runner uses :func:`scoped_registry` to give each task a
fresh registry whose snapshot is shipped back and merged, so
cross-process totals combine without double counting.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry


@dataclass
class ObsContext:
    """What instrumented code sees when observability is on."""

    registry: MetricsRegistry
    events: Optional[EventLog] = None


_CONTEXT: Optional[ObsContext] = None


def enabled() -> bool:
    """True when observability has been enabled in this process."""
    return _CONTEXT is not None


def get_context() -> Optional[ObsContext]:
    """The active context, or ``None`` (observability off)."""
    return _CONTEXT


def get_registry() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` (observability off)."""
    return _CONTEXT.registry if _CONTEXT is not None else None


def get_events() -> Optional[EventLog]:
    """The active event log, or ``None``."""
    return _CONTEXT.events if _CONTEXT is not None else None


def enable(
    registry: Optional[MetricsRegistry] = None,
    events_path: Optional[Union[str, Path]] = None,
) -> ObsContext:
    """Turn observability on (replacing any previous context).

    A previous context's event log is closed unless the new context
    reuses it implicitly by path — callers wanting nesting should use
    :func:`scoped_registry` instead.
    """
    global _CONTEXT
    if _CONTEXT is not None and _CONTEXT.events is not None:
        _CONTEXT.events.close()
    _CONTEXT = ObsContext(
        registry=registry if registry is not None else MetricsRegistry(),
        events=EventLog(events_path) if events_path is not None else None,
    )
    return _CONTEXT


def disable() -> None:
    """Turn observability off and close the event log, if any."""
    global _CONTEXT
    if _CONTEXT is not None and _CONTEXT.events is not None:
        _CONTEXT.events.close()
    _CONTEXT = None


@contextmanager
def observability(
    events_path: Optional[Union[str, Path]] = None,
) -> Iterator[ObsContext]:
    """Enable observability for a block; restores the prior state after."""
    global _CONTEXT
    previous = _CONTEXT
    context = ObsContext(
        registry=MetricsRegistry(),
        events=EventLog(events_path) if events_path is not None else None,
    )
    _CONTEXT = context
    try:
        yield context
    finally:
        if context.events is not None:
            context.events.close()
        _CONTEXT = previous


@contextmanager
def scoped_registry() -> Iterator[ObsContext]:
    """Swap in a fresh registry, keeping the surrounding event log.

    Used per suite task: the task's metrics accumulate in isolation,
    its snapshot travels in the manifest, and the caller merges it into
    the parent registry — identical flow for in-process and worker
    execution.  A no-op-flavoured fresh context is installed even when
    observability was off, so callers must only use it when enabled.
    """
    global _CONTEXT
    previous = _CONTEXT
    context = ObsContext(
        registry=MetricsRegistry(),
        events=previous.events if previous is not None else None,
    )
    # The swap is intentionally per-process: a worker task's metrics
    # accumulate in the worker's own registry and travel home in the
    # task snapshot, so the parent never needs to see this rebind.
    _CONTEXT = context  # sievelint: disable=SVL008 -- per-process registry swap; snapshot returns via task result
    try:
        yield context
    finally:
        _CONTEXT = previous  # sievelint: disable=SVL008 -- restores the worker's own previous context
