"""JSON-lines event log + span/timer helpers.

One line per event::

    {"ts": 1754512345.123456, "event": "run_start", "policy": "...", ...}

The file is opened in **append** mode and every line is flushed as it
is written, so a run that crashes keeps everything emitted so far and a
resumed checkpoint run appends coherently to the same log — the
``run_resume`` event marks the seam.  Timestamps are wall-clock
(``time.time``); they are telemetry, not simulation time, and carry no
determinism guarantee.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, Optional, TextIO, Union


class EventLog:
    """Append-only JSON-lines event sink."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._file: Optional[TextIO] = open(self.path, "a", encoding="utf-8")

    def emit(self, event: str, **fields: object) -> None:
        """Write one event line (no-op after :meth:`close`)."""
        if self._file is None:
            return
        record = {"ts": round(time.time(), 6), "event": event}
        record.update(fields)
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> List[dict]:
    """Parse a JSON-lines event log back into dicts (testing/analysis)."""
    events = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


@contextmanager
def span(
    events: Optional[EventLog], name: str, **fields: object
) -> Iterator[None]:
    """Emit ``<name>_start`` / ``<name>_end`` around a block.

    The end event carries ``seconds`` (monotonic duration) and
    ``ok=False`` when the block raised.  A ``None`` event log makes the
    whole thing free, so call sites need no conditionals.
    """
    if events is None:
        yield
        return
    events.emit(f"{name}_start", **fields)
    started = time.perf_counter()
    try:
        yield
    except BaseException:
        events.emit(
            f"{name}_end",
            seconds=round(time.perf_counter() - started, 6),
            ok=False,
            **fields,
        )
        raise
    events.emit(
        f"{name}_end",
        seconds=round(time.perf_counter() - started, 6),
        ok=True,
        **fields,
    )


@contextmanager
def timer(histogram, **labels: object) -> Iterator[None]:
    """Observe a block's wall duration into a histogram metric.

    ``histogram`` may be ``None`` (observability off) — the block then
    runs untouched.
    """
    if histogram is None:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        histogram.observe(time.perf_counter() - started, **labels)
