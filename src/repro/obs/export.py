"""Snapshot exporters: Prometheus text exposition and JSON.

:func:`to_prometheus` emits the text exposition format (``# HELP`` /
``# TYPE`` headers, label escaping, histogram ``_bucket``/``_sum``/
``_count`` expansion with cumulative ``le`` buckets); it is what the
CLI writes for ``--metrics-out whatever.prom``.  :func:`parse_prometheus`
is the deliberately-minimal inverse used by tests and the CI smoke job
to validate that output — it understands exactly what ``to_prometheus``
produces, nothing more.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Tuple

from repro.obs.metrics import MetricsSnapshot

LabelKey = Tuple[Tuple[str, str], ...]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _label_string(labelnames, key, extra=()) -> str:
    pairs = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in list(zip(labelnames, key)) + list(extra)
    ]
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def to_prometheus(snapshot: MetricsSnapshot) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines = []
    for name, entry in snapshot.metrics.items():
        kind = entry["kind"]
        labelnames = list(entry["labelnames"])
        if entry["help"]:
            lines.append(f"# HELP {name} {_escape_help(entry['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            bounds = list(entry["buckets"])
            for key, value in entry["samples"].items():
                cumulative = 0
                for bound, count in zip(bounds, value["bucket_counts"]):
                    cumulative += count
                    labels = _label_string(
                        labelnames, key, [("le", _format_value(float(bound)))]
                    )
                    lines.append(
                        f"{name}_bucket{labels} {cumulative}"
                    )
                labels = _label_string(labelnames, key, [("le", "+Inf")])
                lines.append(f"{name}_bucket{labels} {value['count']}")
                plain = _label_string(labelnames, key)
                lines.append(
                    f"{name}_sum{plain} {_format_value(value['sum'])}"
                )
                lines.append(f"{name}_count{plain} {value['count']}")
        else:
            for key, value in entry["samples"].items():
                labels = _label_string(labelnames, key)
                lines.append(f"{name}{labels} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def to_json(snapshot: MetricsSnapshot, indent: int = 2) -> str:
    """Render a snapshot as deterministic, pretty-printed JSON."""
    return json.dumps(snapshot.to_jsonable(), indent=indent, sort_keys=True)


class PrometheusParseError(ValueError):
    """The text is not valid (minimal-dialect) Prometheus exposition."""


def _parse_labels(text: str) -> LabelKey:
    """``a="x",b="y"`` -> sorted ((name, value), ...) pairs."""
    pairs = []
    index = 0
    while index < len(text):
        eq = text.index("=", index)
        name = text[index:eq].strip()
        if not name.replace("_", "").isalnum():
            raise PrometheusParseError(f"bad label name {name!r}")
        if text[eq + 1] != '"':
            raise PrometheusParseError(f"unquoted label value after {name}")
        value = []
        pos = eq + 2
        while True:
            char = text[pos]
            if char == "\\":
                nxt = text[pos + 1]
                value.append(
                    {"\\": "\\", '"': '"', "n": "\n"}.get(nxt, "\\" + nxt)
                )
                pos += 2
            elif char == '"':
                pos += 1
                break
            else:
                value.append(char)
                pos += 1
        pairs.append((name, "".join(value)))
        if pos < len(text):
            if text[pos] != ",":
                raise PrometheusParseError(
                    f"expected ',' between labels, got {text[pos]!r}"
                )
            pos += 1
        index = pos
    return tuple(sorted(pairs))


def parse_prometheus(text: str) -> Dict[str, dict]:
    """Parse ``to_prometheus`` output back into plain data.

    Returns ``{metric_name: {"type": kind, "help": str|None,
    "samples": {label_pairs_tuple: float}}}`` where histogram series
    appear under their expanded ``_bucket``/``_sum``/``_count`` names
    attributed to the base metric.  Raises
    :class:`PrometheusParseError` on anything malformed — that is the
    point: CI feeds the CLI's export through this to prove the file is
    well-formed.
    """
    metrics: Dict[str, dict] = {}
    types: Dict[str, str] = {}

    def entry(name: str) -> dict:
        return metrics.setdefault(
            name, {"type": None, "help": None, "samples": {}}
        )

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            entry(name)["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram", "untyped"):
                raise PrometheusParseError(f"unknown type {kind!r}")
            entry(name)["type"] = kind
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            name = line[: line.index("{")]
            close = line.rindex("}")
            labels = _parse_labels(line[line.index("{") + 1 : close])
            value_text = line[close + 1 :].strip()
        else:
            name, _, value_text = line.partition(" ")
            labels = ()
            value_text = value_text.strip()
        if not value_text:
            raise PrometheusParseError(f"sample without a value: {raw!r}")
        try:
            value = float(value_text.replace("+Inf", "inf"))
        except ValueError:
            raise PrometheusParseError(
                f"bad sample value {value_text!r} on line {raw!r}"
            )
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = name[: -len(suffix)] if name.endswith(suffix) else None
            if trimmed and types.get(trimmed) == "histogram":
                base = trimmed
                break
        if base not in metrics or metrics[base]["type"] is None:
            raise PrometheusParseError(
                f"sample for {name!r} before its # TYPE line"
            )
        series = entry(base)["samples"]
        series_key = (name, labels)
        if series_key in series:
            raise PrometheusParseError(f"duplicate sample {series_key!r}")
        series[series_key] = value
    return metrics
