"""Multi-client serve bench: concurrent replay against one store.

The bench answers the serving-mode question end to end: N client
processes replay disjoint shards of one trace against a **shared**
store directory, each measuring real per-operation wall latency, and
the parent merges raw samples into nearest-rank percentiles plus a
sieved-vs-unsieved allocation-write comparison.

Client sharding is **by address hash**, not by time: every address is
always handled by the same client process
(``stable_bucket(address, clients, _CLIENT_SALT)``), so each client's
private sieve gate sees the complete miss history of its addresses and
miss-counting stays exact with zero cross-process coordination.  The
store directory is shared — sqlite WAL and the shard fanout carry the
concurrency.

The worker/manifest shape follows :mod:`repro.sim.parallel`: per-client
``.npz`` shards written up front, one top-level picklable task function
per client, raw results shipped back whole (latency percentiles do not
compose from per-client summaries — see
:func:`repro.serve.percentiles.merge_samples`), a
``BrokenProcessPool`` serial fallback, and a JSON manifest recording
each client's execution.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.admission import build_admission_gate, gate_allocation_writes
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs import runtime
from repro.serve.appliance import ServeStats, ServingCache
from repro.serve.backend import EnsembleBackend
from repro.serve.percentiles import LatencySummary, merge_samples, summarize
from repro.serve.store import (
    DEFAULT_INLINE_BYTES,
    DEFAULT_SHARDS,
    ShardedByteStore,
)
from repro.traces.columnar import ColumnarTrace
from repro.util.atomic import atomic_write
from repro.util.hashing import stable_bucket

#: Salt decorrelating client partitioning from store-shard placement.
_CLIENT_SALT = 0xC11E27

#: Manifest schema version for serve-bench runs.
MANIFEST_VERSION = 1

#: Latency classes the bench reports.
OP_KINDS = ("read", "write")


@dataclass(frozen=True)
class BenchOptions:
    """Everything a client worker needs, in picklable plain data."""

    gate_kind: str = "sieve"
    miss_latency: float = 0.0005
    payload_bytes: int = 4096
    store_shards: int = DEFAULT_SHARDS
    inline_bytes: int = DEFAULT_INLINE_BYTES
    seed: int = 0
    #: sieve thresholds (None keeps the paper defaults t1=9, t2=4).
    t1: Optional[int] = None
    t2: Optional[int] = None
    imct_slots: int = 1 << 16
    #: fault plan as its JSON dict (picklable), or None.
    fault_plan: Optional[dict] = None
    collect_metrics: bool = False


@dataclass
class ClientReport:
    """One client process's raw results (shipped back whole)."""

    client: int
    requests: int
    wall_seconds: float
    worker_pid: int
    #: raw per-op latency samples in seconds, keyed by OP_KINDS.
    latencies: Dict[str, List[float]]
    stats: ServeStats
    #: the client's private gate tally (None for stateless gates).
    gate_admissions: Optional[int]
    #: picklable MetricsSnapshot from the client's scoped registry.
    metrics: Optional[object] = None
    executor: str = "pool"


@dataclass
class BenchReport:
    """The merged outcome of one serve-bench run."""

    gate_kind: str
    clients: int
    requests: int
    wall_seconds: float
    #: nearest-rank summaries per op kind; None when the op never ran.
    latency: Dict[str, Optional[LatencySummary]]
    stats: ServeStats
    client_reports: List[ClientReport] = field(default_factory=list)

    @property
    def allocation_writes(self) -> int:
        """First-time admissions onto the device, summed over clients."""
        return self.stats.allocation_writes

    def to_dict(self) -> dict:
        return {
            "gate": self.gate_kind,
            "clients": self.clients,
            "requests": self.requests,
            "wall_seconds": round(self.wall_seconds, 6),
            "allocation_writes": self.allocation_writes,
            "latency": {
                op: summary.to_dict() if summary is not None else None
                for op, summary in sorted(self.latency.items())
            },
            "stats": self.stats.to_dict(),
        }

    def manifest(self) -> dict:
        """Per-client execution records, :mod:`repro.sim.parallel` style."""
        return {
            "version": MANIFEST_VERSION,
            "kind": "serve-bench",
            "gate": self.gate_kind,
            "clients": [
                {
                    "client": report.client,
                    "requests": report.requests,
                    "wall_seconds": round(report.wall_seconds, 6),
                    "worker_pid": report.worker_pid,
                    "executor": report.executor,
                    "allocation_writes": report.stats.allocation_writes,
                }
                for report in sorted(self.client_reports, key=lambda r: r.client)
            ],
        }

    def save_manifest(self, path: Union[str, Path]) -> None:
        import json

        with atomic_write(Path(path)) as handle:
            handle.write(
                (json.dumps(self.manifest(), indent=2) + "\n").encode()
            )


def partition_by_address(columns: ColumnarTrace, clients: int) -> List[np.ndarray]:
    """Row-index arrays per client, hashed on address (order preserved).

    Hashing the *address* (not the row) pins every block to one client
    for the run's whole duration, which is what keeps each client's
    private sieve exact.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    buckets = np.fromiter(
        (
            stable_bucket(int(address), clients, salt=_CLIENT_SALT)
            for address in columns.address.tolist()
        ),
        dtype=np.int64,
        count=len(columns),
    )
    return [np.flatnonzero(buckets == index) for index in range(clients)]


def _build_cache(
    store_dir: Union[str, Path], client: int, options: BenchOptions
) -> ServingCache:
    gate = build_admission_gate(
        options.gate_kind,
        imct_slots=options.imct_slots,
        t1=options.t1,
        t2=options.t2,
    )
    injector = (
        FaultInjector(FaultPlan.from_dict(options.fault_plan))
        if options.fault_plan is not None
        else None
    )
    backend = EnsembleBackend(
        miss_latency=options.miss_latency,
        payload_bytes=options.payload_bytes,
        seed=options.seed,  # shared seed: payloads agree across clients
    )
    store = ShardedByteStore(
        store_dir,
        shards=options.store_shards,
        inline_bytes=options.inline_bytes,
    )
    return ServingCache(store, gate, backend, injector)


def _replay(
    cache: ServingCache, columns: ColumnarTrace
) -> Dict[str, List[float]]:
    """Replay rows in issue order, timing each operation in real time."""
    latencies: Dict[str, List[float]] = {op: [] for op in OP_KINDS}
    issue = columns.issue_time.tolist()
    addresses = columns.address.tolist()
    writes = columns.is_write.tolist()
    for issued, address, is_write in zip(issue, addresses, writes):
        started = time.perf_counter()
        if is_write:
            cache.write(address, issued)
        else:
            cache.read(address, issued)
        latencies["write" if is_write else "read"].append(
            time.perf_counter() - started
        )
    return latencies


def _run_client(
    client: int,
    shard_path: str,
    store_dir: str,
    options: BenchOptions,
) -> ClientReport:
    """One client's whole run (top-level: must pickle into workers)."""
    import os

    columns = ColumnarTrace.load_npz(shard_path)
    started = time.perf_counter()
    snapshot = None
    if options.collect_metrics:
        with runtime.scoped_registry() as obs_context:
            with _build_cache(store_dir, client, options) as cache:
                latencies = _replay(cache, columns)
            snapshot = obs_context.registry.snapshot()
    else:
        with _build_cache(store_dir, client, options) as cache:
            latencies = _replay(cache, columns)
    return ClientReport(
        client=client,
        requests=len(columns),
        wall_seconds=time.perf_counter() - started,
        worker_pid=os.getpid(),
        latencies=latencies,
        stats=cache.stats,
        gate_admissions=gate_allocation_writes(cache.gate),
        metrics=snapshot,
    )


def _merge_reports(
    gate_kind: str,
    clients: int,
    reports: Sequence[ClientReport],
    wall_seconds: float,
) -> BenchReport:
    latency: Dict[str, Optional[LatencySummary]] = {}
    for op in OP_KINDS:
        samples = merge_samples(report.latencies[op] for report in reports)
        latency[op] = summarize(samples) if samples else None
    return BenchReport(
        gate_kind=gate_kind,
        clients=clients,
        requests=sum(report.requests for report in reports),
        wall_seconds=wall_seconds,
        latency=latency,
        stats=ServeStats.merged(report.stats for report in reports),
        client_reports=list(reports),
    )


def run_serve_bench(
    columns: ColumnarTrace,
    store_dir: Union[str, Path],
    work_dir: Union[str, Path],
    clients: int = 4,
    options: Optional[BenchOptions] = None,
    parallel: bool = True,
) -> BenchReport:
    """Replay ``columns`` through ``clients`` processes sharing one store.

    ``work_dir`` receives the per-client ``.npz`` trace shards (the
    same hand-off :mod:`repro.sim.parallel` uses — workers load columns
    from disk instead of unpickling arrays through the pool).  With
    ``parallel=False`` (or a single client) everything runs in-process,
    which is also the automatic fallback when the pool breaks.
    """
    if options is None:
        options = BenchOptions()
    if options.collect_metrics and not runtime.enabled():
        options = BenchOptions(**{**options.__dict__, "collect_metrics": False})
    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    shard_paths: List[str] = []
    for client, indices in enumerate(partition_by_address(columns, clients)):
        shard = columns.take(indices)
        path = work_dir / f"client-{client:03d}.npz"
        shard.save_npz(path)
        shard_paths.append(str(path))

    started = time.perf_counter()
    reports: List[ClientReport]
    if parallel and clients > 1:
        try:
            with ProcessPoolExecutor(max_workers=clients) as pool:
                futures = [
                    pool.submit(
                        _run_client, client, shard_paths[client],
                        str(store_dir), options,
                    )
                    for client in range(clients)
                ]
                reports = [future.result() for future in futures]
        except BrokenProcessPool:
            reports = _run_serial(shard_paths, store_dir, options)
            for report in reports:
                report.executor = "serial-fallback"
    else:
        reports = _run_serial(shard_paths, store_dir, options)
        for report in reports:
            report.executor = "serial"
    wall_seconds = time.perf_counter() - started

    merged = _merge_reports(options.gate_kind, clients, reports, wall_seconds)
    _adopt_metrics(reports)
    return merged


def _run_serial(
    shard_paths: Sequence[str],
    store_dir: Union[str, Path],
    options: BenchOptions,
) -> List[ClientReport]:
    return [
        _run_client(client, path, str(store_dir), options)
        for client, path in enumerate(shard_paths)
    ]


def _adopt_metrics(reports: Sequence[ClientReport]) -> None:
    """Merge worker metric snapshots into the parent registry, if on."""
    registry = runtime.get_registry()
    if registry is None:
        return
    for report in reports:
        if report.metrics is not None:
            registry.merge_snapshot(report.metrics)


def run_sieve_comparison(
    columns: ColumnarTrace,
    base_dir: Union[str, Path],
    clients: int = 4,
    options: Optional[BenchOptions] = None,
    parallel: bool = True,
) -> Dict[str, object]:
    """Two-pass bench: the sieve vs. the allocate-on-demand baseline.

    Each pass gets a fresh store directory under ``base_dir``; the
    returned dict carries both :class:`BenchReport` objects plus the
    headline number — allocation writes the sieve kept off the device.
    """
    if options is None:
        options = BenchOptions()
    base_dir = Path(base_dir)
    sieved = run_serve_bench(
        columns,
        base_dir / "store-sieved",
        base_dir / "shards",
        clients=clients,
        options=options,
        parallel=parallel,
    )
    unsieved_options = BenchOptions(
        **{**options.__dict__, "gate_kind": "unsieved"}
    )
    unsieved = run_serve_bench(
        columns,
        base_dir / "store-unsieved",
        base_dir / "shards",
        clients=clients,
        options=unsieved_options,
        parallel=parallel,
    )
    saved = unsieved.allocation_writes - sieved.allocation_writes
    return {
        "sieved": sieved,
        "unsieved": unsieved,
        "allocation_writes_saved": saved,
        "allocation_write_ratio": (
            sieved.allocation_writes / unsieved.allocation_writes
            if unsieved.allocation_writes
            else None
        ),
    }
