"""Nearest-rank latency percentiles for the serve bench.

The serve bench reports per-operation latency the way diskcache's
cache-benchmarks doc does: median, 90th percentile, 99th percentile,
and maximum (the mean is deliberately absent — it hides tail behaviour,
which is the whole point of measuring a disk-backed cache under
concurrent load).

The estimator is **nearest-rank**: percentile ``p`` of ``n`` sorted
samples is the value at one-based rank ``ceil(p * n)`` (clamped to at
least 1).  Nearest-rank always returns an actually-observed sample —
no interpolation between latencies that never happened — and merging
across client processes is exact: concatenate the raw samples and rank
again, which :func:`merge_samples` does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Sequence

#: The report's percentile set (fraction, label).
REPORT_PERCENTILES = ((0.5, "median"), (0.9, "p90"), (0.99, "p99"))


def nearest_rank(sorted_samples: Sequence[float], fraction: float) -> float:
    """Percentile ``fraction`` of an ascending-sorted sample list.

    Uses the nearest-rank definition (one-based rank
    ``ceil(fraction * n)``, exact integer arithmetic — no float ceil).
    ``fraction`` must be in ``(0, 1]``; the samples must be non-empty
    and already sorted ascending.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    n = len(sorted_samples)
    if n == 0:
        raise ValueError("cannot take a percentile of zero samples")
    # Exact ceiling of fraction * n, using the fraction's *decimal*
    # value: float arithmetic rounds 0.99 * 100 up to 99.00000000000001
    # (shifting the p99 of exactly 100 samples onto the maximum), and
    # the raw binary value of 0.9 sits just above 9/10 (ceil would give
    # rank 91 of 100).  ``str(float)`` is the shortest round-tripping
    # decimal — the number the caller actually wrote — so ranks land
    # exactly on the intended boundary in both directions.
    k = math.ceil(Fraction(str(fraction)) * n)
    k = max(1, min(k, n))
    return sorted_samples[k - 1]


@dataclass(frozen=True)
class LatencySummary:
    """Nearest-rank summary of one operation's latency samples (seconds)."""

    count: int
    median: float
    p90: float
    p99: float
    max: float
    total: float

    def to_dict(self) -> Dict[str, float]:
        """Plain-JSON form (seconds, as measured)."""
        return {
            "count": self.count,
            "median": self.median,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.max,
            "total": self.total,
        }


def summarize(samples: Iterable[float]) -> LatencySummary:
    """Nearest-rank summary of raw latency samples (any order).

    Raises ``ValueError`` on an empty sample set — the bench reports
    ``None`` for operations that never ran rather than a fake zero row.
    """
    ordered = sorted(samples)
    if not ordered:
        raise ValueError("cannot summarize zero samples")
    return LatencySummary(
        count=len(ordered),
        median=nearest_rank(ordered, 0.5),
        p90=nearest_rank(ordered, 0.9),
        p99=nearest_rank(ordered, 0.99),
        max=ordered[-1],
        total=sum(ordered),
    )


def merge_samples(parts: Iterable[Sequence[float]]) -> List[float]:
    """Concatenate per-process sample lists for exact merged ranking.

    Nearest-rank percentiles do not compose from per-process summaries
    (the p99 of per-client p99s is not the global p99), so the bench
    ships raw samples back from every client and ranks the union.
    """
    merged: List[float] = []
    for part in parts:
        merged.extend(part)
    return merged
