"""The serving cache: sieve-gated admission over a real byte store.

:class:`ServingCache` is the live counterpart of the trace simulator's
frame-counting appliance.  It glues together the three existing layers:

* a :class:`~repro.serve.store.ShardedByteStore` holding actual bytes
  on an actual filesystem (the "SSD"),
* an admission gate from :func:`repro.core.admission.build_admission_gate`
  (the paper's continuous sieve, or an unsieved baseline) consulted on
  every miss, and
* a :class:`~repro.faults.injector.FaultInjector` driving the PR-3
  device-health state machine — HEALTHY serves normally, DEGRADED
  drops individual device reads/writes, BYPASS sends everything
  straight to the backing ensemble.

Two clocks, deliberately distinct: device health is evaluated at the
**trace issue time** passed into every operation (so a fault plan's
DEGRADED→BYPASS transition lands deterministically at the same request
for every run), while operation *latency* is whatever real wall time
the caller measures around the call.

Every public operation returns the payload bytes, so callers can (and
the tests do) verify content end to end against the deterministic
backend.  :class:`ServeStats` is plain picklable data and merges across
client processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.cache.allocation import AllocationPolicy
from repro.faults.injector import DeviceHealth, FaultInjector
from repro.obs import runtime
from repro.serve.backend import EnsembleBackend
from repro.serve.store import ShardedByteStore
from repro.util.units import bytes_to_blocks


@dataclass
class ServeStats:
    """One serving cache's operation tallies (picklable, mergeable)."""

    requests: int = 0
    reads: int = 0
    writes: int = 0
    hits: int = 0
    misses: int = 0
    #: first-time admissions the gate let onto the device — the
    #: endurance cost the sieve exists to suppress.
    allocation_writes: int = 0
    #: overwrites of already-resident blocks (not allocation cost).
    update_writes: int = 0
    #: operations served entirely by the ensemble (device in BYPASS).
    bypassed: int = 0
    #: individual device ops dropped while DEGRADED.
    read_faults: int = 0
    write_faults: int = 0
    #: ``"healthy->bypass": count`` style transition tallies.
    health_transitions: Dict[str, int] = field(default_factory=dict)

    def merge(self, other: "ServeStats") -> "ServeStats":
        """Elementwise sum (client processes tally independently)."""
        merged_transitions = dict(self.health_transitions)
        for key, count in other.health_transitions.items():
            merged_transitions[key] = merged_transitions.get(key, 0) + count
        return ServeStats(
            requests=self.requests + other.requests,
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            allocation_writes=self.allocation_writes + other.allocation_writes,
            update_writes=self.update_writes + other.update_writes,
            bypassed=self.bypassed + other.bypassed,
            read_faults=self.read_faults + other.read_faults,
            write_faults=self.write_faults + other.write_faults,
            health_transitions=merged_transitions,
        )

    @classmethod
    def merged(cls, parts: Iterable["ServeStats"]) -> "ServeStats":
        total = cls()
        for part in parts:
            total = total.merge(part)
        return total

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "reads": self.reads,
            "writes": self.writes,
            "hits": self.hits,
            "misses": self.misses,
            "allocation_writes": self.allocation_writes,
            "update_writes": self.update_writes,
            "bypassed": self.bypassed,
            "read_faults": self.read_faults,
            "write_faults": self.write_faults,
            "health_transitions": dict(sorted(self.health_transitions.items())),
        }


class ServingCache:
    """Byte-serving cache: store + admission gate + fault machinery."""

    def __init__(
        self,
        store: ShardedByteStore,
        gate: AllocationPolicy,
        backend: EnsembleBackend,
        injector: Optional[FaultInjector] = None,
    ):
        self.store = store
        self.gate = gate
        self.backend = backend
        self.injector = injector
        self.stats = ServeStats()
        self._last_health = DeviceHealth.HEALTHY

    # -- health ------------------------------------------------------------
    def _health(self, time: float) -> DeviceHealth:
        """Device health at ``time``, tallying state transitions."""
        if self.injector is None:
            return DeviceHealth.HEALTHY
        health = self.injector.health_at(time)
        if health is not self._last_health:
            key = f"{self._last_health.value}->{health.value}"
            self.stats.health_transitions[key] = (
                self.stats.health_transitions.get(key, 0) + 1
            )
            registry = runtime.get_registry()
            if registry is not None:
                registry.counter(
                    "serve_health_transitions_total",
                    "Serving-cache device-health transitions",
                    ("from_state", "to_state"),
                ).inc(
                    from_state=self._last_health.value,
                    to_state=health.value,
                )
            self._last_health = health
        return health

    # -- operations --------------------------------------------------------
    def read(self, address: int, time: float) -> bytes:
        """Serve a read: device hit, ensemble fallback, sieve on miss."""
        self.stats.requests += 1
        self.stats.reads += 1
        health = self._health(time)
        if health is DeviceHealth.BYPASS:
            self.stats.bypassed += 1
            self._observe_op("read", "bypass")
            return self.backend.read(address)
        if health is DeviceHealth.DEGRADED and self.injector.read_fails(time):
            self.stats.read_faults += 1
            value = None  # the device read errored; fall back to the ensemble
        else:
            value = self.store.get(address)
        if value is not None:
            self.stats.hits += 1
            self._observe_op("read", "hit")
            return value
        self.stats.misses += 1
        self._observe_op("read", "miss")
        value = self.backend.read(address)
        self._maybe_admit(address, False, time, value)
        return value

    def write(self, address: int, time: float) -> bytes:
        """Serve a write: write-through to the ensemble, sieve the device copy."""
        self.stats.requests += 1
        self.stats.writes += 1
        value = self.backend.write(address)
        health = self._health(time)
        if health is DeviceHealth.BYPASS:
            self.stats.bypassed += 1
            self._observe_op("write", "bypass")
            return value
        if self.store.contains(address):
            # Resident block: the device copy must be refreshed or
            # dropped — a failed update may never leave stale bytes.
            self.stats.hits += 1
            if health is DeviceHealth.DEGRADED and self.injector.write_fails(time):
                self.stats.write_faults += 1
                self.store.delete(address)
                self._observe_op("write", "fault")
            else:
                self.store.put(address, value)
                self.stats.update_writes += 1
                self._record_device_write(time, value)
                self._observe_op("write", "hit")
            return value
        self.stats.misses += 1
        self._observe_op("write", "miss")
        self._maybe_admit(address, True, time, value)
        return value

    # -- admission ---------------------------------------------------------
    def _maybe_admit(
        self, address: int, is_write: bool, time: float, value: bytes
    ) -> None:
        """Consult the gate on a miss; allocate when it says so."""
        if not self.gate.wants(address, is_write, time):
            return
        if (
            self._last_health is DeviceHealth.DEGRADED
            and self.injector.write_fails(time)
        ):
            # The allocation write itself errored: no frame, no wear.
            self.stats.write_faults += 1
            return
        self.store.put(address, value)
        self.stats.allocation_writes += 1
        self._record_device_write(time, value)
        registry = runtime.get_registry()
        if registry is not None:
            registry.counter(
                "serve_allocation_writes_total",
                "Blocks admitted onto the serving device",
            ).inc()

    def _record_device_write(self, time: float, value: bytes) -> None:
        if self.injector is not None:
            self.injector.record_ssd_write(time, bytes_to_blocks(len(value)))

    # -- observability -----------------------------------------------------
    @staticmethod
    def _observe_op(op: str, outcome: str) -> None:
        registry = runtime.get_registry()
        if registry is not None:
            registry.counter(
                "serve_ops_total",
                "Serving-cache operations by outcome",
                ("op", "outcome"),
            ).inc(op=op, outcome=outcome)

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "ServingCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
