"""Live disk-backed serving mode.

Where :mod:`repro.sim` *counts* what a SieveStore appliance would do,
this package *does* it: real bytes in a sqlite+file shard store, a real
sieve gating admission, real fault-plan degradation, and a multi-process
bench measuring real per-operation latency.  See each module's docs:

* :mod:`repro.serve.store` — the sharded byte store (the "SSD")
* :mod:`repro.serve.backend` — the simulated ensemble behind it
* :mod:`repro.serve.appliance` — sieve-gated serving cache + stats
* :mod:`repro.serve.percentiles` — nearest-rank latency summaries
* :mod:`repro.serve.bench` — N-client concurrent replay + comparison
"""

from repro.serve.appliance import ServeStats, ServingCache
from repro.serve.backend import EnsembleBackend
from repro.serve.bench import (
    BenchOptions,
    BenchReport,
    ClientReport,
    partition_by_address,
    run_serve_bench,
    run_sieve_comparison,
)
from repro.serve.percentiles import (
    LatencySummary,
    merge_samples,
    nearest_rank,
    summarize,
)
from repro.serve.store import ShardedByteStore, StoreError

__all__ = [
    "BenchOptions",
    "BenchReport",
    "ClientReport",
    "EnsembleBackend",
    "LatencySummary",
    "ServeStats",
    "ServingCache",
    "ShardedByteStore",
    "StoreError",
    "merge_samples",
    "nearest_rank",
    "partition_by_address",
    "run_serve_bench",
    "run_sieve_comparison",
    "summarize",
]
