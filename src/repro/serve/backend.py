"""Simulated ensemble backend: the disks behind the serve cache.

The serving appliance fronts an ensemble of disk-backed servers.  For
the bench we do not need real remote disks — we need a backend whose
*content is deterministic* (so reads verify against writes across
processes with no shared state) and whose *miss cost is configurable*
(so the latency distributions actually separate hits from misses).

Payloads are pure functions of the address: eight bytes of
``mix64(mix64(seed) ^ address)`` tiled to ``payload_bytes``.  Any
process, handed the same seed, regenerates the exact bytes any other
process stored — which is what lets N independent clients share one
store directory and still validate every payload they read back.

The miss penalty is a real ``time.sleep`` — the bench measures real
wall-clock latency around real filesystem operations, so the backend
has to burn real time too, not simulated time.
"""

from __future__ import annotations

import time

from repro.util.hashing import mix64


class EnsembleBackend:
    """Deterministic-content backend with a configurable access penalty."""

    def __init__(
        self,
        miss_latency: float = 0.0,
        payload_bytes: int = 4096,
        seed: int = 0,
    ):
        if miss_latency < 0:
            raise ValueError(f"miss_latency must be >= 0, got {miss_latency}")
        if payload_bytes < 1:
            raise ValueError(f"payload_bytes must be >= 1, got {payload_bytes}")
        self.miss_latency = miss_latency
        self.payload_bytes = payload_bytes
        self._seed_mix = mix64(seed)
        #: operation tallies (ensemble load the cache failed to absorb)
        self.reads = 0
        self.writes = 0

    def payload(self, address: int) -> bytes:
        """The bytes the ensemble holds at ``address`` (no latency)."""
        word = mix64(self._seed_mix ^ (address & (2**64 - 1)))
        pattern = word.to_bytes(8, "little")
        repeats = -(-self.payload_bytes // 8)
        return (pattern * repeats)[: self.payload_bytes]

    def read(self, address: int) -> bytes:
        """Fetch ``address`` from the ensemble (pays the miss penalty)."""
        self.reads += 1
        if self.miss_latency:
            time.sleep(self.miss_latency)
        return self.payload(address)

    def write(self, address: int) -> bytes:
        """Write through to the ensemble; returns the durable payload.

        The bench's write path is write-through: every write lands on
        the backing disks whether or not the sieve admits the block to
        the cache, exactly like the paper's appliance (the SSD absorbs
        *re*-accesses, not the first write).
        """
        self.writes += 1
        if self.miss_latency:
            time.sleep(self.miss_latency)
        return self.payload(address)
