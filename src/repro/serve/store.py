"""Sqlite+file shard-fanout byte store: the serve layer's real device.

This is the first layer of the reproduction that stores *actual bytes
on an actual filesystem* instead of counting frames.  The design
follows ``python-diskcache``'s ``core.py``: sqlite rows carry the
metadata (and small values inline as BLOBs), large values spill into
sibling files, and the whole keyspace fans out over ``shards``
independent sqlite databases so concurrent writers contend on 1/Nth of
the lock space instead of one global file lock.

Layout under ``directory``::

    store.json                  # shard count + layout version (frozen at init)
    shard-000/data.sqlite       # rows: key, size, raw BLOB | filename
    shard-000/<key:016x>.val    # spilled values (atomic_write, fsynced)
    shard-001/...

Shard selection is ``stable_bucket(key, shards, salt)`` — SplitMix64,
the same deterministic hash the IMCT uses — so any process computes the
same placement with no coordination.

Concurrency contract: every :class:`ShardedByteStore` instance is safe
to share between threads (connections are per-thread via
``threading.local``), and any number of instances/processes may operate
on one directory concurrently (sqlite WAL + busy timeout).  Readers
never see partial values: inline BLOBs are transactional, spilled files
are published with :func:`repro.util.atomic.atomic_write` *before* the
row that names them — a crash can orphan a file, never a row.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.util.atomic import atomic_write
from repro.util.hashing import stable_bucket

#: Bump when the on-disk layout changes; opening refuses other versions.
STORE_LAYOUT_VERSION = 1

#: Values at or below this many bytes live inline in sqlite; larger
#: values spill into sibling files (diskcache's min_file_size idea).
DEFAULT_INLINE_BYTES = 4096

#: Default shard fanout.
DEFAULT_SHARDS = 8

#: Salt decorrelating shard placement from the IMCT's slot hashing.
_SHARD_SALT = 0x5E1EC7

_SCHEMA = """
CREATE TABLE IF NOT EXISTS cache (
    key INTEGER PRIMARY KEY,
    size INTEGER NOT NULL,
    raw BLOB,
    filename TEXT
)
"""


class StoreError(Exception):
    """The store directory is unusable or layout-incompatible."""


class ShardedByteStore:
    """A byte store fanned out over ``shards`` sqlite databases.

    See the module docs for the layout and concurrency contract.  All
    keys are Python ints (the serve layer uses packed block addresses);
    values are ``bytes``.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        shards: int = DEFAULT_SHARDS,
        inline_bytes: int = DEFAULT_INLINE_BYTES,
        sqlite_timeout: float = 60.0,
    ):
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        if inline_bytes < 0:
            raise ValueError(f"inline_bytes must be >= 0, got {inline_bytes}")
        self.directory = Path(directory)
        self.inline_bytes = inline_bytes
        self._sqlite_timeout = sqlite_timeout
        self._local = threading.local()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.shards = self._adopt_layout(shards)
        for index in range(self.shards):
            self._shard_dir(index).mkdir(exist_ok=True)

    # -- layout ------------------------------------------------------------
    def _adopt_layout(self, shards: int) -> int:
        """Freeze (or adopt) the directory's shard count.

        The first store to initialize a directory writes ``store.json``;
        later opens adopt the recorded fanout (re-sharding in place
        would orphan every existing row), refusing only a layout-version
        mismatch.
        """
        meta_path = self.directory / "store.json"
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, ValueError) as exc:
                raise StoreError(f"unreadable store metadata {meta_path}: {exc}")
            if meta.get("layout_version") != STORE_LAYOUT_VERSION:
                raise StoreError(
                    f"store {self.directory} has layout version "
                    f"{meta.get('layout_version')!r} "
                    f"(expected {STORE_LAYOUT_VERSION})"
                )
            return int(meta["shards"])
        with atomic_write(meta_path) as handle:
            handle.write(
                json.dumps(
                    {"layout_version": STORE_LAYOUT_VERSION, "shards": shards}
                ).encode()
            )
        return shards

    def _shard_dir(self, index: int) -> Path:
        return self.directory / f"shard-{index:03d}"

    def shard_of(self, key: int) -> int:
        """Deterministic shard index for a key (stable across processes)."""
        return stable_bucket(key, self.shards, salt=_SHARD_SALT)

    # -- connections -------------------------------------------------------
    def _connection(self, index: int) -> sqlite3.Connection:
        """This thread's connection to one shard (opened lazily)."""
        pool: Dict[int, sqlite3.Connection] = getattr(
            self._local, "connections", None
        ) or {}
        if not hasattr(self._local, "connections"):
            self._local.connections = pool
        conn = pool.get(index)
        if conn is None:
            conn = sqlite3.connect(
                str(self._shard_dir(index) / "data.sqlite"),
                timeout=self._sqlite_timeout,
                isolation_level=None,  # autocommit; explicit BEGIN when needed
            )
            conn.execute("PRAGMA journal_mode = WAL")
            conn.execute("PRAGMA synchronous = NORMAL")
            conn.execute(_SCHEMA)
            pool[index] = conn
        return conn

    # -- mapping operations ------------------------------------------------
    def get(self, key: int) -> Optional[bytes]:
        """The value stored under ``key``, or ``None``.

        A row whose spilled file is missing (a crash between a delete's
        two steps) self-heals: the row is dropped and the key misses.
        """
        index = self.shard_of(key)
        conn = self._connection(index)
        row = conn.execute(
            "SELECT size, raw, filename FROM cache WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        size, raw, filename = row
        if raw is not None:
            return bytes(raw)
        path = self._shard_dir(index) / filename
        try:
            value = path.read_bytes()
        except OSError:
            self._heal(conn, key, filename)
            return None
        if len(value) != size:
            # Torn file (should be impossible under atomic_write); treat
            # exactly like a missing file.
            self._heal(conn, key, filename)
            return None
        return value

    @staticmethod
    def _heal(conn: sqlite3.Connection, key: int, filename: str) -> None:
        """Drop a row whose spilled file is unreadable.

        Conditional on the filename so a concurrent overwrite that
        already replaced the row (e.g. spilled -> inline) is never
        collateral damage.
        """
        conn.execute(
            "DELETE FROM cache WHERE key = ? AND filename = ?",
            (key, filename),
        )

    def put(self, key: int, value: bytes) -> None:
        """Store ``value`` under ``key`` (insert or overwrite)."""
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise TypeError(f"value must be bytes-like, got {type(value).__name__}")
        value = bytes(value)
        index = self.shard_of(key)
        conn = self._connection(index)
        if len(value) <= self.inline_bytes:
            raw, filename = value, None
        else:
            raw, filename = None, f"{key & (2**64 - 1):016x}.val"
            # Publish the bytes before the row that names them: a crash
            # here orphans a file, never a row pointing at nothing.
            with atomic_write(self._shard_dir(index) / filename) as handle:
                handle.write(value)
        previous = conn.execute(
            "SELECT filename FROM cache WHERE key = ?", (key,)
        ).fetchone()
        conn.execute(
            "INSERT OR REPLACE INTO cache (key, size, raw, filename) "
            "VALUES (?, ?, ?, ?)",
            (key, len(value), raw, filename),
        )
        if previous is not None and previous[0] is not None and previous[0] != filename:
            # The old value was spilled and the new one is inline (or
            # under a different name): drop the stale file.
            self._unlink_quietly(self._shard_dir(index) / previous[0])

    def delete(self, key: int) -> bool:
        """Remove ``key``; True when a value was present."""
        index = self.shard_of(key)
        conn = self._connection(index)
        row = conn.execute(
            "SELECT filename FROM cache WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return False
        conn.execute("DELETE FROM cache WHERE key = ?", (key,))
        if row[0] is not None:
            self._unlink_quietly(self._shard_dir(index) / row[0])
        return True

    def contains(self, key: int) -> bool:
        """True when ``key`` has a stored value (no payload read)."""
        conn = self._connection(self.shard_of(key))
        return (
            conn.execute(
                "SELECT 1 FROM cache WHERE key = ?", (key,)
            ).fetchone()
            is not None
        )

    __contains__ = contains

    def __len__(self) -> int:
        """Total entries across all shards."""
        return sum(
            self._connection(i).execute("SELECT COUNT(*) FROM cache").fetchone()[0]
            for i in range(self.shards)
        )

    def keys(self) -> Iterator[int]:
        """All stored keys, shard by shard, ascending within a shard."""
        for index in range(self.shards):
            rows = self._connection(index).execute(
                "SELECT key FROM cache ORDER BY key"
            ).fetchall()
            for (key,) in rows:
                yield key

    def shard_sizes(self) -> Dict[int, int]:
        """Entry count per shard index (fanout diagnostics)."""
        return {
            index: self._connection(index)
            .execute("SELECT COUNT(*) FROM cache")
            .fetchone()[0]
            for index in range(self.shards)
        }

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Close this instance's (thread-local) connections."""
        pool = getattr(self._local, "connections", None)
        if pool:
            for conn in pool.values():
                conn.close()
            pool.clear()

    def __enter__(self) -> "ShardedByteStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _unlink_quietly(path: Path) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass
