"""Self-tuning sieves (the paper's Section 7 "scaling and tuning").

The paper fixes its thresholds empirically (t = 10 for SieveStore-D;
t1 = 9, t2 = 4 for SieveStore-C) and notes the hit-rate is insensitive
in the high range but collapses if the threshold is too low.  That
makes the thresholds natural candidates for closed-loop control, which
this module provides:

* :class:`AutoThresholdSieveStoreD` replaces the fixed access-count
  threshold with a *capacity-fill target*: at each epoch boundary it
  picks the highest-count blocks until the cache is filled to the
  target fraction (never admitting below a safety floor).  The
  threshold thus adapts to workload intensity — exactly what a
  deployment at a different ensemble scale needs.

* :class:`AdaptiveSieveStoreC` wraps the two-tier continuous sieve
  with a controller on the exact-tier threshold t2: if the admission
  rate (allocation-writes per hour) exceeds its budget, t2 is raised;
  if admissions fall far below budget, t2 is lowered (never below 1).
  The budget defaults to a small multiple of the cache's capacity per
  day, bounding both pollution and allocation-write load by
  construction.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.core.sievestore_c import SieveStoreC, SieveStoreCConfig
from repro.core.sievestore_d import SieveStoreD, SieveStoreDConfig


class AutoThresholdSieveStoreD(SieveStoreD):
    """SieveStore-D with a capacity-fill target instead of a fixed t.

    Args:
        capacity_blocks: cache capacity.
        fill_target: fraction of capacity to fill each epoch (the rest
            is headroom, mirroring the paper's "room to spare").
        floor_threshold: never admit blocks at or below this epoch
            count, however empty the cache would stay — the guard
            against the inadequate-sieving regime the paper observed at
            low thresholds.
    """

    name = "sievestore-d-auto"

    def __init__(
        self,
        capacity_blocks: int,
        fill_target: float = 0.9,
        floor_threshold: int = 4,
    ):
        if not 0 < fill_target <= 1:
            raise ValueError(f"fill_target must be in (0, 1], got {fill_target}")
        super().__init__(
            SieveStoreDConfig(
                threshold=floor_threshold, capacity_blocks=capacity_blocks
            )
        )
        self.fill_target = fill_target
        self.floor_threshold = floor_threshold
        #: effective threshold chosen at each epoch (for reporting)
        self.chosen_thresholds: List[int] = []

    def select_allocation(self, counts: Counter) -> Set[int]:
        budget = max(1, int(self.config.capacity_blocks * self.fill_target))
        qualified = sorted(
            (
                (count, address)
                for address, count in counts.items()
                if count > self.floor_threshold
            ),
            reverse=True,
        )
        selected = qualified[:budget]
        self.chosen_thresholds.append(
            selected[-1][0] if selected else self.floor_threshold
        )
        return {address for _, address in selected}


@dataclass(frozen=True)
class AdmissionBudget:
    """Allocation-write budget for the adaptive continuous sieve.

    ``per_day`` defaults to one cache-fill per day — generous against
    the paper's measured SieveStore allocation volumes, tight against
    unsieved churn.
    """

    per_day: float

    @classmethod
    def cache_turnovers(cls, capacity_blocks: int, turnovers_per_day: float = 1.0):
        """Budget of N cache-fills worth of admissions per day."""
        if turnovers_per_day <= 0:
            raise ValueError("turnovers_per_day must be positive")
        return cls(per_day=capacity_blocks * turnovers_per_day)

    @property
    def per_interval(self) -> float:
        """Budget expressed per day (pro-rated by the controller)."""
        return self.per_day


class AdaptiveSieveStoreC(SieveStoreC):
    """SieveStore-C with closed-loop control of the exact threshold t2.

    Every ``adjust_interval`` seconds the controller compares the
    admissions made during the interval against the pro-rated budget:

    * above budget -> raise t2 (stronger sieving);
    * below a quarter of budget and t2 above its floor -> lower t2
      (the sieve is over-tight; capture is being left on the table).
    """

    name = "sievestore-c-adaptive"

    def __init__(
        self,
        config: Optional[SieveStoreCConfig] = None,
        budget: Optional[AdmissionBudget] = None,
        capacity_blocks: int = 1 << 16,
        adjust_interval: float = 3600.0,
        t2_bounds: Tuple[int, int] = (1, 16),
    ):
        super().__init__(config)
        if adjust_interval <= 0:
            raise ValueError("adjust_interval must be positive")
        if not 1 <= t2_bounds[0] <= t2_bounds[1]:
            raise ValueError(f"invalid t2 bounds {t2_bounds}")
        self.budget = budget or AdmissionBudget.cache_turnovers(capacity_blocks)
        self.adjust_interval = adjust_interval
        self.t2_bounds = t2_bounds
        self._t2 = self.config.t2
        self._interval_start = 0.0
        self._interval_admissions = 0
        #: (time, t2) control trajectory for reporting
        self.t2_history: List[Tuple[float, int]] = [(0.0, self._t2)]

    @property
    def current_t2(self) -> int:
        """The controller's current exact-tier threshold."""
        return self._t2

    def wants(self, address: int, is_write: bool, time: float) -> bool:
        self._maybe_adjust(time)
        before = self.admissions
        admitted = self._wants_with_t2(address, is_write, time)
        if self.admissions > before:
            self._interval_admissions += self.admissions - before
        return admitted

    def _wants_with_t2(self, address: int, is_write: bool, time: float) -> bool:
        """Tier logic with the controller's t2 instead of the config's."""
        if self.config.single_tier_admission:
            return self._tier1_only(address, time)
        if address in self.mct:
            return self._adaptive_tier2(address, time)
        slot_count = self.imct.record_miss(address, time)
        if slot_count < self.config.t1:
            self.imct_rejections += 1
            return False
        self.mct.track(address)
        self.promotions += 1
        return False

    def _adaptive_tier2(self, address: int, time: float) -> bool:
        exact = self.mct.record_miss(address, time)
        if exact < self._t2:
            self.mct_rejections += 1
            return False
        self.mct.forget(address)
        self.admissions += 1
        return True

    def _maybe_adjust(self, time: float) -> None:
        if time - self._interval_start < self.adjust_interval:
            return
        intervals_per_day = 86400.0 / self.adjust_interval
        budget = self.budget.per_day / intervals_per_day
        lo, hi = self.t2_bounds
        if self._interval_admissions > budget and self._t2 < hi:
            self._t2 += 1
        elif self._interval_admissions < budget / 4 and self._t2 > lo:
            self._t2 -= 1
        if self.t2_history[-1][1] != self._t2:
            self.t2_history.append((time, self._t2))
        self._interval_start = time
        self._interval_admissions = 0
