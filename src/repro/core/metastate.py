"""Metastate memory budgeting (the paper's "~8 GB of memory" figure).

Sieving's defining cost is state for blocks *not* in the cache.  This
module models that state analytically so deployments at other scales
can size their appliance:

* **SieveStore-C**: IMCT (k counter bytes + a last-update stamp per
  slot) plus the MCT (hash-table entry per tracked block: key, k
  counters, stamp, bucket overhead).  The paper reports "about 8GB of
  memory" for its 13-server ensemble.
* **SieveStore-D**: the on-disk access log — one <address, count>
  tuple per access, shrunk by incremental per-key compaction to one
  tuple per unique block touched since the last compaction.

These are hardware-sizing estimates (packed C structures), not Python
object sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import GIB


@dataclass(frozen=True)
class MetastateBudget:
    """Sizing assumptions for a production realization."""

    #: bytes per subwindow counter (saturating 8-bit counters suffice:
    #: thresholds are single digits)
    counter_bytes: int = 1
    subwindows: int = 4
    #: last-update subwindow stamp per counter group
    stamp_bytes: int = 2
    #: block address key (6 bytes cover 2^48 blocks = 128 PB at 512 B)
    key_bytes: int = 6
    #: per-entry hash-table overhead (bucket pointers / open addressing
    #: slack)
    hash_overhead_bytes: int = 10
    #: bytes per logged <address, count> tuple (packed binary record)
    log_record_bytes: int = 8

    def imct_bytes(self, slots: int) -> int:
        """IMCT size: dense array of counter groups."""
        if slots < 0:
            raise ValueError("slots must be non-negative")
        return slots * (self.counter_bytes * self.subwindows + self.stamp_bytes)

    def mct_bytes(self, tracked_blocks: int) -> int:
        """MCT size: hash table keyed by block address."""
        if tracked_blocks < 0:
            raise ValueError("tracked_blocks must be non-negative")
        per_entry = (
            self.key_bytes
            + self.counter_bytes * self.subwindows
            + self.stamp_bytes
            + self.hash_overhead_bytes
        )
        return tracked_blocks * per_entry

    def sieve_c_bytes(self, imct_slots: int, mct_entries: int) -> int:
        """Total SieveStore-C metastate bytes (IMCT + MCT)."""
        return self.imct_bytes(imct_slots) + self.mct_bytes(mct_entries)

    def log_bytes(self, accesses: int, unique_blocks: int, compacted: bool) -> int:
        """SieveStore-D log size, raw or after per-key compaction."""
        records = unique_blocks if compacted else accesses
        if records < 0:
            raise ValueError("record count must be non-negative")
        return records * self.log_record_bytes


DEFAULT_BUDGET = MetastateBudget()


def paper_scale_example(budget: MetastateBudget = DEFAULT_BUDGET) -> dict:
    """Reproduce the paper's ~8 GB sieve-state figure.

    The paper's ensemble touches up to ~2.4 G unique blocks per day;
    sizing the IMCT at ~one slot per daily-unique block and assuming
    a few tens of millions of MCT entries (blocks past tier 1 within
    the window) lands near the quoted "about 8GB of memory".
    """
    imct_slots = int(1.2e9)
    mct_entries = int(40e6)
    total = budget.sieve_c_bytes(imct_slots, mct_entries)
    return {
        "imct_slots": imct_slots,
        "mct_entries": mct_entries,
        "imct_gib": budget.imct_bytes(imct_slots) / GIB,
        "mct_gib": budget.mct_bytes(mct_entries) / GIB,
        "total_gib": total / GIB,
    }
