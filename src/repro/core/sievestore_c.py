"""SieveStore-C: continuous, hysteresis-based lazy cache allocation.

Section 3.3 of the paper.  Each access is first checked against the
cache; a miss is then checked against the two-tier sieve:

1. the miss is counted in the **IMCT** (imprecise, aliased, fixed-size);
   if the block's slot count has not reached ``t1`` the block stays
   unallocated and is served from the underlying storage;
2. once past the IMCT, the block's misses are counted *exactly* in the
   **MCT**; after ``t2`` further misses there, the block is allocated a
   frame (one allocation-write).

The paper tunes t1 = 9 and t2 = 4 over an 8-hour window split into four
2-hour subwindows.  The net effect is lazy allocation on the
(t1 + t2) = 13th miss within a recent window — low-reuse blocks (the
vast majority, by O1) never get that far, so allocation-writes nearly
vanish.

``single_tier_admission`` turns off the MCT check and admits on the
IMCT threshold alone; the paper reports this performs poorly because of
aliasing ("too many blocks with low-reuse were found to be piggy-backing
on the miss-counts of more popular blocks"), and the ablation bench
reproduces that result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.allocation import AllocationPolicy
from repro.core.imct import ImpreciseMissCountTable
from repro.core.mct import MissCountTable
from repro.core.windows import WindowSpec

#: The paper's tuned tier-1 (IMCT) threshold.
DEFAULT_T1 = 9
#: The paper's tuned tier-2 (MCT) threshold.
DEFAULT_T2 = 4


@dataclass(frozen=True)
class SieveStoreCConfig:
    """Parameters of the continuous sieve.

    ``imct_slots`` is sized relative to the workload: the paper's
    full-scale IMCT+MCT occupied ~8 GB for a ~6.4 TB ensemble; scaled
    experiments shrink it with the trace (see DESIGN.md).
    """

    imct_slots: int = 1 << 16
    t1: int = DEFAULT_T1
    t2: int = DEFAULT_T2
    window: WindowSpec = field(default_factory=WindowSpec)
    single_tier_admission: bool = False

    def __post_init__(self) -> None:
        if self.t1 < 1 or self.t2 < 0:
            raise ValueError(f"invalid thresholds t1={self.t1}, t2={self.t2}")
        if self.imct_slots <= 0:
            raise ValueError(f"imct_slots must be positive: {self.imct_slots}")


class SieveStoreC(AllocationPolicy):
    """The continuous SieveStore sieve as an allocation policy.

    Plug into the simulation engine together with a
    :class:`~repro.cache.block_cache.BlockCache` (LRU replacement, as in
    the paper's evaluation).
    """

    name = "sievestore-c"

    def __init__(self, config: Optional[SieveStoreCConfig] = None):
        self.config = config or SieveStoreCConfig()
        self.imct = ImpreciseMissCountTable(
            slots=self.config.imct_slots, window=self.config.window
        )
        self.mct = MissCountTable(window=self.config.window)
        # Config is frozen, so the per-miss mode/threshold lookups are
        # hoisted out of wants().  Named to stay clear of the mutable
        # controller state AdaptiveSieveStoreC layers on top (its _t2).
        self._single_tier = self.config.single_tier_admission
        self._t1 = self.config.t1
        self._tier2_threshold = self.config.t2
        #: blocks admitted through the sieve (allocation decisions)
        self.admissions = 0
        #: misses rejected at tier 1
        self.imct_rejections = 0
        #: misses that promoted a block from the IMCT into the MCT
        self.promotions = 0
        #: misses rejected at tier 2
        self.mct_rejections = 0

    def wants(self, address: int, is_write: bool, time: float) -> bool:
        """Apply the two-tier sieve to one miss.

        Every miss is counted somewhere: in the MCT if the block is
        already past tier 1 (exact counting), otherwise in the IMCT
        (imprecise counting).  A block is admitted when its MCT count
        reaches t2 — i.e. on the t2-th exact miss after promotion.
        """
        if self._single_tier:
            return self._tier1_only(address, time)
        if address in self.mct:
            return self._tier2(address, time)
        slot_count = self.imct.record_miss(address, time)
        if slot_count < self._t1:
            self.imct_rejections += 1
            return False
        # Promotion: the block graduates to exact counting with a zero
        # MCT count — the paper requires t2 *additional* misses after
        # passing tier 1.  The aliased IMCT slot is deliberately left
        # intact: other blocks sharing the slot must still earn their
        # own promotion.
        self.mct.track(address)
        self.promotions += 1
        return False

    def _tier2(self, address: int, time: float) -> bool:
        exact = self.mct.record_miss(address, time)
        if exact < self._tier2_threshold:
            self.mct_rejections += 1
            return False
        self.mct.forget(address)
        self.admissions += 1
        return True

    def _tier1_only(self, address: int, time: float) -> bool:
        """Single-tier ablation: admit on the IMCT threshold alone."""
        slot_count = self.imct.record_miss(address, time)
        if slot_count < self._t1:
            self.imct_rejections += 1
            return False
        self.imct.reset_slot(address)
        self.admissions += 1
        return True

    # ------------------------------------------------------------------
    def metastate_entries(self) -> dict:
        """Sieve metastate sizes, for the memory-budget analyses."""
        return {
            "imct_slots": self.imct.slots,
            "mct_entries": len(self.mct),
            "mct_peak_entries": self.mct.peak_entries,
        }
