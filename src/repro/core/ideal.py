"""Ideal (oracle) sieves and the oracle-retention analysis of Section 3.1.

Two oracles from the paper:

* **Ideal day-by-day sieve** ("the ideal SieveStore that captures the
  top 1% of blocks each day", Figure 5's left-most bar): at the start of
  each day, the cache magically holds exactly the day's top-1% most
  accessed blocks.  It needs the day's access counts in advance, which
  is what makes it an oracle; it upper-bounds SieveStore-D (but not
  SieveStore-C, which adapts continuously).

* **Oracle retention** (the thought-experiment behind Table 2): assume
  a replacement policy that keeps the top 1% resident at all times, and
  compare allocation policies purely by the allocation-writes they then
  incur.  That analysis is analytic, not simulated — see
  :func:`repro.analysis.tables.table2_rows`.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, List, Optional, Sequence, Set

from repro.cache.allocation import AllocationPolicy


def top_fraction_blocks(counts: Counter, fraction: float = 0.01) -> Set[int]:
    """The most-accessed ``fraction`` of blocks in ``counts``.

    The set size is ``ceil(fraction * unique_blocks)`` (at least 1 for a
    non-empty counter).  Ties at the boundary are broken by address for
    determinism.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if not counts:
        return set()
    k = max(1, math.ceil(len(counts) * fraction))
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return {address for address, _ in ranked[:k]}


class IdealDailySieve(AllocationPolicy):
    """Oracle: installs each day's top-1% block set at the day's start.

    Args:
        daily_counts: per-day block access counters for the trace this
            policy will be run against (the oracle's future knowledge).
        fraction: popularity cut (the paper uses the top 1%).
        capacity_blocks: cache capacity; the selection is truncated to
            fit, most-accessed first.
    """

    name = "ideal"

    def __init__(
        self,
        daily_counts: Sequence[Counter],
        fraction: float = 0.01,
        capacity_blocks: Optional[int] = None,
    ):
        self.daily_counts = list(daily_counts)
        self.fraction = fraction
        self.capacity_blocks = capacity_blocks
        #: allocation-writes implied by each day's batch (set by engine
        #: accounting; the ideal policy itself only selects sets)

    def epoch_boundary(self, day: int) -> Optional[Iterable[int]]:
        if day >= len(self.daily_counts):
            return set()
        selected = top_fraction_blocks(self.daily_counts[day], self.fraction)
        if self.capacity_blocks is not None and len(selected) > self.capacity_blocks:
            counts = self.daily_counts[day]
            ranked = sorted(selected, key=lambda a: (-counts[a], a))
            selected = set(ranked[: self.capacity_blocks])
        return selected

    def wants(self, address: int, is_write: bool, time: float) -> bool:
        return False


def ideal_capture_shares(
    daily_counts: Sequence[Counter], fraction: float = 0.01
) -> List[float]:
    """Fraction of each day's accesses falling in that day's top set.

    This is the closed-form version of running :class:`IdealDailySieve`
    through the engine: because the top set is resident for the whole
    day, every access to it hits.
    """
    shares = []
    for counts in daily_counts:
        total = sum(counts.values())
        if total == 0:
            shares.append(0.0)
            continue
        top = top_fraction_blocks(counts, fraction)
        shares.append(sum(counts[a] for a in top) / total)
    return shares
