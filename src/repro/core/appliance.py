"""The SieveStore appliance: sieve + cache + SSD accounting in one node.

Figure 4 of the paper: SieveStore deploys as a transparent caching
appliance interposed (logically) between the servers and the storage
ensemble.  Every block request is checked against the SSD-resident
cache; hits are served from the SSD, misses go to the underlying
ensemble, and the allocation policy (the sieve) decides which missed
blocks earn a frame.

This class is the production-facing composition used by the examples
and driven by :mod:`repro.sim.engine`; it faithfully implements the
paper's accounting:

* hit/miss/allocation-write counts at 512-byte block granularity;
* per-minute SSD traffic in 4-KB units (sub-4KB charged as full units);
* allocation-writes scheduled at the *completion time* of the request
  that missed, "because allocation requests can occur only after the
  data has been fetched from the underlying storage" (Section 4), with
  per-block completions linearly interpolated for multi-block requests;
* discrete batch moves optionally staggered off the critical path (the
  paper's assumption for SieveStore-D's epoch moves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.allocation import AllocationPolicy
from repro.cache.block_cache import BlockCache
from repro.cache.stats import CacheStats
from repro.cache.write_policy import DirtyTracker, WriteMode
from repro.faults.injector import DeviceHealth, FaultInjector
from repro.util.units import blocks_to_io_units


@dataclass(frozen=True)
class RequestOutcome:
    """Where one request's blocks were served from / what they cost."""

    hit_blocks: int
    miss_blocks: int
    allocated_blocks: int

    @property
    def total_blocks(self) -> int:
        """Blocks the request touched (hits + misses)."""
        return self.hit_blocks + self.miss_blocks

    @property
    def served_from_ssd(self) -> bool:
        """True if every block hit (the request never touched a disk)."""
        return self.miss_blocks == 0 and self.hit_blocks > 0


class SieveStoreAppliance:
    """One ensemble-level cache node: cache + allocation policy + stats.

    Args:
        cache: the SSD block cache (metastate only).
        policy: the allocation policy / sieve.
        stats: statistics sink (per-day and per-minute).
        batch_moves_staggered: if True (the paper's SieveStore-D
            assumption), epoch batch moves are counted as
            allocation-writes in the day totals but not charged to any
            minute's SSD occupancy, since they are scheduled into idle
            periods.  Continuous allocation-writes are always charged.
        epoch_seconds: period of the policy's batch boundaries.  The
            paper's epoch is one calendar day (the default); the
            Section 5.1 sensitivity analysis shortens it.  Epoch index
            ``k``'s boundary fires at ``k * epoch_seconds``, and its
            batch allocation-writes are attributed to the calendar day
            containing that instant — for sub-day epochs this is *not*
            day ``k``.
        write_mode: write-through (the paper-equivalent default — the
            ensemble sees every write immediately) or write-back (the
            non-volatile cache absorbs writes and flushes dirty blocks
            on eviction, coalescing repeated writes to hot blocks).
            Only backing-store accounting differs; the SSD-side figures
            are identical in both modes.
        faults: optional :class:`~repro.faults.injector.FaultInjector`
            driving the device-health state machine.  With ``None`` (the
            default) every fault path is skipped entirely and the
            appliance behaves byte-identically to earlier revisions.

    Device-health state machine (``faults`` present):

    * ``HEALTHY`` — normal operation.
    * ``DEGRADED`` — transient errors / latency degradation: an SSD
      read that errors falls back to the backing ensemble (counted as a
      miss plus ``read_errors``; the block stays resident), an SSD
      write that errors invalidates the frame and routes the write to
      the ensemble (``write_errors``), and a failed allocation write
      suppresses the insert.  The sieve keeps observing throughout.
    * ``BYPASS`` — the device is gone (outage or wear-out): on entry
      dirty blocks are force-flushed (write-back correctness) and the
      cache contents dropped; every request passes straight through to
      the ensemble, while the sieve keeps counting misses so blocks
      re-earn allocation after recovery.

    Epoch batch moves are background, retriable transfers, so they are
    not subject to per-operation transient errors — but they do count
    toward endurance wear, and are suppressed entirely in BYPASS.
    """

    def __init__(
        self,
        cache: BlockCache,
        policy: AllocationPolicy,
        stats: CacheStats,
        batch_moves_staggered: bool = True,
        write_mode: WriteMode = WriteMode.WRITE_THROUGH,
        epoch_seconds: float = 86400.0,
        faults: Optional[FaultInjector] = None,
    ):
        self.cache = cache
        self.policy = policy
        self.stats = stats
        self.batch_moves_staggered = batch_moves_staggered
        self.write_mode = write_mode
        self.epoch_seconds = float(epoch_seconds)
        self.dirty = DirtyTracker()
        self.faults = faults
        self.health = DeviceHealth.HEALTHY
        #: optional ``(time, old_state, new_state)`` callback fired on
        #: device-health transitions (observability layer; transitions
        #: are rare, so the request hot path never sees it).  Excluded
        #: from pickling — checkpoints restore with no observer and the
        #: resuming engine re-attaches its own.
        self.health_observer = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["health_observer"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Checkpoints written before the observability layer existed
        # carry no observer field at all.
        self.__dict__.setdefault("health_observer", None)

    def begin_day(self, day: int) -> int:
        """Apply the policy's epoch batch for epoch ``day``; returns blocks moved in.

        Allocation-writes for batch moves are attributed to the epoch
        boundary's instant, ``day * epoch_seconds`` — and hence to the
        calendar day containing it (or suppressed from minute accounting
        when staggered — the paper's assumption that moves ride idle
        bandwidth).
        """
        if self.faults is not None:
            self._update_health(float(day) * self.epoch_seconds)
            if self.health is DeviceHealth.BYPASS:
                # The device is gone: the policy's epoch state must
                # still advance, but nothing can be installed.
                self.policy.epoch_boundary(day)
                return 0
        batch = self.policy.epoch_boundary(day)
        if batch is None:
            return 0
        new_set = set(batch)  # materialize once; the batch may be lazy
        boundary_time = float(day) * self.epoch_seconds
        if self.write_mode is WriteMode.WRITE_BACK and len(self.dirty):
            evicted_dirty = [
                address
                for address in self.cache.residents()
                if address not in new_set and address in self.dirty
            ]
            if evicted_dirty:
                flushed = self.dirty.clean_many(evicted_dirty)
                self.stats.record_backing_write(
                    boundary_time, blocks=flushed, is_writeback=True
                )
        inserted, _removed = self.cache.replace_contents(new_set)
        if inserted:
            self.stats.record_allocation_write(boundary_time, blocks=inserted)
            if not self.batch_moves_staggered:
                self.stats.record_ssd_io(
                    boundary_time, blocks_to_io_units(inserted), is_write=True
                )
            if self.faults is not None:
                self.faults.record_ssd_write(boundary_time, inserted)
        return inserted

    def process_request(self, request) -> RequestOutcome:
        """Run one multi-block request through the cache and the sieve.

        Returns the per-request outcome; statistics are accumulated into
        ``self.stats`` as a side effect.
        """
        if self.faults is not None:
            return self._process_request_faulty(request)
        cache = self.cache
        policy = self.policy
        stats = self.stats
        is_write = request.is_write
        issue = request.issue_time
        span = request.completion_time - issue
        n = request.block_count

        write_back = self.write_mode is WriteMode.WRITE_BACK
        hit_blocks = 0
        allocated = 0
        backing_writes = 0
        for offset, address in enumerate(request.addresses()):
            hit = cache.access(address)
            policy.observe(address, is_write, issue, hit)
            if hit:
                hit_blocks += 1
                stats.record_hit(issue, is_write)
                if is_write:
                    if write_back:
                        self.dirty.mark(address)
                    else:
                        backing_writes += 1
                continue
            stats.record_miss(issue, is_write)
            allocate = policy.wants(address, is_write, issue)
            if allocate and not cache.peek(address):
                completion = issue + span * ((offset + 1) / n)
                victim = cache.insert(address)
                allocated += 1
                stats.record_allocation_write(completion)
                if victim is not None and self.dirty.clean(victim):
                    stats.record_backing_write(
                        completion, is_writeback=True
                    )
                if is_write and write_back:
                    # The allocated frame holds the new data; the
                    # ensemble has not seen this write yet.
                    self.dirty.mark(address)
                    continue
            if is_write:
                # Write misses (and write-allocations under
                # write-through) reach the backing ensemble directly.
                backing_writes += 1

        if backing_writes:
            stats.record_backing_write(issue, blocks=backing_writes)

        if allocated:
            # The allocated blocks of one request are contiguous, so the
            # insertion write coalesces into ceil(allocated/8) 4-KB units,
            # charged when the fetched data is available (request
            # completion).
            stats.record_ssd_io(
                request.completion_time,
                blocks_to_io_units(allocated),
                is_write=True,
            )
        if hit_blocks:
            io_units = blocks_to_io_units(hit_blocks)
            stats.record_ssd_io(issue, io_units, is_write=is_write)
        return RequestOutcome(
            hit_blocks=hit_blocks,
            miss_blocks=n - hit_blocks,
            allocated_blocks=allocated,
        )

    def _update_health(self, time: float) -> None:
        """Walk the device-health state machine at ``time``.

        Entering BYPASS models whole-device data loss: dirty blocks are
        force-flushed first (correctness-preserving under write-back; a
        no-op under write-through) and the cache contents dropped, so a
        recovered device starts cold and the sieve re-earns allocations.
        """
        new = self.faults.health_at(time)
        if new is self.health:
            return
        if new is DeviceHealth.BYPASS:
            self.flush_dirty(time)
            self.cache.clear()
        if self.health_observer is not None:
            self.health_observer(time, self.health, new)
        self.health = new

    def _process_request_faulty(self, request) -> RequestOutcome:
        """Fault-aware twin of :meth:`process_request`.

        Kept as a separate method so the no-fault hot path above stays
        textually untouched: a run without a fault plan is guaranteed
        byte-identical to earlier revisions.
        """
        faults = self.faults
        cache = self.cache
        policy = self.policy
        stats = self.stats
        is_write = request.is_write
        issue = request.issue_time
        span = request.completion_time - issue
        n = request.block_count

        self._update_health(issue)

        if self.health is DeviceHealth.BYPASS:
            # Pass-through: every block misses the (empty) cache.  The
            # sieve still observes and miss-counts so blocks re-earn
            # allocation after recovery, but nothing is installed.
            for address in request.addresses():
                policy.observe(address, is_write, issue, False)
                stats.record_miss(issue, is_write)
                policy.wants(address, is_write, issue)
                stats.record_bypass_access(issue)
            if is_write:
                stats.record_backing_write(issue, blocks=n)
            return RequestOutcome(
                hit_blocks=0, miss_blocks=n, allocated_blocks=0
            )

        degraded = self.health is DeviceHealth.DEGRADED
        write_back = self.write_mode is WriteMode.WRITE_BACK
        hit_blocks = 0
        allocated = 0
        backing_writes = 0
        for offset, address in enumerate(request.addresses()):
            hit = cache.access(address)
            if hit and degraded:
                if is_write and faults.write_fails(issue):
                    # The frame no longer holds valid data: invalidate
                    # it and let the ensemble take the write (the new
                    # data supersedes any dirty content block-wholly).
                    stats.record_write_error(issue)
                    stats.record_miss(issue, is_write)
                    cache.discard(address)
                    if write_back:
                        self.dirty.clean(address)
                    policy.observe(address, is_write, issue, False)
                    backing_writes += 1
                    continue
                if not is_write and faults.read_fails(issue):
                    # Fall back to the backing ensemble; the block stays
                    # resident and may serve the next access.
                    stats.record_read_error(issue)
                    stats.record_miss(issue, is_write)
                    policy.observe(address, is_write, issue, False)
                    continue
            policy.observe(address, is_write, issue, hit)
            if hit:
                hit_blocks += 1
                stats.record_hit(issue, is_write)
                if is_write:
                    faults.record_ssd_write(issue, 1)
                    if write_back:
                        self.dirty.mark(address)
                    else:
                        backing_writes += 1
                continue
            stats.record_miss(issue, is_write)
            allocate = policy.wants(address, is_write, issue)
            if allocate and not cache.peek(address):
                completion = issue + span * ((offset + 1) / n)
                if degraded and faults.write_fails(completion):
                    # The allocation write errored: suppress the insert;
                    # the sieve keeps observing, so the block can earn a
                    # frame again once the device behaves.
                    stats.record_write_error(completion)
                else:
                    victim = cache.insert(address)
                    allocated += 1
                    stats.record_allocation_write(completion)
                    faults.record_ssd_write(completion, 1)
                    if victim is not None and self.dirty.clean(victim):
                        stats.record_backing_write(
                            completion, is_writeback=True
                        )
                    if is_write and write_back:
                        self.dirty.mark(address)
                        continue
            if is_write:
                backing_writes += 1

        if backing_writes:
            stats.record_backing_write(issue, blocks=backing_writes)
        if allocated:
            stats.record_ssd_io(
                request.completion_time,
                blocks_to_io_units(allocated),
                is_write=True,
            )
        if hit_blocks:
            stats.record_ssd_io(
                issue, blocks_to_io_units(hit_blocks), is_write=is_write
            )
        return RequestOutcome(
            hit_blocks=hit_blocks,
            miss_blocks=n - hit_blocks,
            allocated_blocks=allocated,
        )

    def flush_dirty(self, time: float) -> int:
        """Write every dirty block back to the ensemble (shutdown path).

        Returns the number of blocks flushed.  A no-op under
        write-through, where nothing is ever dirty.
        """
        flushed = self.dirty.drain()
        if flushed:
            self.stats.record_backing_write(
                time, blocks=len(flushed), is_writeback=True
            )
        return len(flushed)
