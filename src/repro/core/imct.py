"""IMCT — the Imprecise Miss Count Table (Section 3.3, first sieve tier).

The block-address space is vastly larger than any affordable in-memory
table, so SieveStore-C's first tier maps addresses onto a fixed number
of slots with a many-to-one hash.  Slots accumulate (potentially
aliased) windowed miss counts; only blocks whose *slot* count reaches
the tier-1 threshold (t1, tuned to 9 in the paper) are promoted to the
precise MCT.

Aliasing is not just tolerated, it is the documented failure mode that
motivates the second tier: low-reuse blocks can piggy-back on a popular
block's slot count and would receive undeserved allocations if the IMCT
alone decided admission (the paper found exactly this).  The
``single_tier_admission`` flag in :class:`~repro.core.sievestore_c.SieveStoreC`
exists to reproduce that pathology in the ablation bench.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.windows import SubwindowCounter, WindowSpec
from repro.util.hashing import mix64


class ImpreciseMissCountTable:
    """Fixed-size, hash-indexed table of windowed miss counters.

    Args:
        slots: number of table entries.  The paper sizes IMCT + MCT at
            about 8 GB of memory for the full-scale trace; scaled
            configurations shrink this proportionally.
        window: the sliding-window shape (W, k).
        salt: decorrelates this table's hash from other address hashes.
    """

    def __init__(self, slots: int, window: WindowSpec, salt: int = 0x13C7):
        if slots <= 0:
            raise ValueError(f"slots must be positive, got {slots}")
        self.slots = slots
        self.window = window
        self.salt = salt
        #: ``mix64(salt)`` hoisted out of the per-address hash — with it,
        #: :meth:`slot_of` is a single mix, bit-identical to
        #: :func:`repro.util.hashing.stable_bucket`.
        self._salted = mix64(salt)
        self._counters: List[SubwindowCounter] = [
            SubwindowCounter(window.subwindows) for _ in range(slots)
        ]
        self.recorded_misses = 0
        #: aliased recordings observed (only counted while collision
        #: tracking is enabled; see :meth:`enable_collision_tracking`).
        self.alias_collisions = 0
        #: per-slot last-recorded address, or None when tracking is off.
        self._last_address: Optional[List[Optional[int]]] = None

    def enable_collision_tracking(self) -> None:
        """Start counting aliased recordings (observability support).

        Allocates a per-slot shadow array holding the last address that
        recorded into each slot; a subsequent recording by a *different*
        address increments :attr:`alias_collisions`.  Off by default —
        the only cost then is one predicate test per recorded miss —
        because the paper's mechanism tolerates aliasing by design and
        only the telemetry layer wants it quantified.
        """
        if self._last_address is None:
            self._last_address = [None] * self.slots

    def slot_of(self, address: int) -> int:
        """Table slot an address maps to (many-to-one)."""
        return mix64(address ^ self._salted) % self.slots

    def record_miss(self, address: int, time: float) -> int:
        """Count a miss for the address's slot; returns the slot's
        windowed total (including any aliased contributions)."""
        self.recorded_misses += 1
        slot = self.slot_of(address)
        if self._last_address is not None:
            previous = self._last_address[slot]
            if previous is not None and previous != address:
                self.alias_collisions += 1
            self._last_address[slot] = address
        subwindow = self.window.subwindow_index(time)
        return self._counters[slot].record(subwindow)

    def count(self, address: int, time: float) -> int:
        """Current windowed count of the address's slot (read-only)."""
        subwindow = self.window.subwindow_index(time)
        return self._counters[self.slot_of(address)].total(subwindow)

    def reset_slot(self, address: int) -> None:
        """Zero the slot an address maps to (after promotion/allocation)."""
        self._counters[self.slot_of(address)].reset()

    def memory_bytes_estimate(self) -> int:
        """Rough size of a production-hardware realization of the table.

        Assumes one byte per subwindow counter plus a 2-byte last-update
        stamp per slot — the kind of arithmetic used to budget the
        paper's ~8 GB sieve state.  (The Python object overhead is, of
        course, much larger.)
        """
        return self.slots * (self.window.subwindows + 2)
