"""MCT — the precise Miss Count Table (Section 3.3, second sieve tier).

Blocks that clear the IMCT's tier-1 threshold get an exact, per-block
windowed miss counter here ("an additional perfect Miss Count Table
(MCT) which is implemented as a hash-table").  A block must then see a
further ``t2`` misses (tuned to 4 in the paper) before it is allocated.

Because only IMCT-qualified blocks ever enter, the MCT stays small; the
paper additionally prunes stale entries periodically ("Periodically we
prune the MCT to eliminate stale blocks"), which :meth:`prune`
implements — entries whose whole window has expired are dropped.
"""

from __future__ import annotations

from typing import Dict

from repro.core.windows import SubwindowCounter, WindowSpec


class MissCountTable:
    """Exact per-block windowed miss counts for IMCT-promoted blocks.

    Args:
        window: the sliding-window shape (shared with the IMCT).
        prune_interval: seconds between automatic stale-entry sweeps;
            sweeps happen opportunistically during :meth:`record_miss`.
    """

    def __init__(self, window: WindowSpec, prune_interval: float = 3600.0):
        if prune_interval <= 0:
            raise ValueError(f"prune_interval must be positive, got {prune_interval}")
        self.window = window
        self.prune_interval = prune_interval
        self._counters: Dict[int, SubwindowCounter] = {}
        self._last_prune: float = 0.0
        self.peak_entries = 0
        #: blocks that ever entered the table (track + auto-track).
        self.inserts = 0
        #: stale entries removed by :meth:`prune` (allocation-time
        #: :meth:`forget` removals are admissions, counted by the sieve).
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._counters)

    def __contains__(self, address: int) -> bool:
        return address in self._counters

    def track(self, address: int) -> None:
        """Start tracking a block with a zero count (tier-1 promotion).

        The promoting miss itself was consumed by the IMCT threshold;
        the paper requires t2 *additional* misses after promotion, so
        the block enters with an empty counter.
        """
        if address not in self._counters:
            self._counters[address] = SubwindowCounter(self.window.subwindows)
            self.inserts += 1
            if len(self._counters) > self.peak_entries:
                self.peak_entries = len(self._counters)

    def record_miss(self, address: int, time: float) -> int:
        """Count a miss for a tracked (or newly-tracked) block.

        Returns the block's exact windowed miss count.  Opportunistically
        prunes stale entries on the configured interval.
        """
        if time - self._last_prune >= self.prune_interval:
            self.prune(time)
        counter = self._counters.get(address)
        if counter is None:
            counter = SubwindowCounter(self.window.subwindows)
            self._counters[address] = counter
            self.inserts += 1
            if len(self._counters) > self.peak_entries:
                self.peak_entries = len(self._counters)
        return counter.record(self.window.subwindow_index(time))

    def count(self, address: int, time: float) -> int:
        """Exact windowed miss count for a block (0 if untracked)."""
        counter = self._counters.get(address)
        if counter is None:
            return 0
        return counter.total(self.window.subwindow_index(time))

    def forget(self, address: int) -> None:
        """Drop a block's counter (called when the block is allocated)."""
        self._counters.pop(address, None)

    def prune(self, time: float) -> int:
        """Remove entries whose whole window has expired; returns count.

        This is the paper's periodic staleness sweep — it bounds the
        MCT's size to blocks that have missed within the last W.
        """
        subwindow = self.window.subwindow_index(time)
        stale = [
            address
            for address, counter in self._counters.items()
            if counter.is_stale(subwindow)
        ]
        for address in stale:
            del self._counters[address]
        self.evictions += len(stale)
        self._last_prune = time
        return len(stale)
