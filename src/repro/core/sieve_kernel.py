"""Array-backed SieveStore-C sieve kernel (the fast engine's substrate).

The object-model sieve (:class:`~repro.core.sievestore_c.SieveStoreC`
over :class:`~repro.core.imct.ImpreciseMissCountTable`) spends its
per-miss budget on Python calls: ``stable_bucket`` re-mixes the salt,
``WindowSpec.subwindow_index`` re-divides, and every recording walks a
``SubwindowCounter`` method chain.  This module re-expresses the same
state machine over flat arrays so the fast engine
(:mod:`repro.sim.fast_engine`) can run the sieve inline:

* :class:`ArrayIMCT` — the IMCT as numpy state: a ``(slots, k)`` uint8
  count matrix (saturating at :data:`~repro.core.windows.COUNTER_SATURATION`)
  plus an int64 ``last_subwindow`` vector.  SplitMix64 is reimplemented
  over uint64 arrays (:func:`mix64_array`) with the salt mix hoisted, so
  slot indices for a whole columnar chunk come out of one vectorized
  pass.  ``record_batch`` resolves a subwindow-homogeneous batch of
  recordings with sort-by-slot + per-slot occurrence ordinals — the
  fully batched primitive, validated against the object oracle.

* :class:`SieveStoreCKernel` — the working form the engine's scalar
  decision loop drives.  Admission decisions are order-dependent (a
  hit depends on the LRU resident set, which every admission mutates,
  and promotions move blocks between tiers mid-stream), so the
  per-miss loop stays scalar; the kernel's job is to make each scalar
  step a handful of flat-list operations on state the chunk pass
  already indexed.  ``sync()`` writes the flat state back into the
  policy's object tables, so checkpoints pickle the ordinary object
  policy and stay engine-agnostic.

Equivalence contract: driven over the same miss stream, the kernel's
state and every telemetry counter are bit-identical to the object
sieve's — the suite in ``tests/sim/test_sieve_equivalence.py`` enforces
this against :class:`~repro.cache.stats.CacheStats` and the sieve
metastate.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.cache.allocation import AllocationPolicy
from repro.core.imct import ImpreciseMissCountTable
from repro.core.sievestore_c import SieveStoreC
from repro.core.windows import COUNTER_SATURATION
from repro.util.intervals import bucket_indices

#: SplitMix64 constants as uint64 scalars; array ops against them wrap
#: modulo 2**64 exactly like the masked Python arithmetic in
#: :func:`repro.util.hashing.mix64`.
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MULT1 = np.uint64(0xBF58476D1CE4E5B9)
_MULT2 = np.uint64(0x94D049BB133111EB)
_SHIFT30 = np.uint64(30)
_SHIFT27 = np.uint64(27)
_SHIFT31 = np.uint64(31)


def mix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer over a uint64 array.

    Bit-identical to mapping :func:`repro.util.hashing.mix64` over the
    elements: uint64 addition/multiplication wrap silently for arrays,
    which is exactly the ``& _MASK64`` reduction of the scalar code.
    """
    z = values.astype(np.uint64, copy=True)
    z += _GOLDEN
    z ^= z >> _SHIFT30
    z *= _MULT1
    z ^= z >> _SHIFT27
    z *= _MULT2
    z ^= z >> _SHIFT31
    return z


def bucket_array(values: np.ndarray, buckets: int, salted: int) -> np.ndarray:
    """Vectorized :func:`repro.util.hashing.stable_bucket` with the salt
    pre-mixed (``salted = mix64(salt)``); returns int64 slot indices."""
    if buckets <= 0:
        raise ValueError(f"buckets must be positive, got {buckets}")
    mixed = mix64_array(values.astype(np.uint64) ^ np.uint64(salted))
    return (mixed % np.uint64(buckets)).astype(np.int64)


def subwindow_indices(times: np.ndarray, subwindow_seconds: float) -> np.ndarray:
    """Subwindow index of each timestamp, with Python ``//`` semantics.

    ``numpy.floor_divide`` may differ by one ulp from Python's float
    floor-division near subwindow boundaries, and the engines' equality
    guarantee depends on bucketing identically with
    :meth:`~repro.core.windows.WindowSpec.subwindow_index`.  The shared
    primitive :func:`repro.util.intervals.bucket_indices` floors the
    quotients in one vectorized pass and recomputes only
    boundary-adjacent entries with scalar Python arithmetic; both this
    kernel and :meth:`~repro.traces.columnar.ColumnarTrace.issue_days`
    delegate to it so all pipelines bucket identically.
    """
    return bucket_indices(times, subwindow_seconds)


class ArrayIMCT:
    """The IMCT's counters as a ``(slots, k)`` uint8 matrix.

    Mirrors :class:`~repro.core.imct.ImpreciseMissCountTable` state
    exactly: row ``s`` holds slot ``s``'s subwindow counts and
    ``last_subwindow[s]`` its last-recorded subwindow (-1 when the slot
    has never recorded, in which case the row is all zeros).
    """

    def __init__(self, slots: int, subwindows: int, salt: int = 0x13C7):
        if slots <= 0:
            raise ValueError(f"slots must be positive, got {slots}")
        if subwindows <= 0:
            raise ValueError(f"subwindows must be positive, got {subwindows}")
        self.slots = slots
        self.subwindows = subwindows
        self.salt = salt
        from repro.util.hashing import mix64

        #: ``mix64(salt)``, hoisted: the per-address hash is one mix.
        self.salted = mix64(salt)
        self.counts = np.zeros((slots, subwindows), dtype=np.uint8)
        self.last_subwindow = np.full(slots, -1, dtype=np.int64)
        self.recorded_misses = 0

    @classmethod
    def from_table(cls, table: ImpreciseMissCountTable) -> "ArrayIMCT":
        """Snapshot an object IMCT (fresh or checkpoint-restored).

        A table that has never recorded (``recorded_misses == 0``) is
        all zeros with every ``last_subwindow`` at -1 — counters only
        become nonzero through ``record_miss``, which increments the
        total — so the constructor's zero state already matches and the
        per-slot snapshot loop is skipped.
        """
        array = cls(table.slots, table.window.subwindows, salt=table.salt)
        if table.recorded_misses == 0:
            return array
        array.counts = np.array(
            [counter._counts for counter in table._counters], dtype=np.uint8
        ).reshape(table.slots, table.window.subwindows)
        array.last_subwindow = np.fromiter(
            (counter._last_subwindow for counter in table._counters),
            dtype=np.int64,
            count=table.slots,
        )
        array.recorded_misses = table.recorded_misses
        return array

    def write_back(self, table: ImpreciseMissCountTable) -> None:
        """Copy array state into the object IMCT's counters.

        After this, the object table is indistinguishable from one that
        recorded the same miss stream itself — checkpoints pickle it
        as-is and either engine can resume from the result.
        """
        if table.slots != self.slots or table.window.subwindows != self.subwindows:
            raise ValueError(
                f"shape mismatch: table is {table.slots}x"
                f"{table.window.subwindows}, array is "
                f"{self.slots}x{self.subwindows}"
            )
        # One flat row-major tolist plus a list slice per counter is
        # several times cheaper than ``counts.tolist()``, which builds
        # every row as its own Python list inside numpy.  Rebinding
        # (not slice-copying) ``_counts`` is safe: nothing aliases a
        # counter's list, and each slice here is freshly built.
        flat = self.counts.reshape(-1).tolist()
        lasts = self.last_subwindow.tolist()
        k = self.subwindows
        position = 0
        for counter, last in zip(table._counters, lasts):
            counter._counts = flat[position:position + k]
            counter._last_subwindow = last
            position += k
        table.recorded_misses = self.recorded_misses

    def slots_of(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized slot index of each address (int64)."""
        return bucket_array(addresses, self.slots, self.salted)

    def row_totals(self) -> np.ndarray:
        """Per-slot sum of stored counts (int64).

        Equals each slot's windowed total as of its own last recording:
        lazy advancement zeroes expired positions on record, so every
        retained count lies within the window ending at
        ``last_subwindow`` and never-written positions are zero.
        """
        return self.counts.sum(axis=1, dtype=np.int64)

    # -- batched recording -------------------------------------------------
    def _advance_slots(self, unique_slots: np.ndarray, subwindow: int) -> None:
        """Roll the named slots forward to ``subwindow`` (expire stale)."""
        k = self.subwindows
        last = self.last_subwindow[unique_slots]
        gaps = subwindow - last
        stale = (last < 0) | (gaps >= k)
        stale_rows = unique_slots[stale]
        if stale_rows.size:
            self.counts[stale_rows] = 0
        for gap in range(1, k):
            rows = unique_slots[(~stale) & (gaps == gap)]
            if rows.size == 0:
                continue
            # Positions (last+1 .. subwindow) % k == (subwindow - g) % k
            # for g in [0, gap): the same set the scalar _advance zeroes.
            cols = np.array([(subwindow - g) % k for g in range(gap)], dtype=np.int64)
            self.counts[rows[:, None], cols] = 0
        self.last_subwindow[unique_slots] = subwindow

    def record_batch(self, slot_indices: np.ndarray, subwindow: int) -> np.ndarray:
        """Record one miss per entry of ``slot_indices``, all in
        ``subwindow``; returns each recording's windowed slot total.

        Bit-identical to sequentially calling ``SubwindowCounter.record``
        on the corresponding object counters: repeated slots receive
        their occurrence ordinal (sort-by-slot + cumulative position),
        and counts saturate at :data:`COUNTER_SATURATION` exactly where
        the sequential ``min`` would clamp them.
        """
        slot_indices = np.asarray(slot_indices, dtype=np.int64)
        n = int(slot_indices.size)
        self.recorded_misses += n
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        order = np.argsort(slot_indices, kind="stable")
        sorted_slots = slot_indices[order]
        is_first = np.empty(n, dtype=bool)
        is_first[0] = True
        np.not_equal(sorted_slots[1:], sorted_slots[:-1], out=is_first[1:])
        group_starts = np.flatnonzero(is_first)
        unique_slots = sorted_slots[group_starts]
        self._advance_slots(unique_slots, subwindow)
        group_sizes = np.diff(np.append(group_starts, n))
        ordinal = np.arange(n, dtype=np.int64) - np.repeat(group_starts, group_sizes)
        col = subwindow % self.subwindows
        base = self.counts[sorted_slots, col].astype(np.int64)
        rest = self.counts[sorted_slots].sum(axis=1, dtype=np.int64) - base
        new_counts = np.minimum(base + ordinal + 1, COUNTER_SATURATION)
        totals_sorted = rest + new_counts
        self.counts[unique_slots, col] = np.minimum(
            base[group_starts] + group_sizes, COUNTER_SATURATION
        ).astype(np.uint8)
        totals = np.empty(n, dtype=np.int64)
        totals[order] = totals_sorted
        return totals


def supports(policy: AllocationPolicy) -> bool:
    """True if ``policy`` can be driven by :class:`SieveStoreCKernel`.

    Exact-type check on purpose: a subclass may override tier internals
    (``_tier2``, ``wants``) without the method-identity dispatch in
    :mod:`repro.sim.fast_engine` noticing — e.g.
    :class:`~repro.core.autotune.AdaptiveSieveStoreC` mutates its t2
    mid-run — so anything but a plain :class:`SieveStoreC` takes the
    general per-miss-call path.
    """
    return type(policy) is SieveStoreC


class SieveStoreCKernel:
    """Flat working state driving the fast engine's sieve branch.

    Owns the IMCT state as flat Python lists for the duration of a run
    (scalar list indexing beats numpy scalar indexing in a Python
    loop), with ``totals`` maintaining each slot's running row sum so a
    recording's windowed total is one addition.  The chunk pass
    (:meth:`precompute_chunk`) vectorizes everything that does not
    depend on decision order: per-block slot hashes and per-request
    subwindow indices.  The MCT tier stays on the live object — only
    IMCT-promoted blocks ever reach it, and calling the real
    ``record_miss`` preserves its prune scheduling and insert counting
    bit-identically.
    """

    def __init__(self, policy: SieveStoreC):
        if not supports(policy):
            raise TypeError(
                f"kernel requires a plain SieveStoreC, got {type(policy).__name__}"
            )
        self.policy = policy
        imct = policy.imct
        self.array = ArrayIMCT.from_table(imct)
        self.k = imct.window.subwindows
        self.n_slots = imct.slots
        #: W/k, hoisted (``WindowSpec.subwindow_seconds`` is a property
        #: the object path re-evaluates every miss).
        self.subwindow_seconds = imct.window.subwindow_seconds
        #: Column-major flat counts (cell ``col * n_slots + slot``): the
        #: engine loop derives a block's slot from its precomputed cell
        #: index with one subtraction (``ci - col * n_slots``), so no
        #: separate per-block slot table is needed.
        self.counts: List[int] = self.array.counts.T.reshape(-1).tolist()
        self.last: List[int] = self.array.last_subwindow.tolist()
        self.totals: List[int] = self.array.row_totals().tolist()

    def precompute_chunk(
        self,
        addresses: np.ndarray,
        block_counts: np.ndarray,
        issue_times: np.ndarray,
    ) -> Tuple[List[int], List[int]]:
        """Vectorized per-chunk index tables.

        Returns ``(subs, cis)``: per *request* the subwindow index, and
        per *block* (requests expanded to their consecutive block
        addresses) the flat index of the block's count cell in the
        column-major layout (``(sub % k) * n_slots + slot``).  The cell
        index is the only per-block table the scalar loop needs — the
        slot falls out by subtracting the request's column base.
        """
        counts = block_counts.astype(np.int64)
        total = int(counts.sum())
        starts = np.cumsum(counts) - counts
        # blocks[i] = address-of-request + offset-within-request, via a
        # single repeat: repeat(addresses - starts) + arange.
        blocks = np.repeat(addresses - starts, counts) + np.arange(
            total, dtype=np.int64
        )
        slots = self.array.slots_of(blocks)
        subs = subwindow_indices(issue_times, self.subwindow_seconds)
        cis = np.repeat(subs % self.k, counts) * self.n_slots + slots
        return subs.tolist(), cis.tolist()

    def sync(self) -> None:
        """Write the flat IMCT state back into the policy's object table."""
        array = self.array
        # Transpose the column-major working list back to (slots, k).
        array.counts = np.ascontiguousarray(
            np.asarray(self.counts, dtype=np.uint8).reshape(
                self.k, array.slots
            ).T
        )
        array.last_subwindow = np.asarray(self.last, dtype=np.int64)
        array.write_back(self.policy.imct)
