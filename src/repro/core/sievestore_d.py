"""SieveStore-D: discrete, access-count-based batch allocation (ADBA).

Section 3.2 of the paper.  All accesses during an epoch (one day) are
logged; at the epoch boundary, every block whose access count exceeded
the threshold (t = 10, chosen directly from observation O1 that 99% of
blocks see fewer than 10 accesses a day) is batch-allocated for the next
epoch.  There is no replacement inside an epoch, and blocks hot in two
consecutive epochs are not moved ("the replacement and allocation cancel
each other").

The metastate is the per-epoch access count of *every* block — the
defining burden of sieving.  In deployment this is kept out of memory by
logging to local storage and reducing offline (the map-reduce pipeline
in :mod:`repro.offline`); in simulation we count in memory, and the test
suite asserts the two produce identical allocations.

Day-1 bootstrap: the sieve needs one epoch of logs before it can
allocate anything, so the cache is empty for all of day 1 — visible as
the zero bar in Figure 5.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Optional, Set

from repro.cache.allocation import AllocationPolicy

#: The paper's epoch-access-count threshold: allocate blocks with count > 10.
DEFAULT_THRESHOLD = 10


@dataclass(frozen=True)
class SieveStoreDConfig:
    """Parameters of the discrete sieve.

    Attributes:
        threshold: allocate blocks whose epoch access count *exceeds*
            this value (the paper's t = 10).
        capacity_blocks: cache capacity; if more blocks qualify than
            fit, the most-accessed qualify first.  The paper never hits
            this bound (the top 1% fits "with room to spare") but the
            invariant must hold regardless.
    """

    threshold: int = DEFAULT_THRESHOLD
    capacity_blocks: int = 1 << 20

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError(f"threshold must be non-negative: {self.threshold}")
        if self.capacity_blocks <= 0:
            raise ValueError(f"capacity must be positive: {self.capacity_blocks}")


class SieveStoreD(AllocationPolicy):
    """The discrete SieveStore sieve as an allocation policy.

    Use with a :class:`~repro.cache.block_cache.BlockCache` whose
    capacity matches ``config.capacity_blocks``.  The engine applies the
    returned batches with ``replace_contents``, which performs the
    move-cancelling optimization.
    """

    name = "sievestore-d"

    def __init__(self, config: Optional[SieveStoreDConfig] = None):
        self.config = config or SieveStoreDConfig()
        self._epoch_counts: Counter = Counter()
        #: number of epoch boundaries processed (for tests/reporting)
        self.epochs_completed = 0

    # -- metastate maintenance ------------------------------------------
    def observe(self, address: int, is_write: bool, time: float, hit: bool) -> None:
        """Log one access.  SieveStore-D counts *accesses*, hit or miss."""
        self._epoch_counts[address] += 1

    # -- allocation ------------------------------------------------------
    def wants(self, address: int, is_write: bool, time: float) -> bool:
        """Never allocates continuously; batches only."""
        return False

    def epoch_boundary(self, day: int) -> Optional[Iterable[int]]:
        """Select last epoch's over-threshold blocks for the new epoch."""
        selected = self.select_allocation(self._epoch_counts)
        self._epoch_counts = Counter()
        self.epochs_completed += 1
        return selected

    def select_allocation(self, counts: Counter) -> Set[int]:
        """Pure selection rule: blocks with count > threshold, capped.

        Exposed separately so the offline map-reduce pipeline (and the
        tests comparing the two) can share the exact rule.
        """
        qualified = [
            (count, address)
            for address, count in counts.items()
            if count > self.config.threshold
        ]
        if len(qualified) > self.config.capacity_blocks:
            qualified.sort(reverse=True)
            qualified = qualified[: self.config.capacity_blocks]
        return {address for _, address in qualified}

    @property
    def tracked_blocks(self) -> int:
        """Blocks with counts in the current epoch's metastate."""
        return len(self._epoch_counts)
