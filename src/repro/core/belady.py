"""Belady's MIN, its selective-allocation extension, and the Section 3.1
counterexample.

The paper argues (Section 3.1) that even optimal *replacement* cannot
substitute for sieving:

* Under allocate-on-demand, MIN still pays a compulsory allocation-write
  per first touch, and with 97% of blocks seeing <= 4 accesses that is
  at least ``50% + 47%/4 = 61.75%`` of unique blocks — versus ~1% for
  ideal sieving (:func:`min_compulsory_allocation_bound`).

* Extending MIN to *selective allocation* (allocate only if the block's
  next use precedes the next use of some cached block) maximizes hits
  but does not minimize allocation-writes.  On the stream
  ``a,a,b,b,a,a,c,c,a,a,d,d,...`` with a 1-entry cache, it allocates on
  every miss (~50% of accesses become allocation-writes) while a fixed
  allocation of ``a`` gets nearly the same hits with exactly one
  allocation-write (:func:`counterexample_stream` and the two
  simulators below reproduce this).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set

#: Sentinel "next use" for blocks never referenced again.
_NEVER = float("inf")


@dataclass(frozen=True)
class BeladyResult:
    """Outcome of one reference-stream simulation."""

    accesses: int
    hits: int
    allocation_writes: int

    @property
    def misses(self) -> int:
        """Accesses that did not hit."""
        return self.accesses - self.hits

    @property
    def hit_ratio(self) -> float:
        """Hits as a fraction of accesses."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def allocation_write_ratio(self) -> float:
        """Allocation-writes as a fraction of accesses."""
        return self.allocation_writes / self.accesses if self.accesses else 0.0


def _next_use_table(stream: Sequence[int]) -> List[float]:
    """For each position, the index of the address's next occurrence."""
    next_use: List[float] = [_NEVER] * len(stream)
    last_seen: Dict[int, int] = {}
    for index in range(len(stream) - 1, -1, -1):
        address = stream[index]
        next_use[index] = last_seen.get(address, _NEVER)
        last_seen[address] = index
    return next_use


class _FarthestFuture:
    """Max-heap of (next_use, address) with lazy invalidation."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._current: Dict[int, float] = {}

    def update(self, address: int, next_use: float) -> None:
        self._current[address] = next_use
        heapq.heappush(self._heap, (-next_use, address))

    def remove(self, address: int) -> None:
        self._current.pop(address, None)

    def pop_farthest(self) -> int:
        while self._heap:
            neg_next, address = heapq.heappop(self._heap)
            if self._current.get(address) == -neg_next:
                del self._current[address]
                return address
        raise LookupError("no cached blocks to evict")

    def farthest_next_use(self) -> float:
        while self._heap:
            neg_next, address = self._heap[0]
            if self._current.get(address) == -neg_next:
                return -neg_next
            heapq.heappop(self._heap)
        raise LookupError("cache is empty")

    def __len__(self) -> int:
        return len(self._current)


def belady_min(stream: Sequence[int], capacity: int) -> BeladyResult:
    """MIN with allocate-on-demand (the original formulation).

    Every miss allocates (one allocation-write) and, when the cache is
    full, evicts the block whose next use lies farthest in the future.
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    next_use = _next_use_table(stream)
    resident: Set[int] = set()
    future = _FarthestFuture()
    hits = allocation_writes = 0
    for index, address in enumerate(stream):
        if address in resident:
            hits += 1
            future.update(address, next_use[index])
            continue
        allocation_writes += 1
        if len(resident) >= capacity:
            resident.remove(future.pop_farthest())
        resident.add(address)
        future.update(address, next_use[index])
    return BeladyResult(len(stream), hits, allocation_writes)


def belady_selective(stream: Sequence[int], capacity: int) -> BeladyResult:
    """MIN extended with selective allocation (Section 3.1).

    A missed block is allocated only if its next use is earlier than the
    next use of at least one cached block (otherwise allocating cannot
    increase hits).  This maximizes hits — and still fails to minimize
    allocation-writes, as the counterexample shows.
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    next_use = _next_use_table(stream)
    resident: Set[int] = set()
    future = _FarthestFuture()
    hits = allocation_writes = 0
    for index, address in enumerate(stream):
        if address in resident:
            hits += 1
            future.update(address, next_use[index])
            continue
        if next_use[index] == _NEVER:
            continue  # never used again: allocation cannot help
        if len(resident) < capacity:
            allocate = True
        else:
            allocate = next_use[index] < future.farthest_next_use()
        if allocate:
            allocation_writes += 1
            if len(resident) >= capacity:
                resident.remove(future.pop_farthest())
            resident.add(address)
            future.update(address, next_use[index])
    return BeladyResult(len(stream), hits, allocation_writes)


def fixed_allocation(stream: Sequence[int], blocks: Iterable[int]) -> BeladyResult:
    """A statically-allocated cache: one allocation-write per pinned block."""
    pinned = set(blocks)
    hits = sum(1 for address in stream if address in pinned)
    return BeladyResult(len(stream), hits, len(pinned))


def counterexample_stream(cycles: int) -> List[int]:
    """The paper's stream ``a,a,b,b,a,a,c,c,a,a,d,d,...``.

    Address 0 plays "a"; each cycle introduces a fresh address used
    twice.  With a 1-entry cache, Belady-with-selective-allocation
    converges to a 50% hit ratio with ~50% of accesses causing
    allocation-writes, while pinning "a" achieves nearly the same hits
    with exactly one allocation-write.
    """
    if cycles <= 0:
        raise ValueError(f"cycles must be positive, got {cycles}")
    stream: List[int] = []
    for cycle in range(cycles):
        stream += [0, 0, cycle + 1, cycle + 1]
    return stream


def min_compulsory_allocation_bound(
    fraction_single_use: float = 0.50,
    fraction_low_reuse: float = 0.47,
    low_reuse_max_accesses: int = 4,
) -> float:
    """Lower bound on MIN+AOD allocation-writes, as a fraction of blocks.

    The paper's arithmetic: 50% of blocks are accessed once (all
    compulsory misses) and the next 47% have at most 4 accesses, hence
    at least 1/4 of those accesses are compulsory per block:
    ``50% + 47%/4 = 61.75%`` of unique blocks incur allocation-writes.
    """
    if not 0 <= fraction_single_use <= 1 or not 0 <= fraction_low_reuse <= 1:
        raise ValueError("fractions must lie in [0, 1]")
    if low_reuse_max_accesses <= 0:
        raise ValueError("low_reuse_max_accesses must be positive")
    return fraction_single_use + fraction_low_reuse / low_reuse_max_accesses
