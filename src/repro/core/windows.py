"""Discretized sliding-window miss counters (Section 3.3).

SieveStore-C logically counts misses "over the past W time units", but
keeping per-timestamp state is impractical, so the paper discretizes the
window into ``k`` subwindows of ``W/k`` each: "The implementation uses k
counters to track the misses in each subwindow and a counter to track
the last time the counters were updated.  If during a miss, the current
time window is larger than the last-updated counter by k or more, then
all counters are inferred to be stale and zeroed out."

:class:`SubwindowCounter` implements exactly that scheme for one block;
it is the unit shared by the IMCT (one counter per table slot) and the
MCT (one counter per tracked block).  The paper's tuned parameters are
W = 8 hours with k = 4 subwindows of 2 hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.util.intervals import SECONDS_PER_HOUR

#: The paper's tuned window length (8 hours).
DEFAULT_WINDOW_SECONDS = 8 * SECONDS_PER_HOUR
#: The paper's tuned subwindow count (four 2-hour subwindows).
DEFAULT_SUBWINDOWS = 4
#: Per-slot ceiling: the paper's metastate budget assumes 8-bit counters
#: (see ``MetastateBudget.counter_bytes``), so counts clamp at 255.
#: Admission thresholds are single-digit, so clamping never changes a
#: sieving decision — it only bounds the bits a hardware table needs.
COUNTER_SATURATION = 255


@dataclass
class WindowSpec:
    """Shape of the sliding window: total length W and subwindow count k."""

    window_seconds: float = DEFAULT_WINDOW_SECONDS
    subwindows: int = DEFAULT_SUBWINDOWS

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ValueError(f"window must be positive, got {self.window_seconds}")
        if self.subwindows <= 0:
            raise ValueError(f"subwindows must be positive, got {self.subwindows}")

    @property
    def subwindow_seconds(self) -> float:
        """Length of one subwindow (W / k)."""
        return self.window_seconds / self.subwindows

    def subwindow_index(self, time: float) -> int:
        """Global index of the subwindow containing ``time``."""
        if time < 0:
            raise ValueError(f"time must be non-negative, got {time}")
        return int(time // self.subwindow_seconds)


class SubwindowCounter:
    """Miss counts for one entity over the last k subwindows.

    The counter is updated lazily: advancing time costs O(k) at worst
    (and usually O(elapsed subwindows)), and no background sweeper is
    needed — matching the paper's description.
    """

    __slots__ = ("_counts", "_last_subwindow")

    def __init__(self, subwindows: int):
        self._counts: List[int] = [0] * subwindows
        self._last_subwindow = -1

    def _advance(self, subwindow: int) -> None:
        """Roll the window forward to ``subwindow``, expiring stale slots."""
        k = len(self._counts)
        if self._last_subwindow < 0 or subwindow - self._last_subwindow >= k:
            # "If ... the current time window is larger than the
            # last-updated counter by k or more, then all counters are
            # inferred to be stale and zeroed out."
            for i in range(k):
                self._counts[i] = 0
        else:
            for stale in range(self._last_subwindow + 1, subwindow + 1):
                self._counts[stale % k] = 0
        self._last_subwindow = subwindow

    def record(self, subwindow: int, amount: int = 1) -> int:
        """Record ``amount`` misses in ``subwindow``; returns the new total.

        ``subwindow`` must be monotonically non-decreasing across calls
        (trace time moves forward); moving backwards raises.
        """
        if subwindow < self._last_subwindow:
            raise ValueError(
                f"time moved backwards: subwindow {subwindow} < "
                f"{self._last_subwindow}"
            )
        if subwindow != self._last_subwindow:
            self._advance(subwindow)
        slot = subwindow % len(self._counts)
        self._counts[slot] = min(self._counts[slot] + amount, COUNTER_SATURATION)
        return self.total(subwindow)

    def total(self, subwindow: int) -> int:
        """Miss count over the window ending at ``subwindow``.

        Read-only: counts that would expire by ``subwindow`` are ignored
        without mutating state, so ``total`` can be called speculatively.
        """
        k = len(self._counts)
        if self._last_subwindow < 0 or subwindow - self._last_subwindow >= k:
            return 0
        if subwindow < self._last_subwindow:
            raise ValueError(
                f"time moved backwards: subwindow {subwindow} < "
                f"{self._last_subwindow}"
            )
        # Slots written in subwindows older than (subwindow - k, ...] are
        # stale; with lazy advancement those are exactly the slots whose
        # global index precedes subwindow - k + 1.
        stale_before = subwindow - k + 1
        total = 0
        for age in range(k):
            slot_global = self._last_subwindow - age
            if slot_global < 0 or slot_global < stale_before:
                break
            total += self._counts[slot_global % k]
        return total

    def reset(self) -> None:
        """Zero the counter (used when a block is allocated or pruned)."""
        for i in range(len(self._counts)):
            self._counts[i] = 0
        self._last_subwindow = -1

    @property
    def last_subwindow(self) -> int:
        """The most recent subwindow recorded (-1 if never used)."""
        return self._last_subwindow

    def is_stale(self, subwindow: int) -> bool:
        """True if the whole window has expired by ``subwindow``."""
        return (
            self._last_subwindow < 0
            or subwindow - self._last_subwindow >= len(self._counts)
        )
