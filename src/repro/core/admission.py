"""Admission gates: one construction point for "who earns a frame".

Both the trace simulator and the live serving layer (:mod:`repro.serve`)
gate allocation through the same object: an
:class:`~repro.cache.allocation.AllocationPolicy` whose ``wants()`` is
consulted on every miss.  Historically each caller hand-built its
policy; this module extracts the shared factory so the serve appliance,
the CLI, and tests name gates by kind instead of duplicating the
``SieveStoreCConfig`` plumbing.

Gate kinds:

``sieve``
    The paper's continuous two-tier sieve (:class:`SieveStoreC` —
    IMCT at ``t1``, MCT at ``t2``, sliding window ``W/k``).  This is
    the highly-selective gate that keeps allocation-writes off the
    device.
``unsieved``
    Allocate on every miss (:class:`AllocateOnDemand`) — the AOD
    baseline the serve bench compares allocation-write counts against.
``read-only``
    Allocate on read misses only (:class:`WriteMissNoAllocate`).
``never``
    Never allocate (:class:`NeverAllocate`) — pass-through cache, used
    by tests and as a degenerate baseline.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cache.allocation import (
    AllocateOnDemand,
    AllocationPolicy,
    NeverAllocate,
    WriteMissNoAllocate,
)
from repro.core.sievestore_c import SieveStoreC, SieveStoreCConfig
from repro.core.windows import WindowSpec

#: Gate kinds accepted by :func:`build_admission_gate`.
GATE_KINDS: Tuple[str, ...] = ("sieve", "unsieved", "read-only", "never")


def build_admission_gate(
    kind: str = "sieve",
    *,
    imct_slots: int = 1 << 16,
    t1: Optional[int] = None,
    t2: Optional[int] = None,
    window: Optional[WindowSpec] = None,
    single_tier_admission: bool = False,
) -> AllocationPolicy:
    """Build an admission gate by kind (see module docs).

    The sieve parameters (``imct_slots``, ``t1``, ``t2``, ``window``,
    ``single_tier_admission``) apply only to ``kind="sieve"``; the
    other kinds take no parameters.  Defaults follow
    :class:`SieveStoreCConfig` (the paper's t1=9, t2=4, W=8h, k=4).
    """
    if kind == "sieve":
        config_kwargs: dict = {
            "imct_slots": imct_slots,
            "single_tier_admission": single_tier_admission,
        }
        if t1 is not None:
            config_kwargs["t1"] = t1
        if t2 is not None:
            config_kwargs["t2"] = t2
        if window is not None:
            config_kwargs["window"] = window
        return SieveStoreC(SieveStoreCConfig(**config_kwargs))
    if kind == "unsieved":
        return AllocateOnDemand()
    if kind == "read-only":
        return WriteMissNoAllocate()
    if kind == "never":
        return NeverAllocate()
    raise ValueError(
        f"unknown admission-gate kind {kind!r} (expected one of {GATE_KINDS})"
    )


def gate_allocation_writes(gate: AllocationPolicy) -> Optional[int]:
    """Allocation decisions a gate has made, when it counts them.

    :class:`SieveStoreC` tracks admissions natively; the stateless
    baselines return ``None`` (the caller's own counters are
    authoritative there).
    """
    admissions = getattr(gate, "admissions", None)
    return int(admissions) if admissions is not None else None
