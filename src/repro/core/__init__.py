"""The paper's primary contribution: sieving and the SieveStore variants.

* :class:`SieveStoreD` — discrete, access-count-based batch allocation
  (Section 3.2).
* :class:`SieveStoreC` — continuous, two-tier (IMCT/MCT) lazy allocation
  (Section 3.3).
* :class:`IdealDailySieve` — the day-by-day top-1% oracle (Figure 5's
  reference bar).
* :class:`RandSieveBlkD` / :class:`RandSieveC` — random sieving
  baselines.
* :mod:`repro.core.belady` — MIN and its selective-allocation extension
  (the Section 3.1 analysis).
* :class:`SieveStoreAppliance` — the deployable composition of sieve,
  cache, and SSD accounting (Figure 4).
"""

from repro.core.windows import (
    DEFAULT_SUBWINDOWS,
    DEFAULT_WINDOW_SECONDS,
    SubwindowCounter,
    WindowSpec,
)
from repro.core.imct import ImpreciseMissCountTable
from repro.core.mct import MissCountTable
from repro.core.sievestore_c import (
    DEFAULT_T1,
    DEFAULT_T2,
    SieveStoreC,
    SieveStoreCConfig,
)
from repro.core.sievestore_d import (
    DEFAULT_THRESHOLD,
    SieveStoreD,
    SieveStoreDConfig,
)
from repro.core.ideal import (
    IdealDailySieve,
    ideal_capture_shares,
    top_fraction_blocks,
)
from repro.core.random_sieve import RandSieveBlkD, RandSieveC
from repro.core.belady import (
    BeladyResult,
    belady_min,
    belady_selective,
    counterexample_stream,
    fixed_allocation,
    min_compulsory_allocation_bound,
)
from repro.core.appliance import RequestOutcome, SieveStoreAppliance
from repro.core.metastate import (
    DEFAULT_BUDGET,
    MetastateBudget,
    paper_scale_example,
)
from repro.core.autotune import (
    AdaptiveSieveStoreC,
    AdmissionBudget,
    AutoThresholdSieveStoreD,
)
from repro.core.sieve_kernel import (
    ArrayIMCT,
    SieveStoreCKernel,
    mix64_array,
)

__all__ = [
    "DEFAULT_SUBWINDOWS",
    "DEFAULT_WINDOW_SECONDS",
    "SubwindowCounter",
    "WindowSpec",
    "ImpreciseMissCountTable",
    "MissCountTable",
    "DEFAULT_T1",
    "DEFAULT_T2",
    "SieveStoreC",
    "SieveStoreCConfig",
    "DEFAULT_THRESHOLD",
    "SieveStoreD",
    "SieveStoreDConfig",
    "IdealDailySieve",
    "ideal_capture_shares",
    "top_fraction_blocks",
    "RandSieveBlkD",
    "RandSieveC",
    "BeladyResult",
    "belady_min",
    "belady_selective",
    "counterexample_stream",
    "fixed_allocation",
    "min_compulsory_allocation_bound",
    "RequestOutcome",
    "SieveStoreAppliance",
    "DEFAULT_BUDGET",
    "MetastateBudget",
    "paper_scale_example",
    "AdaptiveSieveStoreC",
    "AdmissionBudget",
    "AutoThresholdSieveStoreD",
    "ArrayIMCT",
    "SieveStoreCKernel",
    "mix64_array",
]
