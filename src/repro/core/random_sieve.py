"""Random sieving baselines: RandSieve-BlkD and RandSieve-C (Section 5.1).

These exist to show that SieveStore "truly identifies and captures hot
blocks (beyond what random sampling would achieve)":

* **RandSieve-BlkD** allocates a randomly chosen 1% of the blocks
  accessed each day and batch-allocates them for the next day — the
  random twin of SieveStore-D.
* **RandSieve-C** allocates a random 1% of all misses — the random twin
  of SieveStore-C's continuous admission.

The paper finds both barely beat the unsieved policies on hit ratio
(random sampling mostly picks low-reuse blocks, since ~60% of accesses
come from them), while still cutting allocation-writes substantially —
though about 8.5x more allocation-writes than real sieving.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Optional, Set

from repro.cache.allocation import AllocationPolicy


class RandSieveBlkD(AllocationPolicy):
    """Discrete random sieve: batch-allocate a random 1% of yesterday's blocks."""

    name = "randsieve-blkd"

    def __init__(
        self,
        fraction: float = 0.01,
        capacity_blocks: Optional[int] = None,
        seed: int = 0,
    ):
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction
        self.capacity_blocks = capacity_blocks
        self._rng = random.Random(seed)
        self._seen_this_epoch: Set[int] = set()

    def observe(self, address: int, is_write: bool, time: float, hit: bool) -> None:
        self._seen_this_epoch.add(address)

    def wants(self, address: int, is_write: bool, time: float) -> bool:
        return False

    def epoch_boundary(self, day: int) -> Optional[Iterable[int]]:
        universe = sorted(self._seen_this_epoch)  # sorted for determinism
        self._seen_this_epoch = set()
        if not universe:
            return set()
        k = max(1, math.ceil(len(universe) * self.fraction))
        if self.capacity_blocks is not None:
            k = min(k, self.capacity_blocks)
        return set(self._rng.sample(universe, k))


class RandSieveC(AllocationPolicy):
    """Continuous random sieve: allocate each miss with probability 1%."""

    name = "randsieve-c"

    def __init__(self, probability: float = 0.01, seed: int = 0):
        if not 0 < probability <= 1:
            raise ValueError(f"probability must be in (0, 1], got {probability}")
        self.probability = probability
        self._rng = random.Random(seed)

    def wants(self, address: int, is_write: bool, time: float) -> bool:
        return self._rng.random() < self.probability
