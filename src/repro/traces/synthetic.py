"""Synthetic storage-ensemble workload generator.

The paper's evaluation is driven by week-long block traces of a
13-server ensemble (the MSR Cambridge traces).  Those traces are not
redistributable, so this module generates a *statistical twin*: a seeded
synthetic trace engineered to exhibit the published properties the
paper's results depend on:

O1 (popularity skew, Section 2 / Figure 2):
    * the top ~1% of blocks accessed each day account for a large,
      day-varying share of accesses (paper: 14%-53%);
    * 99% of blocks accessed in a day see 10 or fewer accesses;
    * ~97% of blocks see 4 or fewer accesses;
    * about half of all accessed blocks are accessed exactly once;
    * the per-bin access count collapses rapidly past the top 1%.

O2 (skew variation, Figure 3):
    * servers differ strongly (web proxy extremely skewed, source
      control near-linear);
    * volumes of one server differ (Web volumes 0 vs 1);
    * the same server's skew varies day to day (web staging);
    * the server composition of the ensemble top-1% varies over time.

Mechanically, each (volume, day) workload is a set of **extents**
(contiguous runs of 512-byte blocks, one per non-overlapping 16-block
slot).  An extent carries a daily access count drawn either from a
bounded low-reuse *tail* distribution (counts 1..10) or, for the ~1%
*hot* extents, from a Zipf-like head scaled so hot accesses hit a
target share of the day's traffic.  Hot extents persist across days
with partial drift, which is what makes yesterday's access counts a
useful (but imperfect) predictor — the property SieveStore-D exploits
and the day-by-day ideal sieve bounds.

Day 0 models the paper's partial first calendar day (tracing started at
5 pm): intensity is scaled by 7/24 and hot counts shrink accordingly,
reproducing the paper's observation that on day 1 only a sliver of
blocks reach 10+ accesses (which is why SieveStore-D starts weakly on
day 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (segments uses columnar)
    from repro.traces.segments import SegmentStore

import numpy as np

from repro.traces.columnar import ColumnarTrace
from repro.traces.model import (
    MAX_BLOCK_OFFSET,
    MAX_VOLUME_ID,
    Trace,
    _OFFSET_BITS,
    _VOLUME_BITS,
)
from repro.traces.servers import ServerProfile, VolumeProfile, paper_ensemble
from repro.util.intervals import SECONDS_PER_DAY, SECONDS_PER_MINUTE
from repro.util.units import BLOCK_BYTES, GIB

#: Blocks per extent slot; extents never cross slots, so they never overlap.
SLOT_BLOCKS = 16

#: Tail access-count distribution (counts 1..10).  Chosen so that, with
#: ~1% hot extents, the all-blocks percentiles match O1: P(count<=4)
#: ~= 0.99 * 0.98 ~= 0.97 and P(count<=10) ~= 0.99.
_TAIL_COUNTS = np.arange(1, 11)
_TAIL_PROBS = np.array(
    [0.48, 0.27, 0.14, 0.09, 0.006, 0.006, 0.003, 0.003, 0.001, 0.001]
)
assert abs(_TAIL_PROBS.sum() - 1.0) < 1e-9

#: Fraction of the first calendar day actually traced (5 pm to midnight).
DAY0_INTENSITY = 7.0 / 24.0


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Knobs for the synthetic ensemble generator.

    Attributes:
        days: number of calendar days to generate (the paper uses 8,
            with day 0 partial).
        scale: linear scale factor relative to the paper's full-size
            ensemble.  It multiplies volume capacities and the daily
            accessed footprint; 1e-4 yields a few hundred thousand
            block accesses per day, simulable in seconds.
        mean_daily_footprint_gb: mean unique bytes accessed per full day
            at scale 1.0 (paper: 685 GB/day, range 335-1190 GB).
        footprint_sigma: lognormal sigma of the day-to-day footprint.
        hot_fraction: fraction of a day's extents that belong to the hot
            (Zipf-head) class (~1% to match O1).
        hot_drift: fraction of each volume's hot set replaced per day
            (O2 drift; successive days overlap roughly 1 - hot_drift,
            and the hottest half of the set never drifts).
        partial_day0: model day 0 as the paper's partial calendar day.
        burst_minutes_per_server_day: number of random 1-minute windows
            per (server, day) with elevated arrival intensity.  Bursts
            are drawn independently per server, so cross-server
            correlated bursts are rare, as the paper observes.
        unaligned_fraction: fraction of extents that are not 4-KB
            aligned (paper: ~6% of accesses).
        seed: master RNG seed; everything downstream is deterministic.
    """

    days: int = 8
    scale: float = 1e-4
    mean_daily_footprint_gb: float = 685.0
    footprint_sigma: float = 0.30
    hot_fraction: float = 0.007
    hot_drift: float = 0.12
    partial_day0: bool = True
    burst_minutes_per_server_day: int = 2
    burst_intensity: float = 6.0
    unaligned_fraction: float = 0.06
    read_fraction_override: Optional[float] = None
    #: Fraction of hot extents in the very-hot top band (hundreds to
    #: thousands of accesses/day — Figure 2(a)'s extreme head).  The
    #: rest form a log-uniform mid band (11 to a solved maximum), which
    #: spreads hot mass evenly per count decade; the low decades of that
    #: band are where sieving wins and demand-filled LRU loses.
    hot_top_fraction: float = 0.04
    hot_top_range: Tuple[float, float] = (250.0, 4000.0)
    #: Mean accesses per hot-block arrival cluster (see
    #: _clustered_hot_times); smaller clusters mean more refaults for
    #: demand-filled caches.
    hot_cluster_mean: float = 1.9
    #: Fraction of each hot block's accesses that arrive in *isolation*
    #: (heavy-tailed inter-access gaps, as in self-similar storage
    #: traffic) rather than inside a cluster.  Isolated accesses follow
    #: gaps longer than a demand-filled cache's residency, so they miss
    #: under AOD/WMNA but still hit once a sieve has pinned the block.
    hot_isolated_fraction: float = 0.60
    #: Fraction of hot extents that are *write-hot* (logs, metadata,
    #: database pages) — overwhelmingly written, rarely read.  Traffic
    #: below a buffer cache is write-dominated, and the paper stresses
    #: that SieveStore deliberately caches write-hot blocks (Section
    #: 5.1); a write-no-allocate policy structurally cannot admit them,
    #: which is a large part of why unsieved WMNA underperforms.
    write_hot_fraction: float = 0.35
    #: Read fraction of requests to write-hot extents.
    write_hot_read_fraction: float = 0.10
    seed: int = 20100619  # ISCA'10 opening day
    servers: Tuple[ServerProfile, ...] = field(
        default_factory=lambda: tuple(paper_ensemble())
    )

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError(f"days must be positive, got {self.days}")
        if not 0 < self.scale <= 1:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        if not 0 < self.hot_fraction < 0.5:
            raise ValueError(f"hot_fraction out of range: {self.hot_fraction}")
        if not 0 <= self.hot_drift <= 1:
            raise ValueError(f"hot_drift out of range: {self.hot_drift}")


def tiny_config(**overrides) -> SyntheticTraceConfig:
    """A fast configuration for unit tests (tens of thousands of accesses)."""
    defaults = dict(scale=1.5e-5, days=8, burst_minutes_per_server_day=1)
    defaults.update(overrides)
    return SyntheticTraceConfig(**defaults)


def small_config(**overrides) -> SyntheticTraceConfig:
    """The default benchmark configuration (a few million block accesses)."""
    defaults = dict(scale=1e-4, days=8)
    defaults.update(overrides)
    return SyntheticTraceConfig(**defaults)


@dataclass
class _VolumeHotPool:
    """Persistent per-volume hot-extent state with daily drift."""

    slots: np.ndarray  # slot indices of current hot extents, ranked hot->cold

    def drift(self, rng: np.random.Generator, total_slots: int, drift: float) -> None:
        """Replace a ``drift`` fraction of hot slots with fresh ones.

        Victims are drawn from the colder half of the ranked hot set;
        the hottest half persists day over day.  This gives
        the paper's O2 behaviour: the hot set drifts significantly with
        increasing time separation, yet successive days overlap enough
        that yesterday's access counts predict today's hot set (the
        property SieveStore-D relies on).
        """
        n = len(self.slots)
        n_replace = int(round(n * drift))
        protected = n // 2
        n_replace = min(n_replace, n - protected)
        if n_replace <= 0:
            return
        victims = protected + rng.choice(n - protected, size=n_replace, replace=False)
        occupied = set(self.slots.tolist())
        fresh = []
        while len(fresh) < n_replace:
            candidate = int(rng.integers(0, total_slots))
            if candidate not in occupied:
                occupied.add(candidate)
                fresh.append(candidate)
        self.slots = self.slots.copy()
        self.slots[victims] = fresh


class EnsembleTraceGenerator:
    """Generates the synthetic ensemble trace described in the module docs.

    Usage::

        gen = EnsembleTraceGenerator(SyntheticTraceConfig(scale=1e-4))
        trace = gen.generate()            # full chronological ensemble trace
        columns = gen.generate_columnar() # same trace as parallel arrays
        per_server = gen.per_server_traces()  # same requests, split by server

    The generator produces columns natively (one
    :class:`~repro.traces.columnar.ColumnarTrace` chunk per volume-day);
    the object representations are materialized from those columns on
    demand, so both views describe bit-for-bit the same requests.
    """

    def __init__(self, config: SyntheticTraceConfig):
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._hot_pools: Dict[Tuple[int, int], _VolumeHotPool] = {}
        self._trace: Optional[Trace] = None
        self._columnar: Optional[ColumnarTrace] = None
        self._per_server_columns: Optional[Dict[int, ColumnarTrace]] = None
        self._per_server: Optional[Dict[int, Trace]] = None
        self._day_streamed = False

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self) -> Trace:
        """Generate (and cache) the full ensemble trace (object form)."""
        if self._trace is None:
            self._trace = self.generate_columnar().to_trace()
        return self._trace

    def generate_columnar(self) -> ColumnarTrace:
        """Generate (and cache) the full ensemble trace as columns.

        The ensemble ordering matches :func:`merge_traces` on the
        per-server traces: per-server chunks are concatenated in server
        order and stable-sorted by issue time, so simultaneous requests
        keep their per-server order.
        """
        if self._columnar is None:
            per_server = self._per_server_columnar()
            merged = ColumnarTrace.concatenate(
                list(per_server.values()),
                description=(
                    f"synthetic ensemble: {len(self.config.servers)} servers, "
                    f"{self.config.days} days, scale={self.config.scale:g}, "
                    f"seed={self.config.seed}"
                ),
            )
            self._columnar = merged.sorted_by_issue()
        return self._columnar

    def per_server_traces(self) -> Dict[int, Trace]:
        """Per-server traces (server_id -> Trace), generating if needed."""
        if self._per_server is None:
            self._per_server = {
                server_id: columns.to_trace()
                for server_id, columns in self._per_server_columnar().items()
            }
        return self._per_server

    # ------------------------------------------------------------------
    # generation internals
    # ------------------------------------------------------------------
    def _per_server_columnar(self) -> Dict[int, ColumnarTrace]:
        """Per-server columnar traces, generated exactly once.

        Generation is stateful (the hot pools drift day over day), so
        this must not run twice for one generator instance.
        """
        if self._per_server_columns is None:
            self._per_server_columns = self._generate_all()
        return self._per_server_columns

    def iter_day_columnar(self) -> "Iterator[Tuple[int, ColumnarTrace]]":
        """Yield ``(day, columns)`` per trace day without holding the week.

        The streaming twin of :meth:`generate_columnar`: concatenating
        the yielded day traces in order reproduces the full ensemble
        trace **bit for bit**.  Per-day issue times are strictly inside
        their day, so sorting each day independently and concatenating
        equals the global stable sort — simultaneous requests keep the
        same (server, volume) tie order in both pipelines.

        Generation is stateful (hot pools drift day over day), so a
        generator instance can run either this or the whole-trace path,
        once; a second generation attempt raises ``RuntimeError``.
        """
        if self._per_server_columns is not None or self._day_streamed:
            raise RuntimeError(
                "generator already consumed (hot-pool drift is stateful); "
                "create a fresh EnsembleTraceGenerator"
            )
        self._day_streamed = True
        cfg = self.config
        day_footprints = self._daily_footprint_blocks()
        for day in range(cfg.days):
            chunks = [c for _, c in self._generate_day_chunks(day, day_footprints)]
            merged = ColumnarTrace.concatenate(
                chunks, description=f"synthetic ensemble day {day}"
            )
            yield day, merged.sorted_by_issue()

    def generate_segments(
        self,
        directory: "Union[str, Path]",
        rows_per_segment: Optional[int] = None,
        config_fingerprint: Optional[str] = None,
    ) -> "SegmentStore":
        """Generate straight into an on-disk segment store, day by day.

        Appends each day's (sorted) requests as one or more bounded
        segments as soon as the day is generated — peak memory is one
        day of one trace, not the week — and finalizes the manifest.
        The resulting store streams the identical rows
        :meth:`generate_columnar` would return.
        """
        from repro.traces.segments import SegmentWriter

        writer = SegmentWriter(
            directory,
            description=(
                f"synthetic ensemble: {len(self.config.servers)} servers, "
                f"{self.config.days} days, scale={self.config.scale:g}, "
                f"seed={self.config.seed}"
            ),
            config_fingerprint=config_fingerprint,
        )
        for _, day_columns in self.iter_day_columnar():
            writer.append(day_columns, max_rows=rows_per_segment)
        return writer.finalize()

    def _generate_day_chunks(
        self, day: int, day_footprints: List[float]
    ) -> List[Tuple[int, ColumnarTrace]]:
        """One day's ``(server_id, chunk)`` list in (server, volume) order.

        Must be called with strictly increasing ``day`` values on one
        instance: the hot pools drift sequentially.
        """
        cfg = self.config
        day_factor = self._hot_share_day_factor(day)
        mean_blocks = cfg.mean_daily_footprint_gb * GIB / BLOCK_BYTES * cfg.scale
        chunks: List[Tuple[int, ColumnarTrace]] = []
        for server in cfg.servers:
            server_footprint = day_footprints[day] * server.activity_share
            server_mean = mean_blocks * server.activity_share
            minute_weights = self._minute_weights(server, day)
            for volume in server.volumes:
                chunk = self._generate_volume_day(
                    server=server,
                    volume=volume,
                    day=day,
                    footprint_blocks=server_footprint * volume.access_share,
                    mean_footprint_blocks=server_mean * volume.access_share,
                    day_factor=day_factor,
                    minute_weights=minute_weights,
                )
                chunks.append((server.server_id, chunk))
        return chunks

    def _generate_all(self) -> Dict[int, ColumnarTrace]:
        if self._day_streamed:
            raise RuntimeError(
                "generator already consumed (hot-pool drift is stateful); "
                "create a fresh EnsembleTraceGenerator"
            )
        cfg = self.config
        day_footprints = self._daily_footprint_blocks()
        per_server_chunks: Dict[int, List[ColumnarTrace]] = {
            s.server_id: [] for s in cfg.servers
        }
        for day in range(cfg.days):
            for server_id, chunk in self._generate_day_chunks(day, day_footprints):
                per_server_chunks[server_id].append(chunk)
        traces = {}
        for server in cfg.servers:
            combined = ColumnarTrace.concatenate(
                per_server_chunks[server.server_id],
                description=f"synthetic server {server.key}",
            )
            traces[server.server_id] = combined.sorted_by_issue()
        return traces

    def _daily_footprint_blocks(self) -> List[float]:
        """Unique blocks accessed per day for the whole ensemble."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed ^ 0xF00D)
        mean_blocks = cfg.mean_daily_footprint_gb * GIB / BLOCK_BYTES * cfg.scale
        footprints = []
        for day in range(cfg.days):
            factor = float(
                np.exp(rng.normal(-0.5 * cfg.footprint_sigma**2, cfg.footprint_sigma))
            )
            blocks = mean_blocks * factor
            if day == 0 and cfg.partial_day0:
                blocks *= DAY0_INTENSITY
            footprints.append(blocks)
        return footprints

    def _hot_share_day_factor(self, day: int) -> float:
        """Ensemble-wide daily modulation of the hot-access share.

        Widens the day-to-day spread of the top-1% access share toward
        the paper's observed 14%-53% range.
        """
        rng = np.random.default_rng(self.config.seed ^ (0xDA << 8) ^ day)
        return float(rng.uniform(0.6, 1.3))

    def _effective_skew(
        self, server: ServerProfile, volume: VolumeProfile, day: int
    ) -> float:
        """Per-(server, volume, day) skew with the server's daily wobble."""
        rng = np.random.default_rng(
            self.config.seed ^ (server.server_id << 16) ^ (volume.volume_id << 8) ^ day
        )
        wobble = float(np.exp(rng.normal(0.0, server.daily_wobble)))
        return server.skew * volume.skew_scale * wobble

    @staticmethod
    def _hot_access_share(effective_skew: float, day_factor: float) -> float:
        """Map effective skew onto the hot extents' share of accesses.

        Calibrated so the ensemble-weighted mean lands near the paper's
        ~35% average ideal-sieve capture, the web proxy (skew 1.6) is
        nearly all-hot, and source control (skew 0.15) is near-linear.
        """
        share = 0.44 * effective_skew**1.4 * day_factor
        return float(np.clip(share, 0.01, 0.93))

    def _minute_weights(self, server: ServerProfile, day: int) -> np.ndarray:
        """Arrival-intensity weights for each minute of one server-day.

        Diurnal sinusoid (server-specific phase) plus a few independent
        1-minute bursts.  Day 0 only covers the final 7 hours.
        """
        cfg = self.config
        rng = np.random.default_rng(
            cfg.seed ^ (server.server_id << 20) ^ (day << 4) ^ 0xB0
        )
        minutes = np.arange(1440)
        phase = (server.server_id * 97) % 1440
        weights = 1.0 + 0.45 * np.sin(2 * np.pi * (minutes - phase) / 1440)
        for _ in range(cfg.burst_minutes_per_server_day):
            weights[int(rng.integers(0, 1440))] *= cfg.burst_intensity
        if day == 0 and cfg.partial_day0:
            weights[: 1440 - int(1440 * DAY0_INTENSITY)] = 0.0
        total = weights.sum()
        if total <= 0:
            raise AssertionError("minute weights must have positive mass")
        return weights / total

    def _hot_pool(
        self,
        server: ServerProfile,
        volume: VolumeProfile,
        day: int,
        n_hot: int,
        total_slots: int,
    ) -> np.ndarray:
        """Current hot slots for a volume, applying daily drift."""
        key = (server.server_id, volume.volume_id)
        rng = np.random.default_rng(
            self.config.seed
            ^ (server.server_id << 12)
            ^ (volume.volume_id << 6)
            ^ (day << 1)
            ^ 0x5EED
        )
        pool = self._hot_pools.get(key)
        if pool is None:
            slots = rng.choice(total_slots, size=max(n_hot, 1), replace=False)
            pool = _VolumeHotPool(slots=np.asarray(slots))
            self._hot_pools[key] = pool
        else:
            pool.drift(rng, total_slots, self.config.hot_drift)
        # Resize the pool if today's hot-set size differs from yesterday's.
        current = len(pool.slots)
        if n_hot > current:
            occupied = set(pool.slots.tolist())
            extra = []
            while len(extra) < n_hot - current:
                candidate = int(rng.integers(0, total_slots))
                if candidate not in occupied:
                    occupied.add(candidate)
                    extra.append(candidate)
            pool.slots = np.concatenate([pool.slots, np.asarray(extra, dtype=pool.slots.dtype)])
        return pool.slots[:n_hot]

    def _generate_volume_day(
        self,
        server: ServerProfile,
        volume: VolumeProfile,
        day: int,
        footprint_blocks: float,
        mean_footprint_blocks: float,
        day_factor: float,
        minute_weights: np.ndarray,
    ) -> ColumnarTrace:
        """Generate all requests for one (server, volume, day) as columns."""
        cfg = self.config
        rng = np.random.default_rng(
            cfg.seed ^ (server.server_id << 24) ^ (volume.volume_id << 16) ^ (day << 2)
        )
        volume_blocks = max(
            SLOT_BLOCKS * 64, int(volume.size_gb * GIB / BLOCK_BYTES * cfg.scale)
        )
        total_slots = volume_blocks // SLOT_BLOCKS

        mean_extent_blocks = 9.0  # see _extent_geometry
        n_extents = max(4, int(footprint_blocks / mean_extent_blocks))
        n_extents = min(n_extents, max(4, int(total_slots * 0.5)))
        # The hot-set size tracks the geometric mean of the day's and the
        # volume's mean footprint: stable enough across days that
        # yesterday's counts predict today's hot set (O2 / SieveStore-D's
        # premise), yet scaling with the day's traffic so the hot band
        # stays below the top percentile on light days.  Probabilistic
        # rounding keeps the expected hot fraction right even when a
        # volume-day has under one hot extent; deterministic max(1, ...)
        # would inflate the hot share badly at small scales.
        mean_fp = max(mean_footprint_blocks, 1.0)
        mean_target = (mean_fp / mean_extent_blocks) * cfg.hot_fraction
        # Resolve the fractional part of the *mean* target with a
        # volume-stable draw (so a small volume's hot-set size never
        # flips between 0 and 1 across days — that would look like
        # spurious hot-set churn), then scale mildly by the day's
        # footprint so the hot band stays below the top percentile on
        # light days without destabilizing the set.
        round_rng = np.random.default_rng(
            cfg.seed ^ (server.server_id << 10) ^ volume.volume_id ^ 0x407
        )
        base = int(mean_target) + (1 if round_rng.random() < mean_target % 1.0 else 0)
        day_ratio = (max(footprint_blocks, 1.0) / mean_fp) ** 0.3
        n_hot = int(round(base * day_ratio))
        if base > 0:
            n_hot = max(n_hot, 1)
        n_hot = min(n_hot, n_extents - 1)
        n_tail = n_extents - n_hot

        # --- access counts -------------------------------------------------
        tail_counts = rng.choice(_TAIL_COUNTS, size=n_tail, p=_TAIL_PROBS)
        skew = self._effective_skew(server, volume, day)
        hot_share = self._hot_access_share(skew, day_factor)
        tail_accesses = int(tail_counts.sum())
        hot_accesses = int(tail_accesses * hot_share / (1.0 - hot_share))
        hot_counts, n_top = self._zipf_head_counts(rng, n_hot, hot_accesses, skew)
        if day == 0 and cfg.partial_day0:
            # Partial day: hot blocks see proportionally fewer accesses, so
            # very few cross SieveStore-D's threshold (paper Section 5.1).
            hot_counts = np.maximum((hot_counts * DAY0_INTENSITY).astype(np.int64), 2)

        # --- extent placement ---------------------------------------------
        hot_slots = self._hot_pool(server, volume, day, n_hot, total_slots)
        tail_slots = self._sample_tail_slots(rng, total_slots, n_tail, set(hot_slots.tolist()))

        slots = np.concatenate([hot_slots, tail_slots])
        counts = np.concatenate([hot_counts, tail_counts]).astype(np.int64)
        offsets, lengths, aligned = self._extent_geometry(rng, len(slots))

        # --- request emission -----------------------------------------------
        # Three arrival patterns, matching how block traffic below a
        # buffer cache actually behaves:
        #   * hot extents: accessed throughout the (diurnal) day;
        #   * multi-access tail extents: their few accesses are spread
        #     hours apart — too far for any demand-filled cache to hold
        #     them between touches;
        #   * single-access tail extents: arrive in scan *sessions*
        #     (backups, sweeps) tens of minutes wide, flooding an
        #     unsieved LRU cache with junk and evicting its hot set.
        # The sessions plus the spread-out tail reuse are what make the
        # unsieved baselines lose: a sieve never admits the junk, so its
        # resident hot set survives every burst.
        extent_idx = np.repeat(np.arange(len(slots)), counts)
        n_requests = len(extent_idx)
        hot_req = extent_idx < n_hot
        single_mask = counts == 1
        single_mask[:n_hot] = False
        burst_req = single_mask[extent_idx]
        spread_req = ~hot_req & ~burst_req
        times = np.empty(n_requests)

        n_hot_req = int(hot_req.sum())
        if n_hot_req:
            times[hot_req] = self._clustered_hot_times(
                rng, extent_idx[hot_req], counts[:n_hot], minute_weights
            )
        n_spread = int(spread_req.sum())
        if n_spread:
            # Multi-access tail extents: touches *stratified* around the
            # clock (periodic re-reads, cron-style activity), so every
            # re-access gap is hours — far beyond any demand-filled
            # cache's residency.
            first = np.concatenate([[0], np.cumsum(counts)[:-1]])
            occurrence = np.arange(n_requests) - first[extent_idx]
            span = SECONDS_PER_DAY
            start = 0.0
            if day == 0 and cfg.partial_day0:
                span = SECONDS_PER_DAY * DAY0_INTENSITY
                start = SECONDS_PER_DAY - span
            c_req = counts[extent_idx[spread_req]].astype(float)
            phase = rng.random(n_tail + n_hot)[extent_idx[spread_req]]
            slot_pos = (
                occurrence[spread_req] + phase + rng.uniform(-0.3, 0.3, size=n_spread)
            ) % c_req
            times[spread_req] = start + slot_pos / c_req * span
        n_burst = int(burst_req.sum())
        if n_burst:
            burst_extents = extent_idx[burst_req]
            # Re-index burst extents densely for session assignment.
            unique_ids, dense = np.unique(burst_extents, return_inverse=True)
            times[burst_req] = self._session_times(
                rng, dense, len(unique_ids), minute_weights
            )
        times += day * SECONDS_PER_DAY
        read_fraction = (
            cfg.read_fraction_override
            if cfg.read_fraction_override is not None
            else server.read_fraction
        )
        # Per-extent read probability: most extents follow the server's
        # read fraction, but a slice of the hot set is write-hot.
        extent_read_p = np.full(len(slots), read_fraction)
        if n_hot and cfg.write_hot_fraction > 0:
            # Write-hot extents come from the modest-count part of the
            # hot band only: logs and metadata are written tens of times
            # a day, while the mega-hot blocks are read-dominated.
            # Keeping the heavy hitters read-mostly also keeps the SSD's
            # daily write volume within the paper's ~500M-blocks/day
            # envelope (Section 5.1).
            write_hot = rng.random(n_hot) < cfg.write_hot_fraction
            write_hot[:n_top] = False
            write_hot &= hot_counts <= 120
            extent_read_p[:n_hot][write_hot] = cfg.write_hot_read_fraction
        is_read = rng.random(n_requests) < extent_read_p[extent_idx]
        latency = 0.005 + rng.exponential(0.003, size=n_requests)

        # Column assembly.  The completion-time expression keeps the
        # same left-to-right float association the scalar reference used
        # (``(issue + latency) + transfer``), so the columnar and object
        # pipelines agree bit for bit.
        base_offsets = slots * SLOT_BLOCKS
        block_offset = (base_offsets + offsets)[extent_idx].astype(np.int64)
        lengths_req = lengths[extent_idx].astype(np.int64)
        completion = times + latency + lengths_req * BLOCK_BYTES / 80e6
        if not 0 <= volume.volume_id <= MAX_VOLUME_ID:
            raise ValueError(f"volume_id out of range: {volume.volume_id}")
        if n_requests and int(block_offset.max()) > MAX_BLOCK_OFFSET:
            raise ValueError("block offset exceeds packed-address capacity")
        address_base = (server.server_id << (_VOLUME_BITS + _OFFSET_BITS)) | (
            volume.volume_id << _OFFSET_BITS
        )
        return ColumnarTrace(
            issue_time=times,
            completion_time=completion,
            address=address_base + block_offset,
            block_count=lengths_req,
            is_write=~is_read,
            aligned_4k=aligned[extent_idx],
            description=f"synthetic {server.key} vol{volume.volume_id} day{day}",
        )

    def _clustered_hot_times(
        self,
        rng: np.random.Generator,
        hot_access_extent: np.ndarray,
        hot_counts: np.ndarray,
        minute_weights: np.ndarray,
    ) -> np.ndarray:
        """Second-of-day timestamps for hot-extent requests.

        Hot-block traffic below a buffer cache arrives in short
        *clusters* (read-modify-write pairs, bursts of related requests)
        separated by long silences.  Each hot extent's daily accesses
        are split into clusters of ~2-4; cluster centers follow the
        diurnal profile, accesses fall within a few minutes of their
        center.  The long inter-cluster silences are what defeats
        demand-filled LRU caching (the block is evicted between
        clusters and refaults on every return) while leaving sieved
        caches untouched (once admitted, the block stays resident and
        every later cluster hits).
        """
        n_hot = len(hot_counts)
        if n_hot == 0:
            return np.zeros(0)
        n_accesses = len(hot_access_extent)
        spread = self.config.hot_cluster_mean * 0.4
        clustered_share = 1.0 - self.config.hot_isolated_fraction
        mean_cluster = rng.uniform(
            self.config.hot_cluster_mean - spread,
            self.config.hot_cluster_mean + spread,
            size=n_hot,
        )
        clusters_per_extent = np.maximum(
            1, np.round(hot_counts * clustered_share / mean_cluster)
        ).astype(np.int64)
        first_cluster = np.concatenate(
            [[0], np.cumsum(clusters_per_extent)[:-1]]
        )
        total_clusters = int(clusters_per_extent.sum())
        centers = rng.choice(1440, size=total_clusters, p=minute_weights).astype(float)
        # Pick a uniformly random cluster of the owning extent per access.
        pick = (
            rng.random(n_accesses) * clusters_per_extent[hot_access_extent]
        ).astype(np.int64)
        cluster_id = first_cluster[hot_access_extent] + pick
        minutes = np.clip(
            centers[cluster_id] + rng.normal(0.0, 3.0, size=n_accesses),
            0.0,
            1439.0,
        )
        # Isolated accesses: re-draw their minute independently from the
        # diurnal profile, giving them gaps far beyond any demand-filled
        # cache's residency.
        isolated = rng.random(n_accesses) < self.config.hot_isolated_fraction
        n_isolated = int(isolated.sum())
        if n_isolated:
            minutes[isolated] = rng.choice(
                1440, size=n_isolated, p=minute_weights
            ).astype(float)
        if minute_weights[: 1440 // 2].sum() == 0.0:
            first_minute = int(np.argmax(minute_weights > 0))
            minutes = np.maximum(minutes, first_minute)
        return minutes * SECONDS_PER_MINUTE + rng.uniform(
            0, SECONDS_PER_MINUTE, size=len(cluster_id)
        )

    def _session_times(
        self,
        rng: np.random.Generator,
        tail_extent_idx: np.ndarray,
        n_tail: int,
        minute_weights: np.ndarray,
    ) -> np.ndarray:
        """Second-of-day timestamps for tail-extent requests.

        Tail extents are partitioned into scan sessions; every access of
        an extent lands inside its session's window, so all the reuse a
        low-count block has is confined to one burst (as it would be for
        a scan re-reading a region).  Session centers follow the same
        diurnal weights as hot traffic.
        """
        n_sessions = max(3, n_tail // 400)
        centers = rng.choice(1440, size=n_sessions, p=minute_weights).astype(float)
        widths = rng.uniform(10.0, 30.0, size=n_sessions)  # minutes
        session_of_extent = rng.integers(0, n_sessions, size=n_tail)
        session = session_of_extent[tail_extent_idx]
        offsets = rng.uniform(-0.5, 0.5, size=len(session)) * widths[session]
        minutes = np.clip(centers[session] + offsets, 0.0, 1439.0)
        if minute_weights[: 1440 // 2].sum() == 0.0:
            # Partial day 0: keep sessions inside the traced window.
            first_minute = int(np.argmax(minute_weights > 0))
            minutes = np.maximum(minutes, first_minute)
        return minutes * SECONDS_PER_MINUTE + rng.uniform(0, 60.0, size=len(session))

    def _zipf_head_counts(
        self, rng: np.random.Generator, n_hot: int, hot_accesses: int, skew: float
    ) -> np.ndarray:
        """Distribute ``hot_accesses`` over ``n_hot`` extents, power-law style.

        Counts are i.i.d. truncated-Pareto draws with minimum 11 (hot
        blocks sit strictly above the tail's 10-access ceiling, matching
        Figure 2(a)'s cliff at the top percentile) and a tail index
        chosen so the draws' mean matches ``hot_accesses / n_hot``.
        Sampling i.i.d. — rather than assigning rank-based Zipf weights
        within the volume — keeps the *ensemble* head distribution
        scale-free even when a scaled-down volume has only a couple of
        hot extents.  A tail index near 1 spreads hot mass roughly
        evenly per count decade (10s to 1000s of accesses/day), which is
        what the paper's Figure 2(a) slope implies and what places a
        substantial mass share below the LRU-retention cutoff where only
        sieving captures it.

        The draws are sorted descending so rank 0 is the hottest extent
        (the hot-pool drift protects low ranks).  Returns
        ``(counts, n_top)`` where ``n_top`` is the number of top-band
        extents (always the leading ranks after sorting).
        """
        if n_hot <= 0:
            return np.zeros(0, dtype=np.int64), 0
        cfg = self.config
        floor = 11.0
        target_mean = max(hot_accesses / n_hot, floor * 1.1)
        top_lo, top_hi = cfg.hot_top_range
        top_mean = (top_hi - top_lo) / math.log(top_hi / top_lo)
        # Choose the top-band population so the mixture mean hits the
        # target; small volumes may not afford any top-band extent.
        top_fraction = cfg.hot_top_fraction
        if target_mean < floor * 1.2 + top_fraction * top_mean:
            top_fraction = max(0.0, (target_mean - floor * 1.2) / top_mean)
        # Probabilistic rounding: a volume with 3 hot extents and a 4%
        # top fraction still fields a top-band extent 12% of the time,
        # keeping the *expected* ensemble mixture right at every scale.
        raw = n_hot * top_fraction
        n_top = int(raw) + (1 if rng.random() < raw % 1.0 else 0)
        mid_target = (target_mean * n_hot - n_top * top_mean) / max(n_hot - n_top, 1)
        mid_target = max(mid_target, floor * 1.05)
        mid_hi = self._solve_pareto1_max(mid_target, floor)
        counts = np.empty(n_hot, dtype=np.int64)
        if n_top:
            counts[:n_top] = np.round(
                np.exp(rng.uniform(math.log(top_lo), math.log(top_hi), size=n_top))
            )
        if n_hot - n_top:
            # Truncated Pareto(index 1): density ~ x^-2 on [floor, M], so
            # access *mass* spreads evenly per count decade.
            u = rng.random(n_hot - n_top)
            counts[n_top:] = np.round(floor / (1.0 - u * (1.0 - floor / mid_hi)))
        counts = np.maximum(counts, int(floor))
        counts[::-1].sort()  # descending: rank 0 is hottest
        return counts, n_top

    @staticmethod
    def _solve_pareto1_max(target_mean: float, floor: float) -> float:
        """Upper truncation M of a Pareto(1) with the given mean.

        For density ~ x^-2 on [floor, M] the mean is
        ``floor * ln(M/floor) / (1 - floor/M)``, monotone in M; bisect.
        """

        def mean(m: float) -> float:
            return floor * math.log(m / floor) / (1.0 - floor / m)

        lo, hi = floor * 1.02, floor * 1e7
        if target_mean <= mean(lo):
            return lo
        if target_mean >= mean(hi):
            return hi
        for _ in range(80):
            mid = math.sqrt(lo * hi)
            if mean(mid) < target_mean:
                lo = mid
            else:
                hi = mid
        return math.sqrt(lo * hi)

    @staticmethod
    def _sample_tail_slots(
        rng: np.random.Generator, total_slots: int, n_tail: int, excluded: set
    ) -> np.ndarray:
        """Sample distinct tail slots avoiding the hot set."""
        if n_tail <= 0:
            return np.zeros(0, dtype=np.int64)
        # Oversample and deduplicate; footprints are sparse relative to
        # the slot grid so a couple of rounds always suffice.
        chosen: List[int] = []
        seen = set(excluded)
        while len(chosen) < n_tail:
            need = n_tail - len(chosen)
            candidates = rng.integers(0, total_slots, size=max(need * 2, 16))
            for c in candidates:
                ci = int(c)
                if ci not in seen:
                    seen.add(ci)
                    chosen.append(ci)
                    if len(chosen) == n_tail:
                        break
        return np.asarray(chosen, dtype=np.int64)

    def _extent_geometry(
        self, rng: np.random.Generator, n_extents: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-extent (offset-within-slot, block length, 4K-aligned flag).

        ~94% of extents are 4-KB aligned with lengths of 8 or 16 blocks;
        the rest start at odd in-slot offsets with short odd lengths,
        reproducing the paper's ~6% of non-4KB-aligned I/O.
        """
        unaligned = rng.random(n_extents) < self.config.unaligned_fraction
        lengths = np.where(
            rng.random(n_extents) < 0.8, 8, 16
        ).astype(np.int64)
        offsets = np.zeros(n_extents, dtype=np.int64)
        n_unaligned = int(unaligned.sum())
        if n_unaligned:
            odd_lengths = rng.choice([1, 3, 5, 7], size=n_unaligned)
            odd_offsets = rng.integers(1, 8, size=n_unaligned)
            lengths[unaligned] = odd_lengths
            offsets[unaligned] = odd_offsets
        return offsets, lengths, ~unaligned


def generate_ensemble_trace(config: Optional[SyntheticTraceConfig] = None) -> Trace:
    """Convenience wrapper: generate the full ensemble trace."""
    return EnsembleTraceGenerator(config or SyntheticTraceConfig()).generate()


def generate_columnar_trace(
    config: Optional[SyntheticTraceConfig] = None,
) -> ColumnarTrace:
    """Convenience wrapper: generate the full ensemble trace as columns."""
    return EnsembleTraceGenerator(config or SyntheticTraceConfig()).generate_columnar()
