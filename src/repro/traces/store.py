"""On-disk trace cache keyed by a ``SyntheticTraceConfig`` content hash.

Every bench session, example, and CLI invocation that replays the
synthetic ensemble used to regenerate it from scratch — tens of seconds
at bench scale, repeated identically across processes.  The generator
is fully deterministic given its config, so the trace is a pure
function of the config's field values: this module fingerprints those
values and memoizes the generated columns as an ``.npz`` file.

Cache location, in precedence order:

1. ``SIEVESTORE_TRACE_CACHE`` environment variable — a directory path,
   or ``""``/``"0"``/``"off"`` to disable caching entirely;
2. otherwise ``.sievestore-trace-cache/`` under the current working
   directory.

Entries are written atomically and durably (temp file + fsync +
``os.replace`` + directory fsync, via :mod:`repro.util.atomic`) so
concurrent processes generating the same config can race harmlessly and
a crash can never publish a truncated entry; unreadable or
version-mismatched entries are regenerated and overwritten rather than
trusted.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
import warnings
import zipfile
from pathlib import Path
from typing import Optional, Union

from repro.traces.columnar import ColumnarTrace
from repro.traces.segments import SegmentError, SegmentStore
from repro.util.atomic import atomic_write_path
from repro.traces.model import Trace
from repro.traces.synthetic import EnsembleTraceGenerator, SyntheticTraceConfig

#: Bump to invalidate every cached trace (e.g. when the generator's
#: output changes for identical configs).
TRACE_CACHE_VERSION = 1

#: Environment variable overriding (or disabling) the cache directory.
CACHE_ENV_VAR = "SIEVESTORE_TRACE_CACHE"

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIRNAME = ".sievestore-trace-cache"

_DISABLED_VALUES = {"", "0", "off", "none"}

#: Paths already warned about as non-directories (warn once per path
#: per process; every cache lookup resolves the directory, and a run
#: does many lookups).
_NON_DIRECTORY_WARNED = set()


def _reset_non_directory_warnings() -> None:
    """Forget which bad cache paths were already warned about (tests)."""
    _NON_DIRECTORY_WARNED.clear()


def config_fingerprint(config: SyntheticTraceConfig) -> str:
    """Deterministic content hash of every generator-relevant field.

    Hashes the JSON form of ``dataclasses.asdict(config)`` (which
    recurses into the server/volume profiles) plus the cache version,
    so any config change — including the ensemble inventory — yields a
    different fingerprint.
    """
    payload = {
        "version": TRACE_CACHE_VERSION,
        "config": dataclasses.asdict(config),
    }
    encoded = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(encoded).hexdigest()


def trace_cache_dir(
    cache_dir: Optional[Union[str, Path]] = None,
) -> Optional[Path]:
    """Resolve the cache directory; ``None`` means caching is disabled.

    An explicit ``cache_dir`` argument wins over the environment.  A
    path — explicit or from the environment — that exists but is
    **not** a directory (a stray file where the cache should live)
    disables caching with a one-time warning naming the path, instead
    of failing every cache write with a confusing ``mkdir`` error.
    """
    if cache_dir is not None:
        path = Path(cache_dir)
        if _warn_if_non_directory(path, f"cache_dir={str(cache_dir)!r}"):
            return None
        return path
    env = os.environ.get(CACHE_ENV_VAR)
    if env is not None:
        if env.strip().lower() in _DISABLED_VALUES:
            return None
        path = Path(env)
        if _warn_if_non_directory(path, f"{CACHE_ENV_VAR}={env!r}"):
            return None
        return path
    return Path.cwd() / DEFAULT_CACHE_DIRNAME


def _warn_if_non_directory(path: Path, origin: str) -> bool:
    """True (with a once-per-path warning) if ``path`` is a non-directory."""
    if not path.exists() or path.is_dir():
        return False
    if str(path) not in _NON_DIRECTORY_WARNED:
        _NON_DIRECTORY_WARNED.add(str(path))
        warnings.warn(
            f"{origin} points at an existing non-directory path; trace "
            "caching is disabled for this run (remove the file or use "
            "a directory path)",
            RuntimeWarning,
            stacklevel=4,
        )
    return True


def cache_path_for(
    config: SyntheticTraceConfig,
    cache_dir: Optional[Union[str, Path]] = None,
) -> Optional[Path]:
    """Cache file path for a config, or ``None`` if caching is disabled."""
    directory = trace_cache_dir(cache_dir)
    if directory is None:
        return None
    return directory / f"trace-{config_fingerprint(config)}.npz"


def load_or_generate_columnar(
    config: SyntheticTraceConfig,
    cache_dir: Optional[Union[str, Path]] = None,
) -> ColumnarTrace:
    """Return the columnar ensemble trace for ``config``, cached on disk.

    Falls back to plain generation when caching is disabled; a corrupt
    or truncated cache entry (bad zip, missing arrays, version
    mismatch, short file) is evicted with a warning naming the path and
    regenerated rather than propagated as an unpickling/zip error.
    """
    path = cache_path_for(config, cache_dir)
    if path is not None and path.exists():
        try:
            columns = ColumnarTrace.load_npz(path)
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile) as exc:
            _note_cache_outcome("corrupt")
            warnings.warn(
                f"corrupt trace-cache entry {path} "
                f"({type(exc).__name__}: {exc}); evicting and regenerating",
                RuntimeWarning,
                stacklevel=2,
            )
            try:
                path.unlink()
            except OSError:
                pass  # eviction is best-effort; the overwrite below wins
        else:
            _note_cache_outcome("hit")
            return columns
    _note_cache_outcome("miss")
    columns = EnsembleTraceGenerator(config).generate_columnar()
    if path is not None:
        _atomic_save(columns, path)
    return columns


def _note_cache_outcome(outcome: str) -> None:
    """Count a cache lookup when observability is on (no-op otherwise)."""
    from repro.obs import runtime as obs_runtime

    registry = obs_runtime.get_registry()
    if registry is None:
        return
    registry.counter(
        "trace_cache_requests_total",
        "Trace-cache lookups by outcome (hit / miss / corrupt)",
        ("outcome",),
    ).inc(outcome=outcome)


def segments_path_for(
    config: SyntheticTraceConfig,
    cache_dir: Optional[Union[str, Path]] = None,
) -> Optional[Path]:
    """Segment-store directory for a config, or ``None`` when disabled."""
    directory = trace_cache_dir(cache_dir)
    if directory is None:
        return None
    return directory / f"trace-{config_fingerprint(config)}.segments"


def load_or_generate_segments(
    config: SyntheticTraceConfig,
    cache_dir: Optional[Union[str, Path]] = None,
    directory: Optional[Union[str, Path]] = None,
    rows_per_segment: Optional[int] = None,
) -> SegmentStore:
    """Return the config's trace as an on-disk segment store.

    The out-of-core twin of :func:`load_or_generate_columnar`: the
    generator streams one day at a time into bounded ``.npz`` segments
    (never materializing the whole trace), and a valid existing store
    whose recorded config fingerprint matches is reused as-is.  An
    unreadable, truncated, version-mismatched, or wrong-fingerprint
    store is evicted with a warning and regenerated.

    ``directory`` pins the store location explicitly (the CLI's
    ``--segments`` flag); otherwise the store lives in the trace cache
    keyed by the config fingerprint.  Segment stores are inherently
    on-disk, so with caching disabled and no explicit directory this
    raises ``ValueError``.
    """
    fingerprint = config_fingerprint(config)
    if directory is not None:
        target = Path(directory)
    else:
        target = segments_path_for(config, cache_dir)
        if target is None:
            raise ValueError(
                "segment stores live on disk: pass an explicit directory "
                f"or enable the trace cache (unset {CACHE_ENV_VAR}=off)"
            )
    if (target / "manifest.json").exists():
        try:
            store = SegmentStore.open(target)
            if store.config_fingerprint != fingerprint:
                raise SegmentError(
                    f"segment store {target} was generated for a different "
                    "trace config"
                )
        except SegmentError as exc:
            _note_cache_outcome("corrupt")
            warnings.warn(
                f"unusable segment store {target} ({exc}); evicting and "
                "regenerating",
                RuntimeWarning,
                stacklevel=2,
            )
            shutil.rmtree(target, ignore_errors=True)
        else:
            _note_cache_outcome("hit")
            return store
    _note_cache_outcome("miss")
    return EnsembleTraceGenerator(config).generate_segments(
        target, rows_per_segment=rows_per_segment, config_fingerprint=fingerprint
    )


def load_or_generate_trace(
    config: SyntheticTraceConfig,
    cache_dir: Optional[Union[str, Path]] = None,
) -> Trace:
    """Object-trace convenience over :func:`load_or_generate_columnar`."""
    return load_or_generate_columnar(config, cache_dir).to_trace()


def _atomic_save(columns: ColumnarTrace, path: Path) -> None:
    """Write the entry so concurrent writers never expose partial files.

    Durability matters here, not just atomicity: a crash between the
    rename and the page-cache flush used to be able to publish a
    truncated ``.npz`` that only the corrupt-eviction path rescued.
    """
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with atomic_write_path(path) as tmp_path:
            columns.save_npz(tmp_path)
    except OSError as exc:
        # Caching is best-effort — the generated trace is still
        # returned — but a silently dead cache means regenerating the
        # trace every run, so say where and why it failed.
        warnings.warn(
            f"trace cache write failed for {path}: {exc}; the trace "
            "will be regenerated on the next run (set "
            f"{CACHE_ENV_VAR}=off to silence, or point it at a "
            "writable directory)",
            RuntimeWarning,
            stacklevel=2,
        )
