"""Columnar trace representation: the simulation hot path's substrate.

The object model (:class:`~repro.traces.model.Trace` holding one
:class:`~repro.traces.model.IORequest` dataclass per request) is the
readable reference representation, but allocating half a million frozen
dataclasses — and re-deriving packed addresses, request kinds, and
per-block expansions from them request by request — dominates the cost
of replaying a trace through eight-plus allocation policies.

:class:`ColumnarTrace` stores the same information as parallel numpy
arrays, one row per request:

=================  =========  ==========================================
column             dtype      meaning
=================  =========  ==========================================
``issue_time``     float64    seconds since trace start at request issue
``completion_time`` float64   completion of the request's last block
``address``        int64      packed global address of the first block
                              (see :func:`~repro.traces.model.pack_address`)
``block_count``    int32      consecutive 512-byte blocks touched
``is_write``       bool       write (True) or read (False)
``aligned_4k``     bool       request starts/ends on 4-KB boundaries
=================  =========  ==========================================

The representation is **lossless**: :meth:`from_trace` /
:meth:`to_trace` round-trip every field bit-for-bit (times are the very
same float64 values, addresses the same packed integers), so the fast
simulation path consuming columns is checked for equality against the
object path rather than for approximate agreement.

Columnar traces also serialize to ``.npz`` in one call, which is what
the on-disk trace cache (:mod:`repro.traces.store`) and the parallel
policy-suite workers (:mod:`repro.sim.parallel`) share.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.traces.model import (
    IOKind,
    IORequest,
    Trace,
    _OFFSET_BITS,
    _OFFSET_MASK,
    _VOLUME_BITS,
    _VOLUME_MASK,
    pack_address,
)
from repro.util.atomic import atomic_write
from repro.util.intervals import SECONDS_PER_DAY, bucket_indices

#: Bump when the on-disk ``.npz`` layout changes; loaders refuse others.
NPZ_FORMAT_VERSION = 1

_SERVER_SHIFT = _VOLUME_BITS + _OFFSET_BITS


@dataclass(eq=False)
class ColumnarTrace:
    """A chronological request trace as parallel columns (see module docs).

    Rows must be sorted by ``issue_time``; :meth:`validate` checks this,
    mirroring :meth:`repro.traces.model.Trace.validate`.
    """

    issue_time: np.ndarray
    completion_time: np.ndarray
    address: np.ndarray
    block_count: np.ndarray
    is_write: np.ndarray
    aligned_4k: np.ndarray
    description: str = ""

    def __post_init__(self) -> None:
        self.issue_time = np.asarray(self.issue_time, dtype=np.float64)
        self.completion_time = np.asarray(self.completion_time, dtype=np.float64)
        self.address = np.asarray(self.address, dtype=np.int64)
        self.block_count = np.asarray(self.block_count, dtype=np.int32)
        self.is_write = np.asarray(self.is_write, dtype=np.bool_)
        self.aligned_4k = np.asarray(self.aligned_4k, dtype=np.bool_)
        n = self.issue_time.shape[0]
        for name in ("completion_time", "address", "block_count", "is_write", "aligned_4k"):
            column = getattr(self, name)
            if column.shape != (n,):
                raise ValueError(
                    f"column {name} has shape {column.shape}, expected ({n},)"
                )

    # -- basic protocol ---------------------------------------------------
    def __len__(self) -> int:
        return int(self.issue_time.shape[0])

    def total_blocks(self) -> int:
        """Total number of 512-byte block accesses in the trace."""
        return int(self.block_count.sum())

    @property
    def duration(self) -> float:
        """Seconds from trace start to the last completion, 0.0 if empty."""
        if len(self) == 0:
            return 0.0
        return float(self.completion_time.max())

    def validate(self) -> None:
        """Raise ``ValueError`` if requests are not in issue-time order."""
        issue = self.issue_time
        if len(self) >= 2:
            bad = np.nonzero(np.diff(issue) < 0)[0]
            if bad.size:
                index = int(bad[0]) + 1
                raise ValueError(
                    f"request {index} out of order: "
                    f"{issue[index]} < {issue[index - 1]}"
                )

    def equals(self, other: "ColumnarTrace") -> bool:
        """Exact (bitwise) equality of all columns; ignores description."""
        return (
            len(self) == len(other)
            and bool(np.array_equal(self.issue_time, other.issue_time))
            and bool(np.array_equal(self.completion_time, other.completion_time))
            and bool(np.array_equal(self.address, other.address))
            and bool(np.array_equal(self.block_count, other.block_count))
            and bool(np.array_equal(self.is_write, other.is_write))
            and bool(np.array_equal(self.aligned_4k, other.aligned_4k))
        )

    # -- derived columns --------------------------------------------------
    @property
    def server_ids(self) -> np.ndarray:
        """Per-request server id (int64), decoded from the packed address."""
        return self.address >> _SERVER_SHIFT

    @property
    def volume_ids(self) -> np.ndarray:
        """Per-request volume id (int64), decoded from the packed address."""
        return (self.address >> _OFFSET_BITS) & _VOLUME_MASK

    def issue_days(self) -> np.ndarray:
        """Zero-based calendar-day index of each request's issue time.

        Matches Python's float floor-division — the exact expression
        :func:`repro.util.intervals.day_of` uses — rather than plain
        ``numpy.floor_divide``, whose rounding can differ by one ulp
        for timestamps within half an ulp of a day boundary.  The fast
        simulation path's equality guarantee depends on the two paths
        bucketing identically, so this delegates to the shared
        vectorized primitive
        :func:`repro.util.intervals.bucket_indices`, which repairs
        boundary-adjacent entries with scalar Python arithmetic.
        """
        return bucket_indices(self.issue_time, SECONDS_PER_DAY)

    def expand_block_addresses(self) -> np.ndarray:
        """Packed address of every individual block access, in issue order.

        A request of ``k`` blocks contributes ``k`` consecutive
        addresses, mirroring :meth:`IORequest.addresses`.
        """
        counts = self.block_count.astype(np.int64)
        total = int(counts.sum())
        starts = np.cumsum(counts) - counts
        ramp = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        return np.repeat(self.address, counts) + ramp

    def daily_block_counts(self, days: int) -> List[Counter]:
        """Vectorized twin of :func:`repro.traces.streams.daily_block_counts`.

        Returns identical per-day ``Counter`` objects (same keys, same
        counts) without the per-block Python loop.  Requests issued past
        the last requested day are dropped, as in the reference.
        """
        if days <= 0:
            raise ValueError(f"days must be positive, got {days}")
        counters: List[Counter] = [Counter() for _ in range(days)]
        if len(self) == 0:
            return counters
        day_index = self.issue_days()
        counts64 = self.block_count.astype(np.int64)
        # Rows are sorted by issue time (the class contract), so the
        # day column is non-decreasing and each day is one contiguous
        # slice: locate all day boundaries with a single binary-search
        # pass instead of rescanning every row once per day.  Unsorted
        # traces (pre-validate() inputs) keep the masking fallback.
        if bool(np.all(day_index[1:] >= day_index[:-1])):
            boundaries = np.searchsorted(
                day_index, np.arange(days + 1, dtype=np.int64), side="left"
            )
            day_slices = [
                (day, slice(int(boundaries[day]), int(boundaries[day + 1])))
                for day in range(days)
            ]
        else:
            day_slices = [(day, day_index == day) for day in range(days)]
        for day, rows in day_slices:
            bases = self.address[rows]
            if bases.size == 0:
                continue
            counts = counts64[rows]
            total = int(counts.sum())
            starts = np.cumsum(counts) - counts
            ramp = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
            expanded = np.repeat(bases, counts) + ramp
            unique, per_block = np.unique(expanded, return_counts=True)
            counters[day] = Counter(dict(zip(unique.tolist(), per_block.tolist())))
        return counters

    # -- structural operations --------------------------------------------
    def filter(
        self,
        server_id: Optional[int] = None,
        volume_id: Optional[int] = None,
    ) -> "ColumnarTrace":
        """Restrict to one server and/or volume (cf. :meth:`Trace.filter`)."""
        mask = np.ones(len(self), dtype=np.bool_)
        if server_id is not None:
            mask &= self.server_ids == server_id
        if volume_id is not None:
            mask &= self.volume_ids == volume_id
        suffix = []
        if server_id is not None:
            suffix.append(f"server={server_id}")
        if volume_id is not None:
            suffix.append(f"volume={volume_id}")
        return ColumnarTrace(
            issue_time=self.issue_time[mask],
            completion_time=self.completion_time[mask],
            address=self.address[mask],
            block_count=self.block_count[mask],
            is_write=self.is_write[mask],
            aligned_4k=self.aligned_4k[mask],
            description=f"{self.description} [{', '.join(suffix)}]",
        )

    def sorted_by_issue(self) -> "ColumnarTrace":
        """Stable-sort rows by issue time (ties keep their input order).

        Matches Python's stable ``sorted(key=issue_time)`` on the object
        representation, so the two pipelines order simultaneous requests
        identically.
        """
        order = np.argsort(self.issue_time, kind="stable")
        return self.take(order)

    def take(self, indices: np.ndarray) -> "ColumnarTrace":
        """Row subset/permutation by index array."""
        return ColumnarTrace(
            issue_time=self.issue_time[indices],
            completion_time=self.completion_time[indices],
            address=self.address[indices],
            block_count=self.block_count[indices],
            is_write=self.is_write[indices],
            aligned_4k=self.aligned_4k[indices],
            description=self.description,
        )

    @classmethod
    def concatenate(
        cls, parts: Sequence["ColumnarTrace"], description: str = ""
    ) -> "ColumnarTrace":
        """Concatenate row blocks in the given order (no re-sorting)."""
        if not parts:
            return cls.empty(description)
        return cls(
            issue_time=np.concatenate([p.issue_time for p in parts]),
            completion_time=np.concatenate([p.completion_time for p in parts]),
            address=np.concatenate([p.address for p in parts]),
            block_count=np.concatenate([p.block_count for p in parts]),
            is_write=np.concatenate([p.is_write for p in parts]),
            aligned_4k=np.concatenate([p.aligned_4k for p in parts]),
            description=description,
        )

    @classmethod
    def empty(cls, description: str = "") -> "ColumnarTrace":
        """A zero-request trace."""
        return cls(
            issue_time=np.zeros(0, dtype=np.float64),
            completion_time=np.zeros(0, dtype=np.float64),
            address=np.zeros(0, dtype=np.int64),
            block_count=np.zeros(0, dtype=np.int32),
            is_write=np.zeros(0, dtype=np.bool_),
            aligned_4k=np.zeros(0, dtype=np.bool_),
            description=description,
        )

    # -- conversions -------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Trace) -> "ColumnarTrace":
        """Columnarize an object trace (lossless)."""
        n = len(trace)
        issue = np.empty(n, dtype=np.float64)
        completion = np.empty(n, dtype=np.float64)
        address = np.empty(n, dtype=np.int64)
        block_count = np.empty(n, dtype=np.int32)
        is_write = np.empty(n, dtype=np.bool_)
        aligned = np.empty(n, dtype=np.bool_)
        for i, request in enumerate(trace.requests):
            issue[i] = request.issue_time
            completion[i] = request.completion_time
            address[i] = pack_address(
                request.server_id, request.volume_id, request.block_offset
            )
            block_count[i] = request.block_count
            is_write[i] = request.is_write
            aligned[i] = request.aligned_4k
        return cls(
            issue_time=issue,
            completion_time=completion,
            address=address,
            block_count=block_count,
            is_write=is_write,
            aligned_4k=aligned,
            description=trace.description,
        )

    def to_trace(self) -> Trace:
        """Materialize the object representation (lossless inverse)."""
        issue = self.issue_time.tolist()
        completion = self.completion_time.tolist()
        address = self.address.tolist()
        block_count = self.block_count.tolist()
        is_write = self.is_write.tolist()
        aligned = self.aligned_4k.tolist()
        read, write = IOKind.READ, IOKind.WRITE
        requests = [
            IORequest(
                issue_time=issue[i],
                completion_time=completion[i],
                server_id=address[i] >> _SERVER_SHIFT,
                volume_id=(address[i] >> _OFFSET_BITS) & _VOLUME_MASK,
                block_offset=address[i] & _OFFSET_MASK,
                block_count=block_count[i],
                kind=write if is_write[i] else read,
                aligned_4k=aligned[i],
            )
            for i in range(len(issue))
        ]
        return Trace(requests, description=self.description)

    # -- serialization -----------------------------------------------------
    def save_npz(self, path: Union[str, Path]) -> None:
        """Write all columns to one uncompressed ``.npz`` file.

        Published atomically: shard workers and the serving bench read
        these caches while other processes regenerate them.
        """
        with atomic_write(path) as handle:
            np.savez(
                handle,
                format_version=np.int64(NPZ_FORMAT_VERSION),
                issue_time=self.issue_time,
                completion_time=self.completion_time,
                address=self.address,
                block_count=self.block_count,
                is_write=self.is_write,
                aligned_4k=self.aligned_4k,
                description=np.array(self.description),
            )

    @classmethod
    def load_npz(cls, path: Union[str, Path]) -> "ColumnarTrace":
        """Read a trace written by :meth:`save_npz`."""
        with np.load(path, allow_pickle=False) as payload:
            version = int(payload["format_version"])
            if version != NPZ_FORMAT_VERSION:
                raise ValueError(
                    f"unsupported columnar trace format {version} "
                    f"(expected {NPZ_FORMAT_VERSION})"
                )
            return cls(
                issue_time=payload["issue_time"],
                completion_time=payload["completion_time"],
                address=payload["address"],
                block_count=payload["block_count"],
                is_write=payload["is_write"],
                aligned_4k=payload["aligned_4k"],
                description=str(payload["description"]),
            )


def as_columnar(trace: Union[Trace, ColumnarTrace]) -> ColumnarTrace:
    """Coerce either trace representation to columns."""
    if isinstance(trace, ColumnarTrace):
        return trace
    return ColumnarTrace.from_trace(trace)


def as_object_trace(trace: Union[Trace, ColumnarTrace]) -> Trace:
    """Coerce either trace representation to the object model."""
    if isinstance(trace, ColumnarTrace):
        return trace.to_trace()
    return trace
