"""Trace substrate: data model, synthetic ensemble generator, MSR I/O.

The public surface mirrors what the paper's methodology consumes: a
chronological multi-server block trace (:class:`Trace`), expandable to
512-byte :class:`BlockAccess` records with interpolated completion
times, plus a seeded synthetic generator calibrated to the published
ensemble characteristics (see :mod:`repro.traces.synthetic`).
"""

from repro.traces.columnar import (
    ColumnarTrace,
    as_columnar,
    as_object_trace,
)
from repro.traces.model import (
    BlockAccess,
    IOKind,
    IORequest,
    Trace,
    merge_traces,
    pack_address,
    server_of_address,
    unpack_address,
    volume_of_address,
)
from repro.traces.servers import (
    PAPER_SERVERS,
    ServerProfile,
    VolumeProfile,
    paper_ensemble,
    table1_rows,
)
from repro.traces.synthetic import (
    EnsembleTraceGenerator,
    SyntheticTraceConfig,
    generate_columnar_trace,
    generate_ensemble_trace,
    small_config,
    tiny_config,
)
from repro.traces.store import (
    config_fingerprint,
    load_or_generate_columnar,
    load_or_generate_trace,
    trace_cache_dir,
)
from repro.traces.streams import (
    daily_access_totals,
    daily_block_counts,
    daily_read_write_split,
    iter_day_requests,
    per_server_daily_counts,
    split_by_day,
)
from repro.traces.msr import read_msr_csv, write_msr_csv
from repro.traces.validation import Check, ValidationReport, validate_trace

__all__ = [
    "BlockAccess",
    "ColumnarTrace",
    "as_columnar",
    "as_object_trace",
    "config_fingerprint",
    "load_or_generate_columnar",
    "load_or_generate_trace",
    "trace_cache_dir",
    "generate_columnar_trace",
    "IOKind",
    "IORequest",
    "Trace",
    "merge_traces",
    "pack_address",
    "server_of_address",
    "unpack_address",
    "volume_of_address",
    "PAPER_SERVERS",
    "ServerProfile",
    "VolumeProfile",
    "paper_ensemble",
    "table1_rows",
    "EnsembleTraceGenerator",
    "SyntheticTraceConfig",
    "generate_ensemble_trace",
    "small_config",
    "tiny_config",
    "daily_access_totals",
    "daily_block_counts",
    "daily_read_write_split",
    "iter_day_requests",
    "per_server_daily_counts",
    "split_by_day",
    "read_msr_csv",
    "write_msr_csv",
    "Check",
    "ValidationReport",
    "validate_trace",
]
