"""Trace fidelity validation against the paper's published statistics.

Anyone substituting their own trace (real MSR files, another generator)
needs to know whether the paper's conclusions transfer.  This module
checks a trace against the observations the SieveStore design rests on
and returns a structured report:

* **O1** — popularity skew: top-1% share in the published band, 99% of
  blocks ≤ 10 accesses/day, ~97% ≤ 4, roughly half single-access;
* **O2** — hot-set dynamics: yesterday's over-threshold blocks predict
  a large share of today's top-set accesses, yet the hot set drifts;
* **mix** — read-majority traffic, mostly 4-KB-aligned requests.

Every check carries the measured value, the accepted band, and a
pass/fail flag; `validate_trace` aggregates them.  The bands are the
paper's numbers with modest slack — a *warning* instrument, not a
gate (real ensembles legitimately differ).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.traces.model import Trace
from repro.traces.streams import daily_access_totals, daily_block_counts


@dataclass(frozen=True)
class Check:
    """One fidelity check: measured value against an accepted band."""

    name: str
    measured: float
    low: float
    high: float
    detail: str = ""

    @property
    def passed(self) -> bool:
        """Whether the measured value lies inside the band."""
        return self.low <= self.measured <= self.high


@dataclass
class ValidationReport:
    """All checks for one trace."""

    checks: List[Check]

    @property
    def passed(self) -> bool:
        """Whether every check passed."""
        return all(check.passed for check in self.checks)

    def failures(self) -> List[Check]:
        """The checks that fell outside their bands."""
        return [check for check in self.checks if not check.passed]

    def rows(self) -> List[list]:
        """Rows for the report renderer."""
        return [
            [
                check.name,
                round(check.measured, 3),
                f"[{check.low:g}, {check.high:g}]",
                "ok" if check.passed else "FAIL",
            ]
            for check in self.checks
        ]


def _mean_over_days(values: Sequence[float], skip_first: bool) -> float:
    usable = values[1:] if skip_first and len(values) > 1 else values
    usable = [v for v in usable if not np.isnan(v)]
    return float(np.mean(usable)) if usable else float("nan")


def validate_trace(
    trace: Trace,
    days: Optional[int] = None,
    skip_first_day: bool = True,
) -> ValidationReport:
    """Run the O1/O2/mix fidelity checks over a trace.

    Args:
        trace: the trace to validate.
        days: calendar days to analyse (default: inferred from the
            trace's duration).
        skip_first_day: exclude day 0 from the per-day averages (the
            paper's day 1 is a partial calendar day).
    """
    if days is None:
        days = max(1, int(trace.duration // 86400) + 1)
    counts = daily_block_counts(trace, days)
    totals = daily_access_totals(trace, days)

    top1_shares: List[float] = []
    le10: List[float] = []
    le4: List[float] = []
    single: List[float] = []
    predicted: List[float] = []
    drift: List[float] = []
    for day in range(days):
        values = np.fromiter(counts[day].values(), dtype=np.int64)
        if len(values) == 0:
            top1_shares.append(float("nan"))
            le10.append(float("nan"))
            le4.append(float("nan"))
            single.append(float("nan"))
            continue
        order = np.sort(values)[::-1]
        top = order[: max(1, len(values) // 100)]
        top1_shares.append(float(top.sum() / totals[day]))
        le10.append(float((values <= 10).mean()))
        le4.append(float((values <= 4).mean()))
        single.append(float((values == 1).mean()))
        if day >= 1 and counts[day - 1]:
            prev_hot = {a for a, c in counts[day - 1].items() if c > 10}
            today_hot = {a for a, c in counts[day].items() if c > 10}
            captured = sum(c for a, c in counts[day].items() if a in prev_hot)
            ideal = float(top.sum())
            if ideal > 0:
                predicted.append(captured / ideal)
            if prev_hot and today_hot:
                drift.append(
                    1.0 - len(prev_hot & today_hot) / max(len(today_hot), 1)
                )

    reads = sum(r.block_count for r in trace if r.is_read)
    total_blocks = max(1, trace.total_blocks())
    aligned = sum(1 for r in trace if r.aligned_4k) / max(1, len(trace))

    checks = [
        Check(
            "O1: top-1% access share",
            _mean_over_days(top1_shares, skip_first_day),
            0.10, 0.60,
            "paper: 14%-53% across days",
        ),
        Check(
            "O1: blocks with <=10 accesses/day",
            _mean_over_days(le10, skip_first_day),
            0.95, 1.0,
            "paper: 99%",
        ),
        Check(
            "O1: blocks with <=4 accesses/day",
            _mean_over_days(le4, skip_first_day),
            0.90, 1.0,
            "paper: 97%",
        ),
        Check(
            "O1: single-access block fraction",
            _mean_over_days(single, skip_first_day),
            0.30, 0.70,
            "paper: ~50%",
        ),
        Check(
            "O2: next-day predictive capture",
            float(np.mean(predicted[1:] if len(predicted) > 1 else predicted))
            if predicted else float("nan"),
            0.4, 1.5,
            "yesterday's >10-count blocks vs today's ideal",
        ),
        Check(
            "O2: daily hot-set drift",
            float(np.mean(drift)) if drift else float("nan"),
            0.02, 0.8,
            "the hot set must move, but not churn completely",
        ),
        Check(
            "mix: read fraction of blocks",
            reads / total_blocks,
            0.4, 0.9,
            "paper assumes ~3:1 reads:writes",
        ),
        Check(
            "mix: 4-KB-aligned request fraction",
            aligned,
            0.80, 1.0,
            "paper: ~94%",
        ),
    ]
    return ValidationReport(checks=checks)
