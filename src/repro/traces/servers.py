"""Server inventory of the paper's storage ensemble (Table 1).

The paper evaluates a 13-server, 36-volume, ~6.4 TB ensemble traced for
a week (the MSR Cambridge traces).  We reproduce Table 1 verbatim as
:data:`PAPER_SERVERS` and attach a *skew personality* to each server
that drives the synthetic workload generator:

* ``skew`` — Zipf-like exponent of the server's block-popularity
  distribution.  Higher means more skewed.  Figure 3(a) shows the web
  proxy (Prxy) as extremely skewed and source control (Src1) as
  near-linear (minimal skew); the other servers are placed in between.
* ``activity_share`` — the server's rough share of ensemble accesses.
* ``daily_wobble`` — how strongly the server's skew varies day to day
  (Figure 3(c): the web staging server is skewed on day 5 but not on
  day 3).

These personalities are *inputs* to the generator; the analysis benches
(Figures 2 and 3) verify that the generated ensemble actually exhibits
the paper's observations O1 and O2 rather than assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class VolumeProfile:
    """Static description of one storage volume."""

    volume_id: int
    size_gb: float
    #: Relative share of the server's accesses hitting this volume.
    access_share: float = 1.0
    #: Per-volume skew multiplier (Figure 3(b): volumes of the same
    #: server differ in popularity skew).
    skew_scale: float = 1.0


@dataclass(frozen=True)
class ServerProfile:
    """Static description of one server in the ensemble.

    ``key``, ``name``, ``spindles`` and the total size reproduce a row
    of the paper's Table 1; the remaining fields parameterize the
    synthetic workload.
    """

    server_id: int
    key: str
    name: str
    spindles: int
    volumes: Tuple[VolumeProfile, ...]
    skew: float
    activity_share: float
    daily_wobble: float = 0.15
    read_fraction: float = 0.75

    def __post_init__(self) -> None:
        if not self.volumes:
            raise ValueError(f"server {self.key} must have at least one volume")
        if not 0.0 < self.read_fraction <= 1.0:
            raise ValueError(f"read_fraction out of range for {self.key}")
        if self.skew < 0:
            raise ValueError(f"skew must be non-negative for {self.key}")

    @property
    def size_gb(self) -> float:
        """Total configured capacity across the server's volumes."""
        return sum(v.size_gb for v in self.volumes)

    @property
    def volume_count(self) -> int:
        """Number of volumes configured on this server."""
        return len(self.volumes)


def _volumes(sizes_gb: Sequence[float], skew_scales: Sequence[float] = ()) -> Tuple[VolumeProfile, ...]:
    """Build volume tuples with sizes and optional per-volume skew scales."""
    scales = list(skew_scales) or [1.0] * len(sizes_gb)
    if len(scales) != len(sizes_gb):
        raise ValueError("skew_scales length must match sizes_gb")
    total = sum(sizes_gb)
    return tuple(
        VolumeProfile(
            volume_id=i,
            size_gb=size,
            access_share=size / total if total else 1.0 / len(sizes_gb),
            skew_scale=scale,
        )
        for i, (size, scale) in enumerate(zip(sizes_gb, scales))
    )


#: The 13 servers of the paper's Table 1.  Keys, descriptive names,
#: volume counts, spindles, and sizes are copied from the table; sizes
#: are split across volumes roughly evenly (the paper does not publish
#: per-volume sizes).  Skew personalities follow Figure 3's examples.
PAPER_SERVERS: Tuple[ServerProfile, ...] = (
    ServerProfile(0, "usr", "User home dirs", 16, _volumes([500, 500, 367]), skew=0.95, activity_share=0.13),
    ServerProfile(1, "proj", "Project dirs", 44, _volumes([450, 450, 450, 400, 344]), skew=0.85, activity_share=0.15),
    ServerProfile(2, "prn", "Print server", 6, _volumes([250, 202]), skew=0.90, activity_share=0.05),
    ServerProfile(3, "hm", "Hardware monitor", 6, _volumes([20, 19]), skew=1.05, activity_share=0.04),
    ServerProfile(4, "rsrch", "Research projects", 24, _volumes([100, 100, 77]), skew=0.80, activity_share=0.05),
    # Figure 3(a): the web proxy is extremely skewed — a tiny block set
    # absorbs nearly all accesses.
    ServerProfile(5, "prxy", "Web proxy", 4, _volumes([45, 44]), skew=1.60, activity_share=0.17, daily_wobble=0.05),
    # Figure 3(a): source control shows near-linear cumulative accesses,
    # i.e. minimal skew.
    ServerProfile(6, "src1", "Source control", 12, _volumes([185, 185, 185]), skew=0.15, activity_share=0.10, daily_wobble=0.05),
    ServerProfile(7, "src2", "Source control", 14, _volumes([120, 120, 115]), skew=0.45, activity_share=0.06),
    # Figure 3(c): web staging's skew swings strongly between days.
    ServerProfile(8, "stg", "Web staging", 6, _volumes([60, 53]), skew=0.90, activity_share=0.05, daily_wobble=0.60),
    ServerProfile(9, "ts", "Terminal server", 2, _volumes([22]), skew=1.00, activity_share=0.03),
    # Figure 3(b): Web/SQL volumes 0 and 1 differ markedly in skew.
    ServerProfile(10, "web", "Web/SQL server", 17, _volumes([120, 120, 110, 91], [1.5, 0.5, 1.0, 1.0]), skew=1.00, activity_share=0.08),
    ServerProfile(11, "mds", "Media server", 16, _volumes([300, 209]), skew=0.70, activity_share=0.04),
    ServerProfile(12, "wdev", "Test web server", 12, _volumes([40, 36, 30, 30]), skew=0.95, activity_share=0.05),
)


def paper_ensemble() -> List[ServerProfile]:
    """Return a fresh list of the 13 Table-1 server profiles."""
    return list(PAPER_SERVERS)


def table1_rows() -> List[dict]:
    """Rows of the paper's Table 1 for the ensemble summary bench.

    Returns one dict per server with the published columns plus a Total
    row, matching the layout of Table 1.
    """
    rows = [
        {
            "key": s.key.capitalize(),
            "name": s.name,
            "volumes": s.volume_count,
            "spindles": s.spindles,
            "size_gb": round(s.size_gb),
        }
        for s in PAPER_SERVERS
    ]
    rows.append(
        {
            "key": "Total",
            "name": "",
            "volumes": sum(s.volume_count for s in PAPER_SERVERS),
            "spindles": sum(s.spindles for s in PAPER_SERVERS),
            "size_gb": round(sum(s.size_gb for s in PAPER_SERVERS)),
        }
    )
    return rows
