"""MSR-Cambridge-format trace I/O.

The paper's traces come from Narayanan et al.'s week-long block traces,
distributed as CSV with the schema::

    Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

where ``Timestamp`` is a Windows filetime (100-ns ticks), ``Offset`` and
``Size`` are bytes, and ``ResponseTime`` is in 100-ns ticks.  This module
reads that format into :class:`repro.traces.model.Trace` objects (and
writes our traces back out in the same format) so the reproduction can
be driven by the real traces when they are available.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.traces.model import IOKind, IORequest, Trace
from repro.util.atomic import atomic_write
from repro.util.units import BLOCK_BYTES, IO_UNIT_BYTES

#: 100-ns ticks per second (Windows filetime resolution).
TICKS_PER_SECOND = 10_000_000


def _is_4k_aligned(offset_bytes: int, size_bytes: int) -> bool:
    return offset_bytes % IO_UNIT_BYTES == 0 and size_bytes % IO_UNIT_BYTES == 0


def read_msr_csv(
    path: Union[str, Path],
    server_ids: Optional[Dict[str, int]] = None,
    epoch_ticks: Optional[int] = None,
) -> Trace:
    """Read an MSR-Cambridge CSV trace file.

    Args:
        path: the CSV file.
        server_ids: optional mapping from hostname to server id; if
            omitted, hostnames are numbered in order of first appearance.
        epoch_ticks: tick value treated as trace time zero.  Defaults to
            the first record's timestamp.

    Returns:
        a chronological :class:`Trace`.
    """
    path = Path(path)
    hostname_ids: Dict[str, int] = dict(server_ids or {})
    requests: List[IORequest] = []
    with path.open(newline="") as handle:
        for row in csv.reader(handle):
            if not row or row[0].startswith("#"):
                continue
            ticks, hostname, disk, kind, offset, size, response = row[:7]
            ticks_i = int(ticks)
            if epoch_ticks is None:
                epoch_ticks = ticks_i
            if hostname not in hostname_ids:
                hostname_ids[hostname] = len(hostname_ids)
            offset_bytes = int(offset)
            size_bytes = max(int(size), 1)
            issue = (ticks_i - epoch_ticks) / TICKS_PER_SECOND
            completion = issue + int(response) / TICKS_PER_SECOND
            requests.append(
                IORequest(
                    issue_time=issue,
                    completion_time=max(completion, issue),
                    server_id=hostname_ids[hostname],
                    volume_id=int(disk),
                    block_offset=offset_bytes // BLOCK_BYTES,
                    block_count=max(
                        1,
                        -(-(offset_bytes % BLOCK_BYTES + size_bytes) // BLOCK_BYTES),
                    ),
                    kind=IOKind.READ if kind.strip().lower() == "read" else IOKind.WRITE,
                    aligned_4k=_is_4k_aligned(offset_bytes, size_bytes),
                )
            )
    requests.sort(key=lambda r: r.issue_time)
    return Trace(requests, description=f"MSR trace from {path.name}")


def write_msr_csv(
    trace: Trace,
    path: Union[str, Path],
    hostnames: Optional[Dict[int, str]] = None,
) -> None:
    """Write a trace in MSR-Cambridge CSV format.

    Round-trips with :func:`read_msr_csv` up to timestamp quantization
    (100-ns ticks).
    """
    path = Path(path)
    names = hostnames or {}
    with atomic_write(path) as handle:
        # Text layer over the atomic binary handle; detach (not close)
        # at the end so atomic_write can still flush/fsync the file.
        wrapper = io.TextIOWrapper(handle, encoding="utf-8", newline="")
        writer = csv.writer(wrapper)
        for request in trace:
            writer.writerow(
                [
                    int(round(request.issue_time * TICKS_PER_SECOND)),
                    names.get(request.server_id, f"srv{request.server_id}"),
                    request.volume_id,
                    "Read" if request.is_read else "Write",
                    request.block_offset * BLOCK_BYTES,
                    request.block_count * BLOCK_BYTES,
                    int(
                        round(
                            (request.completion_time - request.issue_time)
                            * TICKS_PER_SECOND
                        )
                    ),
                ]
            )
        wrapper.flush()
        wrapper.detach()
