"""Core trace data model: block addresses, I/O requests, block accesses.

A trace is a chronological sequence of :class:`IORequest` records, each
describing a multi-block read or write issued by one server against one
of its volumes — the same shape as the MSR Cambridge block traces the
paper analyses (requests to block devices *below* the buffer cache).

Block addresses are global: ``BlockAddress`` packs (server, volume,
block-offset) into a single integer so the ensemble-level cache and the
sieves can treat the whole ensemble as one address space, while the
per-server analyses can still recover the origin of every block.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.util.units import BLOCK_BYTES

#: Bits reserved for the per-volume block offset inside a packed address.
_OFFSET_BITS = 40
#: Bits reserved for the volume id.
_VOLUME_BITS = 8
_OFFSET_MASK = (1 << _OFFSET_BITS) - 1
_VOLUME_MASK = (1 << _VOLUME_BITS) - 1

#: Largest representable per-volume block offset.
MAX_BLOCK_OFFSET = _OFFSET_MASK
#: Largest representable volume id within a server.
MAX_VOLUME_ID = _VOLUME_MASK


class IOKind(enum.Enum):
    """Direction of an I/O request."""

    READ = "read"
    WRITE = "write"

    @property
    def is_read(self) -> bool:
        """Whether this kind is a read."""
        return self is IOKind.READ

    @property
    def is_write(self) -> bool:
        return self is IOKind.WRITE


def pack_address(server_id: int, volume_id: int, block_offset: int) -> int:
    """Pack (server, volume, offset) into one global block address.

    The packing is injective for ``volume_id <= MAX_VOLUME_ID`` and
    ``block_offset <= MAX_BLOCK_OFFSET``; addresses from different
    servers or volumes never collide.
    """
    if server_id < 0:
        raise ValueError(f"server_id must be non-negative, got {server_id}")
    if not 0 <= volume_id <= MAX_VOLUME_ID:
        raise ValueError(f"volume_id out of range: {volume_id}")
    if not 0 <= block_offset <= MAX_BLOCK_OFFSET:
        raise ValueError(f"block_offset out of range: {block_offset}")
    return (
        (server_id << (_VOLUME_BITS + _OFFSET_BITS))
        | (volume_id << _OFFSET_BITS)
        | block_offset
    )


def unpack_address(address: int) -> Tuple[int, int, int]:
    """Invert :func:`pack_address`; returns (server_id, volume_id, offset)."""
    if address < 0:
        raise ValueError(f"address must be non-negative, got {address}")
    offset = address & _OFFSET_MASK
    volume = (address >> _OFFSET_BITS) & _VOLUME_MASK
    server = address >> (_VOLUME_BITS + _OFFSET_BITS)
    return server, volume, offset


def server_of_address(address: int) -> int:
    """Server id that owns a packed block address."""
    return address >> (_VOLUME_BITS + _OFFSET_BITS)


def volume_of_address(address: int) -> int:
    """Volume id (within its server) that owns a packed block address."""
    return (address >> _OFFSET_BITS) & _VOLUME_MASK


@dataclass(frozen=True)
class IORequest:
    """One multi-block I/O request as recorded in the trace.

    Attributes:
        issue_time: seconds since trace start when the request was issued.
        completion_time: seconds since trace start when the last block of
            the request completed at the underlying storage.  Allocation
            decisions that depend on fetched data (Section 4) are
            scheduled off this value.
        server_id: index of the issuing server in the ensemble.
        volume_id: index of the target volume within that server.
        block_offset: first 512-byte block of the request within the volume.
        block_count: number of consecutive 512-byte blocks touched.
        kind: read or write.
        aligned_4k: whether the request starts and ends on 4-KB unit
            boundaries.  About 6% of the paper's accesses were not.
    """

    issue_time: float
    completion_time: float
    server_id: int
    volume_id: int
    block_offset: int
    block_count: int
    kind: IOKind
    aligned_4k: bool = True

    def __post_init__(self) -> None:
        if self.block_count <= 0:
            raise ValueError(f"block_count must be positive, got {self.block_count}")
        if self.completion_time < self.issue_time:
            raise ValueError(
                "completion_time precedes issue_time: "
                f"{self.completion_time} < {self.issue_time}"
            )
        if self.block_offset < 0:
            raise ValueError(f"block_offset must be non-negative, got {self.block_offset}")

    @property
    def byte_count(self) -> int:
        """Size of the request in bytes."""
        return self.block_count * BLOCK_BYTES

    @property
    def is_read(self) -> bool:
        return self.kind.is_read

    @property
    def is_write(self) -> bool:
        return self.kind.is_write

    def addresses(self) -> Iterator[int]:
        """Yield the packed global address of every block the request touches."""
        base = pack_address(self.server_id, self.volume_id, self.block_offset)
        for i in range(self.block_count):
            yield base + i

    def block_accesses(self) -> Iterator["BlockAccess"]:
        """Expand the request into per-block accesses.

        Completion times of individual blocks are linearly interpolated
        between the request's issue and completion times, mirroring the
        paper's methodology: "We used linear interpolation to infer
        completion times for individual blocks in cases of large,
        multi-block requests" (Section 4).
        """
        base = pack_address(self.server_id, self.volume_id, self.block_offset)
        n = self.block_count
        span = self.completion_time - self.issue_time
        for i in range(n):
            fraction = (i + 1) / n
            yield BlockAccess(
                time=self.issue_time,
                completion_time=self.issue_time + span * fraction,
                address=base + i,
                kind=self.kind,
            )


@dataclass(frozen=True)
class BlockAccess:
    """A single 512-byte block touched by a request.

    This is the unit at which all hit/miss/allocation statistics are
    counted (Section 4 counts "I/O blocks/accesses assuming 512-byte
    blocks for accuracy").
    """

    time: float
    completion_time: float
    address: int
    kind: IOKind

    @property
    def is_read(self) -> bool:
        return self.kind.is_read

    @property
    def is_write(self) -> bool:
        return self.kind.is_write

    @property
    def server_id(self) -> int:
        return server_of_address(self.address)

    @property
    def volume_id(self) -> int:
        return volume_of_address(self.address)


@dataclass
class Trace:
    """A chronological sequence of I/O requests plus summary metadata.

    ``requests`` must be sorted by issue time; :meth:`validate` checks
    this.  Traces can be large, so most consumers iterate rather than
    index.
    """

    requests: List[IORequest] = field(default_factory=list)
    description: str = ""

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[IORequest]:
        return iter(self.requests)

    def validate(self) -> None:
        """Raise ``ValueError`` if requests are not in issue-time order."""
        previous = float("-inf")
        for index, request in enumerate(self.requests):
            if request.issue_time < previous:
                raise ValueError(
                    f"request {index} out of order: "
                    f"{request.issue_time} < {previous}"
                )
            previous = request.issue_time

    def block_accesses(self) -> Iterator[BlockAccess]:
        """Expand every request into per-block accesses, in issue order."""
        for request in self.requests:
            yield from request.block_accesses()

    @property
    def duration(self) -> float:
        """Seconds from trace start to the last completion, 0.0 if empty."""
        if not self.requests:
            return 0.0
        return max(r.completion_time for r in self.requests)

    def total_blocks(self) -> int:
        """Total number of 512-byte block accesses in the trace."""
        return sum(r.block_count for r in self.requests)

    def filter(
        self,
        server_id: Optional[int] = None,
        volume_id: Optional[int] = None,
    ) -> "Trace":
        """Return a new trace restricted to one server and/or volume."""
        kept = [
            r
            for r in self.requests
            if (server_id is None or r.server_id == server_id)
            and (volume_id is None or r.volume_id == volume_id)
        ]
        suffix = []
        if server_id is not None:
            suffix.append(f"server={server_id}")
        if volume_id is not None:
            suffix.append(f"volume={volume_id}")
        return Trace(kept, description=f"{self.description} [{', '.join(suffix)}]")


def merge_traces(traces: Sequence[Trace], description: str = "") -> Trace:
    """Merge per-server traces into one chronological ensemble trace.

    Uses a stable merge by issue time, so simultaneous requests keep
    their input order (deterministic for seeded generators).
    """
    merged = sorted(
        (request for trace in traces for request in trace.requests),
        key=lambda r: r.issue_time,
    )
    return Trace(merged, description=description or "merged ensemble trace")
