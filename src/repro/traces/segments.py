"""Out-of-core segment store: a trace as bounded ``.npz`` row ranges.

The ROADMAP's full-scale week replay (~434M requests) cannot hold the
trace in RAM as monolithic columns — and does not need to: both engines
consume requests strictly in issue order, so the trace can live on disk
as a sequence of bounded **segments** and stream through the simulator
one chunk at a time.

A segment store is a directory:

* ``segment-00000.npz``, ``segment-00001.npz``, … — each an ordinary
  :meth:`~repro.traces.columnar.ColumnarTrace.save_npz` file holding
  one contiguous, issue-ordered row range (the synthetic generator
  writes one-or-more segments per trace day);
* ``manifest.json`` — the versioned index, written last and atomically,
  recording per segment its row count, first/last issue time, and byte
  size.  Loaders refuse unknown ``manifest_version`` values, and both
  the manifest schema and the per-segment entry are registered in the
  SVL005 schema registry.

Reading is **memmap-backed**: ``numpy.savez`` stores members
uncompressed (``ZIP_STORED``), so each column is a contiguous ``.npy``
byte range inside the zip and can be mapped directly with
``numpy.memmap`` at the member's data offset — no segment is ever
materialized wholesale just to be sliced.  :meth:`SegmentStore.iter_chunks`
yields ``(base_row, columns)`` pieces bounded by a row budget; peak
resident memory is proportional to the chunk budget, not the trace.

Integrity: the manifest records each segment's byte size (truncation is
caught at open time without reading data), the zip structure and the
embedded ``format_version`` are checked per segment, and any
unreadable segment raises :class:`SegmentError` — the trace cache
(:mod:`repro.traces.store`) evicts the whole directory and regenerates.
"""

from __future__ import annotations

import io
import json
import zipfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.traces.columnar import NPZ_FORMAT_VERSION, ColumnarTrace
from repro.util.atomic import atomic_write, atomic_write_path

#: Bump when the manifest layout changes; loaders refuse other values.
SEGMENT_MANIFEST_VERSION = 1

#: The manifest's file name inside a segment-store directory.
MANIFEST_NAME = "manifest.json"

#: Default bounded-chunk row budget for iteration and segment splitting.
DEFAULT_CHUNK_ROWS = 1 << 18

#: Column members of a segment ``.npz``, in trace-column order.
_COLUMNS = (
    "issue_time",
    "completion_time",
    "address",
    "block_count",
    "is_write",
    "aligned_4k",
)


class SegmentError(Exception):
    """A segment store is missing, unversioned, truncated, or corrupt."""


@dataclass(frozen=True)
class SegmentInfo:
    """One manifest entry: a contiguous issue-ordered row range on disk."""

    file: str
    rows: int
    first_issue: float
    last_issue: float
    bytes: int


def _manifest_payload(
    description: str,
    segments: Sequence[SegmentInfo],
    config_fingerprint: Optional[str],
) -> Dict[str, object]:
    """The manifest dict (schema ``segment-manifest`` in SVL005)."""
    return {
        "manifest_version": SEGMENT_MANIFEST_VERSION,
        "npz_format_version": NPZ_FORMAT_VERSION,
        "description": description,
        "config_fingerprint": config_fingerprint,
        "total_rows": int(sum(s.rows for s in segments)),
        "segments": [asdict(s) for s in segments],
    }


class SegmentWriter:
    """Append-only builder of a segment store directory.

    ``append`` publishes each segment atomically as it is produced (the
    generator streams one day at a time through here without ever
    holding the week); ``finalize`` writes the manifest last, also
    atomically — a crashed writer leaves no manifest, so readers never
    see a half-built store.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        description: str = "",
        config_fingerprint: Optional[str] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.description = description
        self.config_fingerprint = config_fingerprint
        self._segments: List[SegmentInfo] = []
        self._finalized = False

    def append(
        self, columns: ColumnarTrace, max_rows: Optional[int] = None
    ) -> None:
        """Write ``columns`` as one segment (or several of ``<= max_rows``).

        Rows must continue the store's issue-time order; zero-row
        chunks are skipped.  Appending after :meth:`finalize` is an
        error.
        """
        if self._finalized:
            raise SegmentError("segment store already finalized")
        if len(columns) == 0:
            return
        if max_rows is not None and max_rows <= 0:
            raise ValueError(f"max_rows must be positive, got {max_rows}")
        step = max_rows or len(columns)
        for start in range(0, len(columns), step):
            piece = _slice_columns(columns, start, min(start + step, len(columns)))
            name = f"segment-{len(self._segments):05d}.npz"
            path = self.directory / name
            with atomic_write_path(path) as tmp_path:
                piece.save_npz(tmp_path)
            self._segments.append(
                SegmentInfo(
                    file=name,
                    rows=len(piece),
                    first_issue=float(piece.issue_time[0]),
                    last_issue=float(piece.issue_time[-1]),
                    bytes=path.stat().st_size,
                )
            )

    def finalize(self) -> "SegmentStore":
        """Write the manifest and return the opened store."""
        payload = _manifest_payload(
            self.description, self._segments, self.config_fingerprint
        )
        with atomic_write(self.directory / MANIFEST_NAME) as handle:
            handle.write(json.dumps(payload, indent=2, sort_keys=True).encode())
        self._finalized = True
        return SegmentStore.open(self.directory)


class ChunkSource:
    """Marker base for out-of-core trace sources the engines can stream.

    A chunk source yields ``(base_row, columns)`` pieces of one logical
    trace via ``iter_chunks(chunk_rows, start_row)`` and identifies
    itself with the checkpoint-compatible ``fingerprint()`` triple.
    The simulation engine accepts any chunk source where it accepts an
    in-RAM trace; :class:`SegmentStore` (the whole trace) and
    :class:`ShardView` (one shard of it) are the two implementations.
    """


class SegmentStore(ChunkSource):
    """A validated, read-only view of a segment-store directory."""

    def __init__(
        self,
        directory: Path,
        description: str,
        config_fingerprint: Optional[str],
        segments: Sequence[SegmentInfo],
    ) -> None:
        self.directory = directory
        self.description = description
        self.config_fingerprint = config_fingerprint
        self.segments: Tuple[SegmentInfo, ...] = tuple(segments)

    @classmethod
    def open(cls, directory: Union[str, Path]) -> "SegmentStore":
        """Open and validate a store; raises :class:`SegmentError`.

        Validation is cheap by design: the manifest must parse with the
        expected versions, and every listed segment file must exist
        with exactly its recorded byte size (catching truncation before
        any data is read).  Per-row corruption surfaces later, when
        :meth:`load_segment` parses the zip structure.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        try:
            payload = json.loads(manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise SegmentError(
                f"unreadable segment manifest {manifest_path}: {exc}"
            ) from exc
        version = payload.get("manifest_version")
        if version != SEGMENT_MANIFEST_VERSION:
            raise SegmentError(
                f"unsupported segment manifest version {version!r} "
                f"(expected {SEGMENT_MANIFEST_VERSION}) in {manifest_path}"
            )
        if payload.get("npz_format_version") != NPZ_FORMAT_VERSION:
            raise SegmentError(
                f"segment store {directory} uses npz format "
                f"{payload.get('npz_format_version')!r} "
                f"(expected {NPZ_FORMAT_VERSION})"
            )
        try:
            segments = [SegmentInfo(**entry) for entry in payload["segments"]]
            description = str(payload["description"])
            fingerprint = payload["config_fingerprint"]
            total_rows = int(payload["total_rows"])
        except (KeyError, TypeError) as exc:
            raise SegmentError(
                f"malformed segment manifest {manifest_path}: {exc}"
            ) from exc
        if total_rows != sum(s.rows for s in segments):
            raise SegmentError(
                f"segment manifest {manifest_path} total_rows disagrees "
                "with its per-segment row counts"
            )
        for segment in segments:
            path = directory / segment.file
            try:
                size = path.stat().st_size
            except OSError as exc:
                raise SegmentError(f"missing segment {path}: {exc}") from exc
            if size != segment.bytes:
                raise SegmentError(
                    f"segment {path} is {size} bytes, manifest says "
                    f"{segment.bytes} (truncated or overwritten)"
                )
        return cls(directory, description, fingerprint, segments)

    # -- basic protocol ---------------------------------------------------
    def __len__(self) -> int:
        return sum(s.rows for s in self.segments)

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    def fingerprint(self) -> Dict[str, object]:
        """Identity triple matching the engine's columnar fingerprint.

        Same shape and values as the in-RAM trace's checkpoint
        fingerprint, so a checkpoint written against the whole trace
        resumes against its segmented form and vice versa.
        """
        total = len(self)
        return {
            "requests": total,
            "first_issue": self.segments[0].first_issue if total else None,
            "last_issue": self.segments[-1].last_issue if total else None,
        }

    # -- data access ------------------------------------------------------
    def load_segment(self, index: int, *, mmap: bool = True) -> ColumnarTrace:
        """Columns of one segment, memmap-backed when possible.

        Raises :class:`SegmentError` when the segment cannot be read
        (bad zip, wrong format version, row-count mismatch).
        """
        entry = self.segments[index]
        path = self.directory / entry.file
        try:
            columns = _load_npz_mmap(path) if mmap else None
            if columns is None:
                columns = ColumnarTrace.load_npz(path)
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile) as exc:
            raise SegmentError(
                f"unreadable segment {path} ({type(exc).__name__}: {exc})"
            ) from exc
        if len(columns) != entry.rows:
            raise SegmentError(
                f"segment {path} holds {len(columns)} rows, manifest "
                f"says {entry.rows}"
            )
        _note_segment_open(entry.rows)
        return columns

    def iter_chunks(
        self,
        chunk_rows: Optional[int] = None,
        start_row: int = 0,
    ) -> Iterator[Tuple[int, ColumnarTrace]]:
        """Yield ``(base_row, columns)`` pieces of at most ``chunk_rows``.

        Chunks never span segments, cover rows ``start_row..`` in issue
        order, and are memmap-backed views — resident memory stays
        bounded by the chunk budget regardless of trace size.  Segments
        entirely below ``start_row`` are skipped without being opened
        (how a resumed run fast-forwards to its checkpoint cursor).
        """
        if chunk_rows is not None and chunk_rows <= 0:
            raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
        budget = chunk_rows or DEFAULT_CHUNK_ROWS
        base = 0
        for index, entry in enumerate(self.segments):
            if base + entry.rows <= start_row:
                base += entry.rows
                continue
            columns = self.load_segment(index)
            local = max(0, start_row - base)
            for lo in range(local, entry.rows, budget):
                hi = min(lo + budget, entry.rows)
                yield base + lo, _slice_columns(columns, lo, hi)
            base += entry.rows

    def load_all(self) -> ColumnarTrace:
        """Materialize the whole trace in RAM (tests and small stores)."""
        parts = [self.load_segment(i) for i in range(self.num_segments)]
        return ColumnarTrace.concatenate(parts, description=self.description)

    def daily_block_counts(self, days: int, chunk_rows: Optional[int] = None):
        """Per-day per-block access Counters, streamed chunk by chunk.

        Identical to
        :meth:`~repro.traces.columnar.ColumnarTrace.daily_block_counts`
        on the materialized trace — the computation is a pure per-row
        aggregation, so per-chunk Counters sum to the whole-trace
        Counters — without ever holding more than one chunk's columns.
        """
        return _streamed_daily_counts(self.iter_chunks(chunk_rows), days)

    def shard(self, shard: int, shards: int) -> "ShardView":
        """One server-hash shard of this store (see :class:`ShardView`)."""
        return ShardView(self, shard, shards)


def shard_of_servers(server_ids: np.ndarray, shards: int) -> np.ndarray:
    """Deterministic shard index per server id (vectorized).

    Servers hash to shards via the splitmix64 finalizer (wrapping
    uint64 arithmetic), so the assignment is a pure function of
    ``(server_id, shards)`` — independent of segment layout, chunk
    budget, worker count, and platform — and stays balanced even when
    server ids are consecutive small integers.
    """
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    z = server_ids.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    z = z ^ (z >> np.uint64(31))
    return (z % np.uint64(shards)).astype(np.int64)


class ShardView(ChunkSource):
    """One server-hash shard of a segment store, as a chunk source.

    The ensemble partitions by **server**: every request of a server —
    and, because addresses pack ``server | volume | offset``, every
    block it touches — belongs to exactly one shard, so each shard is a
    closed subsystem that can replay through its own policy and cache
    slice with no cross-shard traffic.  Rows keep their issue order;
    shard-local row numbering makes checkpoints/resume work per shard.

    With ``shards=1`` the view is the identity: same rows, same
    fingerprint, bit-identical simulation results to the plain store.
    """

    def __init__(self, store: SegmentStore, shard: int, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        if not 0 <= shard < shards:
            raise ValueError(f"shard must be in [0, {shards}), got {shard}")
        self.store = store
        self.shard = shard
        self.shards = shards
        self._scan: Optional[Tuple[int, Optional[float], Optional[float]]] = None

    def _mask(self, columns: ColumnarTrace) -> np.ndarray:
        return shard_of_servers(columns.server_ids, self.shards) == self.shard

    def iter_chunks(
        self,
        chunk_rows: Optional[int] = None,
        start_row: int = 0,
    ) -> Iterator[Tuple[int, ColumnarTrace]]:
        """Yield this shard's rows as ``(shard_local_base, columns)``.

        Row numbering counts only the shard's own rows (the engine's
        checkpoint cursor for a shard run is shard-local).  Chunks the
        shard does not appear in are filtered by the memmap-backed
        server-id column without materializing the other columns.
        """
        if self.shards == 1:
            yield from self.store.iter_chunks(chunk_rows, start_row)
            return
        base = 0
        for _, columns in self.store.iter_chunks(chunk_rows):
            mask = self._mask(columns)
            rows = int(np.count_nonzero(mask))
            if rows == 0:
                continue
            if base + rows <= start_row:
                base += rows
                continue
            yield base, columns.take(np.flatnonzero(mask))
            base += rows

    def __len__(self) -> int:
        return self._scan_totals()[0]

    def fingerprint(self) -> Dict[str, object]:
        """Checkpoint identity of this shard's request stream."""
        total, first, last = self._scan_totals()
        return {"requests": total, "first_issue": first, "last_issue": last}

    def _scan_totals(self) -> Tuple[int, Optional[float], Optional[float]]:
        """(rows, first_issue, last_issue) of the shard; one cached pass
        touching only the server-id and issue-time columns."""
        if self._scan is None:
            if self.shards == 1:
                fp = self.store.fingerprint()
                self._scan = (
                    int(fp["requests"]), fp["first_issue"], fp["last_issue"]
                )
                return self._scan
            total = 0
            first: Optional[float] = None
            last: Optional[float] = None
            for _, columns in self.store.iter_chunks():
                hits = np.flatnonzero(self._mask(columns))
                if hits.size == 0:
                    continue
                total += int(hits.size)
                if first is None:
                    first = float(columns.issue_time[hits[0]])
                last = float(columns.issue_time[hits[-1]])
            self._scan = (total, first, last)
        return self._scan

    def daily_block_counts(self, days: int, chunk_rows: Optional[int] = None):
        """The shard's per-day per-block Counters (streamed; the ideal
        policy's oracle for a shard run)."""
        return _streamed_daily_counts(self.iter_chunks(chunk_rows), days)


def _note_segment_open(rows: int) -> None:
    """Count one segment-file open when observability is on.

    Streamed pipelines open each segment once per pass; the counter pair
    (opens, rows) makes re-read amplification — a shard view scanning
    every segment per shard, a retry re-streaming a store — visible in
    run telemetry without any hot-loop cost when observability is off.
    """
    from repro.obs import runtime as obs_runtime

    registry = obs_runtime.get_registry()
    if registry is None:
        return
    registry.counter(
        "segment_opens_total",
        "Segment files opened by streamed trace pipelines",
    ).inc()
    registry.counter(
        "segment_rows_read_total",
        "Trace rows made addressable by segment opens",
    ).inc(rows)


def _streamed_daily_counts(
    chunks: Iterable[Tuple[int, ColumnarTrace]], days: int
):
    """Merge per-chunk daily block counts into whole-stream Counters."""
    from collections import Counter

    merged = [Counter() for _ in range(days)]
    for _, columns in chunks:
        for day, counts in enumerate(columns.daily_block_counts(days)):
            if counts:
                merged[day].update(counts)
    return merged


def write_segments(
    chunks: Iterable[ColumnarTrace],
    directory: Union[str, Path],
    description: str = "",
    rows_per_segment: Optional[int] = None,
    config_fingerprint: Optional[str] = None,
) -> SegmentStore:
    """Stream issue-ordered chunks into a new segment store."""
    writer = SegmentWriter(directory, description, config_fingerprint)
    for chunk in chunks:
        writer.append(chunk, max_rows=rows_per_segment)
    return writer.finalize()


def segment_columnar(
    columns: ColumnarTrace,
    directory: Union[str, Path],
    rows_per_segment: Optional[int] = None,
    config_fingerprint: Optional[str] = None,
) -> SegmentStore:
    """Shard an in-RAM trace into a segment store (bounded row ranges)."""
    return write_segments(
        [columns],
        directory,
        description=columns.description,
        rows_per_segment=rows_per_segment or DEFAULT_CHUNK_ROWS,
        config_fingerprint=config_fingerprint,
    )


def _slice_columns(columns: ColumnarTrace, lo: int, hi: int) -> ColumnarTrace:
    """A contiguous row-range view (no copy for ndarray/memmap columns)."""
    return ColumnarTrace(
        issue_time=columns.issue_time[lo:hi],
        completion_time=columns.completion_time[lo:hi],
        address=columns.address[lo:hi],
        block_count=columns.block_count[lo:hi],
        is_write=columns.is_write[lo:hi],
        aligned_4k=columns.aligned_4k[lo:hi],
        description=columns.description,
    )


def _load_npz_mmap(path: Path) -> Optional[ColumnarTrace]:
    """Map a segment's columns directly out of the uncompressed zip.

    ``numpy.savez`` stores members with ``ZIP_STORED``, so each member
    is its raw ``.npy`` bytes at a known offset: parse the npy header
    there and hand the data range to ``numpy.memmap``.  Returns None
    when any member is compressed (fall back to a full load); raises
    the usual zip/format exceptions on corruption, which
    :meth:`SegmentStore.load_segment` converts to :class:`SegmentError`.
    """
    arrays: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive:
        # Tiny members are read (and CRC-checked) outright; this also
        # validates the embedded format version exactly like load_npz.
        version = int(np.load(io.BytesIO(archive.read("format_version.npy"))))
        if version != NPZ_FORMAT_VERSION:
            raise ValueError(
                f"unsupported columnar trace format {version} "
                f"(expected {NPZ_FORMAT_VERSION})"
            )
        description = str(np.load(io.BytesIO(archive.read("description.npy"))))
        with open(path, "rb") as raw:
            for name in _COLUMNS:
                info = archive.getinfo(f"{name}.npy")
                if info.compress_type != zipfile.ZIP_STORED:
                    return None
                raw.seek(info.header_offset)
                local_header = raw.read(30)
                if len(local_header) != 30 or local_header[:4] != b"PK\x03\x04":
                    raise ValueError(f"bad local zip header for {name}.npy")
                name_len = int.from_bytes(local_header[26:28], "little")
                extra_len = int.from_bytes(local_header[28:30], "little")
                raw.seek(info.header_offset + 30 + name_len + extra_len)
                magic = np.lib.format.read_magic(raw)
                if magic == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(raw)
                elif magic == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(raw)
                else:
                    return None
                if fortran or len(shape) != 1:
                    raise ValueError(f"unexpected npy layout for {name}.npy")
                arrays[name] = np.memmap(
                    path, dtype=dtype, mode="r", offset=raw.tell(), shape=shape
                )
    return ColumnarTrace(description=description, **arrays)
