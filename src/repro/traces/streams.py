"""Trace stream helpers: day partitioning and per-day statistics.

The paper analyses everything "on a calendar day basis" (Section 2);
these helpers split traces by day and compute the per-day per-block
access counts that drive both the skew analysis (Figure 2) and the
sieving mechanisms.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterator, List, Tuple

from repro.traces.model import IORequest, Trace
from repro.util.intervals import SECONDS_PER_DAY, day_of


def split_by_day(trace: Trace, days: int) -> List[Trace]:
    """Partition a trace into ``days`` calendar-day traces.

    Requests are assigned to the day of their *issue* time.  Requests
    issued past the last requested day are dropped (with the synthetic
    generator this never happens; with real traces it trims the ragged
    tail).
    """
    if days <= 0:
        raise ValueError(f"days must be positive, got {days}")
    buckets: List[List[IORequest]] = [[] for _ in range(days)]
    for request in trace:
        day = day_of(request.issue_time)
        if day < days:
            buckets[day].append(request)
    return [
        Trace(bucket, description=f"{trace.description} [day {day}]")
        for day, bucket in enumerate(buckets)
    ]


def daily_block_counts(trace: Trace, days: int) -> List[Counter]:
    """Per-day ``Counter`` of block-address -> access count.

    Every 512-byte block touched by a request contributes one access, so
    a 16-block request adds one access to each of its 16 blocks.
    """
    counters: List[Counter] = [Counter() for _ in range(days)]
    for request in trace:
        day = day_of(request.issue_time)
        if day >= days:
            continue
        counter = counters[day]
        base = next(request.addresses())
        for i in range(request.block_count):
            counter[base + i] += 1
    return counters


def daily_access_totals(trace: Trace, days: int) -> List[int]:
    """Total 512-byte block accesses per day."""
    totals = [0] * days
    for request in trace:
        day = day_of(request.issue_time)
        if day < days:
            totals[day] += request.block_count
    return totals


def daily_read_write_split(trace: Trace, days: int) -> List[Tuple[int, int]]:
    """Per-day (read_blocks, write_blocks) tuples."""
    splits = [[0, 0] for _ in range(days)]
    for request in trace:
        day = day_of(request.issue_time)
        if day < days:
            splits[day][0 if request.is_read else 1] += request.block_count
    return [tuple(s) for s in splits]


def iter_day_requests(trace: Trace, day: int) -> Iterator[IORequest]:
    """Requests issued during one calendar day, in order."""
    lo, hi = day * SECONDS_PER_DAY, (day + 1) * SECONDS_PER_DAY
    for request in trace:
        if lo <= request.issue_time < hi:
            yield request
        elif request.issue_time >= hi:
            break


def per_server_daily_counts(
    trace: Trace, days: int
) -> Dict[int, List[Counter]]:
    """Per-server, per-day block access counters (for Figure 3 analyses)."""
    result: Dict[int, List[Counter]] = defaultdict(
        lambda: [Counter() for _ in range(days)]
    )
    for request in trace:
        day = day_of(request.issue_time)
        if day >= days:
            continue
        counter = result[request.server_id][day]
        base = next(request.addresses())
        for i in range(request.block_count):
            counter[base + i] += 1
    return dict(result)
