"""SSD wear-out / lifetime analysis.

Reproduces the paper's endurance argument (Section 5.1): even though
SieveStore deliberately caches write-hot blocks, the daily write volume
(write hits + allocation-writes, never exceeding ~500 million 512-byte
writes per day in the paper) against the X25-E's 1-PB write endurance
yields a lifetime beyond 10 years:

    lifetime_years = endurance_bytes / (daily_write_blocks * 512 * 365)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.stats import CacheStats
from repro.ssd.device import SSDModel
from repro.util.units import BLOCK_BYTES

#: Days per year used in the paper's lifetime arithmetic.
DAYS_PER_YEAR = 365


@dataclass(frozen=True)
class EnduranceReport:
    """Result of a lifetime estimate for one device under one workload."""

    device_name: str
    peak_daily_write_blocks: int
    mean_daily_write_blocks: float
    lifetime_years_at_peak: float
    lifetime_years_at_mean: float


def lifetime_years(device: SSDModel, daily_write_blocks: float) -> float:
    """Years until the endurance budget is exhausted at a daily write rate."""
    if daily_write_blocks < 0:
        raise ValueError("daily_write_blocks must be non-negative")
    if daily_write_blocks == 0:
        return float("inf")
    daily_bytes = daily_write_blocks * BLOCK_BYTES
    return device.endurance_bytes / (daily_bytes * DAYS_PER_YEAR)


def endurance_report(device: SSDModel, stats: CacheStats) -> EnduranceReport:
    """Lifetime estimate from a simulation's per-day SSD write counts.

    SSD writes per day are write hits plus allocation-writes, exactly
    the quantity the paper bounds at 500 M blocks/day.
    """
    daily_writes = [day.ssd_writes for day in stats.per_day]
    active = [w for w in daily_writes if w > 0] or [0]
    peak = max(active)
    mean = sum(active) / len(active)
    return EnduranceReport(
        device_name=device.name,
        peak_daily_write_blocks=peak,
        mean_daily_write_blocks=mean,
        lifetime_years_at_peak=lifetime_years(device, peak),
        lifetime_years_at_mean=lifetime_years(device, mean),
    )


def wearout_threshold_bytes(device: SSDModel, fraction: float = 1.0) -> float:
    """Cumulative-write budget at which a device counts as worn out.

    ``fraction`` scales the device's rated endurance (e.g. 0.5 models a
    half-spent drive); this feeds :class:`repro.faults.plan.FaultPlan`'s
    endurance-driven wear-out scheduling.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    return device.endurance_bytes * fraction


def paper_endurance_example(device: SSDModel) -> float:
    """The paper's own arithmetic: 500 M 512-B writes/day on an X25-E.

    Returns the implied lifetime in years; the paper quotes "over 10
    years = (10^15 / (5 x 10^8 x 512 x 365))".
    """
    return lifetime_years(device, 5e8)
