"""SSD device parameter model.

The paper models the cache device after Intel's X25-E Extreme SATA SSD
(Section 4): 35,000 random read IOPS, 3,300 random write IOPS,
250 MB/s sustained sequential read, 170 MB/s sequential write, and a
1-petabyte write endurance.  Random IOPS at 4-KB transfers is the
tighter constraint (140 MB/s reads, 13.2 MB/s writes), so drive needs
are assessed under the IOPS constraint.

Because this reproduction runs scaled-down traces (see DESIGN.md), the
model provides :meth:`SSDModel.scaled`, which shrinks device throughput
by the same linear factor as the workload.  Drive-count results depend
only on the *ratio* of offered load to device throughput, so scaling
both sides preserves the paper's drives-needed shapes exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.units import GIB, IO_UNIT_BYTES


@dataclass(frozen=True)
class SSDModel:
    """Performance/endurance parameters of one SSD drive.

    Attributes:
        name: human-readable model name.
        read_iops: random 4-KB read operations per second.
        write_iops: random 4-KB write operations per second.
        seq_read_mbps: sustained sequential read bandwidth (MB/s).
        seq_write_mbps: sustained sequential write bandwidth (MB/s).
        capacity_bytes: usable capacity.
        endurance_bytes: total bytes writable over the device lifetime.
    """

    name: str
    read_iops: float
    write_iops: float
    seq_read_mbps: float
    seq_write_mbps: float
    capacity_bytes: int
    endurance_bytes: float

    def __post_init__(self) -> None:
        if self.read_iops <= 0 or self.write_iops <= 0:
            raise ValueError("IOPS ratings must be positive")
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")

    @property
    def read_service_time(self) -> float:
        """Seconds one 4-KB random read occupies the drive (1/read_iops)."""
        return 1.0 / self.read_iops

    @property
    def write_service_time(self) -> float:
        """Seconds one 4-KB random write occupies the drive (1/write_iops)."""
        return 1.0 / self.write_iops

    @property
    def random_read_mbps(self) -> float:
        """Random-read bandwidth implied by the 4-KB IOPS rating."""
        return self.read_iops * IO_UNIT_BYTES / 1e6

    @property
    def random_write_mbps(self) -> float:
        """Random-write bandwidth implied by the 4-KB IOPS rating."""
        return self.write_iops * IO_UNIT_BYTES / 1e6

    def occupancy_seconds(self, read_units: int, write_units: int) -> float:
        """Drive-seconds needed to serve the given 4-KB unit counts."""
        return (
            read_units * self.read_service_time
            + write_units * self.write_service_time
        )

    def scaled(self, factor: float) -> "SSDModel":
        """A device with throughput/capacity scaled by ``factor``.

        Used when the workload itself is linearly scaled; see module
        docs.  Endurance is scaled too, so lifetime-in-years results are
        preserved.
        """
        if not 0 < factor <= 1:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        return replace(
            self,
            name=f"{self.name} (x{factor:g})",
            read_iops=self.read_iops * factor,
            write_iops=self.write_iops * factor,
            seq_read_mbps=self.seq_read_mbps * factor,
            seq_write_mbps=self.seq_write_mbps * factor,
            capacity_bytes=max(1, int(self.capacity_bytes * factor)),
            endurance_bytes=self.endurance_bytes * factor,
        )


#: The paper's reference device (Intel X25-E Extreme SATA SSD, 32 GB class).
INTEL_X25E = SSDModel(
    name="Intel X25-E",
    read_iops=35_000.0,
    write_iops=3_300.0,
    seq_read_mbps=250.0,
    seq_write_mbps=170.0,
    capacity_bytes=32 * GIB,
    endurance_bytes=1e15,  # 1 petabyte of writes
)
