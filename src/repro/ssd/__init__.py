"""SSD device model, drive-occupancy costing, and endurance analysis."""

from repro.ssd.device import INTEL_X25E, SSDModel
from repro.ssd.occupancy import (
    OccupancySeries,
    coverage_table,
    occupancy_from_stats,
    sorted_drive_requirements,
)
from repro.ssd.latency import (
    ERA_2010,
    LatencyModel,
    LatencyReport,
    latency_report,
)
from repro.ssd.endurance import (
    DAYS_PER_YEAR,
    EnduranceReport,
    endurance_report,
    lifetime_years,
    paper_endurance_example,
)

__all__ = [
    "INTEL_X25E",
    "SSDModel",
    "OccupancySeries",
    "coverage_table",
    "occupancy_from_stats",
    "sorted_drive_requirements",
    "ERA_2010",
    "LatencyModel",
    "LatencyReport",
    "latency_report",
    "DAYS_PER_YEAR",
    "EnduranceReport",
    "endurance_report",
    "lifetime_years",
    "paper_endurance_example",
]
