"""Per-minute drive-IOPS occupancy and drives-needed analysis.

Implements the paper's cost methodology (Section 4):

* For each minute of the trace, every 4-KB read occupies the drive for
  1/35,000 s and every 4-KB write for 1/3,300 s (X25-E ratings).
* The **drive IOPS occupancy** of a minute is total busy-seconds / 60 —
  a value of 1.0 means exactly one saturated drive (Figure 8).
* The **drives needed** for a minute is the ceiling of the occupancy
  (Figure 9).
* **Coverage**: the fraction of trace minutes servable with a given
  number of drives; the paper reports the drives needed at 100%, 99.9%
  and 90% coverage.

Queueing is deliberately ignored, as in the paper, which argues the
sieved configurations run at low enough load points that queueing is
not significant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.cache.stats import CacheStats
from repro.ssd.device import SSDModel


@dataclass(frozen=True)
class OccupancySeries:
    """Drive-IOPS occupancy for every minute of a trace.

    ``values[i]`` is the occupancy of ``minutes[i]``; minutes with no
    SSD traffic are included with zero occupancy so coverage statistics
    are over the whole trace duration, as in the paper (10,080 minutes
    for the 7-day trace).
    """

    minutes: Tuple[int, ...]
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.minutes) != len(self.values):
            raise ValueError("minutes and values must have equal length")

    def __len__(self) -> int:
        return len(self.values)

    def drives_needed(self) -> List[int]:
        """Per-minute drive counts: ceil of occupancy, minimum 0."""
        return [math.ceil(v) if v > 0 else 0 for v in self.values]

    def max_occupancy(self) -> float:
        """Worst single-window occupancy over the trace."""
        return max(self.values) if self.values else 0.0

    def drives_for_coverage(self, coverage: float) -> int:
        """Drives needed to cover ``coverage`` fraction of minutes.

        ``coverage=1.0`` is the worst-case design (max over minutes);
        lower coverages take the corresponding quantile, mirroring the
        paper's 99.9%/90% dilutions.
        """
        if not 0 < coverage <= 1:
            raise ValueError(f"coverage must be in (0, 1], got {coverage}")
        needs = sorted(self.drives_needed())
        if not needs:
            return 0
        index = min(len(needs) - 1, math.ceil(coverage * len(needs)) - 1)
        return needs[index]

    def fraction_within(self, drives: int) -> float:
        """Fraction of minutes servable by at most ``drives`` drives."""
        if not self.values:
            return 1.0
        ok = sum(1 for n in self.drives_needed() if n <= drives)
        return ok / len(self.values)


def occupancy_from_stats(
    stats: CacheStats,
    device: SSDModel,
    total_minutes: int,
    window_minutes: int = 1,
) -> OccupancySeries:
    """Build the occupancy series from a simulation's per-minute SSD I/O.

    Args:
        stats: simulation statistics with minute tracking enabled.
        device: the SSD parameter model (possibly scaled).
        total_minutes: trace length in minutes; minutes with no traffic
            count as zero-occupancy.
        window_minutes: aggregation window.  The paper uses 1 (its
            full-scale trace moves ~1e5 I/O units per minute); scaled
            traces move a handful, so per-minute occupancy is dominated
            by small-number noise — aggregate over windows wide enough
            that the expected unit count per window matches the paper's
            statistical regime.  Occupancy is busy-seconds over the
            window length, so the drives-needed semantics carry over.
    """
    if total_minutes <= 0:
        raise ValueError(f"total_minutes must be positive, got {total_minutes}")
    if window_minutes <= 0:
        raise ValueError(f"window_minutes must be positive, got {window_minutes}")
    windows = (total_minutes + window_minutes - 1) // window_minutes
    occupancy = [0.0] * windows
    window_seconds = 60.0 * window_minutes
    for minute, io in stats.per_minute.items():
        if minute >= total_minutes:
            minute = total_minutes - 1
        occupancy[minute // window_minutes] += (
            device.occupancy_seconds(io.reads, io.writes) / window_seconds
        )
    return OccupancySeries(
        minutes=tuple(w * window_minutes for w in range(windows)),
        values=tuple(occupancy),
    )


def sorted_drive_requirements(series: OccupancySeries) -> List[int]:
    """Per-minute drive counts in increasing order (Figure 9's X ordering)."""
    return sorted(series.drives_needed())


def coverage_table(
    series: OccupancySeries, coverages: Sequence[float] = (1.0, 0.999, 0.99, 0.9)
) -> Dict[float, int]:
    """Drives needed at each coverage level (the paper quotes 100%/99.9%/90%)."""
    return {c: series.drives_for_coverage(c) for c in coverages}
