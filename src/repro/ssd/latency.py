"""End-to-end access-latency estimation (extension).

The paper argues SieveStore improves storage *performance* by serving a
large share of accesses from the SSD; its figures stop at hit ratios
and drive occupancy.  This module closes the loop with a simple service
-time model: each block access costs the medium's per-I/O latency
(SSD reads/writes for hits, HDD reads/writes for misses), and
allocation-writes add SSD write work.  Queueing is ignored, consistent
with the paper's occupancy methodology — the numbers are best read as
*service-demand* means, ideal for comparing configurations.

Default device latencies follow the era's hardware: X25-E-class SSD
(~0.1 ms reads, ~0.3 ms effective writes) against 7.2k-RPM enterprise
HDD arrays (~8 ms random reads, ~9 ms writes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.stats import CacheStats, DayStats


@dataclass(frozen=True)
class LatencyModel:
    """Per-I/O service latencies, in milliseconds."""

    ssd_read_ms: float = 0.1
    ssd_write_ms: float = 0.3
    hdd_read_ms: float = 8.0
    hdd_write_ms: float = 9.0

    def __post_init__(self) -> None:
        for name in ("ssd_read_ms", "ssd_write_ms", "hdd_read_ms", "hdd_write_ms"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


#: X25-E over 7.2k-RPM enterprise disks — the paper's hardware context.
ERA_2010 = LatencyModel()


@dataclass(frozen=True)
class LatencyReport:
    """Mean service latency of one configuration."""

    mean_access_ms: float
    mean_no_cache_ms: float
    allocation_overhead_ms: float

    @property
    def speedup(self) -> float:
        """Latency improvement over serving everything from the ensemble."""
        total = self.mean_access_ms + self.allocation_overhead_ms
        if total <= 0:
            return float("inf")
        return self.mean_no_cache_ms / total


def _day_latency_ms(day: DayStats, model: LatencyModel) -> float:
    """Total foreground service milliseconds for one day's accesses."""
    return (
        day.read_hits * model.ssd_read_ms
        + day.write_hits * model.ssd_write_ms
        + day.read_misses * model.hdd_read_ms
        + day.write_misses * model.hdd_write_ms
    )


def latency_report(
    stats: CacheStats, model: LatencyModel = ERA_2010
) -> LatencyReport:
    """Mean per-block-access latency for a finished simulation.

    ``allocation_overhead_ms`` amortizes allocation-writes' SSD work
    over all accesses — tiny for sieved configurations, dominant for
    unsieved ones (the Table-2 effect, now in milliseconds).
    """
    total = stats.total
    if total.accesses == 0:
        return LatencyReport(0.0, 0.0, 0.0)
    foreground = sum(_day_latency_ms(day, model) for day in stats.per_day)
    no_cache = (
        (total.read_hits + total.read_misses) * model.hdd_read_ms
        + (total.write_hits + total.write_misses) * model.hdd_write_ms
    )
    allocation = total.allocation_writes * model.ssd_write_ms
    return LatencyReport(
        mean_access_ms=foreground / total.accesses,
        mean_no_cache_ms=no_cache / total.accesses,
        allocation_overhead_ms=allocation / total.accesses,
    )
